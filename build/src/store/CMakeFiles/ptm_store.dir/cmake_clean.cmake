file(REMOVE_RECURSE
  "CMakeFiles/ptm_store.dir/archive.cpp.o"
  "CMakeFiles/ptm_store.dir/archive.cpp.o.d"
  "CMakeFiles/ptm_store.dir/record_log.cpp.o"
  "CMakeFiles/ptm_store.dir/record_log.cpp.o.d"
  "libptm_store.a"
  "libptm_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
