file(REMOVE_RECURSE
  "libptm_store.a"
)
