# Empty compiler generated dependencies file for ptm_store.
# This may be replaced when dependencies are built.
