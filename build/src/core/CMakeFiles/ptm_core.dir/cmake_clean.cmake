file(REMOVE_RECURSE
  "CMakeFiles/ptm_core.dir/bootstrap.cpp.o"
  "CMakeFiles/ptm_core.dir/bootstrap.cpp.o.d"
  "CMakeFiles/ptm_core.dir/corridor_persistent.cpp.o"
  "CMakeFiles/ptm_core.dir/corridor_persistent.cpp.o.d"
  "CMakeFiles/ptm_core.dir/encoding.cpp.o"
  "CMakeFiles/ptm_core.dir/encoding.cpp.o.d"
  "CMakeFiles/ptm_core.dir/expansion.cpp.o"
  "CMakeFiles/ptm_core.dir/expansion.cpp.o.d"
  "CMakeFiles/ptm_core.dir/kway_persistent.cpp.o"
  "CMakeFiles/ptm_core.dir/kway_persistent.cpp.o.d"
  "CMakeFiles/ptm_core.dir/linear_counting.cpp.o"
  "CMakeFiles/ptm_core.dir/linear_counting.cpp.o.d"
  "CMakeFiles/ptm_core.dir/p2p_persistent.cpp.o"
  "CMakeFiles/ptm_core.dir/p2p_persistent.cpp.o.d"
  "CMakeFiles/ptm_core.dir/point_persistent.cpp.o"
  "CMakeFiles/ptm_core.dir/point_persistent.cpp.o.d"
  "CMakeFiles/ptm_core.dir/privacy.cpp.o"
  "CMakeFiles/ptm_core.dir/privacy.cpp.o.d"
  "CMakeFiles/ptm_core.dir/sliding_join.cpp.o"
  "CMakeFiles/ptm_core.dir/sliding_join.cpp.o.d"
  "CMakeFiles/ptm_core.dir/traffic_record.cpp.o"
  "CMakeFiles/ptm_core.dir/traffic_record.cpp.o.d"
  "libptm_core.a"
  "libptm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
