
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cpp" "src/core/CMakeFiles/ptm_core.dir/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/bootstrap.cpp.o.d"
  "/root/repo/src/core/corridor_persistent.cpp" "src/core/CMakeFiles/ptm_core.dir/corridor_persistent.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/corridor_persistent.cpp.o.d"
  "/root/repo/src/core/encoding.cpp" "src/core/CMakeFiles/ptm_core.dir/encoding.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/encoding.cpp.o.d"
  "/root/repo/src/core/expansion.cpp" "src/core/CMakeFiles/ptm_core.dir/expansion.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/expansion.cpp.o.d"
  "/root/repo/src/core/kway_persistent.cpp" "src/core/CMakeFiles/ptm_core.dir/kway_persistent.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/kway_persistent.cpp.o.d"
  "/root/repo/src/core/linear_counting.cpp" "src/core/CMakeFiles/ptm_core.dir/linear_counting.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/linear_counting.cpp.o.d"
  "/root/repo/src/core/p2p_persistent.cpp" "src/core/CMakeFiles/ptm_core.dir/p2p_persistent.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/p2p_persistent.cpp.o.d"
  "/root/repo/src/core/point_persistent.cpp" "src/core/CMakeFiles/ptm_core.dir/point_persistent.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/point_persistent.cpp.o.d"
  "/root/repo/src/core/privacy.cpp" "src/core/CMakeFiles/ptm_core.dir/privacy.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/privacy.cpp.o.d"
  "/root/repo/src/core/sliding_join.cpp" "src/core/CMakeFiles/ptm_core.dir/sliding_join.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/sliding_join.cpp.o.d"
  "/root/repo/src/core/traffic_record.cpp" "src/core/CMakeFiles/ptm_core.dir/traffic_record.cpp.o" "gcc" "src/core/CMakeFiles/ptm_core.dir/traffic_record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ptm_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
