# Empty dependencies file for ptm_core.
# This may be replaced when dependencies are built.
