file(REMOVE_RECURSE
  "libptm_hash.a"
)
