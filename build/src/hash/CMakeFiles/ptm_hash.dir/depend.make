# Empty dependencies file for ptm_hash.
# This may be replaced when dependencies are built.
