
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/hash_suite.cpp" "src/hash/CMakeFiles/ptm_hash.dir/hash_suite.cpp.o" "gcc" "src/hash/CMakeFiles/ptm_hash.dir/hash_suite.cpp.o.d"
  "/root/repo/src/hash/murmur3.cpp" "src/hash/CMakeFiles/ptm_hash.dir/murmur3.cpp.o" "gcc" "src/hash/CMakeFiles/ptm_hash.dir/murmur3.cpp.o.d"
  "/root/repo/src/hash/sha256.cpp" "src/hash/CMakeFiles/ptm_hash.dir/sha256.cpp.o" "gcc" "src/hash/CMakeFiles/ptm_hash.dir/sha256.cpp.o.d"
  "/root/repo/src/hash/siphash.cpp" "src/hash/CMakeFiles/ptm_hash.dir/siphash.cpp.o" "gcc" "src/hash/CMakeFiles/ptm_hash.dir/siphash.cpp.o.d"
  "/root/repo/src/hash/xxhash.cpp" "src/hash/CMakeFiles/ptm_hash.dir/xxhash.cpp.o" "gcc" "src/hash/CMakeFiles/ptm_hash.dir/xxhash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
