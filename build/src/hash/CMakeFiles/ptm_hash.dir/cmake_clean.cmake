file(REMOVE_RECURSE
  "CMakeFiles/ptm_hash.dir/hash_suite.cpp.o"
  "CMakeFiles/ptm_hash.dir/hash_suite.cpp.o.d"
  "CMakeFiles/ptm_hash.dir/murmur3.cpp.o"
  "CMakeFiles/ptm_hash.dir/murmur3.cpp.o.d"
  "CMakeFiles/ptm_hash.dir/sha256.cpp.o"
  "CMakeFiles/ptm_hash.dir/sha256.cpp.o.d"
  "CMakeFiles/ptm_hash.dir/siphash.cpp.o"
  "CMakeFiles/ptm_hash.dir/siphash.cpp.o.d"
  "CMakeFiles/ptm_hash.dir/xxhash.cpp.o"
  "CMakeFiles/ptm_hash.dir/xxhash.cpp.o.d"
  "libptm_hash.a"
  "libptm_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
