file(REMOVE_RECURSE
  "libptm_sim.a"
)
