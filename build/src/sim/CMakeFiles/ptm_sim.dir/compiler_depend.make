# Empty compiler generated dependencies file for ptm_sim.
# This may be replaced when dependencies are built.
