file(REMOVE_RECURSE
  "CMakeFiles/ptm_sim.dir/event_sim.cpp.o"
  "CMakeFiles/ptm_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/ptm_sim.dir/experiment.cpp.o"
  "CMakeFiles/ptm_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/ptm_sim.dir/trajectory_attack.cpp.o"
  "CMakeFiles/ptm_sim.dir/trajectory_attack.cpp.o.d"
  "libptm_sim.a"
  "libptm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
