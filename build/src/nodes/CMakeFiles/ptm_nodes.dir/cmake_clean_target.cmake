file(REMOVE_RECURSE
  "libptm_nodes.a"
)
