# Empty dependencies file for ptm_nodes.
# This may be replaced when dependencies are built.
