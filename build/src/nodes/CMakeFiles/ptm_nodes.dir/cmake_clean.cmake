file(REMOVE_RECURSE
  "CMakeFiles/ptm_nodes.dir/deployment.cpp.o"
  "CMakeFiles/ptm_nodes.dir/deployment.cpp.o.d"
  "CMakeFiles/ptm_nodes.dir/rsu.cpp.o"
  "CMakeFiles/ptm_nodes.dir/rsu.cpp.o.d"
  "CMakeFiles/ptm_nodes.dir/server.cpp.o"
  "CMakeFiles/ptm_nodes.dir/server.cpp.o.d"
  "CMakeFiles/ptm_nodes.dir/vehicle.cpp.o"
  "CMakeFiles/ptm_nodes.dir/vehicle.cpp.o.d"
  "libptm_nodes.a"
  "libptm_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
