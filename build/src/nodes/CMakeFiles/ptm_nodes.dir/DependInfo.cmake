
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nodes/deployment.cpp" "src/nodes/CMakeFiles/ptm_nodes.dir/deployment.cpp.o" "gcc" "src/nodes/CMakeFiles/ptm_nodes.dir/deployment.cpp.o.d"
  "/root/repo/src/nodes/rsu.cpp" "src/nodes/CMakeFiles/ptm_nodes.dir/rsu.cpp.o" "gcc" "src/nodes/CMakeFiles/ptm_nodes.dir/rsu.cpp.o.d"
  "/root/repo/src/nodes/server.cpp" "src/nodes/CMakeFiles/ptm_nodes.dir/server.cpp.o" "gcc" "src/nodes/CMakeFiles/ptm_nodes.dir/server.cpp.o.d"
  "/root/repo/src/nodes/vehicle.cpp" "src/nodes/CMakeFiles/ptm_nodes.dir/vehicle.cpp.o" "gcc" "src/nodes/CMakeFiles/ptm_nodes.dir/vehicle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ptm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ptm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ptm_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
