# Empty dependencies file for ptm_net.
# This may be replaced when dependencies are built.
