file(REMOVE_RECURSE
  "CMakeFiles/ptm_net.dir/channel.cpp.o"
  "CMakeFiles/ptm_net.dir/channel.cpp.o.d"
  "CMakeFiles/ptm_net.dir/mac.cpp.o"
  "CMakeFiles/ptm_net.dir/mac.cpp.o.d"
  "CMakeFiles/ptm_net.dir/message.cpp.o"
  "CMakeFiles/ptm_net.dir/message.cpp.o.d"
  "libptm_net.a"
  "libptm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
