file(REMOVE_RECURSE
  "libptm_net.a"
)
