file(REMOVE_RECURSE
  "CMakeFiles/ptm_crypto.dir/bigint.cpp.o"
  "CMakeFiles/ptm_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/ptm_crypto.dir/certificate.cpp.o"
  "CMakeFiles/ptm_crypto.dir/certificate.cpp.o.d"
  "CMakeFiles/ptm_crypto.dir/rsa.cpp.o"
  "CMakeFiles/ptm_crypto.dir/rsa.cpp.o.d"
  "libptm_crypto.a"
  "libptm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
