
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/ptm_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/ptm_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/certificate.cpp" "src/crypto/CMakeFiles/ptm_crypto.dir/certificate.cpp.o" "gcc" "src/crypto/CMakeFiles/ptm_crypto.dir/certificate.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/ptm_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/ptm_crypto.dir/rsa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ptm_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
