# Empty dependencies file for ptm_crypto.
# This may be replaced when dependencies are built.
