file(REMOVE_RECURSE
  "libptm_crypto.a"
)
