# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hash")
subdirs("crypto")
subdirs("core")
subdirs("sketch")
subdirs("store")
subdirs("net")
subdirs("nodes")
subdirs("traffic")
subdirs("sim")
subdirs("cli")
