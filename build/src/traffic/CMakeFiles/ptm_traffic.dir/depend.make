# Empty dependencies file for ptm_traffic.
# This may be replaced when dependencies are built.
