file(REMOVE_RECURSE
  "libptm_traffic.a"
)
