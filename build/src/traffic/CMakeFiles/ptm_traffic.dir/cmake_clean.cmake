file(REMOVE_RECURSE
  "CMakeFiles/ptm_traffic.dir/mobility.cpp.o"
  "CMakeFiles/ptm_traffic.dir/mobility.cpp.o.d"
  "CMakeFiles/ptm_traffic.dir/road_network.cpp.o"
  "CMakeFiles/ptm_traffic.dir/road_network.cpp.o.d"
  "CMakeFiles/ptm_traffic.dir/sioux_falls.cpp.o"
  "CMakeFiles/ptm_traffic.dir/sioux_falls.cpp.o.d"
  "CMakeFiles/ptm_traffic.dir/trip_table.cpp.o"
  "CMakeFiles/ptm_traffic.dir/trip_table.cpp.o.d"
  "CMakeFiles/ptm_traffic.dir/workload.cpp.o"
  "CMakeFiles/ptm_traffic.dir/workload.cpp.o.d"
  "libptm_traffic.a"
  "libptm_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
