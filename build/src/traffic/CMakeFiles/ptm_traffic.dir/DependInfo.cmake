
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/mobility.cpp" "src/traffic/CMakeFiles/ptm_traffic.dir/mobility.cpp.o" "gcc" "src/traffic/CMakeFiles/ptm_traffic.dir/mobility.cpp.o.d"
  "/root/repo/src/traffic/road_network.cpp" "src/traffic/CMakeFiles/ptm_traffic.dir/road_network.cpp.o" "gcc" "src/traffic/CMakeFiles/ptm_traffic.dir/road_network.cpp.o.d"
  "/root/repo/src/traffic/sioux_falls.cpp" "src/traffic/CMakeFiles/ptm_traffic.dir/sioux_falls.cpp.o" "gcc" "src/traffic/CMakeFiles/ptm_traffic.dir/sioux_falls.cpp.o.d"
  "/root/repo/src/traffic/trip_table.cpp" "src/traffic/CMakeFiles/ptm_traffic.dir/trip_table.cpp.o" "gcc" "src/traffic/CMakeFiles/ptm_traffic.dir/trip_table.cpp.o.d"
  "/root/repo/src/traffic/workload.cpp" "src/traffic/CMakeFiles/ptm_traffic.dir/workload.cpp.o" "gcc" "src/traffic/CMakeFiles/ptm_traffic.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ptm_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
