# Empty dependencies file for ptm_sketch.
# This may be replaced when dependencies are built.
