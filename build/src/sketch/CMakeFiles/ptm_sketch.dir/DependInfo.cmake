
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/hyperloglog.cpp" "src/sketch/CMakeFiles/ptm_sketch.dir/hyperloglog.cpp.o" "gcc" "src/sketch/CMakeFiles/ptm_sketch.dir/hyperloglog.cpp.o.d"
  "/root/repo/src/sketch/pcsa.cpp" "src/sketch/CMakeFiles/ptm_sketch.dir/pcsa.cpp.o" "gcc" "src/sketch/CMakeFiles/ptm_sketch.dir/pcsa.cpp.o.d"
  "/root/repo/src/sketch/virtual_bitmap.cpp" "src/sketch/CMakeFiles/ptm_sketch.dir/virtual_bitmap.cpp.o" "gcc" "src/sketch/CMakeFiles/ptm_sketch.dir/virtual_bitmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ptm_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
