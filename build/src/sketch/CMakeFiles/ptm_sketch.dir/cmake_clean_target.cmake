file(REMOVE_RECURSE
  "libptm_sketch.a"
)
