file(REMOVE_RECURSE
  "CMakeFiles/ptm_sketch.dir/hyperloglog.cpp.o"
  "CMakeFiles/ptm_sketch.dir/hyperloglog.cpp.o.d"
  "CMakeFiles/ptm_sketch.dir/pcsa.cpp.o"
  "CMakeFiles/ptm_sketch.dir/pcsa.cpp.o.d"
  "CMakeFiles/ptm_sketch.dir/virtual_bitmap.cpp.o"
  "CMakeFiles/ptm_sketch.dir/virtual_bitmap.cpp.o.d"
  "libptm_sketch.a"
  "libptm_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
