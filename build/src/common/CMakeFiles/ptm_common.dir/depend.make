# Empty dependencies file for ptm_common.
# This may be replaced when dependencies are built.
