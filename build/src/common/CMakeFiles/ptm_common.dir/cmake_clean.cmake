file(REMOVE_RECURSE
  "CMakeFiles/ptm_common.dir/bitmap.cpp.o"
  "CMakeFiles/ptm_common.dir/bitmap.cpp.o.d"
  "CMakeFiles/ptm_common.dir/config.cpp.o"
  "CMakeFiles/ptm_common.dir/config.cpp.o.d"
  "CMakeFiles/ptm_common.dir/crc32.cpp.o"
  "CMakeFiles/ptm_common.dir/crc32.cpp.o.d"
  "CMakeFiles/ptm_common.dir/env.cpp.o"
  "CMakeFiles/ptm_common.dir/env.cpp.o.d"
  "CMakeFiles/ptm_common.dir/parallel.cpp.o"
  "CMakeFiles/ptm_common.dir/parallel.cpp.o.d"
  "CMakeFiles/ptm_common.dir/random.cpp.o"
  "CMakeFiles/ptm_common.dir/random.cpp.o.d"
  "CMakeFiles/ptm_common.dir/serialize.cpp.o"
  "CMakeFiles/ptm_common.dir/serialize.cpp.o.d"
  "CMakeFiles/ptm_common.dir/stats.cpp.o"
  "CMakeFiles/ptm_common.dir/stats.cpp.o.d"
  "CMakeFiles/ptm_common.dir/status.cpp.o"
  "CMakeFiles/ptm_common.dir/status.cpp.o.d"
  "CMakeFiles/ptm_common.dir/table.cpp.o"
  "CMakeFiles/ptm_common.dir/table.cpp.o.d"
  "libptm_common.a"
  "libptm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
