file(REMOVE_RECURSE
  "libptm_common.a"
)
