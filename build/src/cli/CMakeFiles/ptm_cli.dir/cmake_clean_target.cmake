file(REMOVE_RECURSE
  "libptm_cli.a"
)
