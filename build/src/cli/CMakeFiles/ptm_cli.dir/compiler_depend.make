# Empty compiler generated dependencies file for ptm_cli.
# This may be replaced when dependencies are built.
