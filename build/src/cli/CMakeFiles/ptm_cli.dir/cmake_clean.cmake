file(REMOVE_RECURSE
  "CMakeFiles/ptm_cli.dir/cli.cpp.o"
  "CMakeFiles/ptm_cli.dir/cli.cpp.o.d"
  "libptm_cli.a"
  "libptm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
