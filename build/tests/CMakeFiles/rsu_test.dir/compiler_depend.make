# Empty compiler generated dependencies file for rsu_test.
# This may be replaced when dependencies are built.
