file(REMOVE_RECURSE
  "CMakeFiles/rsu_test.dir/rsu_test.cpp.o"
  "CMakeFiles/rsu_test.dir/rsu_test.cpp.o.d"
  "rsu_test"
  "rsu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
