# Empty compiler generated dependencies file for sliding_join_test.
# This may be replaced when dependencies are built.
