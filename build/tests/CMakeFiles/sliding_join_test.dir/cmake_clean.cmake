file(REMOVE_RECURSE
  "CMakeFiles/sliding_join_test.dir/sliding_join_test.cpp.o"
  "CMakeFiles/sliding_join_test.dir/sliding_join_test.cpp.o.d"
  "sliding_join_test"
  "sliding_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
