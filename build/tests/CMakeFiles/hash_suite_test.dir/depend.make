# Empty dependencies file for hash_suite_test.
# This may be replaced when dependencies are built.
