file(REMOVE_RECURSE
  "CMakeFiles/hash_suite_test.dir/hash_suite_test.cpp.o"
  "CMakeFiles/hash_suite_test.dir/hash_suite_test.cpp.o.d"
  "hash_suite_test"
  "hash_suite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
