file(REMOVE_RECURSE
  "CMakeFiles/point_persistent_test.dir/point_persistent_test.cpp.o"
  "CMakeFiles/point_persistent_test.dir/point_persistent_test.cpp.o.d"
  "point_persistent_test"
  "point_persistent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_persistent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
