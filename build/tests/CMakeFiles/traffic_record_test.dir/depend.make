# Empty dependencies file for traffic_record_test.
# This may be replaced when dependencies are built.
