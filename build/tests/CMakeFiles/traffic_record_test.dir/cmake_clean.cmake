file(REMOVE_RECURSE
  "CMakeFiles/traffic_record_test.dir/traffic_record_test.cpp.o"
  "CMakeFiles/traffic_record_test.dir/traffic_record_test.cpp.o.d"
  "traffic_record_test"
  "traffic_record_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
