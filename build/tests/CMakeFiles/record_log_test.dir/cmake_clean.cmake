file(REMOVE_RECURSE
  "CMakeFiles/record_log_test.dir/record_log_test.cpp.o"
  "CMakeFiles/record_log_test.dir/record_log_test.cpp.o.d"
  "record_log_test"
  "record_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
