# Empty compiler generated dependencies file for record_log_test.
# This may be replaced when dependencies are built.
