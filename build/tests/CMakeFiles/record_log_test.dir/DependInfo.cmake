
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/record_log_test.cpp" "tests/CMakeFiles/record_log_test.dir/record_log_test.cpp.o" "gcc" "tests/CMakeFiles/record_log_test.dir/record_log_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/ptm_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/nodes/CMakeFiles/ptm_nodes.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ptm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ptm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ptm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/ptm_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/ptm_store.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/ptm_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/ptm_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ptm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
