# Empty compiler generated dependencies file for siphash_test.
# This may be replaced when dependencies are built.
