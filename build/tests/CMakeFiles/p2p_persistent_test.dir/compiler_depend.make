# Empty compiler generated dependencies file for p2p_persistent_test.
# This may be replaced when dependencies are built.
