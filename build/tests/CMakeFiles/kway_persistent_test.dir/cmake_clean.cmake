file(REMOVE_RECURSE
  "CMakeFiles/kway_persistent_test.dir/kway_persistent_test.cpp.o"
  "CMakeFiles/kway_persistent_test.dir/kway_persistent_test.cpp.o.d"
  "kway_persistent_test"
  "kway_persistent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kway_persistent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
