# Empty compiler generated dependencies file for kway_persistent_test.
# This may be replaced when dependencies are built.
