file(REMOVE_RECURSE
  "CMakeFiles/murmur3_test.dir/murmur3_test.cpp.o"
  "CMakeFiles/murmur3_test.dir/murmur3_test.cpp.o.d"
  "murmur3_test"
  "murmur3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/murmur3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
