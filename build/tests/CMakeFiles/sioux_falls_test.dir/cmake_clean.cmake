file(REMOVE_RECURSE
  "CMakeFiles/sioux_falls_test.dir/sioux_falls_test.cpp.o"
  "CMakeFiles/sioux_falls_test.dir/sioux_falls_test.cpp.o.d"
  "sioux_falls_test"
  "sioux_falls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sioux_falls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
