# Empty compiler generated dependencies file for sioux_falls_test.
# This may be replaced when dependencies are built.
