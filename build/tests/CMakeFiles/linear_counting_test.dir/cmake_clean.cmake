file(REMOVE_RECURSE
  "CMakeFiles/linear_counting_test.dir/linear_counting_test.cpp.o"
  "CMakeFiles/linear_counting_test.dir/linear_counting_test.cpp.o.d"
  "linear_counting_test"
  "linear_counting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
