file(REMOVE_RECURSE
  "CMakeFiles/vehicle_test.dir/vehicle_test.cpp.o"
  "CMakeFiles/vehicle_test.dir/vehicle_test.cpp.o.d"
  "vehicle_test"
  "vehicle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
