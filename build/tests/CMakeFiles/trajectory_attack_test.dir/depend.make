# Empty dependencies file for trajectory_attack_test.
# This may be replaced when dependencies are built.
