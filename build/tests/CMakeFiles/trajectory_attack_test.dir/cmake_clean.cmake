file(REMOVE_RECURSE
  "CMakeFiles/trajectory_attack_test.dir/trajectory_attack_test.cpp.o"
  "CMakeFiles/trajectory_attack_test.dir/trajectory_attack_test.cpp.o.d"
  "trajectory_attack_test"
  "trajectory_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
