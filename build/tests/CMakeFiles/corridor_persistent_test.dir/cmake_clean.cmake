file(REMOVE_RECURSE
  "CMakeFiles/corridor_persistent_test.dir/corridor_persistent_test.cpp.o"
  "CMakeFiles/corridor_persistent_test.dir/corridor_persistent_test.cpp.o.d"
  "corridor_persistent_test"
  "corridor_persistent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corridor_persistent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
