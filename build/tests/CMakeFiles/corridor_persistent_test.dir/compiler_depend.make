# Empty compiler generated dependencies file for corridor_persistent_test.
# This may be replaced when dependencies are built.
