# Empty compiler generated dependencies file for xxhash_test.
# This may be replaced when dependencies are built.
