file(REMOVE_RECURSE
  "CMakeFiles/xxhash_test.dir/xxhash_test.cpp.o"
  "CMakeFiles/xxhash_test.dir/xxhash_test.cpp.o.d"
  "xxhash_test"
  "xxhash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xxhash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
