file(REMOVE_RECURSE
  "CMakeFiles/trajectory_study.dir/trajectory_study.cpp.o"
  "CMakeFiles/trajectory_study.dir/trajectory_study.cpp.o.d"
  "trajectory_study"
  "trajectory_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
