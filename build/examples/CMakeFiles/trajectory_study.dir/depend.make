# Empty dependencies file for trajectory_study.
# This may be replaced when dependencies are built.
