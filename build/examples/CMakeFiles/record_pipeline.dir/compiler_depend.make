# Empty compiler generated dependencies file for record_pipeline.
# This may be replaced when dependencies are built.
