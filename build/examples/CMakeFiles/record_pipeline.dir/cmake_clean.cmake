file(REMOVE_RECURSE
  "CMakeFiles/record_pipeline.dir/record_pipeline.cpp.o"
  "CMakeFiles/record_pipeline.dir/record_pipeline.cpp.o.d"
  "record_pipeline"
  "record_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
