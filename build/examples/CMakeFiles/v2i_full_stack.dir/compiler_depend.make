# Empty compiler generated dependencies file for v2i_full_stack.
# This may be replaced when dependencies are built.
