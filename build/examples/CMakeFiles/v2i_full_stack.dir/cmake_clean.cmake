file(REMOVE_RECURSE
  "CMakeFiles/v2i_full_stack.dir/v2i_full_stack.cpp.o"
  "CMakeFiles/v2i_full_stack.dir/v2i_full_stack.cpp.o.d"
  "v2i_full_stack"
  "v2i_full_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v2i_full_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
