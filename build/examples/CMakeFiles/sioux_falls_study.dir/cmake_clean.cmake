file(REMOVE_RECURSE
  "CMakeFiles/sioux_falls_study.dir/sioux_falls_study.cpp.o"
  "CMakeFiles/sioux_falls_study.dir/sioux_falls_study.cpp.o.d"
  "sioux_falls_study"
  "sioux_falls_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sioux_falls_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
