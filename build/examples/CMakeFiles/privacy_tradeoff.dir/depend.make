# Empty dependencies file for privacy_tradeoff.
# This may be replaced when dependencies are built.
