# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sioux_falls_study "/root/repo/build/examples/sioux_falls_study")
set_tests_properties(example_sioux_falls_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_privacy_tradeoff "/root/repo/build/examples/privacy_tradeoff")
set_tests_properties(example_privacy_tradeoff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_v2i_full_stack "/root/repo/build/examples/v2i_full_stack")
set_tests_properties(example_v2i_full_stack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_record_pipeline "/root/repo/build/examples/record_pipeline")
set_tests_properties(example_record_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trajectory_study "/root/repo/build/examples/trajectory_study")
set_tests_properties(example_trajectory_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
