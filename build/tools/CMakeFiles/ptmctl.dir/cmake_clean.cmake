file(REMOVE_RECURSE
  "CMakeFiles/ptmctl.dir/ptmctl.cpp.o"
  "CMakeFiles/ptmctl.dir/ptmctl.cpp.o.d"
  "ptmctl"
  "ptmctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptmctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
