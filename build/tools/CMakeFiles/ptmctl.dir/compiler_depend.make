# Empty compiler generated dependencies file for ptmctl.
# This may be replaced when dependencies are built.
