# Empty compiler generated dependencies file for bench_table1_sioux_falls.
# This may be replaced when dependencies are built.
