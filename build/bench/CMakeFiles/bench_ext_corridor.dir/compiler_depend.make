# Empty compiler generated dependencies file for bench_ext_corridor.
# This may be replaced when dependencies are built.
