file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_corridor.dir/bench_ext_corridor.cpp.o"
  "CMakeFiles/bench_ext_corridor.dir/bench_ext_corridor.cpp.o.d"
  "bench_ext_corridor"
  "bench_ext_corridor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_corridor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
