# Empty compiler generated dependencies file for bench_ablation_kway.
# This may be replaced when dependencies are built.
