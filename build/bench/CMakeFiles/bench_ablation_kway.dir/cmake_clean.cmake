file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kway.dir/bench_ablation_kway.cpp.o"
  "CMakeFiles/bench_ablation_kway.dir/bench_ablation_kway.cpp.o.d"
  "bench_ablation_kway"
  "bench_ablation_kway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
