file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_beacon.dir/bench_ablation_beacon.cpp.o"
  "CMakeFiles/bench_ablation_beacon.dir/bench_ablation_beacon.cpp.o.d"
  "bench_ablation_beacon"
  "bench_ablation_beacon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_beacon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
