# Empty dependencies file for bench_fig4_point_persistent.
# This may be replaced when dependencies are built.
