file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_point_persistent.dir/bench_fig4_point_persistent.cpp.o"
  "CMakeFiles/bench_fig4_point_persistent.dir/bench_fig4_point_persistent.cpp.o.d"
  "bench_fig4_point_persistent"
  "bench_fig4_point_persistent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_point_persistent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
