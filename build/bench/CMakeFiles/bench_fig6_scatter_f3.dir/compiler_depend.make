# Empty compiler generated dependencies file for bench_fig6_scatter_f3.
# This may be replaced when dependencies are built.
