file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_scatter_f3.dir/bench_fig6_scatter_f3.cpp.o"
  "CMakeFiles/bench_fig6_scatter_f3.dir/bench_fig6_scatter_f3.cpp.o.d"
  "bench_fig6_scatter_f3"
  "bench_fig6_scatter_f3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_scatter_f3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
