# Empty dependencies file for bench_fig5_scatter_f2.
# This may be replaced when dependencies are built.
