file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_privacy.dir/bench_table2_privacy.cpp.o"
  "CMakeFiles/bench_table2_privacy.dir/bench_table2_privacy.cpp.o.d"
  "bench_table2_privacy"
  "bench_table2_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
