// trajectory_study - measurement over real trajectories on a road network.
//
// The OD matrix says where trips start and end; it cannot see the traffic
// that merely PASSES THROUGH an intersection en route.  This example builds
// a road network, routes a commuter fleet over shortest paths, runs five
// measurement periods with fresh transient trips each day, and shows that
// the privacy-preserving records recover per-intersection *pass-through*
// persistent traffic - the quantity a planner actually needs when deciding
// which junction to widen.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/math.hpp"
#include "core/point_persistent.hpp"
#include "core/traffic_record.hpp"
#include "traffic/mobility.hpp"

int main() {
  using namespace ptm;

  // A 30-intersection city, each intersection connected to its 2 nearest
  // neighbours (plus connectivity patching) - a sparse road mesh.
  const RoadNetwork network = generate_road_network(30, 2, 0xC17D);
  const TripTable demand = gravity_model_table(30, 400'000, 0xDE3A);
  std::printf("road network: %zu intersections, %zu road segments\n",
              network.zone_count(), network.road_count());

  const EncodingParams encoding;  // s = 3
  Xoshiro256 rng(20170605);
  constexpr std::size_t kCommuters = 3000;
  const MobilityModel model(network, demand, kCommuters, encoding, rng);

  // Mean route length tells us how much pass-through traffic exists.
  double total_hops = 0;
  for (const Commuter& c : model.commuters()) {
    total_hops += static_cast<double>(c.route.size());
  }
  std::printf("commuter fleet: %zu vehicles, mean route = %.1f "
              "intersections\n\n",
              kCommuters, total_hops / kCommuters);

  // Five measurement periods; each day the commuters drive their route and
  // 12,000 transient trips are sampled fresh.
  constexpr std::size_t kDays = 5;
  constexpr std::size_t kTransientsPerDay = 12'000;
  std::vector<std::size_t> sizes(network.zone_count());
  for (std::size_t z = 0; z < sizes.size(); ++z) {
    // Rough per-zone volume expectation for Eq. 2: fleet share + transient
    // share (both route-length amplified); a deployment would use history.
    sizes[z] = plan_bitmap_size(4000.0, 2.0);
  }
  std::vector<std::vector<Bitmap>> per_zone(network.zone_count());
  for (std::size_t day = 0; day < kDays; ++day) {
    const PeriodTraffic traffic = model.sample_period(kTransientsPerDay, rng);
    auto records = build_period_records(model, traffic, sizes, encoding);
    for (std::size_t z = 0; z < records.size(); ++z) {
      per_zone[z].push_back(std::move(records[z]));
    }
  }

  // Estimate pass-through persistent traffic at every intersection and
  // rank; compare with trajectory ground truth.
  struct ZoneResult {
    std::size_t zone;
    double estimated;
    std::size_t truth;
  };
  std::vector<ZoneResult> results;
  for (std::size_t z = 0; z < network.zone_count(); ++z) {
    const auto est = estimate_point_persistent(per_zone[z]);
    if (!est) continue;
    results.push_back({z, est->n_star, model.commuters_through(z)});
  }
  std::sort(results.begin(), results.end(),
            [](const ZoneResult& a, const ZoneResult& b) {
              return a.estimated > b.estimated;
            });

  std::printf("top intersections by ESTIMATED persistent pass-through:\n");
  std::printf("%-6s %-12s %-12s %-10s %-s\n", "rank", "intersection",
              "estimated", "truth", "rel err");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, results.size()); ++i) {
    const ZoneResult& r = results[i];
    std::printf("%-6zu %-12zu %-12.0f %-10zu %.4f\n", i + 1, r.zone,
                r.estimated, r.truth,
                relative_error(r.estimated, static_cast<double>(r.truth)));
  }

  // How much of the top-ranked truth does the estimate-driven ranking
  // capture?  (The planning decision quality metric.)
  auto by_truth = results;
  std::sort(by_truth.begin(), by_truth.end(),
            [](const ZoneResult& a, const ZoneResult& b) {
              return a.truth > b.truth;
            });
  std::size_t agree = 0;
  constexpr std::size_t kTop = 5;
  for (std::size_t i = 0; i < kTop; ++i) {
    for (std::size_t j = 0; j < kTop; ++j) {
      if (results[i].zone == by_truth[j].zone) {
        ++agree;
        break;
      }
    }
  }
  std::printf("\ntop-%zu agreement between estimated and true rankings: "
              "%zu/%zu\n",
              kTop, agree, kTop);
  std::printf("note: much of each count is PASS-THROUGH traffic - commuters\n"
              "whose OD pair doesn't involve the intersection at all; only\n"
              "trajectory-aware measurement can see it, and the records\n"
              "recover it without storing a single trajectory.\n");
  return 0;
}
