// quickstart - the 60-second tour of the ptm public API.
//
//   1. plan a traffic record's bitmap size (Eq. 2);
//   2. encode vehicles the way the paper's RSUs do (§II-D);
//   3. estimate point traffic from one record (Eq. 1/3);
//   4. estimate point PERSISTENT traffic across periods (Eq. 12);
//   5. estimate point-to-point persistent traffic between two locations
//      (Eq. 21).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/encoding.hpp"
#include "core/linear_counting.hpp"
#include "core/p2p_persistent.hpp"
#include "core/point_persistent.hpp"
#include "core/traffic_record.hpp"
#include "traffic/workload.hpp"

int main() {
  using namespace ptm;

  // --- setup: system-wide parameters (the paper's recommended point) -----
  const EncodingParams encoding;  // s = 3, murmur3
  const double f = 2.0;           // load factor (Eq. 2)
  Xoshiro256 rng(7);

  // --- 1+2: one measurement period at location L -------------------------
  constexpr std::uint64_t kLocation = 1001;
  constexpr std::size_t kVehicleCount = 5000;
  const std::size_t m = plan_bitmap_size(kVehicleCount, f);
  std::printf("planned bitmap: m = %zu bits for ~%zu vehicles (f = %.0f)\n",
              m, kVehicleCount, f);

  const VehicleEncoder encoder(encoding);
  const auto fleet = make_vehicles(kVehicleCount, encoding.s, rng);
  Bitmap record(m);
  for (const auto& vehicle : fleet) {
    encoder.encode(vehicle, kLocation, record);  // each sets ONE bit
  }

  // --- 3: point traffic from a single record -----------------------------
  const CardinalityEstimate point = estimate_cardinality(record);
  std::printf("point traffic:   actual %zu, estimated %.0f (%s)\n",
              kVehicleCount, point.value, estimate_outcome_name(point.outcome));

  // --- 4: point persistent traffic over 5 periods ------------------------
  // 800 commuters pass L every day; each day also brings fresh transients.
  constexpr std::size_t kCommuters = 800;
  const auto commuters = make_vehicles(kCommuters, encoding.s, rng);
  const std::vector<std::uint64_t> volumes = {5200, 7100, 4800, 9300, 6100};
  const auto records =
      generate_point_records(volumes, commuters, kLocation, f, encoding, rng);

  const auto persistent = estimate_point_persistent(records);
  std::printf("point persistent (t=5): actual %zu, estimated %.0f\n",
              kCommuters, persistent->n_star);
  const auto naive = estimate_point_persistent_naive(records);
  std::printf("  (naive AND-join benchmark would say %.0f - biased up by "
              "transient collisions)\n",
              naive->value);

  // --- 5: point-to-point persistent traffic ------------------------------
  // 300 vehicles commute between L and L' every day.
  constexpr std::uint64_t kOtherLocation = 2002;
  constexpr std::size_t kP2PCommuters = 300;
  const auto p2p_commuters = make_vehicles(kP2PCommuters, encoding.s, rng);
  const std::vector<std::uint64_t> volumes_l = {5000, 6000, 5500, 7000, 5200};
  const std::vector<std::uint64_t> volumes_lp = {9000, 8200, 9900, 8700, 9400};
  const auto p2p_records =
      generate_p2p_records(volumes_l, volumes_lp, p2p_commuters, kLocation,
                           kOtherLocation, f, encoding, rng);

  PointToPointOptions options;
  options.s = encoding.s;
  const auto p2p = estimate_p2p_persistent(p2p_records.at_l,
                                           p2p_records.at_l_prime, options);
  std::printf("p2p persistent (t=5):   actual %zu, estimated %.0f "
              "(m = %zu, m' = %zu)\n",
              kP2PCommuters, p2p->n_double_prime, p2p->m, p2p->m_prime);

  std::printf("\nno vehicle ever transmitted its ID - every record is an\n"
              "anonymous bitmap, yet all three volumes were recovered.\n");
  return 0;
}
