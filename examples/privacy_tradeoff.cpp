// privacy_tradeoff - picking (s, f) for a deployment.
//
// The paper's central tension (§V, §VI-C): larger f buys accuracy but
// shrinks the noise that protects vehicles from tracking; larger s buys
// deniability but blurs the cross-location signal the p2p estimator reads.
// This example sweeps both knobs on one synthetic deployment and prints the
// two curves side by side, ending with the paper's recommendation.
#include <cstdio>

#include "common/math.hpp"
#include "common/stats.hpp"
#include "core/p2p_persistent.hpp"
#include "core/privacy.hpp"
#include "core/traffic_record.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace ptm;

/// Mean p2p relative error at one (s, f) over a few trials.
double p2p_error(std::size_t s, double f, Xoshiro256& rng) {
  EncodingParams encoding;
  encoding.s = s;
  RunningStats err;
  constexpr std::size_t kNpp = 500;
  for (int trial = 0; trial < 12; ++trial) {
    const auto common = make_vehicles(kNpp, s, rng);
    const std::vector<std::uint64_t> volumes(5, 6000);
    const auto records = generate_p2p_records(volumes, volumes, common, 0xA,
                                              0xB, f, encoding, rng);
    PointToPointOptions options;
    options.s = s;
    const auto est =
        estimate_p2p_persistent(records.at_l, records.at_l_prime, options);
    if (est) err.add(relative_error(est->n_double_prime, kNpp));
  }
  return err.mean();
}

}  // namespace

int main() {
  Xoshiro256 rng(0x7A3D0FF);

  std::printf("accuracy vs privacy on one deployment "
              "(n'' = 500 common, 6000/period, t = 5)\n\n");
  std::printf("%-5s %-5s | %-16s | %-22s %-8s\n", "s", "f", "p2p rel err",
              "noise-to-info ratio", "noise p");
  std::printf("---------------------------------------------------------------"
              "--\n");

  for (std::size_t s : {2u, 3u, 4u}) {
    for (double f : {1.5, 2.0, 3.0}) {
      const double err = p2p_error(s, f, rng);
      const double ratio = table2_ratio(s, f);
      const double noise = table2_noise(f);
      const char* verdict =
          (err < 0.15 && ratio > 1.0) ? "  <- viable" : "";
      std::printf("%-5zu %-5.1f | %-16.4f | %-22.4f %-8.4f%s\n", s, f, err,
                  ratio, noise, verdict);
    }
    std::printf("\n");
  }

  std::printf("reading the table:\n"
              " * down a column (s up): privacy ratio grows linearly, p2p\n"
              "   error grows - the estimator loses cross-location signal;\n"
              " * across a row (f up): error falls (bigger bitmaps, less\n"
              "   mixing) but the tracking noise p collapses;\n"
              " * ratio < 1 means a tracker's information beats the noise -\n"
              "   unacceptable; the paper requires ratio > 1.\n\n");

  const double rec_err = table2_ratio(3, 2.0);
  std::printf("the paper's pick: s = 3, f = 2 -> ratio = %.4f (~2:1 noise\n"
              "over information) with p = %.4f, while keeping relative\n"
              "error in the low percent range - the compromise used for\n"
              "every headline experiment.\n",
              rec_err, table2_noise(2.0));
  return 0;
}
