// v2i_full_stack - the whole deployment, end to end, over the simulated
// radio: trusted third party, certified RSUs, vehicles with SpoofMAC
// one-time addresses, the 4-leg beacon/auth/encode protocol on a lossy
// channel, record uploads, and central-server queries (paper §II).
//
// Also demonstrates what the privacy design is FOR: a rogue RSU is ignored
// by every vehicle, and the server's stored records contain nothing that
// identifies any vehicle.
#include <cstdio>
#include <vector>

#include "nodes/deployment.hpp"

int main() {
  using namespace ptm;

  Deployment::Config config;
  config.ca_key_bits = 768;
  config.rsu_key_bits = 512;
  config.channel.loss_probability = 0.02;  // realistic light radio loss
  Deployment dep(config, 20170605);

  std::printf("trusted third party: \"%s\" (%zu-bit RSA)\n",
              dep.ca().name().c_str(), dep.ca().public_key().modulus_bits());

  Rsu& north = dep.add_rsu(101, 8192);
  Rsu& south = dep.add_rsu(202, 8192);
  std::printf("deployed RSUs at locations %llu and %llu with certified "
              "keys\n\n",
              static_cast<unsigned long long>(north.location()),
              static_cast<unsigned long long>(south.location()));

  // 250 commuters drive north->south every day for 3 days; each day also
  // brings ~1500 one-off vehicles per intersection.
  std::vector<Vehicle> commuters;
  for (int i = 0; i < 250; ++i) {
    commuters.push_back(dep.make_vehicle(static_cast<std::uint64_t>(i)));
  }

  std::uint64_t transient_id = 1u << 20;
  ChannelStats before = dep.channel().stats();
  for (int day = 0; day < 3; ++day) {
    int encoded = 0, lost = 0;
    for (Vehicle& v : commuters) {
      if (dep.run_contact(v, north) == ContactOutcome::kEncoded) ++encoded;
      else ++lost;
      if (dep.run_contact(v, south) == ContactOutcome::kEncoded) ++encoded;
      else ++lost;
    }
    for (int i = 0; i < 1500; ++i) {
      Vehicle t1 = dep.make_vehicle(transient_id++);
      if (dep.run_contact(t1, north) == ContactOutcome::kEncoded) ++encoded;
      Vehicle t2 = dep.make_vehicle(transient_id++);
      if (dep.run_contact(t2, south) == ContactOutcome::kEncoded) ++encoded;
    }
    // Upload with one application-level retry (the radio is lossy).
    for (Rsu* rsu : {&north, &south}) {
      Status up = dep.upload_period(*rsu);
      if (!up.is_ok()) up = dep.upload_period(*rsu);
      if (!up.is_ok()) std::printf("  day %d: upload failed twice!\n", day);
    }
    std::printf("day %d: %d encodes, %d contacts lost to the radio\n", day,
                encoded, lost);
  }
  const ChannelStats after = dep.channel().stats();
  std::printf("channel: %llu frames sent, %llu lost (%.1f%%)\n\n",
              static_cast<unsigned long long>(after.sent - before.sent),
              static_cast<unsigned long long>(after.lost - before.lost),
              100.0 * static_cast<double>(after.lost - before.lost) /
                  static_cast<double>(after.sent - before.sent));

  // The transportation authority's queries, batched through the unified
  // QueryService API: one request vector, one call, uniform summaries.
  const std::vector<std::uint64_t> days = {0, 1, 2};
  const std::vector<QueryRequest> requests = {
      PointVolumeQuery{101, 0},
      PointPersistentQuery{101, days},
      P2PPersistentQuery{101, 202, days},
  };
  const std::vector<const char*> truths = {
      "true ~1750 minus radio losses", "true: 250 commuters minus losses",
      "true: 250 minus losses"};
  const auto responses = dep.server().queries().run_batch(requests);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].ok()) continue;
    std::printf("%s: %s (%s)\n", query_kind_name(requests[i]),
                format_estimate_summary(responses[i].summary).c_str(),
                truths[i]);
  }
  std::printf("\nserver-side query metrics after the batch:\n%s\n",
              dep.server().queries().metrics().to_string().c_str());

  // A rogue RSU with a self-signed certificate gets the silent treatment.
  Xoshiro256 rogue_rng(666);
  const CertificateAuthority rogue_ca("rogue", 512, rogue_rng);
  const RsaKeyPair rogue_keys = rsa_generate(512, rogue_rng);
  Beacon rogue_beacon;
  rogue_beacon.location = 999;
  rogue_beacon.period = 0;
  rogue_beacon.bitmap_size = 4096;
  rogue_beacon.certificate =
      *rogue_ca.issue("rsu:999", 999, rogue_keys.pub, 0, 1000);
  Vehicle victim = dep.make_vehicle(0x51C71);
  const auto reaction = victim.handle_beacon(rogue_beacon);
  std::printf("rogue RSU broadcast -> vehicle reaction: %s (stays silent)\n",
              reaction.status().to_string().c_str());

  std::printf("\nwhat the server stores per (location, day): one bitmap.\n"
              "no IDs, no MACs (one-time), no per-vehicle rows - yet every\n"
              "query above was answerable.\n");
  return 0;
}
