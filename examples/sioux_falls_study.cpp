// sioux_falls_study - a transportation-engineering study on a 24-zone road
// network (the paper's §VI-A scenario, generalized).
//
// Uses the deterministic Sioux-Falls-like OD network to pick the busiest
// intersection L' and a spread of partner intersections, simulates 5
// measurement days of traffic records, and produces the kind of report a
// traffic engineer would read: per-pair persistent volume estimates with
// errors, plus the congestion-source ranking the paper motivates in §I
// ("determine the priority order for planning measures of traffic relief").
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/math.hpp"
#include "core/p2p_persistent.hpp"
#include "traffic/trip_table.hpp"
#include "traffic/workload.hpp"

int main() {
  using namespace ptm;

  const TripTable network = sioux_falls_like_network();
  const std::size_t hub = network.busiest_zone();
  std::printf("network: %zu zones, %llu total trips/day\n", network.zones(),
              static_cast<unsigned long long>(network.total_trips()));
  std::printf("hub intersection: zone %zu with %llu vehicles/day\n\n", hub,
              static_cast<unsigned long long>(network.zone_volume(hub)));

  const EncodingParams encoding;  // s = 3
  const double f = 2.0;
  constexpr std::size_t kDays = 5;
  Xoshiro256 rng(0x510FA115);

  // Which feeders contribute the most *persistent* traffic into the hub?
  struct PairResult {
    std::size_t zone;
    std::uint64_t actual;
    double estimated;
    double rel_err;
  };
  std::vector<PairResult> results;

  const std::uint64_t hub_volume = network.zone_volume(hub);
  for (std::size_t zone = 0; zone < network.zones(); ++zone) {
    if (zone == hub) continue;
    const std::uint64_t pair = network.pair_volume(hub, zone);
    // Treat a third of the OD pair flow as day-after-day persistent
    // commuters (the rest varies) - the quantity §I says feeds "priority
    // order for planning measures of traffic relief".
    const std::uint64_t persistent = pair / 3;
    if (persistent < 200) continue;  // too small to measure meaningfully

    const std::uint64_t zone_volume = network.zone_volume(zone);
    const auto commuters =
        make_vehicles(static_cast<std::size_t>(persistent), encoding.s, rng);
    const std::vector<std::uint64_t> volumes_zone(kDays, zone_volume);
    const std::vector<std::uint64_t> volumes_hub(kDays, hub_volume);
    const auto records =
        generate_p2p_records(volumes_zone, volumes_hub, commuters, zone,
                             1000 + hub, f, encoding, rng);

    PointToPointOptions options;
    options.s = encoding.s;
    const auto est = estimate_p2p_persistent(records.at_l,
                                             records.at_l_prime, options);
    if (!est) continue;
    results.push_back({zone, persistent, est->n_double_prime,
                       relative_error(est->n_double_prime,
                                      static_cast<double>(persistent))});
  }

  // Rank congestion sources by ESTIMATED persistent contribution - the
  // operational decision is made from measurements, not ground truth.
  std::sort(results.begin(), results.end(),
            [](const PairResult& a, const PairResult& b) {
              return a.estimated > b.estimated;
            });

  std::printf("persistent traffic into the hub over %zu days "
              "(s=%zu, f=%.0f):\n",
              kDays, encoding.s, f);
  std::printf("%-6s %-12s %-12s %-9s\n", "zone", "actual", "estimated",
              "rel err");
  int correct_rank_mass = 0;
  for (const auto& r : results) {
    std::printf("%-6zu %-12llu %-12.0f %-9.4f\n", r.zone,
                static_cast<unsigned long long>(r.actual), r.estimated,
                r.rel_err);
    ++correct_rank_mass;
  }

  // Does the measured ranking agree with the ground-truth ranking on the
  // top contributors (the decision that matters)?
  auto by_actual = results;
  std::sort(by_actual.begin(), by_actual.end(),
            [](const PairResult& a, const PairResult& b) {
              return a.actual > b.actual;
            });
  const std::size_t top = std::min<std::size_t>(3, results.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < top; ++i) {
    for (std::size_t j = 0; j < top; ++j) {
      if (results[i].zone == by_actual[j].zone) {
        ++agree;
        break;
      }
    }
  }
  std::printf("\ntop-%zu congestion sources by estimate vs ground truth: "
              "%zu/%zu agree\n",
              top, agree, top);
  std::printf("(all measured from anonymous bitmaps - no trajectories "
              "collected)\n");
  return 0;
}
