// record_pipeline - operating the measurement archive.
//
// The first four examples compute everything in memory; a real deployment
// stores months of records.  This example runs the archival path: RSUs
// produce records across a week, the server persists them to an append-only
// record log (crash-safe, CRC-protected), a "new process" reloads the
// archive cold, and the persistent queries run against the reloaded data.
// It finishes by demonstrating torn-tail recovery.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/p2p_persistent.hpp"
#include "core/point_persistent.hpp"
#include "store/record_log.hpp"
#include "traffic/workload.hpp"

int main() {
  using namespace ptm;

  const std::string archive = "/tmp/ptm_example_archive.log";
  std::remove(archive.c_str());

  const EncodingParams encoding;
  Xoshiro256 rng(20170605);

  // --- week 1: produce and archive records for two intersections --------
  constexpr std::uint64_t kMain = 10;
  constexpr std::uint64_t kHarbor = 20;
  constexpr std::size_t kCommuters = 650;
  constexpr std::size_t kDays = 7;

  const auto commuters = make_vehicles(kCommuters, encoding.s, rng);
  const auto volumes_main = draw_period_volumes(kDays, 4000, 9000, rng);
  const auto volumes_harbor = draw_period_volumes(kDays, 3000, 7000, rng);
  const auto records = generate_p2p_records(volumes_main, volumes_harbor,
                                            commuters, kMain, kHarbor, 2.0,
                                            encoding, rng);

  {
    auto writer = RecordLogWriter::open(archive);
    if (!writer) {
      std::printf("cannot open archive: %s\n",
                  writer.status().to_string().c_str());
      return 1;
    }
    for (std::size_t day = 0; day < kDays; ++day) {
      (void)writer->append({kMain, day, records.at_l[day]});
      (void)writer->append({kHarbor, day, records.at_l_prime[day]});
    }
    std::printf("archived %zu records (%zu days x 2 locations) to %s\n",
                2 * kDays, kDays, archive.c_str());
  }

  // --- cold start: reload the archive and answer queries ----------------
  auto contents = read_record_log(archive);
  if (!contents) {
    std::printf("reload failed: %s\n", contents.status().to_string().c_str());
    return 1;
  }
  std::printf("reloaded %zu records%s\n", contents->records.size(),
              contents->truncated_tail ? " (tail truncated!)" : "");

  std::map<std::uint64_t, std::vector<Bitmap>> by_location;
  for (const TrafficRecord& rec : contents->records) {
    by_location[rec.location].push_back(rec.bits);
  }

  const auto persistent = estimate_point_persistent(by_location[kMain]);
  std::printf("persistent at Main St over the week: ~%.0f (planted %zu)\n",
              persistent->n_star, kCommuters);

  PointToPointOptions options;
  options.s = encoding.s;
  const auto p2p = estimate_p2p_persistent(by_location[kMain],
                                           by_location[kHarbor], options);
  std::printf("p2p persistent Main<->Harbor:      ~%.0f (planted %zu)\n",
              p2p->n_double_prime, kCommuters);

  // --- failure injection: crash mid-append ------------------------------
  {
    std::ifstream in(archive, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.close();
    std::vector<char> bytes(size);
    std::ifstream(archive, std::ios::binary)
        .read(bytes.data(), static_cast<std::streamsize>(size));
    // Keep all but the last 9 bytes - a torn final record.
    std::ofstream(archive, std::ios::binary | std::ios::trunc)
        .write(bytes.data(), static_cast<std::streamsize>(size - 9));
  }
  auto after_crash = read_record_log(archive);
  std::printf("\nafter a simulated crash mid-append:\n"
              "  intact records: %zu of %zu, tail status: %s\n",
              after_crash->records.size(), 2 * kDays,
              after_crash->truncated_tail ? after_crash->tail_error.c_str()
                                          : "clean");
  std::printf("  (the archive keeps every record it can prove whole -\n"
              "   one lost period degrades a persistent query's t by one,\n"
              "   it does not corrupt the answer)\n");

  std::remove(archive.c_str());
  return 0;
}
