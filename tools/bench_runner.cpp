// bench_runner - the perf flight recorder.
//
//   bench_runner run [--out BENCH_<rev>.json] [--rev name] [--only substr]
//                    [--smoke] [--reps k]
//       Executes every registered perf bench (bench_perf_core.cpp and
//       bench_kernels.cpp are linked into this binary) and writes the
//       ptm-bench-v1 JSON document: ns/op, bytes/op, kernel-variant label,
//       host ISA fingerprint.
//
//   bench_runner compare <baseline.json> <candidate.json>
//                    [--threshold pct] [--strict]
//       Diffs two BENCH files and exits nonzero when any shared
//       measurement regressed by more than the threshold (default 10%).
//       When the two files' host fingerprints (ISA + kernel variant)
//       differ, the numbers are not comparable machine-to-machine, so the
//       gate downgrades to a warning unless --strict forces it.
//
//   bench_runner list
//       Prints the registered benches.
//
// CI runs `run --smoke` then `compare bench/baselines/BENCH_pr6.json` -
// the checked-in baseline - so a kernel or join regression fails the
// build on matching hardware and still leaves a paper trail elsewhere.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "simd/kernels.hpp"

namespace {

using ptm::bench::BenchContext;
using ptm::bench::BenchResult;

// ---------------------------------------------------------------------------
// Minimal JSON reader for the ptm-bench-v1 schema.  Not a general parser:
// it understands objects, arrays, strings, and numbers - exactly what
// write_json emits - and fails loudly on anything else.

struct JsonValue {
  enum class Kind { kNull, kString, kNumber, kBool, kArray, kObject } kind =
      Kind::kNull;
  std::string str;
  double num = 0.0;
  bool boolean = false;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  std::optional<JsonValue> parse() {
    auto v = value();
    skip_ws();
    if (!v || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    return number();
  }

  std::optional<JsonValue> boolean() {
    for (const char* word : {"true", "false"}) {
      const std::size_t len = std::strlen(word);
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = word[0] == 't';
        return v;
      }
    }
    return std::nullopt;
  }

  std::optional<JsonValue> object() {
    if (!consume('{')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      auto key = string_value();
      if (!key || !consume(':')) return std::nullopt;
      auto val = value();
      if (!val) return std::nullopt;
      v.fields.emplace(key->str, std::move(*val));
      if (consume(',')) continue;
      if (consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array() {
    if (!consume('[')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      auto item = value();
      if (!item) return std::nullopt;
      v.items.push_back(std::move(*item));
      if (consume(',')) continue;
      if (consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> string_value() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char e = text_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            const unsigned code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            v.str += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return std::nullopt;
        }
      } else {
        v.str += c;
      }
    }
    return std::nullopt;
  }

  std::optional<JsonValue> number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.num = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

struct Measurement {
  double ns_per_op = 0.0;
  bool noisy = false;  ///< warn-only in the gate (threads/locks/filesystem)
};

struct BenchFile {
  std::string rev;
  std::string host_isa;
  std::string kernel_variant;
  // key = "bench/name"
  std::map<std::string, Measurement> results;
};

std::optional<BenchFile> load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = JsonParser(buf.str()).parse();
  if (!parsed || parsed->kind != JsonValue::Kind::kObject) {
    std::cerr << path << ": not a JSON object\n";
    return std::nullopt;
  }
  const JsonValue* schema = parsed->find("schema");
  if (schema == nullptr || schema->str != "ptm-bench-v1") {
    std::cerr << path << ": not a ptm-bench-v1 document\n";
    return std::nullopt;
  }
  BenchFile out;
  if (const JsonValue* v = parsed->find("rev")) out.rev = v->str;
  if (const JsonValue* v = parsed->find("host_isa")) out.host_isa = v->str;
  if (const JsonValue* v = parsed->find("kernel_variant")) {
    out.kernel_variant = v->str;
  }
  const JsonValue* results = parsed->find("results");
  if (results == nullptr || results->kind != JsonValue::Kind::kArray) {
    std::cerr << path << ": missing results array\n";
    return std::nullopt;
  }
  for (const JsonValue& r : results->items) {
    const JsonValue* bench = r.find("bench");
    const JsonValue* name = r.find("name");
    const JsonValue* ns = r.find("ns_per_op");
    if (bench == nullptr || name == nullptr || ns == nullptr) continue;
    Measurement m;
    m.ns_per_op = ns->num;
    // Pre-noisy-field documents parse with noisy = false (hard-gated).
    if (const JsonValue* noisy = r.find("noisy")) m.noisy = noisy->boolean;
    out.results[bench->str + "/" + name->str] = m;
  }
  return out;
}

int run_compare(const std::string& baseline_path,
                const std::string& candidate_path, double threshold_pct,
                bool strict) {
  const auto baseline = load_bench_file(baseline_path);
  const auto candidate = load_bench_file(candidate_path);
  if (!baseline || !candidate) return 2;

  const bool same_host = baseline->host_isa == candidate->host_isa &&
                         baseline->kernel_variant == candidate->kernel_variant;
  const bool gate = same_host || strict;
  if (!same_host) {
    std::cout << "note: host fingerprints differ (baseline \""
              << baseline->host_isa << "\" / " << baseline->kernel_variant
              << ", candidate \"" << candidate->host_isa << "\" / "
              << candidate->kernel_variant << ") - "
              << (strict ? "gating anyway (--strict)"
                         : "regressions reported as warnings only")
              << "\n";
  }

  std::size_t compared = 0;
  std::size_t regressed = 0;
  std::size_t noisy_regressed = 0;
  for (const auto& [key, base] : baseline->results) {
    const auto it = candidate->results.find(key);
    if (it == candidate->results.end()) {
      std::cout << "  missing in candidate: " << key << "\n";
      continue;
    }
    ++compared;
    if (base.ns_per_op <= 0.0) continue;
    const double cand_ns = it->second.ns_per_op;
    const double delta_pct = (cand_ns - base.ns_per_op) / base.ns_per_op * 100.0;
    const bool over = delta_pct > threshold_pct;
    // A measurement is warn-only when either side marks it noisy
    // (threads, locks, filesystem: variance exceeds the gate).
    const bool noisy = base.noisy || it->second.noisy;
    if (over && noisy) ++noisy_regressed;
    if (over && !noisy) ++regressed;
    if (std::fabs(delta_pct) > threshold_pct) {
      std::printf("  %-48s %12.1f -> %12.1f ns/op  %+7.1f%%%s\n", key.c_str(),
                  base.ns_per_op, cand_ns, delta_pct,
                  !over           ? "  (improved)"
                  : noisy         ? "  regression (noisy, warn-only)"
                                  : "  REGRESSION");
    }
  }
  std::cout << compared << " measurements compared, " << regressed
            << " gated regressions, " << noisy_regressed
            << " noisy regressions (warn-only) beyond " << threshold_pct
            << "%\n";
  if (regressed > 0 && gate) {
    std::cout << "FAIL: performance regression gate\n";
    return 1;
  }
  if (regressed > 0) {
    std::cout << "WARN: regressions ignored (host mismatch, no --strict)\n";
  }
  std::cout << "OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: bench_runner run|compare|list [options]\n"
              << "  run      [--out path] [--rev name] [--only substr]"
              << " [--smoke] [--reps k]\n"
              << "  compare  <baseline.json> <candidate.json>"
              << " [--threshold pct] [--strict]\n";
    return 2;
  }
  const std::string command = argv[1];

  if (command == "list") {
    const char* list_argv[] = {argv[0], "--list"};
    return ptm::bench::bench_main(2, const_cast<char**>(list_argv));
  }

  if (command == "run") {
    std::string out_path;
    std::vector<const char*> forwarded = {argv[0]};
    std::string rev = "local";
    bool suite_reps_given = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--rev" && i + 1 < argc) {
        rev = argv[++i];
        forwarded.push_back("--rev");
        forwarded.push_back(argv[i]);
      } else {
        if (arg == "--suite-reps") suite_reps_given = true;
        forwarded.push_back(argv[i]);
      }
    }
    if (out_path.empty()) out_path = "BENCH_" + rev + ".json";
    if (!suite_reps_given) {
      // Whole-suite min-of-5 by default: spaced passes ride out the
      // throttling epochs of shared hardware, so recorded numbers are
      // peak-state and comparable across runs (docs/benchmarks.md).
      forwarded.push_back("--suite-reps");
      forwarded.push_back("5");
    }
    forwarded.push_back("--json");
    forwarded.push_back(out_path.c_str());
    std::cout << "host: " << ptm::simd::host_isa()
              << "   dispatched kernel variant: " << ptm::simd::active().name
              << "\n\n";
    return ptm::bench::bench_main(static_cast<int>(forwarded.size()),
                                  const_cast<char**>(forwarded.data()));
  }

  if (command == "compare") {
    std::vector<std::string> paths;
    double threshold = 10.0;
    bool strict = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threshold" && i + 1 < argc) {
        threshold = std::strtod(argv[++i], nullptr);
      } else if (arg == "--strict") {
        strict = true;
      } else {
        paths.push_back(arg);
      }
    }
    if (paths.size() != 2) {
      std::cerr << "compare needs exactly two BENCH json files\n";
      return 2;
    }
    return run_compare(paths[0], paths[1], threshold, strict);
  }

  std::cerr << "unknown command: " << command << "\n";
  return 2;
}
