// loadgen - replays a trip-table workload against a live ptmd and emits a
// ptm-bench-v1 JSON document (throughput, delivery-latency percentiles,
// shed rate).  See src/transport/loadgen.hpp; docs/transport.md has the
// backpressure methodology.
//
//   loadgen --server unix:/tmp/ptmd.sock [--connections N] [--locations N]
//           [--periods N] [--time_cap_ms N] [--seed N] [--json FILE]
//           [--rev STRING] [--smoke] [--key FILE --cert FILE]
//           [--cluster SPEC]
//
// --smoke shrinks the workload to a seconds-long CI gate and fails (exit
// 1) unless every record was delivered.  --key / --cert (both or neither)
// load PTM-KEY-V1 / PTM-CERT-V1 credentials shared by every worker so the
// replay can target a ptmd running --require-auth.  --cluster replaces
// --server with a cluster membership spec (docs/cluster.md): each worker
// routes records through a ClusterCoordinator - owner-first with replica
// failover - instead of one raw connection.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cluster/loadgen.hpp"
#include "crypto/keyfile.hpp"
#include "transport/loadgen.hpp"

namespace {

std::uint64_t arg_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "loadgen: bad value for " << flag << ": " << text << "\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  ptm::transport::LoadgenOptions options;
  std::string server = "unix:/tmp/ptmd.sock";
  std::string json_path;
  std::string rev = "local";
  std::string key_path;
  std::string cert_path;
  std::string cluster_spec;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "loadgen: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--server") {
      server = next();
    } else if (arg == "--cluster") {
      cluster_spec = next();
    } else if (arg == "--connections") {
      options.connections =
          static_cast<std::size_t>(arg_u64(next(), "--connections"));
    } else if (arg == "--locations") {
      options.locations =
          static_cast<std::size_t>(arg_u64(next(), "--locations"));
    } else if (arg == "--periods") {
      options.periods = static_cast<std::size_t>(arg_u64(next(), "--periods"));
    } else if (arg == "--time_cap_ms") {
      options.time_cap_ms = arg_u64(next(), "--time_cap_ms");
    } else if (arg == "--seed") {
      options.seed = arg_u64(next(), "--seed");
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--rev") {
      rev = next();
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--key") {
      key_path = next();
    } else if (arg == "--cert") {
      cert_path = next();
    } else if (arg == "--help") {
      std::cout << "usage: loadgen --server ENDPOINT [--connections N]\n"
                   "               [--locations N] [--periods N]\n"
                   "               [--time_cap_ms N] [--seed N]\n"
                   "               [--json FILE] [--rev STR] [--smoke]\n"
                   "               [--key FILE --cert FILE]\n"
                   "               [--cluster SPEC]\n";
      return 0;
    } else {
      std::cerr << "loadgen: unknown flag " << arg << " (try --help)\n";
      return 2;
    }
  }
  if (smoke) {
    options.connections = 2;
    options.locations = 4;
    options.periods = 4;
    options.time_cap_ms = 20000;
  }
  if (key_path.empty() != cert_path.empty()) {
    std::cerr << "loadgen: --key and --cert must be given together\n";
    return 2;
  }
  if (!key_path.empty()) {
    auto keys = ptm::load_keypair_file(key_path);
    if (!keys) {
      std::cerr << "loadgen: --key: " << keys.status().to_string() << "\n";
      return 2;
    }
    auto cert = ptm::load_certificate_file(cert_path);
    if (!cert) {
      std::cerr << "loadgen: --cert: " << cert.status().to_string() << "\n";
      return 2;
    }
    options.credentials =
        ptm::transport::AuthCredentials{std::move(*keys), std::move(*cert)};
  }
  ptm::Result<ptm::transport::LoadgenReport> report =
      ptm::transport::LoadgenReport{};
  if (!cluster_spec.empty()) {
    auto config = ptm::cluster::parse_cluster_spec(cluster_spec);
    if (!config) {
      std::cerr << "loadgen: --cluster: " << config.status().to_string()
                << "\n";
      return 2;
    }
    ptm::cluster::ClusterCoordinatorOptions coordinator;
    coordinator.config = std::move(*config);
    coordinator.credentials = options.credentials;
    report = ptm::cluster::run_cluster_loadgen(coordinator, options);
  } else {
    auto endpoint = ptm::transport::parse_endpoint(server);
    if (!endpoint) {
      std::cerr << "loadgen: " << endpoint.status().to_string() << "\n";
      return 2;
    }
    ptm::transport::LoadGenerator generator(*endpoint, options);
    report = generator.run();
  }
  if (!report) {
    std::cerr << "loadgen: " << report.status().to_string() << "\n";
    return 1;
  }
  const std::string doc = report->to_bench_json(rev);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << doc;
  } else {
    std::cout << doc;
  }
  std::cerr << "loadgen: " << report->acked << "/" << report->records_total
            << " acked, shed_rate=" << report->shed_rate()
            << ", throughput=" << report->throughput_rps() << " rec/s\n";
  if (smoke && report->acked != report->records_total) {
    std::cerr << "loadgen: SMOKE FAIL - "
              << (report->records_total - report->acked)
              << " records undelivered\n";
    return 1;
  }
  return 0;
}
