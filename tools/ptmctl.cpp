// ptmctl - command-line front end for the ptm library (see src/cli/cli.hpp
// for the command set; all logic lives there so it is unit-tested).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const ptm::Status status = ptm::run_cli(args, std::cout);
  if (!status.is_ok()) {
    std::cerr << "ptmctl: " << status.to_string() << "\n";
    return 1;
  }
  return 0;
}
