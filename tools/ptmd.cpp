// ptmd - the persistent-traffic-measurement ingest daemon.
//
// Listens on a unix or TCP endpoint, ingests RecordUpload frames from RSU
// uplinks into a QueryService, and (with --archive) writes every accepted
// record ahead to a RecordArchive so a kill -9 at any instant loses
// nothing that was acked.  See src/transport/server.hpp for the
// backpressure and durability contracts, docs/transport.md for the
// protocol.
//
//   ptmd --listen unix:/tmp/ptmd.sock --archive /var/lib/ptm/records.log
//        [--max_inflight N] [--ingest_threads N] [--shards N]
//        [--pending_per_conn N] [--ingest_stall_us N] [--idle_timeout_ms N]
//        [--ca-cert FILE] [--require-auth] [--auth-period N]
//        [--auth-timeout-ms N]
//
// --ca-cert loads a PTM-PUB-V1 CA public key; with --require-auth every
// connection must complete the §II-B challenge-response handshake before
// its first v2i frame (see docs/transport.md).  --auth-period is the
// measurement period certificates must cover.
//
// The daemon prints "ready <endpoint>" on stdout once accepting (chaos
// harnesses wait for that line), then runs until SIGINT/SIGTERM.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <semaphore>
#include <string>
#include <vector>

#include "crypto/keyfile.hpp"
#include "transport/server.hpp"

namespace {

std::binary_semaphore g_shutdown{0};

void on_signal(int) { g_shutdown.release(); }

std::uint64_t arg_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "ptmd: bad value for " << flag << ": " << text << "\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  ptm::transport::PtmdOptions options;
  std::string listen = "unix:/tmp/ptmd.sock";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ptmd: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      listen = next();
    } else if (arg == "--archive") {
      options.archive_path = next();
    } else if (arg == "--max_inflight") {
      options.ingest_admission.max_in_flight =
          static_cast<std::size_t>(arg_u64(next(), "--max_inflight"));
    } else if (arg == "--ingest_threads") {
      options.ingest_threads =
          static_cast<std::size_t>(arg_u64(next(), "--ingest_threads"));
    } else if (arg == "--shards") {
      options.service.n_shards =
          static_cast<std::size_t>(arg_u64(next(), "--shards"));
    } else if (arg == "--pending_per_conn") {
      options.max_pending_per_conn =
          static_cast<std::size_t>(arg_u64(next(), "--pending_per_conn"));
    } else if (arg == "--ingest_stall_us") {
      options.ingest_stall_us = arg_u64(next(), "--ingest_stall_us");
    } else if (arg == "--idle_timeout_ms") {
      options.idle_timeout_ms = arg_u64(next(), "--idle_timeout_ms");
    } else if (arg == "--ca-cert") {
      auto key = ptm::load_public_key_file(next());
      if (!key) {
        std::cerr << "ptmd: --ca-cert: " << key.status().to_string() << "\n";
        return 2;
      }
      options.auth_ca_key = *key;
    } else if (arg == "--require-auth") {
      options.require_auth = true;
    } else if (arg == "--auth-period") {
      options.auth_period = arg_u64(next(), "--auth-period");
    } else if (arg == "--auth-timeout-ms") {
      options.auth_timeout_ms = arg_u64(next(), "--auth-timeout-ms");
    } else if (arg == "--help") {
      std::cout << "usage: ptmd --listen ENDPOINT [--archive FILE]\n"
                   "            [--max_inflight N] [--ingest_threads N]\n"
                   "            [--shards N] [--pending_per_conn N]\n"
                   "            [--ingest_stall_us N] [--idle_timeout_ms N]\n"
                   "            [--ca-cert FILE] [--require-auth]\n"
                   "            [--auth-period N] [--auth-timeout-ms N]\n";
      return 0;
    } else {
      std::cerr << "ptmd: unknown flag " << arg << " (try --help)\n";
      return 2;
    }
  }
  auto endpoint = ptm::transport::parse_endpoint(listen);
  if (!endpoint) {
    std::cerr << "ptmd: " << endpoint.status().to_string() << "\n";
    return 2;
  }
  options.endpoint = *endpoint;

  ptm::transport::PtmdServer server(std::move(options));
  if (ptm::Status s = server.start(); !s.is_ok()) {
    std::cerr << "ptmd: " << s.to_string() << "\n";
    return 1;
  }
  if (server.restored_records() > 0) {
    std::cout << "restored " << server.restored_records()
              << " records from archive\n";
  }
  std::cout << "ready " << server.options().endpoint.to_string() << std::endl;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  g_shutdown.acquire();
  server.stop();
  return 0;
}
