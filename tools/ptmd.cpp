// ptmd - the persistent-traffic-measurement ingest daemon.
//
// Listens on a unix or TCP endpoint, ingests RecordUpload frames from RSU
// uplinks into a QueryService, and (with --archive) writes every accepted
// record ahead to a RecordArchive so a kill -9 at any instant loses
// nothing that was acked.  See src/transport/server.hpp for the
// backpressure and durability contracts, docs/transport.md for the
// protocol.
//
//   ptmd --listen unix:/tmp/ptmd.sock --archive /var/lib/ptm/records.log
//        [--repl-listen ENDPOINT]
//        [--max_inflight N] [--ingest_threads N] [--shards N]
//        [--pending_per_conn N] [--ingest_stall_us N] [--idle_timeout_ms N]
//        [--ca-cert FILE] [--require-auth] [--auth-period N]
//        [--auth-timeout-ms N]
//        [--cluster SPEC --node-id N [--key FILE --cert FILE]]
//
// --ca-cert loads a PTM-PUB-V1 CA public key; with --require-auth every
// connection must complete the §II-B challenge-response handshake before
// its first v2i frame (see docs/transport.md).  --auth-period is the
// measurement period certificates must cover.
//
// --cluster turns the daemon into one member of a location-sharded
// cluster (docs/cluster.md): SPEC is the shared membership string
// (`id@client_ep[@repl_ep];...`), --node-id picks which entry is this
// process (its endpoints override --listen / --repl-listen), and
// --key/--cert supply the credentials its *outbound* replication
// subscriptions authenticate with when peers run --require-auth.
//
// The daemon prints "ready <endpoint>" on stdout once accepting (chaos
// harnesses wait for that line), then runs until SIGINT/SIGTERM.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <semaphore>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "crypto/keyfile.hpp"
#include "transport/server.hpp"

namespace {

std::binary_semaphore g_shutdown{0};

void on_signal(int) { g_shutdown.release(); }

std::uint64_t arg_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "ptmd: bad value for " << flag << ": " << text << "\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  ptm::transport::PtmdOptions options;
  std::string listen = "unix:/tmp/ptmd.sock";
  std::string repl_listen;
  std::string cluster_spec;
  std::uint64_t node_id = 0;
  std::string key_path;
  std::string cert_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ptmd: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      listen = next();
    } else if (arg == "--repl-listen") {
      repl_listen = next();
    } else if (arg == "--cluster") {
      cluster_spec = next();
    } else if (arg == "--node-id") {
      node_id = arg_u64(next(), "--node-id");
    } else if (arg == "--key") {
      key_path = next();
    } else if (arg == "--cert") {
      cert_path = next();
    } else if (arg == "--archive") {
      options.archive_path = next();
    } else if (arg == "--max_inflight") {
      options.ingest_admission.max_in_flight =
          static_cast<std::size_t>(arg_u64(next(), "--max_inflight"));
    } else if (arg == "--ingest_threads") {
      options.ingest_threads =
          static_cast<std::size_t>(arg_u64(next(), "--ingest_threads"));
    } else if (arg == "--shards") {
      options.service.n_shards =
          static_cast<std::size_t>(arg_u64(next(), "--shards"));
    } else if (arg == "--pending_per_conn") {
      options.max_pending_per_conn =
          static_cast<std::size_t>(arg_u64(next(), "--pending_per_conn"));
    } else if (arg == "--ingest_stall_us") {
      options.ingest_stall_us = arg_u64(next(), "--ingest_stall_us");
    } else if (arg == "--idle_timeout_ms") {
      options.idle_timeout_ms = arg_u64(next(), "--idle_timeout_ms");
    } else if (arg == "--ca-cert") {
      auto key = ptm::load_public_key_file(next());
      if (!key) {
        std::cerr << "ptmd: --ca-cert: " << key.status().to_string() << "\n";
        return 2;
      }
      options.auth_ca_key = *key;
    } else if (arg == "--require-auth") {
      options.require_auth = true;
    } else if (arg == "--auth-period") {
      options.auth_period = arg_u64(next(), "--auth-period");
    } else if (arg == "--auth-timeout-ms") {
      options.auth_timeout_ms = arg_u64(next(), "--auth-timeout-ms");
    } else if (arg == "--help") {
      std::cout << "usage: ptmd --listen ENDPOINT [--archive FILE]\n"
                   "            [--repl-listen ENDPOINT]\n"
                   "            [--max_inflight N] [--ingest_threads N]\n"
                   "            [--shards N] [--pending_per_conn N]\n"
                   "            [--ingest_stall_us N] [--idle_timeout_ms N]\n"
                   "            [--ca-cert FILE] [--require-auth]\n"
                   "            [--auth-period N] [--auth-timeout-ms N]\n"
                   "            [--cluster SPEC --node-id N\n"
                   "             [--key FILE --cert FILE]]\n";
      return 0;
    } else {
      std::cerr << "ptmd: unknown flag " << arg << " (try --help)\n";
      return 2;
    }
  }
  auto endpoint = ptm::transport::parse_endpoint(listen);
  if (!endpoint) {
    std::cerr << "ptmd: " << endpoint.status().to_string() << "\n";
    return 2;
  }
  options.endpoint = *endpoint;
  if (!repl_listen.empty()) {
    auto repl = ptm::transport::parse_endpoint(repl_listen);
    if (!repl) {
      std::cerr << "ptmd: --repl-listen: " << repl.status().to_string()
                << "\n";
      return 2;
    }
    options.repl_endpoint = *repl;
  }
  if (key_path.empty() != cert_path.empty()) {
    std::cerr << "ptmd: --key and --cert must be given together\n";
    return 2;
  }
  std::optional<ptm::transport::AuthCredentials> credentials;
  if (!key_path.empty()) {
    auto keys = ptm::load_keypair_file(key_path);
    if (!keys) {
      std::cerr << "ptmd: --key: " << keys.status().to_string() << "\n";
      return 2;
    }
    auto cert = ptm::load_certificate_file(cert_path);
    if (!cert) {
      std::cerr << "ptmd: --cert: " << cert.status().to_string() << "\n";
      return 2;
    }
    credentials =
        ptm::transport::AuthCredentials{std::move(*keys), std::move(*cert)};
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  if (!cluster_spec.empty()) {
    if (node_id == 0) {
      std::cerr << "ptmd: --cluster needs --node-id\n";
      return 2;
    }
    auto config = ptm::cluster::parse_cluster_spec(cluster_spec);
    if (!config) {
      std::cerr << "ptmd: --cluster: " << config.status().to_string() << "\n";
      return 2;
    }
    ptm::cluster::ClusterNodeOptions node_options;
    node_options.config = std::move(*config);
    node_options.node_id = node_id;
    node_options.server = std::move(options);
    node_options.credentials = std::move(credentials);
    auto node = ptm::cluster::ClusterNode::create(std::move(node_options));
    if (!node) {
      std::cerr << "ptmd: " << node.status().to_string() << "\n";
      return 2;
    }
    if (ptm::Status s = (*node)->start(); !s.is_ok()) {
      std::cerr << "ptmd: " << s.to_string() << "\n";
      return 1;
    }
    auto& server = (*node)->server();
    if (server.restored_records() > 0) {
      std::cout << "restored " << server.restored_records()
                << " records from archive\n";
    }
    std::cout << "ready " << server.options().endpoint.to_string()
              << std::endl;
    g_shutdown.acquire();
    (*node)->stop();
    return 0;
  }

  ptm::transport::PtmdServer server(std::move(options));
  if (ptm::Status s = server.start(); !s.is_ok()) {
    std::cerr << "ptmd: " << s.to_string() << "\n";
    return 1;
  }
  if (server.restored_records() > 0) {
    std::cout << "restored " << server.restored_records()
              << " records from archive\n";
  }
  std::cout << "ready " << server.options().endpoint.to_string() << std::endl;

  g_shutdown.acquire();
  server.stop();
  return 0;
}
