// rsu-emu - one emulated RSU process: runs the real Rsu node (journal +
// outbox durability included) and uploads its per-period records to a
// ptmd over a real socket through the supervised-connection stack.  See
// src/transport/emulator.hpp.
//
//   rsu-emu --server unix:/tmp/ptmd.sock --location 7
//           [--periods N] [--encodes N] [--journal FILE --outbox FILE]
//           [--drain_timeout_ms N] [--seed N] [--key FILE --cert FILE]
//
// --key / --cert (both or neither) load a PTM-KEY-V1 keypair and the
// matching PTM-CERT-V1 issued certificate; the emulator then runs the
// §II-B handshake against a ptmd started with --require-auth.
//
// Exit code 0 means every staged record was acked (outbox drained); 3
// means records remain pending (rerun with the same journal/outbox to
// resume - nothing is lost).
#include <cstdlib>
#include <iostream>
#include <string>

#include "crypto/keyfile.hpp"
#include "transport/emulator.hpp"

namespace {

std::uint64_t arg_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "rsu-emu: bad value for " << flag << ": " << text << "\n";
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  ptm::transport::EmulatorOptions options;
  std::string server = "unix:/tmp/ptmd.sock";
  std::string key_path;
  std::string cert_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "rsu-emu: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--server") {
      server = next();
    } else if (arg == "--location") {
      options.location = arg_u64(next(), "--location");
    } else if (arg == "--periods") {
      options.periods = static_cast<std::size_t>(arg_u64(next(), "--periods"));
    } else if (arg == "--encodes") {
      options.encodes_per_period = arg_u64(next(), "--encodes");
    } else if (arg == "--journal") {
      options.journal_path = next();
    } else if (arg == "--outbox") {
      options.outbox_path = next();
    } else if (arg == "--drain_timeout_ms") {
      options.drain_timeout_ms = arg_u64(next(), "--drain_timeout_ms");
    } else if (arg == "--seed") {
      options.seed = arg_u64(next(), "--seed");
    } else if (arg == "--key") {
      key_path = next();
    } else if (arg == "--cert") {
      cert_path = next();
    } else if (arg == "--help") {
      std::cout << "usage: rsu-emu --server ENDPOINT --location L\n"
                   "               [--periods N] [--encodes N]\n"
                   "               [--journal FILE --outbox FILE]\n"
                   "               [--drain_timeout_ms N] [--seed N]\n"
                   "               [--key FILE --cert FILE]\n";
      return 0;
    } else {
      std::cerr << "rsu-emu: unknown flag " << arg << " (try --help)\n";
      return 2;
    }
  }
  if (key_path.empty() != cert_path.empty()) {
    std::cerr << "rsu-emu: --key and --cert must be given together\n";
    return 2;
  }
  if (!key_path.empty()) {
    auto keys = ptm::load_keypair_file(key_path);
    if (!keys) {
      std::cerr << "rsu-emu: --key: " << keys.status().to_string() << "\n";
      return 2;
    }
    auto cert = ptm::load_certificate_file(cert_path);
    if (!cert) {
      std::cerr << "rsu-emu: --cert: " << cert.status().to_string() << "\n";
      return 2;
    }
    options.credentials =
        ptm::transport::AuthCredentials{std::move(*keys), std::move(*cert)};
  }
  auto endpoint = ptm::transport::parse_endpoint(server);
  if (!endpoint) {
    std::cerr << "rsu-emu: " << endpoint.status().to_string() << "\n";
    return 2;
  }
  ptm::transport::RsuEmulator emulator(*endpoint, options);
  auto report = emulator.run();
  if (!report) {
    std::cerr << "rsu-emu: " << report.status().to_string() << "\n";
    return 1;
  }
  std::cout << "location " << options.location << ": periods="
            << report->periods_closed << " acked=" << report->uploads_acked
            << " shed=" << report->nacks_retryable
            << " fatal=" << report->nacks_fatal
            << " channel_errors=" << report->channel_errors
            << " reconnects=" << report->reconnects
            << " pending=" << report->outbox_pending_at_exit << "\n";
  return report->outbox_pending_at_exit == 0 ? 0 : 3;
}
