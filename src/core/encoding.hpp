// encoding.hpp - privacy-preserving vehicle encoding (paper §II-D).
//
// When vehicle v passes the RSU at location L during a measurement period,
// it computes
//
//     h_v = H( v ⊕ K_v ⊕ C[ H(L ⊕ v) mod s ] ) mod m
//
// and transmits only h_v; the RSU sets bit h_v in its m-bit traffic record.
// The ingredients:
//   * v    - the vehicle's unique 64-bit ID (never transmitted),
//   * K_v  - a private key known only to the vehicle,
//   * C    - an array of s random constants, private to the vehicle,
//   * H    - a public uniform hash (any family from hash_suite),
//   * L    - the RSU's location code (carried in its beacon),
//   * m    - the RSU's bitmap size (carried in its beacon).
//
// The s values H(v ⊕ K_v ⊕ C[i]) are the vehicle's *representative hashes*;
// which one is used at a given location is chosen by H(L ⊕ v) mod s, so the
// same vehicle sets (possibly) different bits at different locations while
// always setting the SAME bit at the same location across periods - the
// property both persistent estimators rest on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitmap.hpp"
#include "common/random.hpp"
#include "hash/hash_suite.hpp"

namespace ptm {

/// Secret material held by one vehicle.  Only `h_v` values derived from it
/// ever leave the vehicle.
struct VehicleSecrets {
  std::uint64_t id = 0;           ///< v - the unique vehicle ID
  std::uint64_t private_key = 0;  ///< K_v
  std::vector<std::uint64_t> constants;  ///< C, one entry per representative

  /// Mints secrets for a vehicle: fresh K_v and s random constants.
  static VehicleSecrets create(std::uint64_t id, std::size_t s,
                               Xoshiro256& rng);
};

/// System-wide encoding parameters shared by all RSUs and vehicles.
/// `s` trades privacy for point-to-point accuracy (§II-D, Table II);
/// the paper's recommended operating point is s = 3.
struct EncodingParams {
  std::size_t s = 3;                              ///< representative count
  HashFamily hash = HashFamily::kMurmur3;         ///< instantiation of H
  std::uint64_t hash_seed = 0x5053544dULL;        ///< fixed public seed
};

/// Stateless encoder implementing the hash pipeline above.
class VehicleEncoder {
 public:
  explicit VehicleEncoder(EncodingParams params) : params_(params) {}

  [[nodiscard]] const EncodingParams& params() const noexcept {
    return params_;
  }

  /// H(L ⊕ v) mod s - which representative the vehicle uses at location L.
  [[nodiscard]] std::size_t representative_choice(
      const VehicleSecrets& vehicle, std::uint64_t location) const noexcept;

  /// H(v ⊕ K_v ⊕ C[i]) - the i-th representative hash (location-free).
  /// Precondition: i < s and vehicle.constants.size() == s.
  [[nodiscard]] std::uint64_t representative_hash(
      const VehicleSecrets& vehicle, std::size_t i) const noexcept;

  /// h_v for bitmap size m: the value the vehicle would transmit at
  /// location L to an RSU with an m-bit record.  Precondition: m >= 1.
  [[nodiscard]] std::uint64_t bit_index(const VehicleSecrets& vehicle,
                                        std::uint64_t location,
                                        std::size_t m) const noexcept;

  /// Full-width h_v before the `mod m` (used by the join property proofs:
  /// the bit a vehicle sets in any power-of-two-sized bitmap at L is this
  /// value reduced mod that size).
  [[nodiscard]] std::uint64_t raw_hash(const VehicleSecrets& vehicle,
                                       std::uint64_t location) const noexcept;

  /// Convenience: encodes the vehicle into a traffic-record bitmap at L
  /// (sets the single bit h_v).
  void encode(const VehicleSecrets& vehicle, std::uint64_t location,
              Bitmap& record) const noexcept;

 private:
  EncodingParams params_;
};

}  // namespace ptm
