#include "core/point_persistent.hpp"

#include <cmath>

#include "common/math.hpp"
#include "core/expansion.hpp"

namespace ptm {

Result<PointPersistentEstimate> estimate_point_persistent(
    std::span<const Bitmap> records) {
  if (records.size() < 2) {
    return Status{ErrorCode::kInvalidArgument,
                  "point persistent estimation needs at least 2 records"};
  }
  for (const Bitmap& b : records) {
    if (b.empty() || !is_power_of_two(b.size())) {
      return Status{ErrorCode::kInvalidArgument,
                    "record sizes must be non-zero powers of two"};
    }
  }

  const std::size_t m = max_size(records);
  const std::size_t half = (records.size() + 1) / 2;  // ⌈t/2⌉

  auto e_a = and_join_expanded(records.subspan(0, half));
  if (!e_a) return e_a.status();
  auto e_a_expanded = expand_to(*e_a, m);
  if (!e_a_expanded) return e_a_expanded.status();
  auto e_b = and_join_expanded(records.subspan(half));
  if (!e_b) return e_b.status();
  auto e_b_expanded = expand_to(*e_b, m);
  if (!e_b_expanded) return e_b_expanded.status();

  auto e_star = bitmap_and(*e_a_expanded, *e_b_expanded);
  if (!e_star) return e_star.status();

  PointPersistentEstimate est;
  est.m = m;
  const double md = static_cast<double>(m);
  const double one_zero = 1.0 / md;  // clamp floor: "one zero bit"

  est.v_a0 = e_a_expanded->fraction_zeros();
  est.v_b0 = e_b_expanded->fraction_zeros();
  est.v_star1 = e_star->fraction_ones();
  if (est.v_a0 == 0.0 || est.v_b0 == 0.0) {
    est.outcome = EstimateOutcome::kSaturated;
  }
  const double v_a0 = std::max(est.v_a0, one_zero);
  const double v_b0 = std::max(est.v_b0, one_zero);

  const double log_ratio = log_one_minus_inv(md);
  est.n_a = std::log(v_a0) / log_ratio;  // Eq. 3
  est.n_b = std::log(v_b0) / log_ratio;

  // Eq. 12.  The log argument V_*1 + V_a0 + V_b0 − 1 equals, in expectation,
  // V_a0 · V_b0 · (1 − 1/m)^{−n_*}; a non-positive measured value means the
  // join shows fewer ones than independent halves would produce, which no
  // n_* >= 0 explains - report degenerate and clamp at 0.
  const double arg = est.v_star1 + v_a0 + v_b0 - 1.0;
  if (arg <= 0.0) {
    if (est.outcome == EstimateOutcome::kOk) {
      est.outcome = EstimateOutcome::kDegenerate;
    }
    est.n_star = 0.0;
    return est;
  }
  double n_star =
      (std::log(v_a0) + std::log(v_b0) - std::log(arg)) / log_ratio;
  // Sampling noise can push the raw formula slightly below zero even when
  // the argument is positive; persistent volume is non-negative.
  if (n_star < 0.0) n_star = 0.0;
  est.n_star = n_star;
  return est;
}

Result<CardinalityEstimate> estimate_point_persistent_naive(
    std::span<const Bitmap> records) {
  if (records.empty()) {
    return Status{ErrorCode::kInvalidArgument, "no records"};
  }
  auto e_star = and_join_expanded(records);
  if (!e_star) return e_star.status();
  return estimate_cardinality(*e_star);
}

}  // namespace ptm
