#include "core/point_persistent.hpp"

#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "core/expansion.hpp"

namespace ptm {
namespace {

Status validate_records(std::span<const Bitmap* const> records) {
  if (records.size() < 2) {
    return {ErrorCode::kInvalidArgument,
            "point persistent estimation needs at least 2 records"};
  }
  for (const Bitmap* b : records) {
    if (b->empty() || !is_power_of_two(b->size())) {
      return {ErrorCode::kInvalidArgument,
              "record sizes must be non-zero powers of two"};
    }
  }
  return Status::ok();
}

/// Eq. 3 + Eq. 12 arithmetic on a measured triple.  Shared by the fused
/// and materialized paths so the differential test compares only the join
/// kernels, with the floating-point tail identical by construction.
PointPersistentEstimate eq12_from_stats(const SplitJoinStats& stats) {
  PointPersistentEstimate est;
  est.m = stats.m;
  const double md = static_cast<double>(stats.m);
  const double one_zero = 1.0 / md;  // clamp floor: "one zero bit"

  est.v_a0 = stats.v_a0;
  est.v_b0 = stats.v_b0;
  est.v_star1 = stats.v_star1;
  if (est.v_a0 == 0.0 || est.v_b0 == 0.0) {
    est.outcome = EstimateOutcome::kSaturated;
  }
  const double v_a0 = std::max(est.v_a0, one_zero);
  const double v_b0 = std::max(est.v_b0, one_zero);

  const double log_ratio = log_one_minus_inv(md);
  est.n_a = std::log(v_a0) / log_ratio;  // Eq. 3
  est.n_b = std::log(v_b0) / log_ratio;

  // Eq. 12.  The log argument V_*1 + V_a0 + V_b0 − 1 equals, in expectation,
  // V_a0 · V_b0 · (1 − 1/m)^{−n_*}; a non-positive measured value means the
  // join shows fewer ones than independent halves would produce, which no
  // n_* >= 0 explains - report degenerate and clamp at 0.
  const double arg = est.v_star1 + v_a0 + v_b0 - 1.0;
  if (arg <= 0.0) {
    if (est.outcome == EstimateOutcome::kOk) {
      est.outcome = EstimateOutcome::kDegenerate;
    }
    est.n_star = 0.0;
    return est;
  }
  double n_star =
      (std::log(v_a0) + std::log(v_b0) - std::log(arg)) / log_ratio;
  // Sampling noise can push the raw formula slightly below zero even when
  // the argument is positive; persistent volume is non-negative.
  if (n_star < 0.0) n_star = 0.0;
  est.n_star = n_star;
  return est;
}

}  // namespace

Result<PointPersistentEstimate> estimate_point_persistent(
    std::span<const Bitmap* const> records) {
  if (Status s = validate_records(records); !s.is_ok()) return s;
  auto stats = and_split_join_stats(records);
  if (!stats) return stats.status();
  return eq12_from_stats(*stats);
}

Result<PointPersistentEstimate> estimate_point_persistent(
    std::span<const Bitmap> records) {
  std::vector<const Bitmap*> ptrs;
  ptrs.reserve(records.size());
  for (const Bitmap& b : records) ptrs.push_back(&b);
  return estimate_point_persistent(std::span<const Bitmap* const>(ptrs));
}

Result<PointPersistentEstimate> estimate_point_persistent_materialized(
    std::span<const Bitmap> records) {
  std::vector<const Bitmap*> ptrs;
  ptrs.reserve(records.size());
  for (const Bitmap& b : records) ptrs.push_back(&b);
  if (Status s = validate_records(ptrs); !s.is_ok()) return s;

  const std::size_t m = max_size(records);
  const std::size_t half = (records.size() + 1) / 2;  // ⌈t/2⌉

  auto e_a = and_join_expanded_materialized(records.subspan(0, half));
  if (!e_a) return e_a.status();
  auto e_a_expanded = expand_to(*e_a, m);
  if (!e_a_expanded) return e_a_expanded.status();
  auto e_b = and_join_expanded_materialized(records.subspan(half));
  if (!e_b) return e_b.status();
  auto e_b_expanded = expand_to(*e_b, m);
  if (!e_b_expanded) return e_b_expanded.status();

  auto e_star = bitmap_and(*e_a_expanded, *e_b_expanded);
  if (!e_star) return e_star.status();

  SplitJoinStats stats;
  stats.m = m;
  stats.v_a0 = e_a_expanded->fraction_zeros();
  stats.v_b0 = e_b_expanded->fraction_zeros();
  stats.v_star1 = e_star->fraction_ones();
  return eq12_from_stats(stats);
}

Result<CardinalityEstimate> estimate_point_persistent_naive(
    std::span<const Bitmap> records) {
  if (records.empty()) {
    return Status{ErrorCode::kInvalidArgument, "no records"};
  }
  for (const Bitmap& b : records) {
    if (b.empty() || !is_power_of_two(b.size())) {
      return Status{ErrorCode::kInvalidArgument,
                    "record sizes must be non-zero powers of two"};
    }
  }
  auto count = and_join_count_zeros(records);
  if (!count) return count.status();
  return estimate_cardinality_counts(count->zeros, count->m);
}

}  // namespace ptm
