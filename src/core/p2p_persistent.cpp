#include "core/p2p_persistent.hpp"

#include <cmath>
#include <vector>

#include "common/bitmap_pool.hpp"
#include "common/math.hpp"
#include "core/expansion.hpp"

namespace ptm {

Result<PointToPointPersistentEstimate> estimate_p2p_persistent(
    std::span<const Bitmap* const> records_at_l,
    std::span<const Bitmap* const> records_at_l_prime,
    const PointToPointOptions& options) {
  if (records_at_l.empty() || records_at_l_prime.empty()) {
    return Status{ErrorCode::kInvalidArgument,
                  "p2p estimation needs records from both locations"};
  }
  if (options.s < 1) {
    return Status{ErrorCode::kInvalidArgument, "s must be >= 1"};
  }
  for (auto span : {records_at_l, records_at_l_prime}) {
    for (const Bitmap* b : span) {
      if (b->empty() || !is_power_of_two(b->size())) {
        return Status{ErrorCode::kInvalidArgument,
                      "record sizes must be non-zero powers of two"};
      }
    }
  }

  // First level: per-location AND-joins (lazy expansion - one accumulator
  // per location, no expanded record copies).  Both joins are query
  // temporaries, so they lease from the thread's pool and their buffers go
  // straight back for the next query.
  BitmapPool& pool = BitmapPool::local();
  auto e_l = and_join_pooled(records_at_l, pool);
  if (!e_l) return e_l.status();
  auto e_lp = and_join_pooled(records_at_l_prime, pool);
  if (!e_lp) return e_lp.status();

  // W.l.o.g. m <= m' (§IV assumes it; the estimator is symmetric under
  // swapping the locations along with their sizes).
  const Bitmap* small = &**e_l;
  const Bitmap* large = &**e_lp;
  if (small->size() > large->size()) std::swap(small, large);

  PointToPointPersistentEstimate est;
  est.m = small->size();
  est.m_prime = large->size();

  // Second level: §IV expands the smaller first-level join to m' and ORs
  // across locations.  Replication preserves the zero fraction, and the
  // fused kernel counts the OR's zeros directly off the two joins, so
  // neither S_* nor E''_* is ever built.
  auto union_zeros = tiled_or_count_zeros(*small, *large, large->size());
  if (!union_zeros) return union_zeros.status();

  const double m = static_cast<double>(est.m);
  const double m_prime = static_cast<double>(est.m_prime);

  est.v0 = small->fraction_zeros();
  est.v0_prime = large->fraction_zeros();
  est.v0_double_prime =
      static_cast<double>(*union_zeros) / static_cast<double>(est.m_prime);
  if (est.v0 == 0.0 || est.v0_prime == 0.0) {
    est.outcome = EstimateOutcome::kSaturated;
  }
  const double v0 = std::max(est.v0, 1.0 / m);
  const double v0p = std::max(est.v0_prime, 1.0 / m_prime);
  // The OR of two saturated inputs is saturated too; clamp identically.
  const double v0pp = std::max(est.v0_double_prime, 1.0 / m_prime);

  est.n = std::log(v0) / log_one_minus_inv(m);          // Eq. 13
  est.n_prime = std::log(v0p) / log_one_minus_inv(m_prime);

  // Eq. 19/21: E[V''_0] = (1 + 1/(s·m' − s))^{n''} · V_0 · V'_0.
  const double log_excess = std::log(v0pp) - std::log(v0) - std::log(v0p);
  if (log_excess < 0.0) {
    // Fewer zeros survive the OR than two independent joins would leave;
    // no non-negative n'' explains the data.  (Saturation, if flagged
    // above, is the more actionable diagnosis - keep it.)
    if (est.outcome == EstimateOutcome::kOk) {
      est.outcome = EstimateOutcome::kDegenerate;
    }
    est.n_double_prime = 0.0;
    return est;
  }
  const double s_count = static_cast<double>(options.s);
  if (options.exact_log) {
    est.n_double_prime =
        log_excess / std::log1p(1.0 / (s_count * m_prime - s_count));
  } else {
    est.n_double_prime = s_count * m_prime * log_excess;  // Eq. 21
  }
  return est;
}

Result<PointToPointPersistentEstimate> estimate_p2p_persistent(
    std::span<const Bitmap> records_at_l,
    std::span<const Bitmap> records_at_l_prime,
    const PointToPointOptions& options) {
  std::vector<const Bitmap*> ptrs_l, ptrs_lp;
  ptrs_l.reserve(records_at_l.size());
  for (const Bitmap& b : records_at_l) ptrs_l.push_back(&b);
  ptrs_lp.reserve(records_at_l_prime.size());
  for (const Bitmap& b : records_at_l_prime) ptrs_lp.push_back(&b);
  return estimate_p2p_persistent(std::span<const Bitmap* const>(ptrs_l),
                                 std::span<const Bitmap* const>(ptrs_lp),
                                 options);
}

}  // namespace ptm
