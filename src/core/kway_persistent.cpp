#include "core/kway_persistent.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"
#include "core/expansion.hpp"

namespace ptm {
namespace {

/// The model's predicted one fraction of E_* as a function of
/// q = (1 − 1/m)^{n_*}.  Strictly decreasing in q on [max V_j0, 1]:
/// larger q = fewer common vehicles = fewer guaranteed ones.
double predicted_ones(double q, const std::vector<double>& group_v0) {
  double product = 1.0;
  for (double v0 : group_v0) product *= (1.0 - v0 / q);
  return (1.0 - q) + q * product;
}

}  // namespace

Result<KwayPersistentEstimate> estimate_point_persistent_kway(
    std::span<const Bitmap> records, std::size_t groups) {
  if (groups < 2) {
    return Status{ErrorCode::kInvalidArgument, "need at least 2 groups"};
  }
  if (records.size() < groups) {
    return Status{ErrorCode::kInvalidArgument,
                  "need at least one record per group"};
  }
  for (const Bitmap& b : records) {
    if (b.empty() || !is_power_of_two(b.size())) {
      return Status{ErrorCode::kInvalidArgument,
                    "record sizes must be non-zero powers of two"};
    }
  }

  const std::size_t m = max_size(records);
  const double md = static_cast<double>(m);
  KwayPersistentEstimate est;
  est.m = m;
  est.groups = groups;

  // Contiguous near-equal partition (mirrors the paper's first-half /
  // second-half split at g = 2).  Each group join is one lazy-expansion
  // accumulator at the group's own max size; its zero fraction equals the
  // expanded one exactly (replication scales count and size by the same
  // integer), and the full join folds the groups in with the tiled kernel
  // instead of materializing each group at size m.
  Bitmap full_join;
  const std::size_t base = records.size() / groups;
  const std::size_t extra = records.size() % groups;
  std::size_t offset = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t count = base + (g < extra ? 1 : 0);
    auto joined = and_join_expanded(records.subspan(offset, count));
    if (!joined) return joined.status();
    est.group_v0.push_back(joined->fraction_zeros());
    if (g == 0) {
      if (joined->size() == m) {
        full_join = std::move(*joined);
      } else {
        auto seeded = joined->replicate_to(m);
        if (!seeded) return seeded.status();
        full_join = std::move(*seeded);
      }
    } else {
      if (Status s = full_join.and_with_tiled(*joined); !s.is_ok()) return s;
    }
    offset += count;
  }
  est.v_star1 = full_join.fraction_ones();

  // Clamp saturated groups to "one zero bit" as in the two-way estimator.
  std::vector<double> v0 = est.group_v0;
  for (double& v : v0) {
    if (v == 0.0) {
      est.outcome = EstimateOutcome::kSaturated;
      v = 1.0 / md;
    }
  }

  const double q_min = *std::max_element(v0.begin(), v0.end());
  // predicted_ones is decreasing: range [predicted(1), predicted(q_min)] =
  // [ones with no common traffic, ones with maximal common traffic].
  if (est.v_star1 <= predicted_ones(1.0, v0)) {
    // Fewer ones than even zero persistent traffic explains.
    if (est.outcome == EstimateOutcome::kOk) {
      est.outcome = EstimateOutcome::kDegenerate;
    }
    est.q = 1.0;
    est.n_star = 0.0;
    return est;
  }

  // Bisection for q with predicted_ones(q) = v_star1.
  double lo = q_min;   // most common traffic (prediction highest here)
  double hi = 1.0;     // none
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (predicted_ones(mid, v0) > est.v_star1) {
      lo = mid;  // prediction too high: more q (less common traffic)
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-15) break;
  }
  est.q = 0.5 * (lo + hi);
  est.n_star = std::max(0.0, std::log(est.q) / log_one_minus_inv(md));
  return est;
}

}  // namespace ptm
