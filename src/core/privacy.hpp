// privacy.hpp - privacy analysis of the traffic-record design (paper §V).
//
// Threat: an observer links a vehicle v to a bit index i at location L (an
// out-of-band sighting) and then checks whether bit i is set at another
// location L'.  Because vehicles share bits (collisions) and switch
// representative bits across locations, such a check is noisy:
//
//   p  = Prob[B'[i] = 1 | v did NOT pass L']
//      = 1 − (1 − 1/m')^{n'}                               (Eq. 22)
//   p' = Prob[B'[i] = 1 | v DID pass L'] = p + (1 − p)/s   (Eq. 23)
//
// and the paper's privacy metric is the noise-to-information ratio
//   p / (p' − p) = s · (1 − (1−1/m')^{n'}) / (1−1/m')^{n'}  (Eq. 24),
// which should exceed 1 for meaningful deniability.  Table II tabulates the
// ratio in the continuous-m approximation m' = f·n', where
// p = 1 − e^{−1/f} and the ratio is s·(e^{1/f} − 1).
#pragma once

#include <cstdint>

namespace ptm {

/// Exact per-deployment formulas (Eqs. 22-24) for a location with n' passing
/// vehicles and an m'-bit record.
struct PrivacyPoint {
  double noise = 0.0;        ///< p
  double information = 0.0;  ///< p' − p = (1 − p)/s
  double ratio = 0.0;        ///< p / (p' − p)
};

/// Preconditions: n_prime >= 0, m_prime >= 2, s >= 1.
[[nodiscard]] PrivacyPoint privacy_point(double n_prime, double m_prime,
                                         std::size_t s);

/// Table-II values as published.  The paper evaluates Eqs. 22-24 at the
/// synthetic workload's maximum volume, n' = 10000, with m' = f·n' (no
/// power-of-two rounding); reproducing its 4-decimal cells requires the
/// same evaluation point.  For n' → ∞ these converge to the closed forms
/// p(f) = 1 − e^{−1/f} and ratio(s,f) = s·(e^{1/f} − 1).
[[nodiscard]] double table2_noise(double f);
[[nodiscard]] double table2_ratio(std::size_t s, double f);

/// The n' Table II is evaluated at.
inline constexpr double kTable2NPrime = 10000.0;

}  // namespace ptm
