// linear_counting.hpp - linear probabilistic counting (Whang et al. 1990),
// the base estimator the paper builds on (Eq. 1 / Eq. 3).
//
// If n independent items each set one uniformly random bit of an m-bit
// bitmap, the expected fraction of zero bits is V0 = (1 - 1/m)^n, so
//     n̂ = ln V0 / ln(1 - 1/m)            (exact form, used by Eq. 3)
//       ≈ -m ln V0                        (large-m form, Eq. 1).
// This header also exposes the estimator's standard-error model, which the
// accuracy tests use to size their tolerance bands.
#pragma once

#include <cstdint>

#include "common/bitmap.hpp"

namespace ptm {

/// What the estimator could conclude from a bitmap.
enum class EstimateOutcome {
  kOk,         ///< finite estimate produced
  kSaturated,  ///< bitmap is all ones - estimate clamped, choose a larger m
  kDegenerate, ///< inputs admit no estimate (see estimator-specific docs)
};

[[nodiscard]] const char* estimate_outcome_name(EstimateOutcome o) noexcept;

struct CardinalityEstimate {
  double value = 0.0;
  EstimateOutcome outcome = EstimateOutcome::kOk;
  double fraction_zeros = 0.0;  ///< the measured V0
};

/// Estimates the number of distinct items encoded in `record` using the
/// exact linear-counting form n̂ = ln V0 / ln(1 - 1/m).
/// An all-ones bitmap yields outcome kSaturated with V0 clamped to 1/m
/// (one conceptual zero bit), the standard linear-counting convention.
/// Precondition: record.size() >= 2.
[[nodiscard]] CardinalityEstimate estimate_cardinality(const Bitmap& record);

/// Large-m approximation n̂ = -m ln V0 (paper Eq. 1), same clamping rules.
[[nodiscard]] CardinalityEstimate estimate_cardinality_approx(
    const Bitmap& record);

/// Exact-form estimate from a pre-measured (zero count, size) pair - the
/// entry point for the fused join kernels, which produce counts without
/// materializing the joined bitmap.  Bit-identical doubles to calling
/// estimate_cardinality on a bitmap with those counts.
/// Precondition: m >= 2, zeros <= m.
[[nodiscard]] CardinalityEstimate estimate_cardinality_counts(
    std::size_t zeros, std::size_t m);

/// Analytic standard error of linear counting, StdErr[n̂]/n (Whang et al.):
///     sqrt(m) * sqrt(exp(t) - t - 1) / (t * m),  with t = n/m.
/// Used to size statistical test tolerances.
[[nodiscard]] double linear_counting_relative_stderr(double n, double m);

}  // namespace ptm
