// p2p_persistent.hpp - point-to-point persistent traffic estimator
// (paper §IV).
//
// Given per-period records {B_1..B_t} at location L and {B'_1..B'_t} at L',
// estimate n'' = |C ∩ C'|: the vehicles that pass BOTH locations in EVERY
// period.  Two-level join:
//
//   level 1 (within each location): expand to the location's max size and
//            AND-join -> E_* (size m) and E'_* (size m'), m <= m' w.l.o.g.;
//   level 2 (across locations): expand E_* to m' -> S_*, then E''_* =
//            S_* OR E'_* (OR because AND admits no closed-form estimator);
//
//   n̂'' = s·m'·( ln V''_*0 − ln V_*0 − ln V'_*0 )            (Eq. 21),
//
// where s is the representative count of the encoding: a common vehicle
// reuses the same representative at both locations with probability 1/s,
// which is exactly the correlation Eq. 21 inverts.
#pragma once

#include <span>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "core/linear_counting.hpp"

namespace ptm {

struct PointToPointPersistentEstimate {
  double n_double_prime = 0.0;  ///< n̂'' - estimated p2p persistent volume
  EstimateOutcome outcome = EstimateOutcome::kOk;
  std::size_t m = 0;            ///< first-level size at the smaller location
  std::size_t m_prime = 0;      ///< first-level size at the larger location
  double v0 = 0.0;              ///< V_*0   - zero fraction of E_*
  double v0_prime = 0.0;        ///< V'_*0  - zero fraction of E'_*
  double v0_double_prime = 0.0; ///< V''_*0 - zero fraction of E''_*
  double n = 0.0;               ///< abstract cardinality at L (Eq. 13)
  double n_prime = 0.0;         ///< abstract cardinality at L' (Eq. 13)
};

struct PointToPointOptions {
  std::size_t s = 3;  ///< must match the encoding's representative count
  /// Eq. 21 uses ln(1+x) ≈ x (the paper's published estimator).  With
  /// `exact_log` the estimator divides by ln(1 + 1/(s·m' − s)) instead -
  /// numerically indistinguishable for large m', exposed for the ablation.
  bool exact_log = false;
};

/// Point-to-point persistent traffic estimator (Eq. 21).
///
/// Requirements: both spans non-empty, all sizes powers of two.  The spans
/// may have different lengths (the paper uses the same t at both locations,
/// but the math only needs each location's own join).  If L's first-level
/// size exceeds L''s, the two roles are swapped internally (the formula is
/// symmetric given m <= m').
/// Outcomes:
///  * kSaturated  - a first-level join is all ones (V0 clamped to 1 bit);
///  * kDegenerate - measured V''_*0 < V_*0 · V'_*0, i.e. the OR shows fewer
///                  zeros than independence would give and no n'' >= 0 fits;
///                  estimate clamped to 0.
[[nodiscard]] Result<PointToPointPersistentEstimate>
estimate_p2p_persistent(std::span<const Bitmap> records_at_l,
                        std::span<const Bitmap> records_at_l_prime,
                        const PointToPointOptions& options);

/// Zero-copy overload over stored records.  The first-level joins run the
/// lazy-expansion kernels (one accumulator each), and V''_0 is measured
/// with a fused tiled OR-count - neither S_* nor E''_* is materialized.
[[nodiscard]] Result<PointToPointPersistentEstimate>
estimate_p2p_persistent(std::span<const Bitmap* const> records_at_l,
                        std::span<const Bitmap* const> records_at_l_prime,
                        const PointToPointOptions& options);

}  // namespace ptm
