// sliding_join.hpp - amortized O(1) sliding-window AND-join of records.
//
// Operational deployments ask rolling questions: "persistent traffic over
// the LAST seven days", re-evaluated daily.  Recomputing the AND-join from
// scratch costs O(w) bitmap ANDs per day; this class maintains it with
// amortized O(1) ANDs per slide using the two-stack (SWAG / Kahan queue)
// technique: a back stack accumulates new records' running join, a front
// stack holds suffix joins of the old ones, and the window join is
// front_top AND back_accumulator.  AND is associative, which is all the
// trick needs.
//
// Joins run at a fixed capacity (a power of two >= every record size), but
// records are *never* expanded on push: they AND into the running join
// through Bitmap::and_with_tiled (lazy expansion), and the window stores
// them exactly as pushed.  Only a flip's bottom suffix join materializes
// one capacity-sized seed.
#pragma once

#include <deque>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"

namespace ptm {

class SlidingAndJoin {
 public:
  /// `window` = number of most-recent records joined; `capacity_bits` =
  /// the fixed expanded size (power of two, >= every pushed record's size).
  SlidingAndJoin(std::size_t window, std::size_t capacity_bits);

  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return front_.size() + back_.size();
  }
  [[nodiscard]] std::size_t capacity_bits() const noexcept {
    return capacity_bits_;
  }

  /// Pushes the newest record, evicting the oldest once the window is
  /// full.  InvalidArgument if the record's size is not a power of two or
  /// exceeds the capacity.
  Status push(const Bitmap& record);

  /// AND-join of the records currently in the window.
  /// FailedPrecondition when empty.
  [[nodiscard]] Result<Bitmap> joined() const;

  /// The window's records exactly as pushed, oldest first (for estimators
  /// that need the split halves, e.g. Eq. 12, which wants records rather
  /// than the join).
  [[nodiscard]] std::vector<Bitmap> window_records() const;

 private:
  void flip_if_needed();

  std::size_t window_;
  std::size_t capacity_bits_;
  // Front stack: pairs of (record, suffix-join from this record to the
  // front's oldest side).  Back stack: records plus one running join.
  std::vector<std::pair<Bitmap, Bitmap>> front_;  // top = back() of vector
  std::deque<Bitmap> back_;
  Bitmap back_join_;  // AND of everything in back_; all-ones when empty
};

}  // namespace ptm
