#include "core/privacy.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace ptm {

PrivacyPoint privacy_point(double n_prime, double m_prime, std::size_t s) {
  assert(n_prime >= 0.0 && m_prime >= 2.0 && s >= 1);
  PrivacyPoint pt;
  const double survive = std::pow(1.0 - 1.0 / m_prime, n_prime);
  pt.noise = 1.0 - survive;                                   // Eq. 22
  pt.information = survive / static_cast<double>(s);          // Eq. 23
  pt.ratio = pt.information > 0.0
                 ? pt.noise / pt.information                  // Eq. 24
                 : std::numeric_limits<double>::infinity();
  return pt;
}

double table2_noise(double f) {
  assert(f > 0.0);
  return privacy_point(kTable2NPrime, f * kTable2NPrime, 1).noise;
}

double table2_ratio(std::size_t s, double f) {
  assert(f > 0.0 && s >= 1);
  return privacy_point(kTable2NPrime, f * kTable2NPrime, s).ratio;
}

}  // namespace ptm
