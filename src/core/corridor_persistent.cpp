#include "core/corridor_persistent.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitmap_pool.hpp"
#include "common/math.hpp"
#include "core/expansion.hpp"

namespace ptm {

Result<double> corridor_log_b(std::span<const std::size_t> sizes,
                              std::size_t s) {
  const std::size_t k = sizes.size();
  if (k < 2 || k > 8) {
    return Status{ErrorCode::kInvalidArgument,
                  "corridor supports 2..8 locations"};
  }
  if (s < 1) return Status{ErrorCode::kInvalidArgument, "s must be >= 1"};
  double maps = 1.0;
  for (std::size_t j = 0; j < k; ++j) {
    if (!is_power_of_two(sizes[j]) || sizes[j] < 2) {
      return Status{ErrorCode::kInvalidArgument,
                    "sizes must be powers of two >= 2"};
    }
    if (j > 0 && sizes[j] < sizes[j - 1]) {
      return Status{ErrorCode::kInvalidArgument, "sizes must be ascending"};
    }
    maps *= static_cast<double>(s);
    if (maps > (1 << 20)) {
      return Status{ErrorCode::kInvalidArgument, "s^k too large to enumerate"};
    }
  }

  // A = mean over all s^k maps of Π over occupied reps (1 - 1/min_size).
  // Iterate maps as base-s counters; track per-rep min size.
  const auto total_maps = static_cast<std::uint64_t>(maps);
  std::vector<std::size_t> digits(k, 0);
  double a_sum = 0.0;
  std::vector<std::size_t> rep_min(s);
  for (std::uint64_t map = 0; map < total_maps; ++map) {
    std::fill(rep_min.begin(), rep_min.end(), std::size_t{0});
    for (std::size_t j = 0; j < k; ++j) {
      std::size_t& slot = rep_min[digits[j]];
      // sizes are ascending, so the FIRST location mapped to a rep is its
      // minimum; only record when unset.
      if (slot == 0) slot = sizes[j];
    }
    double product = 1.0;
    for (std::size_t r = 0; r < s; ++r) {
      if (rep_min[r] != 0) {
        product *= 1.0 - 1.0 / static_cast<double>(rep_min[r]);
      }
    }
    a_sum += product;
    // Increment the base-s counter.
    for (std::size_t j = 0; j < k; ++j) {
      if (++digits[j] < s) break;
      digits[j] = 0;
    }
  }
  const double a = a_sum / maps;

  double denominator = 0.0;  // Σ ln(1 - 1/m_j)
  for (std::size_t size : sizes) {
    denominator += log_one_minus_inv(static_cast<double>(size));
  }
  return std::log(a) - denominator;  // ln B
}

namespace {

/// Shared core over per-location record pointer lists (the zero-copy
/// shape); the vector-of-bitmaps overload adapts into it.
Result<CorridorPersistentEstimate> corridor_from_ptrs(
    std::span<const std::vector<const Bitmap*>> records_per_location,
    std::size_t s) {
  const std::size_t k = records_per_location.size();
  if (k < 2 || k > 8) {
    return Status{ErrorCode::kInvalidArgument,
                  "corridor estimation needs 2..8 locations"};
  }
  for (const auto& records : records_per_location) {
    if (records.empty()) {
      return Status{ErrorCode::kInvalidArgument,
                    "every location needs at least one record"};
    }
  }

  // First level: per-location AND-joins (lazy expansion - one accumulator
  // per location, no expanded record copies).  All k joins are leased from
  // the thread's pool and return to it when the query finishes.
  BitmapPool& pool = BitmapPool::local();
  std::vector<BitmapPool::Lease> joins;
  joins.reserve(k);
  for (const auto& records : records_per_location) {
    auto join = and_join_pooled(std::span<const Bitmap* const>(records), pool);
    if (!join) return join.status();
    joins.push_back(std::move(*join));
  }
  // Sort ascending by size (the derivation's m_1 <= ... <= m_k).
  std::sort(joins.begin(), joins.end(),
            [](const BitmapPool::Lease& a, const BitmapPool::Lease& b) {
              return a->size() < b->size();
            });

  CorridorPersistentEstimate est;
  for (const BitmapPool::Lease& join : joins) {
    est.m.push_back(join->size());
    est.v0.push_back(join->fraction_zeros());
  }
  auto log_b = corridor_log_b(est.m, s);
  if (!log_b) return log_b.status();
  est.log_b = *log_b;

  // Second level: OR of every join virtually expanded to m_k.  The largest
  // join seeds a pooled accumulator (one copy, no fresh allocation in
  // steady state); the smaller joins fold in through the tiled kernel,
  // bit-identical to the expand-then-OR fold because OR is commutative
  // over expansions.
  BitmapPool::Lease acc = pool.acquire(joins.back()->size());
  *acc = *joins.back();
  for (std::size_t j = 0; j + 1 < k; ++j) {
    if (Status st = acc->or_with_tiled(*joins[j]); !st.is_ok()) return st;
  }
  est.v0_union = acc->fraction_zeros();

  // n'' = (ln V_union0 - Σ ln V_j0) / ln B, with the usual clamping.
  double log_excess = 0.0;
  {
    double v_union = est.v0_union;
    if (v_union == 0.0) {
      est.outcome = EstimateOutcome::kSaturated;
      v_union = 1.0 / static_cast<double>(est.m.back());
    }
    log_excess = std::log(v_union);
    for (std::size_t j = 0; j < k; ++j) {
      double v = est.v0[j];
      if (v == 0.0) {
        est.outcome = EstimateOutcome::kSaturated;
        v = 1.0 / static_cast<double>(est.m[j]);
      }
      log_excess -= std::log(v);
    }
  }
  if (log_excess < 0.0) {
    if (est.outcome == EstimateOutcome::kOk) {
      est.outcome = EstimateOutcome::kDegenerate;
    }
    est.n_corridor = 0.0;
    return est;
  }
  est.n_corridor = log_excess / est.log_b;
  return est;
}

}  // namespace

Result<CorridorPersistentEstimate> estimate_corridor_persistent(
    std::span<const std::vector<const Bitmap*>> records_per_location,
    std::size_t s) {
  return corridor_from_ptrs(records_per_location, s);
}

Result<CorridorPersistentEstimate> estimate_corridor_persistent(
    std::span<const std::vector<Bitmap>> records_per_location,
    std::size_t s) {
  std::vector<std::vector<const Bitmap*>> ptrs;
  ptrs.reserve(records_per_location.size());
  for (const auto& records : records_per_location) {
    std::vector<const Bitmap*> location;
    location.reserve(records.size());
    for (const Bitmap& b : records) location.push_back(&b);
    ptrs.push_back(std::move(location));
  }
  return corridor_from_ptrs(ptrs, s);
}

}  // namespace ptm
