// point_persistent.hpp - the point persistent traffic estimator (paper §III).
//
// Given t traffic records {B_1..B_t} collected at one location across t
// measurement periods, estimate n_* - the number of *common* vehicles that
// appear in every period.  Direct linear counting on the AND-join E_* is
// biased upward because transient vehicles collide into surviving one-bits;
// the paper's estimator removes that bias:
//
//   1. split Π into Π_a = first ⌈t/2⌉ expanded bitmaps, Π_b = rest;
//   2. E_a = AND(Π_a), E_b = AND(Π_b), E_* = E_a AND E_b;
//   3. measure V_a0, V_b0 (zero fractions) and V_*1 (one fraction);
//   4. n̂_* = [ln V_a0 + ln V_b0 − ln(V_*1 + V_a0 + V_b0 − 1)]
//            / ln(1 − 1/m)                                   (Eq. 12).
//
// The naive estimator (step 3 of the paper's Fig. 4 benchmark) is also
// provided: n̂_* = ln V_*0 / ln(1 − 1/m) on the full AND-join.
#pragma once

#include <span>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "core/linear_counting.hpp"

namespace ptm {

/// Estimate plus every intermediate the derivation uses, for diagnostics
/// and tests of Eqs. 3-12.
struct PointPersistentEstimate {
  double n_star = 0.0;            ///< n̂_* - estimated common vehicles
  EstimateOutcome outcome = EstimateOutcome::kOk;
  std::size_t m = 0;              ///< joined bitmap size (max of inputs)
  double v_a0 = 0.0;              ///< zero fraction of E_a
  double v_b0 = 0.0;              ///< zero fraction of E_b
  double v_star1 = 0.0;           ///< one fraction of E_*
  double n_a = 0.0;               ///< abstract cardinality of E_a (Eq. 3)
  double n_b = 0.0;               ///< abstract cardinality of E_b (Eq. 3)
};

/// Point persistent traffic estimator (Eq. 12), computed with the fused
/// lazy-expansion kernels: the measurement triple (V_a0, V_b0, V_*1) comes
/// out of core/expansion's and_split_join_stats, so no expanded record copy
/// and no E_a / E_b / E_* bitmap is ever materialized.  The pointer-span
/// overload is the zero-copy path for callers holding records in a store.
///
/// Requirements on `records`: at least 2 bitmaps, every size a power of two.
/// Outcomes:
///  * kSaturated  - E_a or E_b is all ones (m far too small); the estimate
///                  uses V0 clamped to one zero bit.
///  * kDegenerate - the measured V_*1 + V_a0 + V_b0 − 1 <= 0, i.e. the join
///                  has *fewer* ones than independence would explain and no
///                  positive persistent volume fits; the estimate is clamped
///                  to 0.  This happens with tiny bitmaps or zero common
///                  vehicles, where sampling noise dominates.
[[nodiscard]] Result<PointPersistentEstimate> estimate_point_persistent(
    std::span<const Bitmap> records);
[[nodiscard]] Result<PointPersistentEstimate> estimate_point_persistent(
    std::span<const Bitmap* const> records);

/// Reference implementation that materializes E_a / E_b / E_* the way the
/// pre-kernel code did.  Exists only so differential tests and benchmarks
/// can prove the fused path produces bit-identical doubles; do not call it
/// from product code.
[[nodiscard]] Result<PointPersistentEstimate>
estimate_point_persistent_materialized(std::span<const Bitmap> records);

/// Naive benchmark (paper §VI-B): linear counting directly on the AND-join
/// of all records (fused join-count; no join bitmap built for t <= 2).
/// Same input requirements.
[[nodiscard]] Result<CardinalityEstimate> estimate_point_persistent_naive(
    std::span<const Bitmap> records);

}  // namespace ptm
