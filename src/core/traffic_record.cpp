#include "core/traffic_record.hpp"

#include <cassert>
#include <cmath>

#include "common/math.hpp"
#include "common/serialize.hpp"

namespace ptm {

Status TrafficRecord::validate() const {
  if (bits.empty()) {
    return {ErrorCode::kInvalidArgument, "traffic record has no bitmap"};
  }
  if (!is_power_of_two(bits.size())) {
    return {ErrorCode::kInvalidArgument,
            "traffic record size must be a power of two (Eq. 2)"};
  }
  return Status::ok();
}

std::vector<std::uint8_t> TrafficRecord::serialize() const {
  ByteWriter w;
  w.u64(location);
  w.u64(period);
  const auto bitmap_bytes = bits.serialize();
  w.bytes(bitmap_bytes);
  return w.take();
}

Result<TrafficRecord> TrafficRecord::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  TrafficRecord rec;
  auto loc = r.u64();
  if (!loc) return loc.status();
  rec.location = *loc;
  auto per = r.u64();
  if (!per) return per.status();
  rec.period = *per;
  auto blob = r.bytes();
  if (!blob) return blob.status();
  auto bitmap = Bitmap::deserialize(*blob);
  if (!bitmap) return bitmap.status();
  rec.bits = std::move(*bitmap);
  if (!r.exhausted()) {
    return Status{ErrorCode::kParseError, "trailing bytes after record"};
  }
  if (Status s = rec.validate(); !s.is_ok()) return s;
  return rec;
}

std::size_t plan_bitmap_size(double expected_volume, double load_factor) {
  assert(expected_volume >= 1.0 && load_factor > 0.0);
  const double target = expected_volume * load_factor;
  const auto ceiling = static_cast<std::uint64_t>(std::ceil(target));
  return static_cast<std::size_t>(next_power_of_two(ceiling));
}

}  // namespace ptm
