#include "core/encoding.hpp"

#include <cassert>

namespace ptm {

VehicleSecrets VehicleSecrets::create(std::uint64_t id, std::size_t s,
                                      Xoshiro256& rng) {
  VehicleSecrets v;
  v.id = id;
  v.private_key = rng.next();
  v.constants.resize(s);
  for (auto& c : v.constants) c = rng.next();
  return v;
}

std::size_t VehicleEncoder::representative_choice(
    const VehicleSecrets& vehicle, std::uint64_t location) const noexcept {
  const std::uint64_t h =
      hash64(params_.hash, location ^ vehicle.id, params_.hash_seed);
  return static_cast<std::size_t>(h % params_.s);
}

std::uint64_t VehicleEncoder::representative_hash(
    const VehicleSecrets& vehicle, std::size_t i) const noexcept {
  assert(i < params_.s && vehicle.constants.size() == params_.s);
  const std::uint64_t input =
      vehicle.id ^ vehicle.private_key ^ vehicle.constants[i];
  return hash64(params_.hash, input, params_.hash_seed);
}

std::uint64_t VehicleEncoder::raw_hash(const VehicleSecrets& vehicle,
                                       std::uint64_t location) const noexcept {
  return representative_hash(vehicle,
                             representative_choice(vehicle, location));
}

std::uint64_t VehicleEncoder::bit_index(const VehicleSecrets& vehicle,
                                        std::uint64_t location,
                                        std::size_t m) const noexcept {
  assert(m >= 1);
  return raw_hash(vehicle, location) % m;
}

void VehicleEncoder::encode(const VehicleSecrets& vehicle,
                            std::uint64_t location,
                            Bitmap& record) const noexcept {
  record.set(static_cast<std::size_t>(
      bit_index(vehicle, location, record.size())));
}

}  // namespace ptm
