// bootstrap.hpp - confidence intervals for the point persistent estimator.
//
// The paper reports mean relative errors but a deployment wants per-query
// uncertainty: "~9,100 commuters, 95% CI [8,700, 9,500]".  Under the
// estimator's own model the per-index triple (E_a[i], E_b[i], E_*[i]) is
// i.i.d. across bit indices, so the nonparametric bootstrap over indices is
// valid: resample m indices with replacement, recompute (V_a0, V_b0, V_*1),
// push each resample through Eq. 12, and take percentile bounds.  The
// resampling preserves the within-index correlation that a naive
// "bootstrap each bitmap separately" would destroy.
#pragma once

#include <cstdint>
#include <span>

#include "common/bitmap.hpp"
#include "common/random.hpp"
#include "common/status.hpp"
#include "core/point_persistent.hpp"

namespace ptm {

struct BootstrapOptions {
  std::size_t resamples = 200;   ///< bootstrap replicates
  double confidence = 0.95;      ///< two-sided level
  std::uint64_t seed = 0xB007;   ///< resampling RNG seed
};

struct PointPersistentInterval {
  PointPersistentEstimate point;  ///< the plain Eq. 12 estimate
  double lower = 0.0;             ///< CI lower bound (percentile)
  double upper = 0.0;             ///< CI upper bound
  std::size_t degenerate_resamples = 0;  ///< replicates clamped at 0
};

/// Point persistent estimate with a bootstrap confidence interval.
/// Same input requirements as estimate_point_persistent.  Cost is
/// O(resamples · m) - for the planner's typical m this is milliseconds,
/// for Sioux-Falls-scale m' = 2^20 budget ~0.1 s per 100 resamples.
[[nodiscard]] Result<PointPersistentInterval>
estimate_point_persistent_with_ci(std::span<const Bitmap> records,
                                  const BootstrapOptions& options = {});

}  // namespace ptm
