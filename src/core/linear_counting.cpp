#include "core/linear_counting.hpp"

#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace ptm {

const char* estimate_outcome_name(EstimateOutcome o) noexcept {
  switch (o) {
    case EstimateOutcome::kOk: return "ok";
    case EstimateOutcome::kSaturated: return "saturated";
    case EstimateOutcome::kDegenerate: return "degenerate";
  }
  return "unknown";
}

namespace {

/// Shared zero-fraction measurement with saturation clamping.
struct ZeroFraction {
  double v0;
  EstimateOutcome outcome;
};

ZeroFraction measured_v0(std::size_t zeros, std::size_t m) {
  assert(m >= 2 && zeros <= m);
  if (zeros == 0) {
    // All ones: V0 = 0 gives an infinite estimate.  Clamp to "one zero bit"
    // and flag saturation so callers know to grow m.
    return {1.0 / static_cast<double>(m), EstimateOutcome::kSaturated};
  }
  return {static_cast<double>(zeros) / static_cast<double>(m),
          EstimateOutcome::kOk};
}

}  // namespace

CardinalityEstimate estimate_cardinality_counts(std::size_t zeros,
                                                std::size_t m) {
  const auto [v0, outcome] = measured_v0(zeros, m);
  CardinalityEstimate est;
  est.fraction_zeros = v0;
  est.outcome = outcome;
  est.value = std::log(v0) / log_one_minus_inv(static_cast<double>(m));
  return est;
}

CardinalityEstimate estimate_cardinality(const Bitmap& record) {
  return estimate_cardinality_counts(record.count_zeros(), record.size());
}

CardinalityEstimate estimate_cardinality_approx(const Bitmap& record) {
  const auto [v0, outcome] = measured_v0(record.count_zeros(), record.size());
  const double m = static_cast<double>(record.size());
  CardinalityEstimate est;
  est.fraction_zeros = v0;
  est.outcome = outcome;
  est.value = -m * std::log(v0);
  return est;
}

double linear_counting_relative_stderr(double n, double m) {
  assert(n > 0.0 && m > 1.0);
  const double t = n / m;
  return std::sqrt(m * (std::exp(t) - t - 1.0)) / (t * m);
}

}  // namespace ptm
