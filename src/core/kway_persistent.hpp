// kway_persistent.hpp - the k-subset generalization of the point
// persistent estimator.
//
// §III-B of the paper notes "dividing Π into more than two sets is
// possible" but ships the two-set closed form (Eq. 12).  This module
// implements the general case: partition the t expanded records into g
// contiguous groups, AND-join each into E_1..E_g, and model E_* = AND_j E_j
// per bit as
//
//     Prob{bit = 1} = (1 − q) + q · Π_j (1 − V_j0 / q),
//
// where q = (1 − 1/m)^{n_*} and V_j0 is group j's zero fraction - the same
// independence abstraction as Eqs. 4-6, with the common-vehicle event
// shared across all groups.  For g = 2 the equation solves in closed form
// and reduces exactly to Eq. 12 (property-tested); for g >= 3 it is solved
// by bisection on q ∈ [max_j V_j0, 1], where the left side is monotone.
//
// The ablation bench (bench_ablation_kway) measures whether more groups
// help - quantifying the paper's "two works effectively" remark.
#pragma once

#include <span>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "core/linear_counting.hpp"

namespace ptm {

struct KwayPersistentEstimate {
  double n_star = 0.0;
  EstimateOutcome outcome = EstimateOutcome::kOk;
  std::size_t m = 0;
  std::size_t groups = 0;
  std::vector<double> group_v0;  ///< zero fraction per group join
  double v_star1 = 0.0;          ///< one fraction of the full join
  double q = 1.0;                ///< solved (1 − 1/m)^{n_*}
};

/// Estimates point persistent traffic with a `groups`-way split.
/// Requirements: records.size() >= groups >= 2, power-of-two sizes.
/// Outcomes as in estimate_point_persistent; kDegenerate when even
/// n_* = 0 predicts more ones than measured (estimate clamped to 0).
[[nodiscard]] Result<KwayPersistentEstimate> estimate_point_persistent_kway(
    std::span<const Bitmap> records, std::size_t groups);

}  // namespace ptm
