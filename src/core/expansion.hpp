// expansion.hpp - bitmap expansion and joining (paper §III-A, Figs. 1-3).
//
// Records from different periods (or the two first-level join results of two
// locations) generally have different sizes.  Because every size is a power
// of two, a smaller bitmap can be *expanded* by replication to any larger
// power-of-two size, and §III-A proves the key property: if vehicle v set
// bit (h_v mod l) in the original l-bit bitmap, then bit (h_v mod m) of the
// expanded m-bit bitmap is one.  AND-joins of expanded bitmaps therefore
// retain every common vehicle's bit.
//
// Join kernels (lazy expansion): a replicated bitmap is periodic, so the
// join functions below never materialize an expanded copy per record.
// They fold records of each size at THAT size and replicate the partial
// join upward only when a larger size appears (expansion distributes over
// AND/OR bit for bit), allocating one accumulator per distinct record
// size - at most log2 m with power-of-two sizes, and exactly one when all
// records share a size.  The fused variants go further and return only
// the counts the estimators need, so a whole Eq. 12 evaluation builds no
// E_a / E_b / E_* bitmap at all.  The `*_materialized` functions keep the
// original copy-per-record path for differential tests and benchmarks.
#pragma once

#include <span>
#include <vector>

#include "common/bitmap.hpp"
#include "common/bitmap_pool.hpp"
#include "common/status.hpp"

namespace ptm {

/// Expands `b` to exactly `target_bits` by replication.  Errors unless both
/// sizes are powers of two with b.size() <= target_bits.
[[nodiscard]] Result<Bitmap> expand_to(const Bitmap& b,
                                       std::size_t target_bits);

/// Largest size among the given bitmaps (0 if the span is empty).
[[nodiscard]] std::size_t max_size(std::span<const Bitmap> bitmaps);
[[nodiscard]] std::size_t max_size(std::span<const Bitmap* const> bitmaps);

/// AND-join of all bitmaps virtually expanded to the largest size present:
/// the E_* of §III-A.  Size-ascending cascade: one accumulator per
/// distinct record size, no expanded copy per record, and the full-size
/// words are touched only for full-size records.
/// Errors on an empty span or sizes that do not divide the largest.
/// The pointer-span overload is the zero-copy path for callers that hold
/// records in a store (no per-record Bitmap copies at the call site
/// either).
[[nodiscard]] Result<Bitmap> and_join_expanded(std::span<const Bitmap> bitmaps);
[[nodiscard]] Result<Bitmap> and_join_expanded(
    std::span<const Bitmap* const> bitmaps);

/// Same, but OR (the paper's second-level cross-location join).
[[nodiscard]] Result<Bitmap> or_join_expanded(std::span<const Bitmap> bitmaps);
[[nodiscard]] Result<Bitmap> or_join_expanded(
    std::span<const Bitmap* const> bitmaps);

/// Pool-leased forms of the joins, for callers whose result is itself a
/// temporary (the corridor union, the p2p E_l / E_l' pair): the join
/// accumulator comes from `pool` and returns to it when the lease expires,
/// so repeated queries re-use the same buffers.  detach() the lease if the
/// result must outlive the query after all.
[[nodiscard]] Result<BitmapPool::Lease> and_join_pooled(
    std::span<const Bitmap* const> bitmaps, BitmapPool& pool);
[[nodiscard]] Result<BitmapPool::Lease> or_join_pooled(
    std::span<const Bitmap* const> bitmaps, BitmapPool& pool);

/// Size and zero count of an AND-join - what linear counting (Eq. 1/3)
/// actually consumes.  With two records the count is fully fused (no
/// accumulator at all); with more, one accumulator is allocated.
struct JoinCount {
  std::size_t m = 0;      ///< join size = max input size
  std::size_t zeros = 0;  ///< zero bits of the AND-join at size m
};
[[nodiscard]] Result<JoinCount> and_join_count_zeros(
    std::span<const Bitmap> bitmaps);
[[nodiscard]] Result<JoinCount> and_join_count_zeros(
    std::span<const Bitmap* const> bitmaps);

/// The Eq. 12 measurement triple, fused: splits `records` into the paper's
/// first ⌈t/2⌉ / rest halves and measures
///   V_a0 = zero fraction of E_a,  V_b0 = zero fraction of E_b,
///   V_*1 = one fraction of E_* = E_a AND E_b at size m,
/// with none of E_a / E_b / E_* ever built.  Records already at the join
/// size are streamed straight from the caller's span through L1-sized
/// stack blocks; only a half's sub-maximum records are pre-folded by the
/// cascade, at their own smaller sizes - with equal-size records the
/// whole evaluation is allocation-free and writes no m-sized memory.
/// Replication preserves zero fractions exactly (the copies multiply both
/// the zero count and the size by the same integer), so every returned
/// double is bit-identical to the materializing path's.
struct SplitJoinStats {
  std::size_t m = 0;    ///< max record size = size of the virtual E_*
  double v_a0 = 0.0;    ///< zero fraction of the first-half join
  double v_b0 = 0.0;    ///< zero fraction of the second-half join
  double v_star1 = 0.0; ///< one fraction of the full AND-join
};
[[nodiscard]] Result<SplitJoinStats> and_split_join_stats(
    std::span<const Bitmap* const> records);
[[nodiscard]] Result<SplitJoinStats> and_split_join_stats(
    std::span<const Bitmap> records);

/// Reference implementations of the joins that materialize a full expanded
/// copy of every record (the pre-kernel behaviour).  Kept for the
/// differential property tests and the old-vs-new benchmarks; not used by
/// any estimator.
[[nodiscard]] Result<Bitmap> and_join_expanded_materialized(
    std::span<const Bitmap> bitmaps);
[[nodiscard]] Result<Bitmap> or_join_expanded_materialized(
    std::span<const Bitmap> bitmaps);

}  // namespace ptm
