// expansion.hpp - bitmap expansion and joining (paper §III-A, Figs. 1-3).
//
// Records from different periods (or the two first-level join results of two
// locations) generally have different sizes.  Because every size is a power
// of two, a smaller bitmap can be *expanded* by replication to any larger
// power-of-two size, and §III-A proves the key property: if vehicle v set
// bit (h_v mod l) in the original l-bit bitmap, then bit (h_v mod m) of the
// expanded m-bit bitmap is one.  AND-joins of expanded bitmaps therefore
// retain every common vehicle's bit.
#pragma once

#include <span>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"

namespace ptm {

/// Expands `b` to exactly `target_bits` by replication.  Errors unless both
/// sizes are powers of two with b.size() <= target_bits.
[[nodiscard]] Result<Bitmap> expand_to(const Bitmap& b,
                                       std::size_t target_bits);

/// Largest size among the given bitmaps (0 if the span is empty).
[[nodiscard]] std::size_t max_size(std::span<const Bitmap> bitmaps);

/// Expands every bitmap to the largest size present and AND-joins them:
/// the E_* of §III-A.  Errors on an empty span or non-power-of-two sizes.
[[nodiscard]] Result<Bitmap> and_join_expanded(std::span<const Bitmap> bitmaps);

/// Same, but OR (used by tests and diagnostics; the paper's second-level
/// cross-location join ORs exactly two bitmaps - see p2p_persistent).
[[nodiscard]] Result<Bitmap> or_join_expanded(std::span<const Bitmap> bitmaps);

}  // namespace ptm
