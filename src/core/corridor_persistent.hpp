// corridor_persistent.hpp - k-location persistent traffic (extension).
//
// The paper measures persistent traffic through ONE location (Eq. 12) and
// between TWO (Eq. 21).  Planners also ask the corridor question: how many
// vehicles pass through ALL of locations L_1..L_k in every period - the
// stable flow along a route.  This module derives and implements the
// natural k-location generalization of §IV's estimator.
//
// Derivation (extends §IV-B's argument; reduces to Eq. 21 at k = 2):
// sort locations so m_1 <= ... <= m_k (powers of two), AND-join each
// location's periods into E_j, expand everything to m_k, and OR-join into
// E^∪.  For one bit index i:
//
//  * transients at location j miss it with prob (1 − 1/m_j)^(n_j − n'');
//  * a corridor-common vehicle chooses a representative r_j ~ U{1..s}
//    independently at each location.  Distinct representatives have
//    independent uniform raw hashes, and because the m_j are nested powers
//    of two, one representative used at a SET of locations hits bit i at
//    some location in the set iff its hash ≡ i (mod min m_j of the set) -
//    probability 1/min(m).  Hence
//
//      A = E over random maps {1..k} -> {1..s}
//            [ Π over occupied representatives (1 − 1/m_min(its locations)) ]
//
//    and P(bit stays 0) = A^{n''} · Π_j (1 − 1/m_j)^{n_j − n''}.
//
// Writing V_j0 for E_j's zero fraction and B = A / Π_j (1 − 1/m_j) >= 1:
//
//      E[V^∪_0] = B^{n''} · Π_j V_j0
//      n̂''     = ( ln V^∪_0 − Σ_j ln V_j0 ) / ln B.
//
// At k = 2, B = 1 + 1/(s·(m_2 − 1)), i.e. exactly the paper's
// (1 + 1/(s·m' − s)) factor of Eq. 19 - the published estimator is the
// special case.  A is computed by exact enumeration of the s^k
// representative maps (k is a route length; bounded to keep s^k small).
#pragma once

#include <span>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "core/linear_counting.hpp"

namespace ptm {

struct CorridorPersistentEstimate {
  double n_corridor = 0.0;  ///< estimated vehicles through ALL k locations
  EstimateOutcome outcome = EstimateOutcome::kOk;
  std::vector<std::size_t> m;      ///< per-location first-level sizes (sorted)
  std::vector<double> v0;          ///< per-location zero fractions (same order)
  double v0_union = 0.0;           ///< zero fraction of the OR-join
  double log_b = 0.0;              ///< ln B of the derivation
};

/// Estimates the corridor persistent volume across k >= 2 locations.
/// `records_per_location[j]` holds location j's per-period records (all
/// sizes powers of two; per-location period counts may differ).
/// Constraints: 2 <= k <= 8 and s^k <= 2^20 (exact enumeration of A).
/// Outcomes as in the pairwise estimator (kDegenerate clamps at 0).
[[nodiscard]] Result<CorridorPersistentEstimate> estimate_corridor_persistent(
    std::span<const std::vector<Bitmap>> records_per_location, std::size_t s);

/// Zero-copy overload over stored records.  First-level joins use the
/// lazy-expansion kernels and the union accumulates through or_with_tiled,
/// so no expanded record or join copy is materialized.
[[nodiscard]] Result<CorridorPersistentEstimate> estimate_corridor_persistent(
    std::span<const std::vector<const Bitmap*>> records_per_location,
    std::size_t s);

/// The ln B factor alone (exposed for tests: at k = 2 it must equal
/// ln(1 + 1/(s·(m2 − 1)))).  `sizes` must be sorted ascending powers of two.
[[nodiscard]] Result<double> corridor_log_b(std::span<const std::size_t> sizes,
                                            std::size_t s);

}  // namespace ptm
