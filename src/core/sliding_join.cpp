#include "core/sliding_join.hpp"

#include <cassert>

#include "common/math.hpp"
#include "core/expansion.hpp"

namespace ptm {
namespace {

Bitmap all_ones(std::size_t bits) {
  Bitmap b(bits);
  b.set_all();  // one kernel fill, not a per-bit loop
  return b;
}

}  // namespace

SlidingAndJoin::SlidingAndJoin(std::size_t window, std::size_t capacity_bits)
    : window_(window),
      capacity_bits_(capacity_bits),
      back_join_(all_ones(capacity_bits)) {
  assert(window >= 1 && is_power_of_two(capacity_bits));
}

void SlidingAndJoin::flip_if_needed() {
  if (!front_.empty() || back_.empty()) return;
  // Move the back records into the front stack, newest first, so the
  // oldest ends up on top (vector back) carrying the join of all of them.
  // Each suffix join is one capacity-sized bitmap; the records fold in
  // through the tiled kernel, so this is the only place a record is ever
  // expanded - and only the bottom one, by seeding the first suffix join.
  front_.reserve(back_.size());
  for (auto it = back_.rbegin(); it != back_.rend(); ++it) {
    Bitmap join;
    if (front_.empty()) {
      auto seeded = it->replicate_to(capacity_bits_);
      assert(seeded.has_value());
      join = std::move(*seeded);
    } else {
      join = front_.back().second;
      const Status s = join.and_with_tiled(*it);
      assert(s.is_ok());
      (void)s;
    }
    front_.emplace_back(*it, std::move(join));
  }
  back_.clear();
  back_join_ = all_ones(capacity_bits_);
}

Status SlidingAndJoin::push(const Bitmap& record) {
  if (record.empty() || !is_power_of_two(record.size()) ||
      record.size() > capacity_bits_) {
    return {ErrorCode::kInvalidArgument,
            "record size must be a power of two no larger than the window "
            "capacity"};
  }

  if (size() == window_) {
    flip_if_needed();
    front_.pop_back();  // evict the oldest
  }
  // Lazy expansion: the record ANDs into the running join tiled; the
  // window stores it as pushed.
  if (Status s = back_join_.and_with_tiled(record); !s.is_ok()) return s;
  back_.push_back(record);
  return Status::ok();
}

Result<Bitmap> SlidingAndJoin::joined() const {
  if (size() == 0) {
    return Status{ErrorCode::kFailedPrecondition, "window is empty"};
  }
  if (front_.empty()) return back_join_;
  Bitmap out = front_.back().second;
  if (Status s = out.and_with(back_join_); !s.is_ok()) return s;
  return out;
}

std::vector<Bitmap> SlidingAndJoin::window_records() const {
  std::vector<Bitmap> out;
  out.reserve(size());
  for (auto it = front_.rbegin(); it != front_.rend(); ++it) {
    out.push_back(it->first);
  }
  for (const Bitmap& b : back_) out.push_back(b);
  return out;
}

}  // namespace ptm
