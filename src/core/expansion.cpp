#include "core/expansion.hpp"

#include "common/math.hpp"

namespace ptm {

Result<Bitmap> expand_to(const Bitmap& b, std::size_t target_bits) {
  if (b.empty()) {
    return Status{ErrorCode::kInvalidArgument, "cannot expand empty bitmap"};
  }
  if (!is_power_of_two(b.size()) || !is_power_of_two(target_bits)) {
    return Status{ErrorCode::kInvalidArgument,
                  "expansion requires power-of-two sizes"};
  }
  if (target_bits < b.size()) {
    return Status{ErrorCode::kInvalidArgument,
                  "expansion target smaller than source"};
  }
  if (target_bits == b.size()) return b;
  return b.replicate_to(target_bits);
}

std::size_t max_size(std::span<const Bitmap> bitmaps) {
  std::size_t m = 0;
  for (const Bitmap& b : bitmaps) m = std::max(m, b.size());
  return m;
}

namespace {

enum class JoinOp { kAnd, kOr };

Result<Bitmap> join_expanded(std::span<const Bitmap> bitmaps, JoinOp op) {
  if (bitmaps.empty()) {
    return Status{ErrorCode::kInvalidArgument, "join of zero bitmaps"};
  }
  const std::size_t m = max_size(bitmaps);
  auto acc = expand_to(bitmaps[0], m);
  if (!acc) return acc.status();
  for (std::size_t i = 1; i < bitmaps.size(); ++i) {
    auto expanded = expand_to(bitmaps[i], m);
    if (!expanded) return expanded.status();
    const Status s = (op == JoinOp::kAnd) ? acc->and_with(*expanded)
                                          : acc->or_with(*expanded);
    if (!s.is_ok()) return s;
  }
  return acc;
}

}  // namespace

Result<Bitmap> and_join_expanded(std::span<const Bitmap> bitmaps) {
  return join_expanded(bitmaps, JoinOp::kAnd);
}

Result<Bitmap> or_join_expanded(std::span<const Bitmap> bitmaps) {
  return join_expanded(bitmaps, JoinOp::kOr);
}

}  // namespace ptm
