#include "core/expansion.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "common/bitmap_pool.hpp"
#include "common/math.hpp"
#include "simd/kernels.hpp"

namespace ptm {

Result<Bitmap> expand_to(const Bitmap& b, std::size_t target_bits) {
  if (b.empty()) {
    return Status{ErrorCode::kInvalidArgument, "cannot expand empty bitmap"};
  }
  if (!is_power_of_two(b.size()) || !is_power_of_two(target_bits)) {
    return Status{ErrorCode::kInvalidArgument,
                  "expansion requires power-of-two sizes"};
  }
  if (target_bits < b.size()) {
    return Status{ErrorCode::kInvalidArgument,
                  "expansion target smaller than source"};
  }
  if (target_bits == b.size()) return b;
  return b.replicate_to(target_bits);
}

std::size_t max_size(std::span<const Bitmap> bitmaps) {
  std::size_t m = 0;
  for (const Bitmap& b : bitmaps) m = std::max(m, b.size());
  return m;
}

std::size_t max_size(std::span<const Bitmap* const> bitmaps) {
  std::size_t m = 0;
  for (const Bitmap* b : bitmaps) m = std::max(m, b->size());
  return m;
}

namespace {

enum class JoinOp { kAnd, kOr };

/// Size-ascending cascade join.  Replication distributes over AND/OR
/// (expand(a) op expand(b) == expand(a op b) bit for bit), so the records
/// of each size can be folded at THAT size and the partial result
/// replicated up only when a larger size appears.  Work at size l is
/// proportional to l times the records of size <= l's *count at l*, i.e.
/// the full-size words are touched only for full-size records - the
/// asymptotic win over folding everything at m.  Allocations: one
/// accumulator per distinct record size (<= log2 m with power-of-two
/// sizes).  The result is bit-identical to the materializing fold because
/// the ops are commutative and associative over the expansions.
/// Cascade over only the records smaller than `below_bits` (pass
/// SIZE_MAX to include everything).  and_split_join_stats uses the
/// filtered form to pre-fold a half's sub-maximum records while the
/// full-size ones are streamed by the blocked count kernel directly.
/// The accumulator and its replication upgrades come from `pool`, so in
/// steady state the whole cascade allocates nothing; callers whose result
/// escapes detach() the lease, callers with a temporary let it expire.
Result<BitmapPool::Lease> join_tiled_below(
    std::span<const Bitmap* const> bitmaps, JoinOp op, std::size_t below_bits,
    BitmapPool& pool) {
  std::size_t lo = below_bits;
  std::size_t hi = 0;
  for (const Bitmap* b : bitmaps) {
    const std::size_t s = b->size();
    if (s >= below_bits) continue;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (hi == 0) {
    return Status{ErrorCode::kInvalidArgument, "join of zero bitmaps"};
  }

  BitmapPool::Lease acc = pool.acquire(lo);
  bool seeded = false;
  std::size_t cur = lo;
  for (;;) {
    for (const Bitmap* b : bitmaps) {
      if (b->size() != cur) continue;
      if (!seeded) {
        *acc = *b;  // copy-assign re-uses the pooled buffer's capacity
        seeded = true;
        continue;
      }
      const Status s =
          (op == JoinOp::kAnd) ? acc->and_with(*b) : acc->or_with(*b);
      if (!s.is_ok()) return s;
    }
    if (cur == hi) break;
    // Smallest size above cur that actually occurs; replicate the partial
    // join up to it and keep folding.  Ping-pong through a second pooled
    // buffer; the outgoing one returns to the pool at the end of the
    // iteration.
    std::size_t next = hi;
    for (const Bitmap* b : bitmaps) {
      const std::size_t s = b->size();
      if (s > cur && s < below_bits) next = std::min(next, s);
    }
    BitmapPool::Lease upgraded = pool.acquire(next);
    if (Status s = upgraded->assign_replicated(*acc, next); !s.is_ok()) {
      return s;
    }
    std::swap(acc, upgraded);
    cur = next;
  }
  return acc;
}

Result<BitmapPool::Lease> join_tiled(std::span<const Bitmap* const> bitmaps,
                                     JoinOp op) {
  return join_tiled_below(bitmaps, op,
                          std::numeric_limits<std::size_t>::max(),
                          BitmapPool::local());
}

/// Adapts a value span to the pointer-span core without copying bitmaps
/// (the pointer array itself is a few words per record).
std::vector<const Bitmap*> to_ptrs(std::span<const Bitmap> bitmaps) {
  std::vector<const Bitmap*> ptrs;
  ptrs.reserve(bitmaps.size());
  for (const Bitmap& b : bitmaps) ptrs.push_back(&b);
  return ptrs;
}

Result<Bitmap> join_materialized(std::span<const Bitmap> bitmaps, JoinOp op) {
  if (bitmaps.empty()) {
    return Status{ErrorCode::kInvalidArgument, "join of zero bitmaps"};
  }
  const std::size_t m = max_size(bitmaps);
  auto acc = expand_to(bitmaps[0], m);
  if (!acc) return acc.status();
  for (std::size_t i = 1; i < bitmaps.size(); ++i) {
    auto expanded = expand_to(bitmaps[i], m);
    if (!expanded) return expanded.status();
    const Status s = (op == JoinOp::kAnd) ? acc->and_with(*expanded)
                                          : acc->or_with(*expanded);
    if (!s.is_ok()) return s;
  }
  return acc;
}

/// 4 KiB staging blocks: both buffers live in L1, so the group folds and
/// the popcount stage never write to the heap at all.
constexpr std::size_t kBlockWords = 512;

/// AND-fold (or, when `seed`, overwrite with) words [word0, word0 + len)
/// of the virtual replication of `b` to the join size into `buf`.  The
/// word-aligned path runs in memcpy-like contiguous segments; a sub-word
/// size collapses to one pattern word; anything else gathers bit by bit
/// (unreachable with this project's power-of-two sizes).
void fold_block(std::uint64_t* buf, std::size_t word0, std::size_t len,
                const Bitmap& b, bool seed) {
  const std::size_t s_bits = b.size();
  if (s_bits % 64 == 0) {
    const std::span<const std::uint64_t> w = b.words();
    const std::size_t sw = w.size();
    if (!seed) {
      simd::active().and_tiled(buf, len, w.data(), sw, word0 % sw);
      return;
    }
    std::size_t c = word0 % sw;
    std::size_t k = 0;
    while (k < len) {
      const std::size_t run = std::min(len - k, sw - c);
      std::memcpy(buf + k, w.data() + c, run * sizeof(std::uint64_t));
      k += run;
      c += run;
      if (c == sw) c = 0;
    }
    return;
  }
  if (64 % s_bits == 0) {
    std::uint64_t pattern = 0;
    const std::uint64_t base = b.words()[0];
    for (std::size_t off = 0; off < 64; off += s_bits) {
      pattern |= base << off;
    }
    if (seed) {
      for (std::size_t k = 0; k < len; ++k) buf[k] = pattern;
    } else {
      for (std::size_t k = 0; k < len; ++k) buf[k] &= pattern;
    }
    return;
  }
  for (std::size_t k = 0; k < len; ++k) {
    std::uint64_t wv = 0;
    const std::size_t base_bit = (word0 + k) * 64;
    for (std::size_t j = 0; j < 64; ++j) {
      if (b.test((base_bit + j) % s_bits)) wv |= std::uint64_t{1} << j;
    }
    if (seed) {
      buf[k] = wv;
    } else {
      buf[k] &= wv;
    }
  }
}

/// One half of the Eq. 12 split: the full-size records are streamed from
/// the store (`records` entries whose size equals the join size), the
/// sub-maximum ones arrive pre-folded in `folded` (null when the half has
/// none).  The caller guarantees at least one operand.
struct HalfGroup {
  std::span<const Bitmap* const> records;
  const Bitmap* folded = nullptr;
};

void fill_group_block(std::uint64_t* buf, std::size_t word0,
                      std::size_t len, const HalfGroup& g,
                      std::size_t m_bits) {
  bool seed = true;
  if (g.folded != nullptr) {
    fold_block(buf, word0, len, *g.folded, seed);
    seed = false;
  }
  for (const Bitmap* b : g.records) {
    if (b->size() != m_bits) continue;
    fold_block(buf, word0, len, *b, seed);
    seed = false;
  }
}

/// The Eq. 12 measurement triple over two half groups, one L1 block at a
/// time: seed/fold each group's virtual AND at m into a stack buffer,
/// then popcount all three streams.  Zero heap allocations and zero
/// full-size writes - the only m-sized traffic is reading each full-size
/// record once.
TiledTripleCount grouped_and_triple_count(const HalfGroup& a,
                                          const HalfGroup& b,
                                          std::size_t m_bits) {
  TiledTripleCount out;
  const std::size_t n_words = ceil_div(m_bits, std::size_t{64});
  const std::size_t rem = m_bits % 64;
  const std::uint64_t last_mask = rem == 0 ? ~std::uint64_t{0}
                                           : (std::uint64_t{1} << rem) - 1;
  std::uint64_t buf_a[kBlockWords];
  std::uint64_t buf_b[kBlockWords];
  for (std::size_t word0 = 0; word0 < n_words; word0 += kBlockWords) {
    const std::size_t len = std::min(kBlockWords, n_words - word0);
    fill_group_block(buf_a, word0, len, a, m_bits);
    fill_group_block(buf_b, word0, len, b, m_bits);
    if (word0 + len == n_words) {
      buf_a[len - 1] &= last_mask;
      buf_b[len - 1] &= last_mask;
    }
    const simd::TripleCount tc = simd::active().triple_count(buf_a, buf_b, len);
    out.ones_a += tc.ones_a;
    out.ones_b += tc.ones_b;
    out.ones_and += tc.ones_and;
  }
  return out;
}

}  // namespace

Result<BitmapPool::Lease> and_join_pooled(
    std::span<const Bitmap* const> bitmaps, BitmapPool& pool) {
  return join_tiled_below(bitmaps, JoinOp::kAnd,
                          std::numeric_limits<std::size_t>::max(), pool);
}

Result<BitmapPool::Lease> or_join_pooled(
    std::span<const Bitmap* const> bitmaps, BitmapPool& pool) {
  return join_tiled_below(bitmaps, JoinOp::kOr,
                          std::numeric_limits<std::size_t>::max(), pool);
}

Result<Bitmap> and_join_expanded(std::span<const Bitmap* const> bitmaps) {
  auto lease = join_tiled(bitmaps, JoinOp::kAnd);
  if (!lease) return lease.status();
  return lease->detach();
}

Result<Bitmap> and_join_expanded(std::span<const Bitmap> bitmaps) {
  const auto ptrs = to_ptrs(bitmaps);
  return and_join_expanded(std::span<const Bitmap* const>(ptrs));
}

Result<Bitmap> or_join_expanded(std::span<const Bitmap* const> bitmaps) {
  auto lease = join_tiled(bitmaps, JoinOp::kOr);
  if (!lease) return lease.status();
  return lease->detach();
}

Result<Bitmap> or_join_expanded(std::span<const Bitmap> bitmaps) {
  const auto ptrs = to_ptrs(bitmaps);
  return or_join_expanded(std::span<const Bitmap* const>(ptrs));
}

Result<JoinCount> and_join_count_zeros(
    std::span<const Bitmap* const> bitmaps) {
  if (bitmaps.empty()) {
    return Status{ErrorCode::kInvalidArgument, "join of zero bitmaps"};
  }
  JoinCount out;
  out.m = max_size(bitmaps);
  if (bitmaps.size() == 1) {
    // Replication preserves the zero *fraction*; scale the count to m.
    out.zeros = bitmaps[0]->count_zeros() * (out.m / bitmaps[0]->size());
    return out;
  }
  if (bitmaps.size() == 2) {
    auto ones = tiled_and_count_ones(*bitmaps[0], *bitmaps[1], out.m);
    if (!ones) return ones.status();
    out.zeros = out.m - *ones;
    return out;
  }
  auto join = join_tiled(bitmaps, JoinOp::kAnd);
  if (!join) return join.status();
  out.zeros = (*join)->count_zeros();  // lease expires here -> buffer pooled
  return out;
}

Result<JoinCount> and_join_count_zeros(std::span<const Bitmap> bitmaps) {
  const auto ptrs = to_ptrs(bitmaps);
  return and_join_count_zeros(std::span<const Bitmap* const>(ptrs));
}

Result<SplitJoinStats> and_split_join_stats(
    std::span<const Bitmap* const> records) {
  if (records.size() < 2) {
    return Status{ErrorCode::kInvalidArgument,
                  "split join needs at least 2 records"};
  }
  SplitJoinStats stats;
  stats.m = max_size(records);
  for (const Bitmap* b : records) {
    if (b->empty() || stats.m % b->size() != 0) {
      return Status{ErrorCode::kInvalidArgument,
                    "split join needs non-empty records whose sizes divide "
                    "the largest size"};
    }
  }
  const std::size_t half = (records.size() + 1) / 2;  // ⌈t/2⌉
  const std::span<const Bitmap* const> half_a = records.subspan(0, half);
  const std::span<const Bitmap* const> half_b = records.subspan(half);

  // Per half: records already at m are streamed straight from the store
  // by the blocked kernel; anything smaller is pre-folded by the cascade
  // at its own (sub-m) sizes.  No m-sized accumulator is ever written.
  // Both folds lease from the thread's pool and expire on return.
  BitmapPool& pool = BitmapPool::local();
  BitmapPool::Lease folded_a;
  BitmapPool::Lease folded_b;
  HalfGroup group_a{half_a, nullptr};
  HalfGroup group_b{half_b, nullptr};
  const auto has_sub = [&](std::span<const Bitmap* const> h) {
    for (const Bitmap* b : h) {
      if (b->size() < stats.m) return true;
    }
    return false;
  };
  if (has_sub(half_a)) {
    auto r = join_tiled_below(half_a, JoinOp::kAnd, stats.m, pool);
    if (!r) return r.status();
    folded_a = std::move(*r);
    group_a.folded = &*folded_a;
  }
  if (has_sub(half_b)) {
    auto r = join_tiled_below(half_b, JoinOp::kAnd, stats.m, pool);
    if (!r) return r.status();
    folded_b = std::move(*r);
    group_b.folded = &*folded_b;
  }

  // All three counts in one blocked sweep.  The fractions are
  // bit-identical to the materializing path's: AND is commutative, the
  // fold at m distributes over replication, and the double divisions see
  // the same exact integers.
  const TiledTripleCount counts =
      grouped_and_triple_count(group_a, group_b, stats.m);
  const double md = static_cast<double>(stats.m);
  stats.v_a0 = static_cast<double>(stats.m - counts.ones_a) / md;
  stats.v_b0 = static_cast<double>(stats.m - counts.ones_b) / md;
  // Mirror Bitmap::fraction_ones() = 1 - zeros/m so the double is
  // bit-identical to the materializing path's E_*.fraction_ones().
  stats.v_star1 = 1.0 - static_cast<double>(stats.m - counts.ones_and) / md;
  return stats;
}

Result<SplitJoinStats> and_split_join_stats(std::span<const Bitmap> records) {
  const auto ptrs = to_ptrs(records);
  return and_split_join_stats(std::span<const Bitmap* const>(ptrs));
}

Result<Bitmap> and_join_expanded_materialized(
    std::span<const Bitmap> bitmaps) {
  return join_materialized(bitmaps, JoinOp::kAnd);
}

Result<Bitmap> or_join_expanded_materialized(
    std::span<const Bitmap> bitmaps) {
  return join_materialized(bitmaps, JoinOp::kOr);
}

}  // namespace ptm
