// traffic_record.hpp - the per-RSU, per-period measurement artifact
// (paper §II-D).
//
// A traffic record is an m-bit bitmap tagged with where and when it was
// collected.  m is always a power of two (Eq. 2) so records of different
// sizes can be joined by replication-expansion (§III-A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"

namespace ptm {

struct TrafficRecord {
  std::uint64_t location = 0;  ///< L - RSU location code
  std::uint64_t period = 0;    ///< measurement period index
  Bitmap bits;                 ///< B - the m-bit record

  [[nodiscard]] std::size_t m() const noexcept { return bits.size(); }

  /// Validates the structural invariants (non-empty, power-of-two size).
  [[nodiscard]] Status validate() const;

  /// Wire format: location, period, bitmap.  Used for RSU -> server upload.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Result<TrafficRecord> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const TrafficRecord& a,
                         const TrafficRecord& b) noexcept {
    return a.location == b.location && a.period == b.period &&
           a.bits == b.bits;
  }
};

/// Plans the bitmap size for an RSU from the expected traffic volume
/// (historical average) n̄ and the system-wide load factor f (paper Eq. 2):
///     m = 2 ^ ceil( log2( n̄ · f ) ).
/// Precondition: expected_volume >= 1 and load_factor > 0.
[[nodiscard]] std::size_t plan_bitmap_size(double expected_volume,
                                           double load_factor);

}  // namespace ptm
