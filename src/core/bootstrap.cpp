#include "core/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "common/stats.hpp"
#include "core/expansion.hpp"

namespace ptm {
namespace {

/// Binomial(n, p) sampler: exact Bernoulli summation for small expected
/// counts, normal approximation (clamped, continuity-corrected) otherwise.
/// Bootstrap CIs are insensitive to the approximation at the sizes where
/// it kicks in (n·p·(1−p) > 900).
std::uint64_t sample_binomial(std::uint64_t n, double p, Xoshiro256& rng) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double variance = static_cast<double>(n) * p * (1.0 - p);
  if (variance < 900.0) {
    std::uint64_t count = 0;
    for (std::uint64_t i = 0; i < n; ++i) count += rng.bernoulli(p) ? 1 : 0;
    return count;
  }
  // Box-Muller normal draw.
  const double u1 = std::max(rng.uniform01(), 1e-300);
  const double u2 = rng.uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double value =
      static_cast<double>(n) * p + std::sqrt(variance) * z + 0.5;
  if (value <= 0.0) return 0;
  if (value >= static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(value);
}

/// Eq. 12 on category fractions; clamps exactly like the main estimator.
double eq12_from_fractions(double v_a0, double v_b0, double v_star1,
                           double m, bool* degenerate) {
  const double floor_v = 1.0 / m;
  v_a0 = std::max(v_a0, floor_v);
  v_b0 = std::max(v_b0, floor_v);
  const double arg = v_star1 + v_a0 + v_b0 - 1.0;
  if (arg <= 0.0) {
    *degenerate = true;
    return 0.0;
  }
  *degenerate = false;
  const double value = (std::log(v_a0) + std::log(v_b0) - std::log(arg)) /
                       log_one_minus_inv(m);
  return std::max(0.0, value);
}

}  // namespace

Result<PointPersistentInterval> estimate_point_persistent_with_ci(
    std::span<const Bitmap> records, const BootstrapOptions& options) {
  if (options.resamples < 10 || options.confidence <= 0.0 ||
      options.confidence >= 1.0) {
    return Status{ErrorCode::kInvalidArgument,
                  "need >= 10 resamples and confidence in (0, 1)"};
  }
  auto point = estimate_point_persistent(records);
  if (!point) return point.status();

  PointPersistentInterval interval;
  interval.point = *point;

  // Rebuild the two half-joins to classify every bit index.  E_* is their
  // AND, so the per-index state is fully described by (E_a[i], E_b[i]) -
  // and the four category counts follow from three popcounts, no expanded
  // bitmap and no per-bit loop: ones(E_x at m) scales by the replication
  // factor, and ones(E_a AND E_b) comes from the fused tiled kernel.
  const std::size_t m = point->m;
  const std::size_t half = (records.size() + 1) / 2;
  auto e_a = and_join_expanded(records.subspan(0, half));
  if (!e_a) return e_a.status();
  auto e_b = and_join_expanded(records.subspan(half));
  if (!e_b) return e_b.status();

  const std::uint64_t ones_a = e_a->count_ones() * (m / e_a->size());
  const std::uint64_t ones_b = e_b->count_ones() * (m / e_b->size());
  auto both = tiled_and_count_ones(*e_a, *e_b, m);
  if (!both) return both.status();
  const std::uint64_t c11 = *both;
  const std::uint64_t c10 = ones_a - c11;
  const std::uint64_t c01 = ones_b - c11;
  const std::uint64_t c00 = m - c01 - c10 - c11;

  // Multinomial bootstrap via conditional binomials, then Eq. 12 on the
  // resampled fractions.
  const double md = static_cast<double>(m);
  Xoshiro256 rng(options.seed);
  std::vector<double> replicates;
  replicates.reserve(options.resamples);
  for (std::size_t r = 0; r < options.resamples; ++r) {
    const std::uint64_t n00 =
        sample_binomial(m, static_cast<double>(c00) / md, rng);
    std::uint64_t remaining = m - n00;
    const double p01 =
        c00 == static_cast<std::uint64_t>(m)
            ? 0.0
            : static_cast<double>(c01) / static_cast<double>(m - c00);
    const std::uint64_t n01 = sample_binomial(remaining, p01, rng);
    remaining -= n01;
    const double p10 =
        (c10 + c11) == 0
            ? 0.0
            : static_cast<double>(c10) / static_cast<double>(c10 + c11);
    const std::uint64_t n10 = sample_binomial(remaining, p10, rng);
    const std::uint64_t n11 = remaining - n10;

    const double v_a0 = static_cast<double>(n00 + n01) / md;
    const double v_b0 = static_cast<double>(n00 + n10) / md;
    const double v_star1 = static_cast<double>(n11) / md;
    bool degenerate = false;
    replicates.push_back(
        eq12_from_fractions(v_a0, v_b0, v_star1, md, &degenerate));
    if (degenerate) ++interval.degenerate_resamples;
  }

  const double alpha = 1.0 - options.confidence;
  interval.lower = percentile(replicates, 100.0 * alpha / 2.0);
  interval.upper = percentile(replicates, 100.0 * (1.0 - alpha / 2.0));
  return interval;
}

}  // namespace ptm
