// experiment.hpp - multi-trial experiment runners for the paper's
// evaluation (§VI).  One function per experiment family; the bench binaries
// and the statistical tests share these so the numbers in EXPERIMENTS.md
// come from the same code paths the tests validate.
//
// All runners are deterministic in their seed.  `runs` follows the paper's
// protocol (1000 averaged runs) scaled down by default; benches read
// PTM_RUNS to scale back up.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/encoding.hpp"
#include "core/privacy.hpp"

namespace ptm {

// ---------------------------------------------------------------------------
// Fig. 4 - point persistent relative error vs actual persistent volume.
// ---------------------------------------------------------------------------

struct PointSweepConfig {
  std::size_t t = 5;              ///< measurement periods
  double f = 2.0;                 ///< load factor (Eq. 2)
  EncodingParams encoding;        ///< s = 3, murmur3 by default
  std::uint64_t location = 0xA110C;
  std::uint64_t volume_min = 2001;  ///< paper: (2000, 10000]
  std::uint64_t volume_max = 10000;
  double frac_min = 0.01;  ///< n* sweep: frac * n_min
  double frac_max = 0.50;
  double frac_step = 0.01;
  std::size_t runs = 20;   ///< trials averaged per sweep point
  std::uint64_t seed = 1;
};

/// One sweep point: the planted fraction, the mean actual volume across
/// runs, and the mean relative errors of the proposed (Eq. 12) and naive
/// (direct linear counting) estimators.
struct PointSweepCell {
  double fraction = 0.0;
  double mean_actual = 0.0;
  double mean_rel_err_proposed = 0.0;
  double mean_rel_err_naive = 0.0;
  std::size_t degenerate_runs = 0;  ///< proposed estimator gave up (clamped)
};

[[nodiscard]] std::vector<PointSweepCell> run_point_persistent_sweep(
    const PointSweepConfig& config);

// ---------------------------------------------------------------------------
// Figs. 5-6 - scatter of estimated vs actual volume (point and p2p).
// ---------------------------------------------------------------------------

struct ScatterConfig {
  std::size_t t = 5;
  double f = 2.0;
  EncodingParams encoding;
  std::uint64_t volume_min = 2001;
  std::uint64_t volume_max = 10000;
  double frac_min = 0.01;
  double frac_max = 0.50;
  double frac_step = 0.01;
  std::uint64_t seed = 1;
};

struct ScatterPoint {
  double actual = 0.0;
  double estimated = 0.0;
};

/// One (actual, estimated) pair per sweep fraction, point persistent.
[[nodiscard]] std::vector<ScatterPoint> run_point_scatter(
    const ScatterConfig& config);

/// Same for point-to-point persistent (two locations, same volume model).
[[nodiscard]] std::vector<ScatterPoint> run_p2p_scatter(
    const ScatterConfig& config);

// ---------------------------------------------------------------------------
// Table I - Sioux Falls p2p persistent errors.
// ---------------------------------------------------------------------------

struct Table1Config {
  std::size_t runs = 50;  ///< paper: 1000; mean stabilizes far earlier
  std::uint64_t seed = 1;
  EncodingParams encoding;  ///< s forced to the scenario's 3
};

/// Measured mean relative error per Table-I column, for each reported t and
/// for the same-size-bitmap benchmark row, plus the planned sizes so the
/// bench can print the paper's m and m'/m rows.
struct Table1Result {
  std::array<std::uint64_t, 8> m{};      ///< planned m per column (Eq. 2)
  std::uint64_t m_prime = 0;             ///< planned m' (Eq. 2)
  std::array<double, 8> rel_err_t3{};
  std::array<double, 8> rel_err_t5{};
  std::array<double, 8> rel_err_t7{};
  std::array<double, 8> rel_err_t10{};
  std::array<double, 8> rel_err_same_size_t5{};
};

[[nodiscard]] Table1Result run_table1(const Table1Config& config);

// ---------------------------------------------------------------------------
// Table II companion - empirical tracking attack vs the analytic formulas.
// ---------------------------------------------------------------------------

struct PrivacyAttackConfig {
  std::uint64_t n_prime = 20'000;  ///< vehicles passing L'
  double f = 2.0;
  EncodingParams encoding;
  std::size_t trials = 2000;
  std::uint64_t seed = 1;
};

/// Empirical estimates of the §V probabilities from a simulated attack:
/// the adversary knows the target's bit index at L and tests bit equality
/// at L'.  `analytic` holds Eqs. 22-24 evaluated at the same (n', m', s).
struct PrivacyAttackResult {
  double p_hat = 0.0;        ///< empirical false-link probability
  double p_prime_hat = 0.0;  ///< empirical true-link probability
  double ratio_hat = 0.0;    ///< p̂ / (p̂' − p̂)
  PrivacyPoint analytic;
  std::uint64_t m_prime = 0;
};

[[nodiscard]] PrivacyAttackResult run_privacy_attack(
    const PrivacyAttackConfig& config);

}  // namespace ptm
