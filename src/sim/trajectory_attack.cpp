#include "sim/trajectory_attack.hpp"

#include <algorithm>

#include "core/traffic_record.hpp"
#include "traffic/mobility.hpp"
#include "traffic/trip_table.hpp"

namespace ptm {

TrajectoryAttackResult run_trajectory_attack(
    const TrajectoryAttackConfig& config) {
  const VehicleEncoder encoder(config.encoding);

  std::uint64_t true_flagged = 0, true_total = 0;
  std::uint64_t false_flagged = 0, false_total = 0;
  double total_route_len = 0.0;
  double total_flagged = 0.0;
  std::size_t targets = 0;

  for (std::size_t world = 0; world < config.worlds; ++world) {
    Xoshiro256 rng(config.seed + world * 0x9E37ULL);
    const RoadNetwork network =
        generate_road_network(config.zones, 2, rng.next());
    const TripTable demand =
        gravity_model_table(config.zones, 500'000, rng.next());
    const MobilityModel model(network, demand, config.commuters,
                              config.encoding, rng);

    // One measurement period's records; per-zone m planned from each
    // zone's realized volume this period (Eq. 2 needs history; using the
    // realized count is the steady-state equivalent).
    const PeriodTraffic traffic = model.sample_period(config.transients, rng);
    std::vector<std::size_t> volume(config.zones, 0);
    for (const Commuter& c : model.commuters()) {
      for (std::size_t z : c.route) ++volume[z];
    }
    for (const TransientTrip& t : traffic.transients) {
      for (std::size_t z : t.route) ++volume[z];
    }
    std::vector<std::size_t> sizes(config.zones);
    for (std::size_t z = 0; z < config.zones; ++z) {
      sizes[z] = plan_bitmap_size(std::max<double>(volume[z], 64.0),
                                  config.load_factor);
    }
    const auto records =
        build_period_records(model, traffic, sizes, config.encoding);

    // Attack a sample of commuters.
    for (std::size_t k = 0; k < config.targets_per_world; ++k) {
      const Commuter& target =
          model.commuters()[rng.below(model.commuters().size())];
      // The sighting: the adversary learns the target's bit index at the
      // first zone of its route.
      const std::size_t sighting_zone = target.route.front();
      const std::uint64_t observed_raw =
          encoder.raw_hash(target.secrets, sighting_zone);

      ++targets;
      total_route_len += static_cast<double>(target.route.size());
      for (std::size_t z = 0; z < config.zones; ++z) {
        if (z == sighting_zone) continue;
        const bool flagged = records[z].test(static_cast<std::size_t>(
            observed_raw % records[z].size()));
        const bool on_route = std::find(target.route.begin(),
                                        target.route.end(),
                                        z) != target.route.end();
        if (flagged) total_flagged += 1.0;
        if (on_route) {
          ++true_total;
          if (flagged) ++true_flagged;
        } else {
          ++false_total;
          if (flagged) ++false_flagged;
        }
      }
    }
  }

  TrajectoryAttackResult result;
  result.tpr = true_total == 0 ? 0.0
                               : static_cast<double>(true_flagged) /
                                     static_cast<double>(true_total);
  result.fpr = false_total == 0 ? 0.0
                                : static_cast<double>(false_flagged) /
                                      static_cast<double>(false_total);
  const double flagged_total =
      static_cast<double>(true_flagged + false_flagged);
  result.precision = flagged_total == 0.0
                         ? 0.0
                         : static_cast<double>(true_flagged) / flagged_total;
  result.mean_route_length =
      targets == 0 ? 0.0 : total_route_len / static_cast<double>(targets);
  result.mean_flagged =
      targets == 0 ? 0.0 : total_flagged / static_cast<double>(targets);
  return result;
}

}  // namespace ptm
