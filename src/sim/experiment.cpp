#include "sim/experiment.hpp"

#include <cassert>
#include <cmath>

#include "common/math.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "core/p2p_persistent.hpp"
#include "core/point_persistent.hpp"
#include "core/traffic_record.hpp"
#include "traffic/sioux_falls.hpp"
#include "traffic/workload.hpp"

namespace ptm {
namespace {

/// Deterministic per-(cell, run) stream so cells are independent of sweep
/// order and run counts.
Xoshiro256 trial_rng(std::uint64_t seed, std::uint64_t cell,
                     std::uint64_t run) {
  SplitMix64 sm(seed ^ (cell * 0x9E3779B97F4A7C15ULL) ^
                (run * 0xC2B2AE3D27D4EB4FULL));
  return Xoshiro256(sm.next());
}

std::uint64_t min_volume(const std::vector<std::uint64_t>& volumes) {
  std::uint64_t lo = volumes.front();
  for (std::uint64_t v : volumes) lo = std::min(lo, v);
  return lo;
}

}  // namespace

std::vector<PointSweepCell> run_point_persistent_sweep(
    const PointSweepConfig& config) {
  // Enumerate the sweep fractions, then evaluate the cells in parallel
  // (each cell's trials are seeded from its index, so the result is
  // identical to the sequential order).
  std::vector<double> fractions;
  for (double frac = config.frac_min; frac <= config.frac_max + 1e-9;
       frac += config.frac_step) {
    fractions.push_back(frac);
  }
  std::vector<PointSweepCell> cells(fractions.size());

  parallel_for_indexed(fractions.size(), [&](std::size_t cell_index) {
    const double frac = fractions[cell_index];
    RunningStats actual_stats;
    RunningStats err_proposed;
    RunningStats err_naive;
    std::size_t degenerate = 0;

    for (std::size_t run = 0; run < config.runs; ++run) {
      Xoshiro256 rng = trial_rng(config.seed, cell_index, run);
      const auto volumes = draw_period_volumes(
          config.t, config.volume_min, config.volume_max, rng);
      const auto n_star = static_cast<std::size_t>(std::llround(
          frac * static_cast<double>(min_volume(volumes))));
      if (n_star == 0) continue;
      const auto common = make_vehicles(n_star, config.encoding.s, rng);
      const auto records =
          generate_point_records(volumes, common, config.location, config.f,
                                 config.encoding, rng);

      const auto proposed = estimate_point_persistent(records);
      const auto naive = estimate_point_persistent_naive(records);
      assert(proposed && naive);
      const double actual = static_cast<double>(n_star);
      actual_stats.add(actual);
      err_proposed.add(relative_error(proposed->n_star, actual));
      err_naive.add(relative_error(naive->value, actual));
      if (proposed->outcome == EstimateOutcome::kDegenerate) ++degenerate;
    }

    PointSweepCell& cell = cells[cell_index];
    cell.fraction = frac;
    cell.mean_actual = actual_stats.mean();
    cell.mean_rel_err_proposed = err_proposed.mean();
    cell.mean_rel_err_naive = err_naive.mean();
    cell.degenerate_runs = degenerate;
  });
  return cells;
}

std::vector<ScatterPoint> run_point_scatter(const ScatterConfig& config) {
  std::vector<ScatterPoint> points;
  std::uint64_t cell_index = 0;
  for (double frac = config.frac_min; frac <= config.frac_max + 1e-9;
       frac += config.frac_step, ++cell_index) {
    Xoshiro256 rng = trial_rng(config.seed, cell_index, 0);
    const auto volumes = draw_period_volumes(config.t, config.volume_min,
                                             config.volume_max, rng);
    const auto n_star = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(min_volume(volumes))));
    if (n_star == 0) continue;
    const auto common = make_vehicles(n_star, config.encoding.s, rng);
    const auto records = generate_point_records(
        volumes, common, 0xA110C, config.f, config.encoding, rng);
    const auto est = estimate_point_persistent(records);
    assert(est);
    points.push_back({static_cast<double>(n_star), est->n_star});
  }
  return points;
}

std::vector<ScatterPoint> run_p2p_scatter(const ScatterConfig& config) {
  std::vector<ScatterPoint> points;
  std::uint64_t cell_index = 0;
  for (double frac = config.frac_min; frac <= config.frac_max + 1e-9;
       frac += config.frac_step, ++cell_index) {
    Xoshiro256 rng = trial_rng(config.seed ^ 0xB0B, cell_index, 0);
    const auto volumes_l = draw_period_volumes(config.t, config.volume_min,
                                               config.volume_max, rng);
    const auto volumes_lp = draw_period_volumes(config.t, config.volume_min,
                                                config.volume_max, rng);
    const std::uint64_t n_min =
        std::min(min_volume(volumes_l), min_volume(volumes_lp));
    const auto n_pp = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(n_min)));
    if (n_pp == 0) continue;
    const auto common = make_vehicles(n_pp, config.encoding.s, rng);
    const auto records = generate_p2p_records(
        volumes_l, volumes_lp, common, 0xAAAA, 0xBBBB, config.f,
        config.encoding, rng);
    PointToPointOptions options;
    options.s = config.encoding.s;
    const auto est =
        estimate_p2p_persistent(records.at_l, records.at_l_prime, options);
    assert(est);
    points.push_back({static_cast<double>(n_pp), est->n_double_prime});
  }
  return points;
}

Table1Result run_table1(const Table1Config& config) {
  const SiouxFallsScenario& scenario = sioux_falls_scenario();
  EncodingParams encoding = config.encoding;
  encoding.s = scenario.s;

  Table1Result result;
  result.m_prime = plan_bitmap_size(
      static_cast<double>(scenario.n_prime), scenario.f);

  constexpr std::size_t kMaxT = 10;
  const std::array<std::size_t, 4> t_values = {3, 5, 7, 10};

  // Columns are independent; parallelize across them (trial RNGs are
  // (column, run)-seeded, so results match the sequential order).
  parallel_for_indexed(scenario.columns.size(), [&](std::size_t col) {
    const SiouxFallsColumn& column = scenario.columns[col];
    result.m[col] =
        plan_bitmap_size(static_cast<double>(column.n), scenario.f);

    std::array<RunningStats, 4> err_by_t;
    RunningStats err_same_size;
    const std::vector<std::uint64_t> volumes_l(kMaxT, column.n);
    const std::vector<std::uint64_t> volumes_lp(kMaxT, scenario.n_prime);
    const double actual = static_cast<double>(column.n_double_prime);

    PointToPointOptions options;
    options.s = scenario.s;

    for (std::size_t run = 0; run < config.runs; ++run) {
      Xoshiro256 rng = trial_rng(config.seed, col, run);
      const auto common =
          make_vehicles(column.n_double_prime, encoding.s, rng);

      // One 10-period simulation serves every t row via prefixes.
      const auto records = generate_p2p_records(
          volumes_l, volumes_lp, common, 0x1000 + col, 0x2000, scenario.f,
          encoding, rng);
      for (std::size_t ti = 0; ti < t_values.size(); ++ti) {
        const std::size_t t = t_values[ti];
        const auto est = estimate_p2p_persistent(
            std::span(records.at_l).subspan(0, t),
            std::span(records.at_l_prime).subspan(0, t), options);
        assert(est);
        err_by_t[ti].add(relative_error(est->n_double_prime, actual));
      }

      // Same-size benchmark row (t = 5): plan m' from L's volume.
      const std::vector<std::uint64_t> volumes_l5(5, column.n);
      const std::vector<std::uint64_t> volumes_lp5(5, scenario.n_prime);
      const auto same_size = generate_p2p_records(
          volumes_l5, volumes_lp5, common, 0x1000 + col, 0x2000, scenario.f,
          encoding, rng, /*same_size_benchmark=*/true);
      const auto est_same = estimate_p2p_persistent(
          same_size.at_l, same_size.at_l_prime, options);
      assert(est_same);
      err_same_size.add(relative_error(est_same->n_double_prime, actual));
    }

    result.rel_err_t3[col] = err_by_t[0].mean();
    result.rel_err_t5[col] = err_by_t[1].mean();
    result.rel_err_t7[col] = err_by_t[2].mean();
    result.rel_err_t10[col] = err_by_t[3].mean();
    result.rel_err_same_size_t5[col] = err_same_size.mean();
  });
  return result;
}

PrivacyAttackResult run_privacy_attack(const PrivacyAttackConfig& config) {
  PrivacyAttackResult result;
  const std::size_t m_prime = plan_bitmap_size(
      static_cast<double>(config.n_prime), config.f);
  result.m_prime = m_prime;
  result.analytic = privacy_point(static_cast<double>(config.n_prime),
                                  static_cast<double>(m_prime),
                                  config.encoding.s);

  const VehicleEncoder encoder(config.encoding);
  constexpr std::uint64_t kLocationL = 0xAAAA;
  constexpr std::uint64_t kLocationLPrime = 0xBBBB;

  std::uint64_t hits_without_v = 0;
  std::uint64_t hits_with_v = 0;
  Xoshiro256 rng(config.seed ^ 0x5EC2E7ULL);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    // Target vehicle: the adversary learned its bit index at L
    // (out-of-band sighting, §V).
    const VehicleSecrets target =
        VehicleSecrets::create(rng.next(), config.encoding.s, rng);
    const auto observed_index = static_cast<std::size_t>(
        encoder.bit_index(target, kLocationL, m_prime));

    // Build L''s record from n' unrelated vehicles.
    Bitmap record(m_prime);
    add_transient_traffic(record, config.n_prime, rng);
    if (record.test(observed_index)) ++hits_without_v;

    // Now the world where the target DID pass L'.
    encoder.encode(target, kLocationLPrime, record);
    if (record.test(observed_index)) ++hits_with_v;
  }

  const auto trials = static_cast<double>(config.trials);
  result.p_hat = static_cast<double>(hits_without_v) / trials;
  result.p_prime_hat = static_cast<double>(hits_with_v) / trials;
  const double info = result.p_prime_hat - result.p_hat;
  result.ratio_hat = info > 0.0 ? result.p_hat / info
                                : std::numeric_limits<double>::infinity();
  return result;
}

}  // namespace ptm
