// trajectory_attack.hpp - an empirical trajectory-reconstruction attack.
//
// §V analyzes the two-location tracking question; a determined adversary
// would go further: having linked a target vehicle to bit index i at one
// intersection (an out-of-band sighting), scan EVERY intersection's record
// for bit (i mod m_z) and call the set of hits the target's route.  This
// module measures how well that works against trajectory ground truth from
// the mobility model, as a function of the privacy knobs:
//
//   * TPR  - fraction of true on-route zones flagged (recall; the §V p'
//            at route scale),
//   * FPR  - fraction of off-route zones flagged (the noise p),
//   * precision - how much of the "reconstructed route" is real.
//
// The paper's defense claims translate to: FPR stays comparable to TPR
// (high deniability), and precision degrades toward the base rate as f
// shrinks or s grows.  bench_ablation_trajectory sweeps both.
#pragma once

#include <cstdint>

#include "core/encoding.hpp"

namespace ptm {

struct TrajectoryAttackConfig {
  std::size_t zones = 24;
  std::size_t commuters = 1500;      ///< persistent fleet (attack pool)
  std::size_t transients = 10000;    ///< per-period one-off trips
  double load_factor = 2.0;          ///< f - per-zone Eq. 2 sizing
  EncodingParams encoding;           ///< s, hash family
  std::size_t worlds = 3;            ///< independent road networks/records
  std::size_t targets_per_world = 60;
  std::uint64_t seed = 1;
};

struct TrajectoryAttackResult {
  double tpr = 0.0;        ///< on-route zones flagged (excl. sighting zone)
  double fpr = 0.0;        ///< off-route zones flagged
  double precision = 0.0;  ///< flagged zones that are truly on-route
  double mean_route_length = 0.0;
  double mean_flagged = 0.0;  ///< zones flagged per target
};

/// Runs the attack over `worlds` independent record sets.
[[nodiscard]] TrajectoryAttackResult run_trajectory_attack(
    const TrajectoryAttackConfig& config);

}  // namespace ptm
