#include "sim/event_sim.hpp"

#include <cassert>
#include <cmath>
#include <queue>

namespace ptm {
namespace {

enum class EventType { kBeacon, kArrival, kDeparture };

struct Event {
  double time = 0.0;
  EventType type = EventType::kBeacon;
  std::size_t vehicle = 0;  // for arrival/departure

  // Min-heap ordering; ties resolve beacons first so a vehicle arriving at
  // the exact beacon instant misses it (it was not yet listening).
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return static_cast<int>(type) > static_cast<int>(other.type);
  }
};

struct VehicleState {
  double arrival = 0.0;
  double departure = 0.0;
  bool encoded = false;
};

}  // namespace

EventSimResult run_event_sim(const EventSimConfig& config, Xoshiro256& rng) {
  assert(config.period_duration > 0 && config.beacon_interval > 0 &&
         config.mean_dwell > 0 && config.handshake_latency >= 0 &&
         config.arrival_rate > 0);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;

  // Schedule all beacons up front.
  std::uint64_t beacons = 0;
  for (double t = config.beacon_interval; t < config.period_duration;
       t += config.beacon_interval) {
    queue.push({t, EventType::kBeacon, 0});
    ++beacons;
  }

  // Poisson arrivals with exponential dwell times.
  std::vector<VehicleState> vehicles;
  auto exponential = [&rng](double mean) {
    return -mean * std::log(1.0 - rng.uniform01());
  };
  for (double t = exponential(1.0 / config.arrival_rate);
       t < config.period_duration;
       t += exponential(1.0 / config.arrival_rate)) {
    VehicleState v;
    v.arrival = t;
    v.departure = t + exponential(config.mean_dwell);
    queue.push({v.arrival, EventType::kArrival, vehicles.size()});
    queue.push({v.departure, EventType::kDeparture, vehicles.size()});
    vehicles.push_back(v);
  }

  // Event loop: track who is in range; each beacon encodes every in-range
  // vehicle that (a) has not encoded yet and (b) will remain in range long
  // enough to finish the handshake.
  std::vector<std::size_t> in_range;
  std::uint64_t encoded = 0;
  double total_time_to_encode = 0.0;

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    switch (event.type) {
      case EventType::kArrival:
        in_range.push_back(event.vehicle);
        break;
      case EventType::kDeparture:
        std::erase(in_range, event.vehicle);
        break;
      case EventType::kBeacon:
        for (std::size_t id : in_range) {
          VehicleState& v = vehicles[id];
          if (v.encoded) continue;
          if (event.time + config.handshake_latency <= v.departure) {
            v.encoded = true;
            ++encoded;
            total_time_to_encode +=
                event.time + config.handshake_latency - v.arrival;
          }
        }
        break;
    }
  }

  EventSimResult result;
  result.arrivals = vehicles.size();
  result.encoded = encoded;
  result.beacons_sent = beacons;
  result.coverage = vehicles.empty()
                        ? 0.0
                        : static_cast<double>(encoded) /
                              static_cast<double>(vehicles.size());
  result.mean_time_to_encode =
      encoded == 0 ? 0.0 : total_time_to_encode / static_cast<double>(encoded);
  return result;
}

double analytic_coverage(const EventSimConfig& config) {
  const double mu = config.mean_dwell;
  const double interval = config.beacon_interval;
  const double latency = config.handshake_latency;
  // P(dwell > latency + U * I) with U ~ Uniform(0, 1), dwell ~ Exp(mu):
  //   E_U[ e^{-(latency + U I)/mu} ]
  //   = e^{-latency/mu} * (mu / I) * (1 - e^{-I/mu}).
  return std::exp(-latency / mu) * (mu / interval) *
         (1.0 - std::exp(-interval / mu));
}

}  // namespace ptm
