// event_sim.hpp - discrete-event simulation of RSU radio timing.
//
// §II-D assumes "beacons in preset intervals, such as once per second,
// ensuring that each passing vehicle will be able to receive a beacon".
// This module tests that assumption with a real event-driven model: an RSU
// broadcasts every `beacon_interval` seconds; vehicles arrive as a Poisson
// process and stay in radio range for an exponential dwell time; a vehicle
// is encoded iff a beacon fires while it is in range with at least
// `handshake_latency` of dwell remaining.  The closed-form coverage under
// this model (uniform beacon phase at arrival, exponential dwell) is
//
//   P(encoded) = e^(−L/μ) · (μ/I) · (1 − e^(−I/μ)),
//
// with I = beacon interval, μ = mean dwell, L = handshake latency -
// exposed as `analytic_coverage` and validated against the simulation in
// tests; bench_ablation_beacon sweeps I to show where the paper's
// assumption holds and where slow beaconing starts to undercount.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"

namespace ptm {

struct EventSimConfig {
  double period_duration = 3600.0;   ///< seconds per measurement period
  double beacon_interval = 1.0;      ///< I - seconds between broadcasts
  double mean_dwell = 8.0;           ///< μ - mean seconds in radio range
  double handshake_latency = 0.05;   ///< L - auth+encode round trips
  double arrival_rate = 0.5;         ///< vehicles per second (Poisson)
};

struct EventSimResult {
  std::uint64_t arrivals = 0;       ///< vehicles that entered radio range
  std::uint64_t encoded = 0;        ///< vehicles that completed encoding
  std::uint64_t beacons_sent = 0;
  double coverage = 0.0;            ///< encoded / arrivals
  double mean_time_to_encode = 0.0; ///< arrival -> encode latency, encoded only
};

/// Runs one measurement period of the event-driven model.
[[nodiscard]] EventSimResult run_event_sim(const EventSimConfig& config,
                                           Xoshiro256& rng);

/// The closed-form coverage probability for the same model.
[[nodiscard]] double analytic_coverage(const EventSimConfig& config);

}  // namespace ptm
