// keyfile.hpp - on-disk form of the PKI material (paper §II-B) so the
// transport tools can share credentials across processes.
//
// `ptmctl auth-init` mints a test CA and writes these files; `ptmd` loads
// the CA public key (--ca-cert), `rsu-emu` / `loadgen` / `ptmctl ping`
// load a keypair + issued certificate (--key / --cert).  The format is
// deliberately trivial - a magic line naming the type, then the existing
// binary serialization hex-encoded on one line - because the payloads
// already have fuzzed, bounds-checked codecs; the file layer only has to
// be unambiguous and diff-friendly:
//
//   PTM-PUB-V1\n  <hex of RsaPublicKey::serialize()>\n
//   PTM-KEY-V1\n  <hex of RsaKeyPair::serialize()>\n
//   PTM-CERT-V1\n <hex of Certificate::serialize()>\n
//
// Loaders reject a wrong magic (so a private key can never be read where
// a certificate was expected), non-hex bytes, and anything the underlying
// deserialize rejects (including inverted validity windows).
#pragma once

#include <string>

#include "common/status.hpp"
#include "crypto/certificate.hpp"
#include "crypto/rsa.hpp"

namespace ptm {

[[nodiscard]] Status save_public_key_file(const std::string& path,
                                          const RsaPublicKey& key);
[[nodiscard]] Result<RsaPublicKey> load_public_key_file(
    const std::string& path);

[[nodiscard]] Status save_keypair_file(const std::string& path,
                                       const RsaKeyPair& keys);
[[nodiscard]] Result<RsaKeyPair> load_keypair_file(const std::string& path);

[[nodiscard]] Status save_certificate_file(const std::string& path,
                                           const Certificate& cert);
[[nodiscard]] Result<Certificate> load_certificate_file(
    const std::string& path);

}  // namespace ptm
