// certificate.hpp - public-key certificates and the trusted third party
// (paper §II-B).
//
// Each RSU carries a certificate binding its identity (location code) to its
// public key, signed by a trusted third party whose public key is
// pre-installed in every vehicle.  A vehicle verifies the certificate from a
// beacon, then uses the RSU's key to authenticate the RSU itself; rogue RSUs
// fail this chain and are ignored.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"
#include "crypto/rsa.hpp"

namespace ptm {

struct Certificate {
  std::string subject;        ///< e.g. "rsu:12" - bound identity
  std::uint64_t subject_id = 0;  ///< numeric form (RSU location code)
  RsaPublicKey subject_key;   ///< the certified public key
  std::string issuer;         ///< CA name
  std::uint64_t valid_from = 0;  ///< first valid measurement period
  std::uint64_t valid_until = 0; ///< last valid measurement period
  std::vector<std::uint8_t> signature;  ///< CA signature over tbs_bytes()

  /// The to-be-signed serialization (everything except the signature).
  [[nodiscard]] std::vector<std::uint8_t> tbs_bytes() const;

  /// Full wire form including the signature.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Result<Certificate> deserialize(
      std::span<const std::uint8_t> bytes);
};

/// The trusted third party.  Vehicles hold `public_key()`; RSUs hold
/// certificates issued by `issue()`.
class CertificateAuthority {
 public:
  /// Creates a CA with a fresh keypair of the given modulus size.
  CertificateAuthority(std::string name, std::size_t modulus_bits,
                       Xoshiro256& rng);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const RsaPublicKey& public_key() const noexcept {
    return keys_.pub;
  }

  /// Issues a certificate for `subject_key` bound to the subject identity,
  /// valid over the inclusive period range.  InvalidArgument on an
  /// inverted window (valid_from > valid_until): no period can ever
  /// satisfy it, so signing one would mint a credential that is broken by
  /// construction.
  [[nodiscard]] Result<Certificate> issue(std::string subject,
                                          std::uint64_t subject_id,
                                          const RsaPublicKey& subject_key,
                                          std::uint64_t valid_from,
                                          std::uint64_t valid_until) const;

 private:
  std::string name_;
  RsaKeyPair keys_;
};

/// Verifies `cert` against the CA public key and checks that `period` falls
/// in the validity window.  Returns AuthFailure with a reason on any
/// mismatch.
[[nodiscard]] Status verify_certificate(const Certificate& cert,
                                        const RsaPublicKey& ca_key,
                                        std::uint64_t period);

}  // namespace ptm
