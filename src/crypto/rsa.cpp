#include "crypto/rsa.hpp"

#include <array>
#include <cassert>
#include <cstdlib>

#include "common/serialize.hpp"
#include "hash/sha256.hpp"

namespace ptm {
namespace {

// Small primes for fast rejection before Miller-Rabin.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

/// EMSA-PKCS1-v1_5-style encoding of a SHA-256 digest into `len` bytes:
/// 0x00 0x01 0xFF..0xFF 0x00 <digest>.  Requires len >= digest + 11.
std::vector<std::uint8_t> pad_digest(const Sha256Digest& digest,
                                     std::size_t len) {
  // A modulus too narrow for the padding is a key-generation bug; fail
  // loudly even in NDEBUG builds rather than writing out of bounds.
  if (len < digest.size() + 11) std::abort();
  std::vector<std::uint8_t> out(len, 0xFF);
  out[0] = 0x00;
  out[1] = 0x01;
  out[len - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(),
            out.begin() + static_cast<std::ptrdiff_t>(len - digest.size()));
  return out;
}

}  // namespace

std::vector<std::uint8_t> RsaPublicKey::serialize() const {
  ByteWriter w;
  const auto n_bytes = n.to_be_bytes();
  const auto e_bytes = e.to_be_bytes();
  w.bytes(n_bytes);
  w.bytes(e_bytes);
  return w.take();
}

Result<RsaPublicKey> RsaPublicKey::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto n_bytes = r.bytes();
  if (!n_bytes) return n_bytes.status();
  auto e_bytes = r.bytes();
  if (!e_bytes) return e_bytes.status();
  RsaPublicKey pub;
  pub.n = BigInt::from_be_bytes(*n_bytes);
  pub.e = BigInt::from_be_bytes(*e_bytes);
  if (pub.n.is_zero() || pub.e.is_zero()) {
    return Status{ErrorCode::kParseError, "degenerate RSA public key"};
  }
  return pub;
}

std::vector<std::uint8_t> RsaKeyPair::serialize() const {
  ByteWriter w;
  w.bytes(pub.serialize());
  w.bytes(d.to_be_bytes());
  return w.take();
}

Result<RsaKeyPair> RsaKeyPair::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto pub_bytes = r.bytes();
  if (!pub_bytes) return pub_bytes.status();
  auto pub = RsaPublicKey::deserialize(*pub_bytes);
  if (!pub) return pub.status();
  auto d_bytes = r.bytes();
  if (!d_bytes) return d_bytes.status();
  if (!r.exhausted()) {
    return Status{ErrorCode::kParseError, "trailing bytes after RSA keypair"};
  }
  RsaKeyPair keys;
  keys.pub = std::move(*pub);
  keys.d = BigInt::from_be_bytes(*d_bytes);
  if (keys.d.is_zero()) {
    return Status{ErrorCode::kParseError, "degenerate RSA private exponent"};
  }
  return keys;
}

bool is_probable_prime(const BigInt& candidate, Xoshiro256& rng, int rounds) {
  if (candidate.bit_length() <= 10) {
    const std::uint64_t v = candidate.low_u64();
    if (v < 2) return false;
    for (std::uint32_t p : kSmallPrimes) {
      if (v == p) return true;
      if (v % p == 0) return false;
    }
    // All composites below 257^2 have a factor in kSmallPrimes.
    return true;
  }
  if (!candidate.is_odd()) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (candidate.mod_small(p) == 0) return false;
  }

  // Write candidate - 1 = d * 2^r.
  const BigInt one(1);
  const BigInt two(2);
  const BigInt n_minus_1 = BigInt::sub(candidate, one);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = BigInt::shr(d, 1);
    ++r;
  }

  const BigInt three(3);
  const BigInt n_minus_3 = BigInt::sub(candidate, three);
  for (int round = 0; round < rounds; ++round) {
    // Base in [2, candidate - 2].
    const BigInt a = BigInt::add(BigInt::random_below(n_minus_3, rng), two);
    BigInt x = BigInt::powmod(a, d, candidate);
    if (x == one || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = BigInt::mulmod(x, x, candidate);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, Xoshiro256& rng) {
  assert(bits >= 16);
  for (;;) {
    BigInt candidate = BigInt::random_with_bits(bits, rng);
    if (!candidate.is_odd()) candidate = BigInt::add(candidate, BigInt(1));
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

RsaKeyPair rsa_generate(std::size_t modulus_bits, Xoshiro256& rng) {
  assert(modulus_bits >= 344);  // see rsa.hpp: padding needs 43 bytes
  const BigInt e(65537);
  const BigInt one(1);
  for (;;) {
    const std::size_t half = modulus_bits / 2;
    const BigInt p = generate_prime(half, rng);
    const BigInt q = generate_prime(modulus_bits - half, rng);
    if (p == q) continue;
    const BigInt n = BigInt::mul(p, q);
    const BigInt phi =
        BigInt::mul(BigInt::sub(p, one), BigInt::sub(q, one));
    if (!(BigInt::gcd(e, phi) == one)) continue;
    const BigInt d = BigInt::modinv(e, phi);
    if (d.is_zero()) continue;
    RsaKeyPair kp;
    kp.pub.n = n;
    kp.pub.e = e;
    kp.d = d;
    return kp;
  }
}

std::vector<std::uint8_t> rsa_sign(const RsaKeyPair& key,
                                   std::span<const std::uint8_t> message) {
  const Sha256Digest digest = Sha256::digest(message);
  const std::size_t len = (key.pub.modulus_bits() + 7) / 8;
  const auto em = pad_digest(digest, len);
  const BigInt m = BigInt::from_be_bytes(em);
  const BigInt s = BigInt::powmod(m, key.d, key.pub.n);
  // Fixed-width big-endian output so verify can round-trip exactly.
  auto raw = s.to_be_bytes();
  std::vector<std::uint8_t> out(len, 0);
  std::copy(raw.begin(), raw.end(),
            out.begin() + static_cast<std::ptrdiff_t>(len - raw.size()));
  return out;
}

bool rsa_verify(const RsaPublicKey& pub, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) {
  const std::size_t len = (pub.modulus_bits() + 7) / 8;
  if (signature.size() != len) return false;
  const BigInt s = BigInt::from_be_bytes(signature);
  if (s >= pub.n) return false;
  const BigInt m = BigInt::powmod(s, pub.e, pub.n);
  const Sha256Digest digest = Sha256::digest(message);
  const auto expected = pad_digest(digest, len);
  const BigInt expected_int = BigInt::from_be_bytes(expected);
  return m == expected_int;
}

}  // namespace ptm
