#include "crypto/certificate.hpp"

#include "common/serialize.hpp"

namespace ptm {

std::vector<std::uint8_t> Certificate::tbs_bytes() const {
  ByteWriter w;
  w.str(subject);
  w.u64(subject_id);
  const auto key_bytes = subject_key.serialize();
  w.bytes(key_bytes);
  w.str(issuer);
  w.u64(valid_from);
  w.u64(valid_until);
  return w.take();
}

std::vector<std::uint8_t> Certificate::serialize() const {
  ByteWriter w;
  const auto tbs = tbs_bytes();
  w.bytes(tbs);
  w.bytes(signature);
  return w.take();
}

Result<Certificate> Certificate::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader outer(bytes);
  auto tbs = outer.bytes();
  if (!tbs) return tbs.status();
  auto sig = outer.bytes();
  if (!sig) return sig.status();

  ByteReader r(*tbs);
  Certificate cert;
  auto subject = r.str();
  if (!subject) return subject.status();
  cert.subject = std::move(*subject);
  auto subject_id = r.u64();
  if (!subject_id) return subject_id.status();
  cert.subject_id = *subject_id;
  auto key_bytes = r.bytes();
  if (!key_bytes) return key_bytes.status();
  auto key = RsaPublicKey::deserialize(*key_bytes);
  if (!key) return key.status();
  cert.subject_key = std::move(*key);
  auto issuer = r.str();
  if (!issuer) return issuer.status();
  cert.issuer = std::move(*issuer);
  auto from = r.u64();
  if (!from) return from.status();
  cert.valid_from = *from;
  auto until = r.u64();
  if (!until) return until.status();
  cert.valid_until = *until;
  if (cert.valid_from > cert.valid_until) {
    return Status{ErrorCode::kInvalidArgument,
                  "certificate validity window inverted "
                  "(valid_from > valid_until)"};
  }
  // Exactly one encoding per certificate: trailing bytes (in the envelope
  // or smuggled inside the tbs blob) would let distinct wire forms decode
  // to the same verified identity.
  if (!outer.exhausted() || !r.exhausted()) {
    return Status{ErrorCode::kParseError,
                  "trailing bytes after certificate"};
  }
  cert.signature = std::move(*sig);
  return cert;
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           std::size_t modulus_bits,
                                           Xoshiro256& rng)
    : name_(std::move(name)), keys_(rsa_generate(modulus_bits, rng)) {}

Result<Certificate> CertificateAuthority::issue(
    std::string subject, std::uint64_t subject_id,
    const RsaPublicKey& subject_key, std::uint64_t valid_from,
    std::uint64_t valid_until) const {
  if (valid_from > valid_until) {
    return Status{ErrorCode::kInvalidArgument,
                  "refusing to issue certificate with inverted validity "
                  "window (valid_from > valid_until)"};
  }
  Certificate cert;
  cert.subject = std::move(subject);
  cert.subject_id = subject_id;
  cert.subject_key = subject_key;
  cert.issuer = name_;
  cert.valid_from = valid_from;
  cert.valid_until = valid_until;
  cert.signature = rsa_sign(keys_, cert.tbs_bytes());
  return cert;
}

Status verify_certificate(const Certificate& cert, const RsaPublicKey& ca_key,
                          std::uint64_t period) {
  if (period < cert.valid_from || period > cert.valid_until) {
    return {ErrorCode::kAuthFailure, "certificate outside validity window"};
  }
  if (!rsa_verify(ca_key, cert.tbs_bytes(), cert.signature)) {
    return {ErrorCode::kAuthFailure, "certificate signature invalid"};
  }
  return Status::ok();
}

}  // namespace ptm
