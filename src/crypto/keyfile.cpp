#include "crypto/keyfile.hpp"

#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <string_view>
#include <vector>

namespace ptm {
namespace {

constexpr std::string_view kPubMagic = "PTM-PUB-V1";
constexpr std::string_view kKeyMagic = "PTM-KEY-V1";
constexpr std::string_view kCertMagic = "PTM-CERT-V1";

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

int hex_nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Status save_hex_file(const std::string& path, std::string_view magic,
                     std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return {ErrorCode::kInternal, "cannot open for write: " + path};
  }
  out << magic << '\n' << to_hex(bytes) << '\n';
  out.flush();
  if (!out) return {ErrorCode::kInternal, "write failed: " + path};
  return Status::ok();
}

Result<std::vector<std::uint8_t>> load_hex_file(const std::string& path,
                                                std::string_view magic) {
  std::ifstream in(path);
  if (!in) return Status{ErrorCode::kNotFound, "cannot open: " + path};
  std::string line;
  if (!std::getline(in, line)) {
    return Status{ErrorCode::kParseError, "empty key file: " + path};
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != magic) {
    return Status{ErrorCode::kParseError,
                  path + ": expected " + std::string(magic) + ", found \"" +
                      line + "\""};
  }
  std::string hex;
  if (!std::getline(in, hex)) {
    return Status{ErrorCode::kParseError, "missing payload line: " + path};
  }
  if (!hex.empty() && hex.back() == '\r') hex.pop_back();
  if (hex.empty() || hex.size() % 2 != 0) {
    return Status{ErrorCode::kParseError,
                  path + ": payload must be non-empty even-length hex"};
  }
  std::vector<std::uint8_t> bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status{ErrorCode::kParseError,
                    path + ": non-hex byte in payload"};
    }
    bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return bytes;
}

}  // namespace

Status save_public_key_file(const std::string& path,
                            const RsaPublicKey& key) {
  return save_hex_file(path, kPubMagic, key.serialize());
}

Result<RsaPublicKey> load_public_key_file(const std::string& path) {
  auto bytes = load_hex_file(path, kPubMagic);
  if (!bytes) return bytes.status();
  return RsaPublicKey::deserialize(*bytes);
}

Status save_keypair_file(const std::string& path, const RsaKeyPair& keys) {
  return save_hex_file(path, kKeyMagic, keys.serialize());
}

Result<RsaKeyPair> load_keypair_file(const std::string& path) {
  auto bytes = load_hex_file(path, kKeyMagic);
  if (!bytes) return bytes.status();
  return RsaKeyPair::deserialize(*bytes);
}

Status save_certificate_file(const std::string& path,
                             const Certificate& cert) {
  return save_hex_file(path, kCertMagic, cert.serialize());
}

Result<Certificate> load_certificate_file(const std::string& path) {
  auto bytes = load_hex_file(path, kCertMagic);
  if (!bytes) return bytes.status();
  return Certificate::deserialize(*bytes);
}

}  // namespace ptm
