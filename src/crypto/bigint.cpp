#include "crypto/bigint.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ptm {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

BigInt BigInt::from_be_bytes(std::span<const std::uint8_t> bytes) {
  BigInt out;
  for (std::uint8_t b : bytes) {
    // out = out * 256 + b, done limb-wise for efficiency.
    std::uint64_t carry = b;
    for (auto& limb : out.limbs_) {
      const std::uint64_t v = (static_cast<std::uint64_t>(limb) << 8) | carry;
      limb = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  out.trim();
  return out;
}

std::vector<std::uint8_t> BigInt::to_be_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(limbs_.size() * 4);
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    out.push_back(static_cast<std::uint8_t>(*it >> 24));
    out.push_back(static_cast<std::uint8_t>(*it >> 16));
    out.push_back(static_cast<std::uint8_t>(*it >> 8));
    out.push_back(static_cast<std::uint8_t>(*it));
  }
  // Strip leading zeros.
  std::size_t first = 0;
  while (first < out.size() && out[first] == 0) ++first;
  out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(first));
  return out;
}

BigInt BigInt::random_with_bits(std::size_t bits, Xoshiro256& rng) {
  assert(bits >= 1);
  BigInt out;
  const std::size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) {
    limb = static_cast<std::uint32_t>(rng.next());
  }
  const std::size_t top_bits = bits - (limbs - 1) * 32;  // 1..32
  std::uint32_t& top = out.limbs_.back();
  if (top_bits < 32) top &= (1U << top_bits) - 1;
  top |= 1U << (top_bits - 1);  // force exact bit length
  out.trim();
  return out;
}

BigInt BigInt::random_below(const BigInt& bound, Xoshiro256& rng) {
  assert(!bound.is_zero());
  const std::size_t bits = bound.bit_length();
  // Rejection sampling over [0, 2^bits).
  for (;;) {
    BigInt candidate;
    const std::size_t limbs = (bits + 31) / 32;
    candidate.limbs_.resize(limbs);
    for (auto& limb : candidate.limbs_) {
      limb = static_cast<std::uint32_t>(rng.next());
    }
    const std::size_t top_bits = bits - (limbs - 1) * 32;
    if (top_bits < 32) candidate.limbs_.back() &= (1U << top_bits) - 1;
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  for (int i = 31; i >= 0; --i) {
    if (top & (1U << i)) return bits + static_cast<std::size_t>(i) + 1;
  }
  return bits;  // unreachable: trim() removes zero top limbs
}

bool BigInt::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1U;
}

std::uint64_t BigInt::low_u64() const noexcept {
  std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::compare(const BigInt& a, const BigInt& b) noexcept {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::add(const BigInt& a, const BigInt& b) {
  BigInt out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::sub(const BigInt& a, const BigInt& b) {
  assert(compare(a, b) >= 0 && "BigInt::sub requires a >= b");
  BigInt out;
  out.limbs_.resize(a.limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt BigInt::mul(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return {};
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry) {
      const std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::shl(const BigInt& a, std::size_t bits) {
  if (a.is_zero() || bits == 0) return a;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(a.limbs_[i])
                            << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::shr(const BigInt& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= a.limbs_.size()) return {};
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v =
        static_cast<std::uint64_t>(a.limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<std::uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

BigIntDivMod BigInt::divmod(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw std::domain_error("BigInt division by zero");
  if (compare(a, b) < 0) return {BigInt{}, a};
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const std::uint64_t d = b.limbs_[0];
    BigInt q;
    q.limbs_.resize(a.limbs_.size());
    std::uint64_t rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt(rem)};
  }

  // Knuth Algorithm D.  Normalize so the divisor's top limb has its high
  // bit set, which bounds the quotient-digit guess error to 2.
  const std::size_t shift = 32 - (b.bit_length() % 32 == 0
                                      ? 32
                                      : b.bit_length() % 32);
  const BigInt u = shl(a, shift);
  const BigInt v = shl(b, shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<std::uint32_t> un(u.limbs_);
  un.push_back(0);  // u gets one extra high limb
  const std::vector<std::uint32_t>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate the quotient digit from the top two/three limbs.
    const std::uint64_t numerator =
        (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    std::uint64_t qhat = numerator / vn[n - 1];
    std::uint64_t rhat = numerator % vn[n - 1];
    while (qhat >= kBase ||
           qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * vn[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(un[i + j]) -
                             static_cast<std::int64_t>(p & 0xffffffffULL) -
                             borrow;
      un[i + j] = static_cast<std::uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    un[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large: add v back.
      --qhat;
      std::uint64_t carry2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(un[i + j]) + vn[i] + carry2;
        un[i + j] = static_cast<std::uint32_t>(sum);
        carry2 = sum >> 32;
      }
      un[j + n] = static_cast<std::uint32_t>(un[j + n] + carry2);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  q.trim();
  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  return {q, shr(r, shift)};
}

BigInt BigInt::mod(const BigInt& a, const BigInt& m) {
  return divmod(a, m).remainder;
}

BigInt BigInt::mulmod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return mod(mul(a, b), m);
}

BigInt BigInt::powmod(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!m.is_zero());
  BigInt result(1);
  BigInt acc = mod(base, m);
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mulmod(result, acc, m);
    if (i + 1 < bits) acc = mulmod(acc, acc, m);
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::modinv(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking only the coefficient of `a`, with signs
  // handled explicitly since BigInt is unsigned.
  BigInt old_r = mod(a, m), r = m;
  BigInt old_s(1), s{};
  bool old_s_neg = false, s_neg = false;

  while (!r.is_zero()) {
    const BigIntDivMod dm = divmod(old_r, r);
    // (old_r, r) <- (r, old_r - q*r)
    BigInt new_r = dm.remainder;
    old_r = std::move(r);
    r = std::move(new_r);

    // (old_s, s) <- (s, old_s - q*s) with sign bookkeeping.
    BigInt qs = mul(dm.quotient, s);
    BigInt new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      // same sign: old_s - q*s may flip sign
      if (compare(old_s, qs) >= 0) {
        new_s = sub(old_s, qs);
        new_s_neg = old_s_neg;
      } else {
        new_s = sub(qs, old_s);
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = add(old_s, qs);
      new_s_neg = old_s_neg;
    }
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }

  if (!(old_r == BigInt(1))) return {};  // not invertible
  if (old_s_neg) return sub(m, mod(old_s, m));
  return mod(old_s, m);
}

std::uint32_t BigInt::mod_small(std::uint32_t divisor) const noexcept {
  assert(divisor != 0);
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs_[i]) % divisor;
  }
  return static_cast<std::uint32_t>(rem);
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      out.push_back(kHex[(limbs_[i] >> (nib * 4)) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

BigInt BigInt::from_hex(std::string_view hex) {
  BigInt out;
  for (char ch : hex) {
    std::uint32_t digit;
    if (ch >= '0' && ch <= '9') digit = static_cast<std::uint32_t>(ch - '0');
    else if (ch >= 'a' && ch <= 'f') digit = static_cast<std::uint32_t>(ch - 'a' + 10);
    else if (ch >= 'A' && ch <= 'F') digit = static_cast<std::uint32_t>(ch - 'A' + 10);
    else continue;  // permissive: skip separators
    out = add(shl(out, 4), BigInt(digit));
  }
  return out;
}

}  // namespace ptm
