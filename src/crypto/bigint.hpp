// bigint.hpp - arbitrary-precision unsigned integers for the PKI substrate.
//
// The V2I protocol authenticates RSUs with public-key certificates (paper
// §II-B).  We implement a small but real RSA over this bignum; 32-bit limbs
// keep the schoolbook algorithms simple and fast enough for the 512-1024-bit
// simulation keys.  Little-endian limb order; no negative numbers (RSA never
// needs them - the one subtraction in keygen is guarded).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.hpp"

namespace ptm {

class BigInt;

/// Quotient/remainder pair returned by BigInt::divmod.
struct BigIntDivMod;

class BigInt {
 public:
  BigInt() = default;
  /// From a machine word.
  explicit BigInt(std::uint64_t value);

  /// From big-endian bytes (leading zeros allowed), e.g. a SHA-256 digest.
  [[nodiscard]] static BigInt from_be_bytes(std::span<const std::uint8_t> bytes);
  /// Big-endian bytes, no leading zeros (empty for zero).
  [[nodiscard]] std::vector<std::uint8_t> to_be_bytes() const;

  /// Uniform random value with exactly `bits` bits (top bit set).
  [[nodiscard]] static BigInt random_with_bits(std::size_t bits,
                                               Xoshiro256& rng);
  /// Uniform random value in [0, bound) for bound >= 1.
  [[nodiscard]] static BigInt random_below(const BigInt& bound,
                                           Xoshiro256& rng);

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const noexcept {
    return !limbs_.empty() && (limbs_[0] & 1U);
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  /// Value as uint64, truncating higher limbs (callers check bit_length).
  [[nodiscard]] std::uint64_t low_u64() const noexcept;

  /// Three-way compare: negative/zero/positive like memcmp.
  [[nodiscard]] static int compare(const BigInt& a, const BigInt& b) noexcept;
  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) == 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) noexcept {
    return compare(a, b) >= 0;
  }

  [[nodiscard]] static BigInt add(const BigInt& a, const BigInt& b);
  /// Precondition: a >= b.
  [[nodiscard]] static BigInt sub(const BigInt& a, const BigInt& b);
  [[nodiscard]] static BigInt mul(const BigInt& a, const BigInt& b);
  /// Schoolbook (Knuth D) division; divisor must be non-zero.
  [[nodiscard]] static BigIntDivMod divmod(const BigInt& a, const BigInt& b);
  [[nodiscard]] static BigInt mod(const BigInt& a, const BigInt& m);

  /// (a * b) mod m and (base ^ exp) mod m, square-and-multiply.
  [[nodiscard]] static BigInt mulmod(const BigInt& a, const BigInt& b,
                                     const BigInt& m);
  [[nodiscard]] static BigInt powmod(const BigInt& base, const BigInt& exp,
                                     const BigInt& m);

  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);
  /// Modular inverse of a mod m (extended Euclid); errors (empty optional
  /// semantics via is_zero result + `ok` flag) folded into Result-free API:
  /// returns zero when no inverse exists - callers check gcd first.
  [[nodiscard]] static BigInt modinv(const BigInt& a, const BigInt& m);

  /// Shift helpers used by division and Miller-Rabin.
  [[nodiscard]] static BigInt shl(const BigInt& a, std::size_t bits);
  [[nodiscard]] static BigInt shr(const BigInt& a, std::size_t bits);

  /// Remainder of division by a small value (trial division in keygen).
  [[nodiscard]] std::uint32_t mod_small(std::uint32_t divisor) const noexcept;

  /// Lowercase hex, "0" for zero (diagnostics/tests).
  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] static BigInt from_hex(std::string_view hex);

 private:
  void trim() noexcept;

  std::vector<std::uint32_t> limbs_;  // little-endian, no trailing zeros
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace ptm
