// rsa.hpp - simulation-grade RSA signatures for the V2I PKI (paper §II-B).
//
// RSUs present certificates signed by a trusted third party; vehicles verify
// them before participating.  We implement textbook RSA keygen (Miller-Rabin
// primes), and deterministic PKCS#1-v1.5-style signatures over SHA-256
// digests.  Key sizes of 512-1024 bits keep keygen fast in tests; this is a
// functional substrate for the protocol, NOT hardened production crypto
// (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"
#include "crypto/bigint.hpp"

namespace ptm {

struct RsaPublicKey {
  BigInt n;  ///< modulus
  BigInt e;  ///< public exponent (65537)

  [[nodiscard]] std::size_t modulus_bits() const noexcept {
    return n.bit_length();
  }
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Result<RsaPublicKey> deserialize(
      std::span<const std::uint8_t> bytes);
  friend bool operator==(const RsaPublicKey& a,
                         const RsaPublicKey& b) = default;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigInt d;  ///< private exponent

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Result<RsaKeyPair> deserialize(
      std::span<const std::uint8_t> bytes);
};

/// Miller-Rabin primality test with `rounds` random bases.
[[nodiscard]] bool is_probable_prime(const BigInt& candidate,
                                     Xoshiro256& rng, int rounds = 24);

/// Random prime with exactly `bits` bits.
[[nodiscard]] BigInt generate_prime(std::size_t bits, Xoshiro256& rng);

/// RSA keypair with a modulus of ~`modulus_bits` bits and e = 65537.
/// Precondition: modulus_bits >= 344 — the PKCS#1-style padding needs
/// digest (32) + 11 bytes of modulus width (enforced in pad_digest).
[[nodiscard]] RsaKeyPair rsa_generate(std::size_t modulus_bits,
                                      Xoshiro256& rng);

/// Signs message bytes: SHA-256 digest, PKCS#1-style pad to the modulus
/// width, then s = pad(digest)^d mod n.
[[nodiscard]] std::vector<std::uint8_t> rsa_sign(
    const RsaKeyPair& key, std::span<const std::uint8_t> message);

/// Verifies a signature produced by rsa_sign under `pub`.
[[nodiscard]] bool rsa_verify(const RsaPublicKey& pub,
                              std::span<const std::uint8_t> message,
                              std::span<const std::uint8_t> signature);

}  // namespace ptm
