#include "cli/cli.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "cluster/coordinator.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/bootstrap.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "core/corridor_persistent.hpp"
#include "core/kway_persistent.hpp"
#include "core/linear_counting.hpp"
#include "core/p2p_persistent.hpp"
#include "core/point_persistent.hpp"
#include "core/privacy.hpp"
#include "core/traffic_record.hpp"
#include "crypto/certificate.hpp"
#include "crypto/keyfile.hpp"
#include "query/query_service.hpp"
#include "store/archive.hpp"
#include "store/record_log.hpp"
#include "traffic/workload.hpp"
#include "transport/auth.hpp"
#include "transport/connection.hpp"
#include "transport/socket.hpp"
#include "transport/wire.hpp"

namespace ptm {
namespace {

/// Records of one location, ordered by period.
Result<std::vector<Bitmap>> bitmaps_at(const std::vector<TrafficRecord>& all,
                                       std::uint64_t location) {
  std::map<std::uint64_t, Bitmap> by_period;
  for (const TrafficRecord& rec : all) {
    if (rec.location == location) by_period.emplace(rec.period, rec.bits);
  }
  if (by_period.empty()) {
    return Status{ErrorCode::kNotFound,
                  "no records for location " + std::to_string(location)};
  }
  std::vector<Bitmap> out;
  out.reserve(by_period.size());
  for (auto& [period, bits] : by_period) out.push_back(std::move(bits));
  return out;
}

/// Feeds every record of a log into the service.  Duplicate
/// (location, period) pairs are skipped - a log may legitimately contain
/// them after partial rewrites, and the pre-QueryService CLI silently kept
/// the first occurrence too.
Status ingest_log(QueryService& service,
                  const std::vector<TrafficRecord>& records) {
  for (const TrafficRecord& rec : records) {
    const Status st = service.ingest(rec);
    if (!st.is_ok() && st.code() != ErrorCode::kFailedPrecondition) return st;
  }
  return Status::ok();
}

/// Loads a record log into a fresh QueryService (the CLI's query backend).
Status load_service(const std::string& log_path, QueryService& service) {
  auto contents = read_record_log(log_path);
  if (!contents) return contents.status();
  return ingest_log(service, contents->records);
}

Status cmd_generate(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("out");
  if (!log_path) return log_path.status();
  auto seed = flags.get_u64_or("seed", 1);
  auto s = flags.get_u64_or("s", 3);
  auto f = flags.get_double_or("f", 2.0);
  auto t = flags.get_u64_or("t", 5);
  auto volume_min = flags.get_u64_or("volume_min", 2001);
  auto volume_max = flags.get_u64_or("volume_max", 10000);
  auto common = flags.get_u64_or("common", 500);
  auto location = flags.get_u64_or("location", 1);
  auto location_b = flags.get_u64_or("location_b", 0);  // 0 = point only
  for (const Status& st :
       {seed.status(), s.status(), f.status(), t.status(),
        volume_min.status(), volume_max.status(), common.status(),
        location.status(), location_b.status()}) {
    if (!st.is_ok()) return st;
  }
  if (*t < 1 || *s < 1 || *f <= 0.0 || *volume_min < 1 ||
      *volume_min > *volume_max || *common > *volume_min) {
    return {ErrorCode::kInvalidArgument,
            "generate: need t,s >= 1, f > 0, 1 <= volume_min <= volume_max, "
            "common <= volume_min"};
  }

  Xoshiro256 rng(*seed);
  EncodingParams encoding;
  encoding.s = static_cast<std::size_t>(*s);
  const auto fleet =
      make_vehicles(static_cast<std::size_t>(*common), encoding.s, rng);

  auto writer = RecordLogWriter::open(*log_path);
  if (!writer) return writer.status();

  auto write_all = [&](std::uint64_t loc,
                       const std::vector<Bitmap>& bitmaps) -> Status {
    for (std::size_t period = 0; period < bitmaps.size(); ++period) {
      TrafficRecord rec;
      rec.location = loc;
      rec.period = period;
      rec.bits = bitmaps[period];
      if (Status st = writer->append(rec); !st.is_ok()) return st;
    }
    return Status::ok();
  };

  if (*location_b == 0) {
    const auto volumes = draw_period_volumes(static_cast<std::size_t>(*t),
                                             *volume_min, *volume_max, rng);
    const auto records =
        generate_point_records(volumes, fleet, *location, *f, encoding, rng);
    if (Status st = write_all(*location, records); !st.is_ok()) return st;
    out << "wrote " << records.size() << " point records for location "
        << *location << " to " << *log_path << " (common=" << *common
        << ")\n";
  } else {
    const auto volumes_a = draw_period_volumes(static_cast<std::size_t>(*t),
                                               *volume_min, *volume_max, rng);
    const auto volumes_b = draw_period_volumes(static_cast<std::size_t>(*t),
                                               *volume_min, *volume_max, rng);
    const auto records =
        generate_p2p_records(volumes_a, volumes_b, fleet, *location,
                             *location_b, *f, encoding, rng);
    if (Status st = write_all(*location, records.at_l); !st.is_ok()) return st;
    if (Status st = write_all(*location_b, records.at_l_prime); !st.is_ok()) {
      return st;
    }
    out << "wrote " << 2 * records.at_l.size()
        << " p2p records for locations " << *location << " and "
        << *location_b << " to " << *log_path << " (common=" << *common
        << ")\n";
  }
  return Status::ok();
}

Status cmd_inspect(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto contents = read_record_log(*log_path);
  if (!contents) return contents.status();

  TableWriter table({"location", "period", "m", "ones", "est volume",
                     "outcome"});
  for (const TrafficRecord& rec : contents->records) {
    const CardinalityEstimate est = estimate_cardinality(rec.bits);
    table.add_row({TableWriter::fmt(std::uint64_t{rec.location}),
                   TableWriter::fmt(std::uint64_t{rec.period}),
                   TableWriter::fmt(std::uint64_t{rec.m()}),
                   TableWriter::fmt(std::uint64_t{rec.bits.count_ones()}),
                   TableWriter::fmt(est.value, 1),
                   estimate_outcome_name(est.outcome)});
  }
  table.print(out);
  if (contents->truncated_tail) {
    out << "warning: log tail skipped (" << contents->tail_error << ")\n";
  }
  return Status::ok();
}

Status cmd_volume(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto location = flags.get_u64("location");
  if (!location) return location.status();
  auto period = flags.get_u64("period");
  if (!period) return period.status();

  QueryService service;
  if (Status st = load_service(*log_path, service); !st.is_ok()) return st;
  const QueryResponse resp =
      service.run(QueryRequest{PointVolumeQuery{*location, *period}});
  if (!resp.ok()) return resp.status;
  out << "point volume at location " << *location << ", period " << *period
      << ": " << format_estimate_summary(resp.summary) << "\n";
  return Status::ok();
}

Status cmd_persistent(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto location = flags.get_u64("location");
  if (!location) return location.status();
  auto groups = flags.get_u64_or("groups", 2);
  if (!groups) return groups.status();

  auto contents = read_record_log(*log_path);
  if (!contents) return contents.status();
  QueryService service;
  if (Status st = ingest_log(service, contents->records); !st.is_ok()) {
    return st;
  }
  const std::vector<std::uint64_t> periods = service.periods_at(*location);
  if (periods.empty()) {
    return {ErrorCode::kNotFound,
            "no records for location " + std::to_string(*location)};
  }

  auto ci_resamples = flags.get_u64_or("ci", 0);  // 0 = no interval
  if (!ci_resamples) return ci_resamples.status();

  if (*groups == 2) {
    const QueryResponse resp =
        service.run(QueryRequest{PointPersistentQuery{*location, periods}});
    if (!resp.ok()) return resp.status;
    out << "point persistent at location " << *location << " over "
        << periods.size()
        << " periods: " << format_estimate_summary(resp.summary) << "\n";
    if (*ci_resamples > 0) {
      auto bitmaps = bitmaps_at(contents->records, *location);
      if (!bitmaps) return bitmaps.status();
      BootstrapOptions boot;
      boot.resamples = static_cast<std::size_t>(*ci_resamples);
      auto interval = estimate_point_persistent_with_ci(*bitmaps, boot);
      if (!interval) return interval.status();
      out << "  95% bootstrap CI: ["
          << TableWriter::fmt(interval->lower, 1) << ", "
          << TableWriter::fmt(interval->upper, 1) << "] ("
          << boot.resamples << " resamples)\n";
    }
  } else {
    // The k-way split is an estimator-level ablation, not one of the
    // service's query shapes; it still prints through the one formatter.
    auto bitmaps = bitmaps_at(contents->records, *location);
    if (!bitmaps) return bitmaps.status();
    auto est = estimate_point_persistent_kway(
        *bitmaps, static_cast<std::size_t>(*groups));
    if (!est) return est.status();
    out << "point persistent at location " << *location << " over "
        << bitmaps->size() << " periods (" << *groups << "-way split): "
        << format_estimate_summary(summarize_estimate(*est)) << "\n";
  }
  return Status::ok();
}

Status cmd_p2p(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto from = flags.get_u64("from");
  if (!from) return from.status();
  auto to = flags.get_u64("to");
  if (!to) return to.status();
  auto s = flags.get_u64_or("s", 3);
  if (!s) return s.status();

  QueryServiceOptions service_options;
  service_options.s = static_cast<std::size_t>(*s);
  QueryService service(service_options);
  if (Status st = load_service(*log_path, service); !st.is_ok()) return st;
  const std::vector<std::uint64_t> periods = service.periods_at(*from);
  if (periods.empty()) {
    return {ErrorCode::kNotFound,
            "no records for location " + std::to_string(*from)};
  }

  P2PPersistentQuery query;
  query.location_a = *from;
  query.location_b = *to;
  query.periods = periods;
  const QueryResponse resp = service.run(QueryRequest{std::move(query)});
  if (!resp.ok()) return resp.status;
  out << "p2p persistent between " << *from << " and " << *to << " over "
      << periods.size()
      << " periods: " << format_estimate_summary(resp.summary)
      << " [s = " << *s << "]\n";
  return Status::ok();
}

Status cmd_corridor(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto locations_raw = flags.get_string("locations");
  if (!locations_raw) return locations_raw.status();
  auto s = flags.get_u64_or("s", 3);
  if (!s) return s.status();

  // Parse the comma-separated location list.
  std::vector<std::uint64_t> locations;
  std::size_t pos = 0;
  while (pos <= locations_raw->size()) {
    const std::size_t comma = locations_raw->find(',', pos);
    const std::string token = locations_raw->substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return {ErrorCode::kInvalidArgument,
              "corridor: bad location token: " + token};
    }
    locations.push_back(static_cast<std::uint64_t>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (locations.size() < 2) {
    return {ErrorCode::kInvalidArgument,
            "corridor needs at least two --locations"};
  }

  QueryServiceOptions service_options;
  service_options.s = static_cast<std::size_t>(*s);
  QueryService service(service_options);
  if (Status st = load_service(*log_path, service); !st.is_ok()) return st;
  const std::vector<std::uint64_t> periods =
      service.periods_at(locations.front());
  if (periods.empty()) {
    return {ErrorCode::kNotFound,
            "no records for location " + std::to_string(locations.front())};
  }

  CorridorQuery query;
  query.locations = locations;
  query.periods = periods;
  const QueryResponse resp = service.run(QueryRequest{std::move(query)});
  if (!resp.ok()) return resp.status;
  const auto est = resp.as<CorridorPersistentEstimate>();
  out << "corridor persistent through " << locations.size()
      << " locations: " << format_estimate_summary(resp.summary)
      << " [ln B = " << TableWriter::fmt(est->log_b, 8) << "]\n";
  return Status::ok();
}

Status cmd_compact(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto keep = flags.get_u64_or("keep", 0);  // 0 = keep everything
  if (!keep) return keep.status();

  ArchiveOptions options;
  options.max_periods_per_location = static_cast<std::size_t>(*keep);
  auto archive = RecordArchive::open(*log_path, options);
  if (!archive) return archive.status();
  auto dropped = archive->compact();
  if (!dropped) return dropped.status();
  out << "compacted " << *log_path << ": " << archive->live_records()
      << " live records kept";
  if (*keep > 0) out << " (retention: last " << *keep << " per location)";
  out << ", " << *dropped << " dropped\n";
  return Status::ok();
}

Status cmd_privacy(const Config& flags, std::ostream& out) {
  auto n_prime = flags.get_u64_or("n", 10000);
  auto f = flags.get_double_or("f", 2.0);
  auto s = flags.get_u64_or("s", 3);
  for (const Status& st : {n_prime.status(), f.status(), s.status()}) {
    if (!st.is_ok()) return st;
  }
  if (*f <= 0.0 || *s < 1 || *n_prime < 1) {
    return {ErrorCode::kInvalidArgument, "privacy: need n,f,s positive"};
  }
  const auto m_planned =
      plan_bitmap_size(static_cast<double>(*n_prime), *f);
  const PrivacyPoint planned = privacy_point(
      static_cast<double>(*n_prime), static_cast<double>(m_planned),
      static_cast<std::size_t>(*s));
  const PrivacyPoint continuous =
      privacy_point(static_cast<double>(*n_prime),
                    *f * static_cast<double>(*n_prime),
                    static_cast<std::size_t>(*s));

  out << "privacy analysis for n' = " << *n_prime << ", f = " << *f
      << ", s = " << *s << "\n"
      << "  deployed (m' = " << m_planned << ", Eq. 2 rounding):\n"
      << "    noise p = " << TableWriter::fmt(planned.noise, 4)
      << ", information p'-p = " << TableWriter::fmt(planned.information, 4)
      << ", ratio = " << TableWriter::fmt(planned.ratio, 4) << "\n"
      << "  continuous (m' = f*n', the Table II convention):\n"
      << "    noise p = " << TableWriter::fmt(continuous.noise, 4)
      << ", information p'-p = "
      << TableWriter::fmt(continuous.information, 4)
      << ", ratio = " << TableWriter::fmt(continuous.ratio, 4) << "\n";
  if (planned.ratio < 1.0) {
    out << "  WARNING: ratio < 1 - a tracker's information exceeds the "
           "noise; increase s or decrease f.\n";
  }
  return Status::ok();
}

Status cmd_recover(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto shards = flags.get_u64_or("shards", 16);
  if (!shards) return shards.status();
  if (*shards < 1) {
    return {ErrorCode::kInvalidArgument, "recover: need shards >= 1"};
  }

  // The crash-recovery path a restarted server runs: open the archive
  // (healing any torn tail), attach it, rebuild the store from it.  An
  // absent file is refused rather than created - "recovered 0 records"
  // from a typo'd path would read as data loss.
  if (std::FILE* probe = std::fopen(log_path->c_str(), "rb")) {
    std::fclose(probe);
  } else {
    return {ErrorCode::kNotFound, "recover: no archive at " + *log_path};
  }
  auto archive = RecordArchive::open(*log_path, ArchiveOptions{});
  if (!archive) return archive.status();

  QueryServiceOptions service_options;
  service_options.n_shards = static_cast<std::size_t>(*shards);
  QueryService service(service_options);
  service.attach_durability(*archive);
  auto restored = service.restore_from_archive();
  if (!restored) return restored.status();

  const std::vector<std::uint64_t> locations = archive->locations();
  out << "recovered " << *restored << " records across " << locations.size()
      << " locations from " << *log_path << "\n";
  TableWriter table({"location", "periods"});
  for (std::uint64_t location : locations) {
    table.add_row({TableWriter::fmt(std::uint64_t{location}),
                   TableWriter::fmt(
                       std::uint64_t{archive->periods_at(location)})});
  }
  table.print(out);
  out << service.metrics().to_string();
  return Status::ok();
}

/// The probe batch `stats` and `metrics` run so the latency histogram and
/// the per-shard query counters have something to show: one point-volume
/// query per record, plus a rolling persistent query per location that
/// holds at least two periods.  Returns {ok, total} probe counts.
Result<std::pair<std::size_t, std::size_t>> run_probe_queries(
    QueryService& service, const std::string& log_path) {
  std::vector<QueryRequest> requests;
  std::map<std::uint64_t, std::vector<std::uint64_t>> by_location;
  auto contents = read_record_log(log_path);
  if (!contents) return contents.status();
  for (const TrafficRecord& rec : contents->records) {
    requests.emplace_back(PointVolumeQuery{rec.location, rec.period});
    by_location[rec.location].push_back(rec.period);
  }
  for (const auto& [location, periods] : by_location) {
    if (periods.size() >= 2) {
      requests.emplace_back(RecentPersistentQuery{location, 2});
    }
  }
  const auto responses = service.run_batch(requests);
  std::size_t ok = 0;
  for (const QueryResponse& resp : responses) ok += resp.ok() ? 1 : 0;
  return std::make_pair(ok, responses.size());
}

Status cmd_stats(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto shards = flags.get_u64_or("shards", 16);
  if (!shards) return shards.status();
  auto s = flags.get_u64_or("s", 3);
  if (!s) return s.status();
  if (*shards < 1) {
    return {ErrorCode::kInvalidArgument, "stats: need shards >= 1"};
  }

  QueryServiceOptions service_options;
  service_options.s = static_cast<std::size_t>(*s);
  service_options.n_shards = static_cast<std::size_t>(*shards);
  QueryService service(service_options);
  if (Status st = load_service(*log_path, service); !st.is_ok()) return st;

  auto probed = run_probe_queries(service, *log_path);
  if (!probed) return probed.status();

  out << "query service stats for " << *log_path << " (" << probed->first
      << "/" << probed->second << " probe queries ok)\n"
      << service.metrics().to_string();
  return Status::ok();
}

Status cmd_metrics(const Config& flags, std::ostream& out) {
  auto log_path = flags.get_string("log");
  if (!log_path) return log_path.status();
  auto shards = flags.get_u64_or("shards", 16);
  if (!shards) return shards.status();
  auto s = flags.get_u64_or("s", 3);
  if (!s) return s.status();
  auto format = flags.get_string_or("format", "prometheus");
  if (!format) return format.status();
  if (*shards < 1) {
    return {ErrorCode::kInvalidArgument, "metrics: need shards >= 1"};
  }
  if (*format != "prometheus" && *format != "json" && *format != "text") {
    return {ErrorCode::kInvalidArgument,
            "metrics: --format must be prometheus, json, or text"};
  }

  QueryServiceOptions service_options;
  service_options.s = static_cast<std::size_t>(*s);
  service_options.n_shards = static_cast<std::size_t>(*shards);
  QueryService service(service_options);
  if (Status st = load_service(*log_path, service); !st.is_ok()) return st;
  if (auto probed = run_probe_queries(service, *log_path); !probed) {
    return probed.status();
  }

  // One snapshot feeds whichever exporter was asked for, so the three
  // formats always describe the same instant.
  const TelemetrySnapshot snapshot = service.telemetry().snapshot();
  if (*format == "prometheus") {
    out << to_prometheus(snapshot);
  } else if (*format == "json") {
    out << to_json(snapshot) << "\n";
  } else {
    out << service.metrics().to_string();
  }
  return Status::ok();
}

/// Formats a trace/span id the way the span dump does: 16 hex digits.
std::string format_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

Status cmd_trace(const Config& flags, std::ostream& out) {
  auto dump_path = flags.get_string("spans");
  if (!dump_path) return dump_path.status();
  auto spans = load_span_dump(*dump_path);
  if (!spans) return spans.status();

  auto id_raw = flags.get_string_or("id", "");
  if (!id_raw) return id_raw.status();
  if (id_raw->empty()) {
    // No id: list every trace in the dump, oldest first span wins the row
    // order.  Untraced spans (trace_id 0) are summarized as one line.
    std::vector<std::uint64_t> order;
    std::map<std::uint64_t, std::pair<std::size_t, std::size_t>> stats;
    for (const Span& span : *spans) {
      auto [it, inserted] = stats.try_emplace(span.trace_id,
                                              std::pair<std::size_t,
                                                        std::size_t>{0, 0});
      if (inserted) order.push_back(span.trace_id);
      ++it->second.first;
      if (!span.ok) ++it->second.second;
    }
    TableWriter table({"trace", "spans", "failed"});
    for (std::uint64_t trace_id : order) {
      const auto& [count, failed] = stats.at(trace_id);
      table.add_row({trace_id == 0 ? "(untraced)" : format_id(trace_id),
                     TableWriter::fmt(std::uint64_t{count}),
                     TableWriter::fmt(std::uint64_t{failed})});
    }
    out << spans->size() << " spans in " << *dump_path << "\n";
    table.print(out);
    return Status::ok();
  }

  char* end = nullptr;
  const unsigned long long trace_id = std::strtoull(id_raw->c_str(), &end,
                                                    16);
  if (end == id_raw->c_str() || *end != '\0') {
    return {ErrorCode::kInvalidArgument,
            "trace: --id must be a hex trace id: " + *id_raw};
  }

  // The per-trace timeline, in logical-clock order (ties keep dump order,
  // which is per-node recording order).
  std::vector<const Span*> timeline;
  for (const Span& span : *spans) {
    if (span.trace_id == trace_id) timeline.push_back(&span);
  }
  if (timeline.empty()) {
    return {ErrorCode::kNotFound,
            "trace: no spans for trace " + *id_raw + " in " + *dump_path};
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Span* a, const Span* b) {
                     return a->start_step < b->start_step;
                   });
  out << "trace " << format_id(trace_id) << ": " << timeline.size()
      << " spans\n";
  TableWriter table({"step", "node", "span", "id", "parent", "ns", "ok"});
  for (const Span* span : timeline) {
    table.add_row({TableWriter::fmt(std::uint64_t{span->start_step}),
                   span->node, span->name, format_id(span->span_id),
                   span->parent_span_id == 0
                       ? "-"
                       : format_id(span->parent_span_id),
                   TableWriter::fmt(std::uint64_t{span->duration_ns}),
                   span->ok ? "yes" : "NO"});
  }
  table.print(out);
  return Status::ok();
}

}  // namespace

Result<Config> parse_cli_flags(const std::vector<std::string>& args) {
  Config flags;
  std::size_t i = 0;
  // --config must be honored first so explicit flags override it.
  std::vector<std::pair<std::string, std::string>> pairs;
  while (i < args.size()) {
    const std::string& token = args[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      return Status{ErrorCode::kInvalidArgument,
                    "expected --flag, got: " + token};
    }
    if (i + 1 >= args.size()) {
      return Status{ErrorCode::kInvalidArgument,
                    "flag missing a value: " + token};
    }
    pairs.emplace_back(token.substr(2), args[i + 1]);
    i += 2;
  }
  for (const auto& [key, value] : pairs) {
    if (key == "config") {
      auto loaded = Config::load(value);
      if (!loaded) return loaded.status();
      for (const auto& [k, v] : loaded->entries()) flags.set(k, v);
    }
  }
  for (const auto& [key, value] : pairs) {
    if (key != "config") flags.set(key, value);
  }
  return flags;
}

namespace {

/// Sum of every `"name":"<name>"` counter occurrence in an obs/export.hpp
/// JSON document (label families appear once per label set).  A missing
/// counter sums to 0 - absence is healthy for e.g. protocol errors.
std::uint64_t sum_json_counter(const std::string& json,
                               const std::string& name) {
  const std::string needle = "\"name\":\"" + name + "\"";
  const std::string value_key = "\"value\":";
  std::uint64_t total = 0;
  std::size_t at = 0;
  while ((at = json.find(needle, at)) != std::string::npos) {
    const std::size_t v = json.find(value_key, at);
    if (v == std::string::npos) break;
    total += std::strtoull(json.c_str() + v + value_key.size(), nullptr, 10);
    at = v;
  }
  return total;
}

}  // namespace

Status cmd_ping(const Config& flags, std::ostream& out) {
  auto endpoint_text = flags.get_string("endpoint");
  if (!endpoint_text) return endpoint_text.status();
  auto count = flags.get_u64_or("count", 3);
  if (!count) return count.status();
  auto timeout_ms = flags.get_u64_or("timeout_ms", 2000);
  if (!timeout_ms) return timeout_ms.status();
  auto format = flags.get_string_or("format", "text");
  if (!format) return format.status();
  auto key_path = flags.get_string_or("key", "");
  if (!key_path) return key_path.status();
  auto cert_path = flags.get_string_or("cert", "");
  if (!cert_path) return cert_path.status();
  if (*count < 1) return {ErrorCode::kInvalidArgument, "ping: need count >= 1"};
  if (key_path->empty() != cert_path->empty()) {
    return {ErrorCode::kInvalidArgument,
            "ping: --key and --cert must be given together"};
  }

  auto endpoint = transport::parse_endpoint(*endpoint_text);
  if (!endpoint) return endpoint.status();

  transport::ConnectionTuning tuning;
  tuning.connect_timeout_ms = *timeout_ms;
  tuning.io_timeout_ms = *timeout_ms;
  tuning.heartbeat_timeout_ms = *timeout_ms;
  transport::SupervisedConnection conn(*endpoint, tuning);
  if (!key_path->empty()) {
    auto keys = load_keypair_file(*key_path);
    if (!keys) return keys.status();
    auto cert = load_certificate_file(*cert_path);
    if (!cert) return cert.status();
    conn.set_credentials(
        transport::AuthCredentials{std::move(*keys), std::move(*cert)});
  }
  if (Status s = conn.ensure_connected(
          Deadline::after(std::chrono::milliseconds(*timeout_ms)));
      !s.is_ok()) {
    return {s.code(), "ping: cannot reach ptmd at " + endpoint->to_string() +
                          " (" + s.message() + ")"};
  }

  std::uint64_t best_ns = ~0ULL;
  std::uint64_t sum_ns = 0;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto rtt = conn.ping();
    if (!rtt) return rtt.status();  // half-open/severed: report honestly
    best_ns = std::min(best_ns, *rtt);
    sum_ns += *rtt;
  }
  out << "ptmd at " << endpoint->to_string() << ": alive, " << *count
      << " heartbeat(s), rtt min/avg = " << best_ns / 1000 << "/"
      << sum_ns / *count / 1000 << " us\n";

  if (Status s = conn.send(transport::StatsRequest{}); !s.is_ok()) return s;
  auto reply = conn.receive(
      Deadline::after(std::chrono::milliseconds(*timeout_ms)));
  if (!reply) return reply.status();
  const auto* stats = std::get_if<transport::StatsResponse>(&*reply);
  if (stats == nullptr) {
    return {ErrorCode::kParseError,
            "ping: expected a stats-response message"};
  }
  if (*format == "json") {
    out << stats->json;
    return Status::ok();
  }
  TableWriter table({"metric", "value"});
  for (const char* name :
       {"transport_accepted_total", "transport_frames_total",
        "transport_ingest_shed_total", "transport_nacks_total",
        "transport_protocol_errors_total", "transport_auth_ok_total",
        "transport_auth_failures_total", "transport_auth_rejects_total",
        "ingest_ok", "ingest_duplicate", "ingest_rejected"}) {
    table.add_row({name, TableWriter::fmt(std::uint64_t{
                             sum_json_counter(stats->json, name)})});
  }
  table.print(out);
  return Status::ok();
}

/// cluster-status is a health gate: the report prints either way, but the
/// exit code must say "degraded" when any member is down.
Status unreachable_status(const std::vector<cluster::NodeStatus>& statuses) {
  std::string down;
  for (const auto& s : statuses) {
    if (s.reachable) continue;
    if (!down.empty()) down += ", ";
    down += std::to_string(s.node_id);
  }
  if (down.empty()) return Status::ok();
  return {ErrorCode::kChannelError, "unreachable cluster nodes: " + down};
}

Status cmd_cluster_status(const Config& flags, std::ostream& out) {
  auto spec_text = flags.get_string("cluster");
  if (!spec_text) return spec_text.status();
  auto timeout_ms = flags.get_u64_or("timeout_ms", 2000);
  if (!timeout_ms) return timeout_ms.status();
  auto format = flags.get_string_or("format", "text");
  if (!format) return format.status();
  auto key_path = flags.get_string_or("key", "");
  if (!key_path) return key_path.status();
  auto cert_path = flags.get_string_or("cert", "");
  if (!cert_path) return cert_path.status();
  if (key_path->empty() != cert_path->empty()) {
    return {ErrorCode::kInvalidArgument,
            "cluster-status: --key and --cert must be given together"};
  }

  auto config = cluster::parse_cluster_spec(*spec_text);
  if (!config) return config.status();

  cluster::ClusterCoordinatorOptions options;
  options.config = std::move(*config);
  options.tuning.connect_timeout_ms = *timeout_ms;
  options.tuning.io_timeout_ms = *timeout_ms;
  if (!key_path->empty()) {
    auto keys = load_keypair_file(*key_path);
    if (!keys) return keys.status();
    auto cert = load_certificate_file(*cert_path);
    if (!cert) return cert.status();
    options.credentials =
        transport::AuthCredentials{std::move(*keys), std::move(*cert)};
  }
  cluster::ClusterCoordinator coordinator(std::move(options));
  const auto statuses = coordinator.cluster_status(
      Deadline::after(std::chrono::milliseconds(*timeout_ms *
                                                 coordinator.partition_map()
                                                     .node_count())));

  if (*format == "json") {
    // One JSON object per node; the stats field is the daemon's own
    // telemetry document (or null when unreachable).
    out << "[";
    for (std::size_t i = 0; i < statuses.size(); ++i) {
      const auto& s = statuses[i];
      if (i > 0) out << ",";
      out << "{\"node\":" << s.node_id << ",\"client\":\""
          << s.client_endpoint << "\",\"repl\":\"" << s.repl_endpoint
          << "\",\"vnodes\":" << s.vnodes
          << ",\"reachable\":" << (s.reachable ? "true" : "false")
          << ",\"stats\":" << (s.reachable ? s.stats_json : "null") << "}";
    }
    out << "]\n";
    return unreachable_status(statuses);
  }

  TableWriter table({"node", "client endpoint", "repl endpoint", "vnodes",
                     "state", "ingested", "repl records", "subscribers",
                     "repl lag"});
  for (const auto& s : statuses) {
    if (!s.reachable) {
      table.add_row({TableWriter::fmt(s.node_id), s.client_endpoint,
                     s.repl_endpoint, TableWriter::fmt(s.vnodes),
                     "unreachable", "-", "-", "-", "-"});
      continue;
    }
    table.add_row(
        {TableWriter::fmt(s.node_id), s.client_endpoint, s.repl_endpoint,
         TableWriter::fmt(s.vnodes), "up",
         TableWriter::fmt(sum_json_counter(s.stats_json, "ingest_ok")),
         TableWriter::fmt(
             sum_json_counter(s.stats_json, "transport_repl_records_total")),
         TableWriter::fmt(
             sum_json_counter(s.stats_json, "transport_repl_subscribers")),
         TableWriter::fmt(
             sum_json_counter(s.stats_json, "transport_repl_lag"))});
  }
  table.print(out);
  return unreachable_status(statuses);
}

Status cmd_auth_init(const Config& flags, std::ostream& out) {
  auto dir = flags.get_string("dir");
  if (!dir) return dir.status();
  auto seed = flags.get_u64_or("seed", 1);
  if (!seed) return seed.status();
  auto bits = flags.get_u64_or("bits", 512);
  if (!bits) return bits.status();
  auto locations_raw = flags.get_string_or("locations", "1");
  if (!locations_raw) return locations_raw.status();
  auto valid_from = flags.get_u64_or("valid_from", 0);
  if (!valid_from) return valid_from.status();
  auto valid_until = flags.get_u64_or("valid_until", 1'000'000);
  if (!valid_until) return valid_until.status();

  std::vector<std::uint64_t> locations;
  std::size_t pos = 0;
  while (pos <= locations_raw->size()) {
    const std::size_t comma = locations_raw->find(',', pos);
    const std::string token = locations_raw->substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return {ErrorCode::kInvalidArgument,
              "auth-init: bad location token: " + token};
    }
    locations.push_back(static_cast<std::uint64_t>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  if (::mkdir(dir->c_str(), 0755) != 0 && errno != EEXIST) {
    return {ErrorCode::kInternal,
            "auth-init: cannot create " + *dir + ": " + std::strerror(errno)};
  }

  Xoshiro256 rng(*seed);
  const CertificateAuthority ca("ptmctl-test-ca",
                                static_cast<std::size_t>(*bits), rng);
  const std::string ca_path = *dir + "/ca.pub";
  if (Status s = save_public_key_file(ca_path, ca.public_key()); !s.is_ok()) {
    return s;
  }
  out << "wrote " << ca_path << "\n";

  const auto mint = [&](const std::string& stem, const std::string& subject,
                        std::uint64_t subject_id) -> Status {
    const RsaKeyPair keys = rsa_generate(static_cast<std::size_t>(*bits), rng);
    auto cert = ca.issue(subject, subject_id, keys.pub, *valid_from,
                         *valid_until);
    if (!cert) return cert.status();
    const std::string key_path = *dir + "/" + stem + ".key";
    const std::string cert_path = *dir + "/" + stem + ".cert";
    if (Status s = save_keypair_file(key_path, keys); !s.is_ok()) return s;
    if (Status s = save_certificate_file(cert_path, *cert); !s.is_ok()) {
      return s;
    }
    out << "wrote " << key_path << " + " << cert_path << " (" << subject
        << ", periods " << *valid_from << ".." << *valid_until << ")\n";
    return Status::ok();
  };

  for (const std::uint64_t location : locations) {
    if (Status s = mint("rsu" + std::to_string(location),
                        "rsu:" + std::to_string(location), location);
        !s.is_ok()) {
      return s;
    }
  }
  // One operator credential for ptmctl ping / loadgen against the same CA.
  return mint("client", "ptmctl-client", 0);
}

std::string cli_usage() {
  return R"(ptmctl - persistent traffic measurement toolkit

usage: ptmctl <command> [--flag value]... [--config file]

commands:
  generate    synthesize records into a log
              --out FILE [--seed N] [--s N] [--f X] [--t N] [--common N]
              [--volume_min N] [--volume_max N] [--location L]
              [--location_b L2]   (set location_b for a p2p pair)
  inspect     list a log's records        --log FILE
  volume      point traffic estimate      --log FILE --location L --period P
  persistent  point persistent estimate   --log FILE --location L
              [--groups G] [--ci N]       (G > 2: k-way estimator; N > 0:
                                           bootstrap CI with N resamples)
  p2p         p2p persistent estimate     --log FILE --from L --to L2 [--s N]
  corridor    k-location persistent       --log FILE --locations L1,L2,... [--s N]
  compact     rewrite a log in place      --log FILE [--keep N]
                                          (keep = last N periods/location)
  privacy     Eq. 22-24 analysis          [--n N] [--f X] [--s N]
  stats       query-service snapshot      --log FILE [--shards N] [--s N]
                                          (sharded store + latency metrics)
  metrics     telemetry exposition        --log FILE [--format prometheus|
                                          json|text] [--shards N] [--s N]
                                          (probe queries, then export the
                                           telemetry registry snapshot)
  trace       span-dump post-mortem       --spans FILE [--id HEX]
                                          (list traces, or one trace's
                                           hop-by-hop timeline)
  recover     crash-recovery dry run      --log FILE [--shards N]
                                          (open archive, rebuild the store,
                                           print per-location counts)
  ping        probe a running ptmd        --endpoint EP [--count N]
                                          [--timeout_ms N] [--format text|json]
                                          [--key FILE --cert FILE]
                                          (heartbeat round trips + the
                                           daemon's ingest/shed counters;
                                           EP like unix:/run/ptmd.sock or
                                           tcp:127.0.0.1:7777; key/cert
                                           authenticate against a
                                           --require-auth daemon)
  cluster-status  poll a ptmd cluster     --cluster SPEC [--timeout_ms N]
                                          [--format text|json]
                                          [--key FILE --cert FILE]
                                          (per-node reachability, ring share,
                                           ingest/replication counters and
                                           lag; SPEC like
                                           1@unix:/a.sock@unix:/a-repl.sock;
                                           2@tcp:127.0.0.1:7101)
  auth-init   mint a test PKI             --dir DIR [--seed N] [--bits N]
                                          [--locations L1,L2,...]
                                          [--valid_from P] [--valid_until P]
                                          (writes ca.pub, per-location
                                           rsu<L>.key/.cert, client.key/.cert
                                           for ptmd --ca-cert deployments)
  help        this text
)";
}

Status run_cli(const std::vector<std::string>& args, std::ostream& out) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << cli_usage();
    return Status::ok();
  }
  const std::string& command = args[0];
  auto flags = parse_cli_flags({args.begin() + 1, args.end()});
  if (!flags) return flags.status();

  if (command == "generate") return cmd_generate(*flags, out);
  if (command == "inspect") return cmd_inspect(*flags, out);
  if (command == "volume") return cmd_volume(*flags, out);
  if (command == "persistent") return cmd_persistent(*flags, out);
  if (command == "p2p") return cmd_p2p(*flags, out);
  if (command == "corridor") return cmd_corridor(*flags, out);
  if (command == "compact") return cmd_compact(*flags, out);
  if (command == "privacy") return cmd_privacy(*flags, out);
  if (command == "stats") return cmd_stats(*flags, out);
  if (command == "metrics") return cmd_metrics(*flags, out);
  if (command == "trace") return cmd_trace(*flags, out);
  if (command == "recover") return cmd_recover(*flags, out);
  if (command == "ping") return cmd_ping(*flags, out);
  if (command == "cluster-status") return cmd_cluster_status(*flags, out);
  if (command == "auth-init") return cmd_auth_init(*flags, out);
  return {ErrorCode::kInvalidArgument,
          "unknown command: " + command + " (try `ptmctl help`)"};
}

}  // namespace ptm
