// cli.hpp - the `ptmctl` command-line tool's implementation, as a library
// so the test suite can drive every command in-process.
//
// Commands (see run_cli for dispatch):
//   generate   - synthesize traffic records into a record log
//   inspect    - list a log's records with per-record volume estimates
//   volume     - point traffic estimate for one (location, period)
//   persistent - point persistent estimate over a location's records
//   p2p        - point-to-point persistent estimate between two locations
//   privacy    - print the Eq. 22-24 analysis for given (n', f, s)
//   metrics    - telemetry registry exposition (prometheus / json / text)
//   trace      - post-mortem over a span dump (list or per-trace timeline)
//   ping       - probe a running ptmd: heartbeat RTTs + counter snapshot
//   cluster-status - poll every node of a ptmd cluster: reachability,
//                ring share, replication counters and lag
//
// Flags are `--key value` pairs after the subcommand; `--config file`
// preloads keys from a key=value file, with explicit flags overriding.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/status.hpp"

namespace ptm {

/// Parses `--key value` pairs (after an optional `--config <file>` load)
/// into a Config.  InvalidArgument on dangling flags or non-flag tokens.
[[nodiscard]] Result<Config> parse_cli_flags(
    const std::vector<std::string>& args);

/// Executes one command; output goes to `out`, errors are returned (the
/// binary prints them to stderr and exits non-zero).  `args` excludes the
/// program name: args[0] is the subcommand.
[[nodiscard]] Status run_cli(const std::vector<std::string>& args,
                             std::ostream& out);

/// The usage text (also printed by `ptmctl help`).
[[nodiscard]] std::string cli_usage();

}  // namespace ptm
