#include "sketch/hyperloglog.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace ptm {
namespace {

double alpha_for(std::size_t m) {
  // Flajolet et al.'s bias constants.
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(unsigned precision, HashFamily hash,
                         std::uint64_t seed)
    : precision_(precision),
      hash_(hash),
      seed_(seed),
      registers_(1ULL << precision, 0) {
  assert(precision >= 4 && precision <= 18);
}

void HyperLogLog::add(std::uint64_t item) noexcept {
  const std::uint64_t h = hash64(hash_, item, seed_);
  const std::size_t index = h >> (64 - precision_);
  const std::uint64_t rest = (h << precision_) | (1ULL << (precision_ - 1));
  // Rank = leading zeros of the remaining bits + 1; the injected low bit
  // caps the rank so the shift above is branch-free and safe.
  const auto rank = static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

double HyperLogLog::estimate() const noexcept {
  const auto m = static_cast<double>(registers_.size());
  double harmonic_sum = 0.0;
  std::size_t zero_registers = 0;
  for (std::uint8_t r : registers_) {
    harmonic_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zero_registers;
  }
  const double raw = alpha_for(registers_.size()) * m * m / harmonic_sum;

  // Small-range regime: fall back to linear counting on the zero
  // registers, exactly as in the original paper.
  if (raw <= 2.5 * m && zero_registers > 0) {
    return m * std::log(m / static_cast<double>(zero_registers));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) noexcept {
  assert(other.precision_ == precision_ && other.hash_ == hash_ &&
         other.seed_ == seed_);
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace ptm
