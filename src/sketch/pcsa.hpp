// pcsa.hpp - Probabilistic Counting with Stochastic Averaging
// (Flajolet & Martin 1985), one of the classical cardinality sketches the
// paper's linear-counting base [20]-[22] competes with.
//
// Provided as a baseline so the sketch-comparison bench can show WHY the
// paper builds on plain bitmaps: linear counting is more accurate at the
// load factors Eq. 2 plans for, and - decisive for this application - its
// bitmaps support the AND/OR joins the persistent estimators require, which
// register-based sketches do not.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/hash_suite.hpp"

namespace ptm {

class PcsaSketch {
 public:
  /// `buckets` must be a power of two (stochastic averaging divides the
  /// hash space evenly); typical values 64-1024.
  explicit PcsaSketch(std::size_t buckets,
                      HashFamily hash = HashFamily::kMurmur3,
                      std::uint64_t seed = 0x9C5AULL);

  /// Adds an item (by 64-bit id); duplicates are absorbed.
  void add(std::uint64_t item) noexcept;

  /// Flajolet-Martin estimate: buckets/φ · 2^(mean lowest-zero index).
  [[nodiscard]] double estimate() const noexcept;

  [[nodiscard]] std::size_t buckets() const noexcept { return maps_.size(); }
  /// Memory footprint in bits (for the accuracy-per-bit comparison).
  [[nodiscard]] std::size_t size_bits() const noexcept {
    return maps_.size() * 64;
  }

  /// Merges another sketch (same configuration): bitwise OR of bucket
  /// maps - set union.  Precondition: identical buckets/hash/seed.
  void merge(const PcsaSketch& other) noexcept;

 private:
  std::vector<std::uint64_t> maps_;  // one FM bitmap per bucket
  HashFamily hash_;
  std::uint64_t seed_;
};

}  // namespace ptm
