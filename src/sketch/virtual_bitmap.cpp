#include "sketch/virtual_bitmap.hpp"

#include <cassert>
#include <cmath>

namespace ptm {

VirtualBitmap::VirtualBitmap(std::size_t bits, double sampling,
                             HashFamily hash, std::uint64_t seed)
    : physical_(bits), sampling_(sampling), hash_(hash), seed_(seed) {
  assert(bits >= 2 && sampling > 0.0 && sampling <= 1.0);
  // Threshold on the 64-bit sampling hash; p = 1 admits everything.
  sample_threshold_ =
      sampling >= 1.0
          ? ~0ULL
          : static_cast<std::uint64_t>(
                sampling * 18446744073709551616.0 /* 2^64 */);
}

void VirtualBitmap::add(std::uint64_t item) noexcept {
  // Two independent hash roles: admission decision and bit placement.
  const std::uint64_t admit = hash64(hash_, item, seed_);
  if (admit >= sample_threshold_) return;
  const std::uint64_t place = hash64(hash_, item, seed_ ^ 0xB1A5EDULL);
  physical_.set(static_cast<std::size_t>(place % physical_.size()));
}

CardinalityEstimate VirtualBitmap::estimate() const {
  CardinalityEstimate est = estimate_cardinality(physical_);
  est.value /= sampling_;
  return est;
}

}  // namespace ptm
