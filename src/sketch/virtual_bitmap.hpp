// virtual_bitmap.hpp - sampled linear counting (the "virtual bitmap" of
// the compact-spread-estimation lineage the paper cites as [22]).
//
// When the population is far larger than the memory budget allows at
// Eq. 2's f >= 1 sizing, a bitmap can still estimate it by SAMPLING: each
// item is admitted with probability p (decided by a hash, so duplicates
// sample consistently) and linear counting's answer is scaled by 1/p.
// Included as the third baseline in the sketch ablation: it shows the
// memory/accuracy path the paper chose not to take - sampling trades
// accuracy exactly where persistent measurement needs it most (small
// common-vehicle sets), and a sampled record no longer supports the
// §III-A join property for the unsampled vehicles.
#pragma once

#include <cstdint>

#include "common/bitmap.hpp"
#include "core/linear_counting.hpp"
#include "hash/hash_suite.hpp"

namespace ptm {

class VirtualBitmap {
 public:
  /// `bits` physical bitmap size (>= 2); `sampling` in (0, 1].
  VirtualBitmap(std::size_t bits, double sampling,
                HashFamily hash = HashFamily::kMurmur3,
                std::uint64_t seed = 0x5A3DULL);

  /// Adds an item; a given item is either always sampled or never
  /// (hash-based), so duplicates cannot inflate the estimate.
  void add(std::uint64_t item) noexcept;

  /// 1/p-scaled linear-counting estimate of the DISTINCT items added.
  [[nodiscard]] CardinalityEstimate estimate() const;

  [[nodiscard]] double sampling_probability() const noexcept {
    return sampling_;
  }
  [[nodiscard]] std::size_t size_bits() const noexcept {
    return physical_.size();
  }

 private:
  Bitmap physical_;
  double sampling_;
  HashFamily hash_;
  std::uint64_t seed_;
  std::uint64_t sample_threshold_;  ///< admit iff hash < threshold
};

}  // namespace ptm
