// hyperloglog.hpp - HyperLogLog (Flajolet et al. 2007), the modern
// register-based cardinality sketch, implemented as the second baseline for
// the sketch-comparison bench (see pcsa.hpp for why the paper's design
// still wants plain bitmaps).
//
// Standard estimator with the small-range linear-counting correction; the
// 32-bit large-range correction is unnecessary here because register values
// come from a 64-bit hash.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/hash_suite.hpp"

namespace ptm {

class HyperLogLog {
 public:
  /// `precision` p in [4, 18]: 2^p one-byte registers.
  explicit HyperLogLog(unsigned precision,
                       HashFamily hash = HashFamily::kMurmur3,
                       std::uint64_t seed = 0x417ULL);

  void add(std::uint64_t item) noexcept;

  /// Bias-corrected harmonic-mean estimate with the linear-counting
  /// small-range regime.
  [[nodiscard]] double estimate() const noexcept;

  [[nodiscard]] unsigned precision() const noexcept { return precision_; }
  [[nodiscard]] std::size_t register_count() const noexcept {
    return registers_.size();
  }
  /// Memory footprint in bits.
  [[nodiscard]] std::size_t size_bits() const noexcept {
    return registers_.size() * 8;
  }

  /// Merge = per-register max (set union).  Precondition: identical
  /// precision/hash/seed.
  void merge(const HyperLogLog& other) noexcept;

 private:
  unsigned precision_;
  HashFamily hash_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace ptm
