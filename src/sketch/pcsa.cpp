#include "sketch/pcsa.hpp"

#include <bit>
#include <cassert>
#include <cmath>

#include "common/math.hpp"

namespace ptm {
namespace {
// Flajolet-Martin magic constant phi.
constexpr double kPhi = 0.77351;
}  // namespace

PcsaSketch::PcsaSketch(std::size_t buckets, HashFamily hash,
                       std::uint64_t seed)
    : maps_(buckets, 0), hash_(hash), seed_(seed) {
  assert(is_power_of_two(buckets) && buckets >= 1);
}

void PcsaSketch::add(std::uint64_t item) noexcept {
  const std::uint64_t h = hash64(hash_, item, seed_);
  const std::size_t bucket = h & (maps_.size() - 1);
  const std::uint64_t rest = h >> std::countr_zero(maps_.size());
  // Geometric position: index of the lowest set bit of the remaining hash
  // (all-zero rest maps to the top position).
  const int position = rest == 0 ? 63 : std::countr_zero(rest);
  maps_[bucket] |= 1ULL << position;
}

double PcsaSketch::estimate() const noexcept {
  // Mean index of the lowest ZERO bit across buckets.
  double sum_r = 0.0;
  for (std::uint64_t map : maps_) {
    sum_r += static_cast<double>(std::countr_one(map));
  }
  const double k = static_cast<double>(maps_.size());
  return k / kPhi * std::pow(2.0, sum_r / k);
}

void PcsaSketch::merge(const PcsaSketch& other) noexcept {
  assert(other.maps_.size() == maps_.size() && other.hash_ == hash_ &&
         other.seed_ == seed_);
  for (std::size_t i = 0; i < maps_.size(); ++i) maps_[i] |= other.maps_[i];
}

}  // namespace ptm
