#include "net/mac.hpp"

#include <cstdio>

namespace ptm {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((value >> 40) & 0xFF),
                static_cast<unsigned>((value >> 32) & 0xFF),
                static_cast<unsigned>((value >> 24) & 0xFF),
                static_cast<unsigned>((value >> 16) & 0xFF),
                static_cast<unsigned>((value >> 8) & 0xFF),
                static_cast<unsigned>(value & 0xFF));
  return buf;
}

MacAddress SpoofMacGenerator::next() {
  std::uint64_t v = rng_.next() & 0xFFFFFFFFFFFFULL;
  v |= 1ULL << 41;   // locally administered
  v &= ~(1ULL << 40);  // unicast
  return MacAddress{v};
}

}  // namespace ptm
