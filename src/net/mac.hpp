// mac.hpp - SpoofMAC-style anonymous link-layer addresses (paper §II-B).
//
// A fixed MAC address would let traffic records be joined with link-layer
// logs to track vehicles, defeating the bitmap design.  The paper assumes an
// anonymizing MAC protocol: before each RSU contact the vehicle draws a
// one-time address from a large random space.  This module provides that
// generator plus the 48-bit address type used by the simulated frames.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.hpp"

namespace ptm {

/// 48-bit IEEE-802-style address stored in the low bits of a u64.
struct MacAddress {
  std::uint64_t value = 0;  // only low 48 bits used

  [[nodiscard]] std::string to_string() const;  // "aa:bb:cc:dd:ee:ff"

  /// Locally-administered bit (bit 1 of the first octet) - always set on
  /// generated one-time addresses, distinguishing them from burned-in MACs.
  [[nodiscard]] bool locally_administered() const noexcept {
    return (value >> 41) & 1ULL;
  }
  /// Multicast bit (bit 0 of the first octet) - always clear.
  [[nodiscard]] bool multicast() const noexcept { return (value >> 40) & 1ULL; }

  friend bool operator==(const MacAddress&, const MacAddress&) = default;
};

/// Draws one-time MAC addresses: uniform 48-bit values with the
/// locally-administered bit forced on and the multicast bit forced off.
class SpoofMacGenerator {
 public:
  explicit SpoofMacGenerator(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] MacAddress next();

 private:
  Xoshiro256 rng_;
};

/// The broadcast address RSU beacons are sent to.
[[nodiscard]] constexpr MacAddress broadcast_mac() noexcept {
  return MacAddress{0xFFFFFFFFFFFFULL};
}

}  // namespace ptm
