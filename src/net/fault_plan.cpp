#include "net/fault_plan.hpp"

#include <algorithm>

namespace ptm {
namespace {

bool any_contains(const std::vector<FaultWindow>& windows,
                  std::uint64_t step) noexcept {
  return std::any_of(windows.begin(), windows.end(),
                     [step](const FaultWindow& w) { return w.contains(step); });
}

}  // namespace

const char* socket_fault_action_name(SocketFaultAction a) noexcept {
  switch (a) {
    case SocketFaultAction::kDropFrame: return "drop-frame";
    case SocketFaultAction::kDuplicateFrame: return "duplicate-frame";
    case SocketFaultAction::kDelayFrame: return "delay-frame";
    case SocketFaultAction::kTruncateAndSever: return "truncate-and-sever";
    case SocketFaultAction::kSever: return "sever";
  }
  return "unknown";
}

bool FaultPlan::channel_down_at(std::uint64_t step) const noexcept {
  return any_contains(channel_outages, step);
}

bool FaultPlan::server_unreachable_at(std::uint64_t step) const noexcept {
  return any_contains(server_outages, step);
}

std::optional<std::uint64_t> FaultPlan::server_outage_end_at(
    std::uint64_t step) const noexcept {
  std::optional<std::uint64_t> end;
  for (const FaultWindow& w : server_outages) {
    if (w.contains(step) && (!end || w.end > *end)) end = w.end;
  }
  return end;
}

bool FaultPlan::rsu_down_at(std::uint64_t location,
                            std::uint64_t step) const noexcept {
  const auto it = rsu_outages.find(location);
  return it != rsu_outages.end() && any_contains(it->second, step);
}

bool FaultPlan::rsu_crash_between(std::uint64_t location, std::uint64_t from,
                                  std::uint64_t to) const noexcept {
  const auto it = rsu_crashes.find(location);
  if (it == rsu_crashes.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [from, to](std::uint64_t s) {
                       return s >= from && s < to;
                     });
}

bool FaultPlan::server_crash_between(std::uint64_t from,
                                     std::uint64_t to) const noexcept {
  return std::any_of(server_crashes.begin(), server_crashes.end(),
                     [from, to](std::uint64_t s) {
                       return s >= from && s < to;
                     });
}

}  // namespace ptm
