// message.hpp - V2I wire messages (paper §II-B, §II-D).
//
// The protocol between a vehicle and an RSU:
//
//   RSU  --Beacon-->        broadcast; carries L, period, m, certificate
//   Veh  --AuthRequest-->   one-time MAC, fresh nonce
//   RSU  --AuthResponse-->  RSA signature over (nonce || L || period)
//   Veh  --EncodeIndex-->   the single value h_v (NEVER the vehicle ID)
//   RSU  --EncodeAck-->     optional acknowledgment
//
// and RSU <-> central server at period end:
//
//   RSU  --RecordUpload-->  the serialized TrafficRecord
//   Srv  --UploadAck-->     (location, period) accepted; the RSU may drop
//                           the record from its retransmission outbox
//
// Messages are framed with a type byte, source/destination MACs, the
// pipeline trace context (trace id + sender span id, see obs/trace.hpp and
// docs/observability.md - zeros when untraced), and a length-prefixed
// payload.  Codecs are bounds-checked (ParseError on any malformed input)
// because frames cross the simulated trust boundary and the channel can
// corrupt them.
//
// Privacy note: the trace context carries no vehicle-linked state - record
// traces are a pure hash of (location, period), both of which already
// travel in the clear on RecordUpload/UploadAck.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "core/traffic_record.hpp"
#include "crypto/certificate.hpp"
#include "net/mac.hpp"
#include "obs/trace.hpp"

namespace ptm {

enum class MessageType : std::uint8_t {
  kBeacon = 1,
  kAuthRequest = 2,
  kAuthResponse = 3,
  kEncodeIndex = 4,
  kEncodeAck = 5,
  kRecordUpload = 6,
  kUploadAck = 7,
};

/// Broadcast by the RSU in preset intervals (§II-D).
struct Beacon {
  std::uint64_t location = 0;      ///< L
  std::uint64_t period = 0;        ///< current measurement period
  std::uint64_t bitmap_size = 0;   ///< m
  Certificate certificate;         ///< RSU cert from the trusted third party
};

/// Vehicle -> RSU: start authentication.  Carries only a fresh nonce; the
/// vehicle is identified by nothing but its one-time MAC.
struct AuthRequest {
  std::uint64_t nonce = 0;
};

/// RSU -> vehicle: proof of key possession - an RSA signature over
/// (nonce || location || period) with the certified key.
struct AuthResponse {
  std::uint64_t nonce = 0;  ///< echoed
  std::vector<std::uint8_t> signature;
};

/// Vehicle -> RSU: the single encoded bit index h_v (§II-D).  This is the
/// entire privacy story at the wire level: no ID, no key, just an index
/// shared with ~n/m other vehicles.
struct EncodeIndex {
  std::uint64_t index = 0;  ///< h_v, in [0, m)
};

struct EncodeAck {};

/// RSU -> central server at the end of each period.
struct RecordUpload {
  TrafficRecord record;
};

/// Central server -> RSU: the upload for (location, period) was ingested
/// (or was an identical re-delivery).  Clears the RSU's outbox entry; an
/// upload that never earns an ack is retransmitted with backoff.
struct UploadAck {
  std::uint64_t location = 0;
  std::uint64_t period = 0;
};

using MessageBody = std::variant<Beacon, AuthRequest, AuthResponse,
                                 EncodeIndex, EncodeAck, RecordUpload,
                                 UploadAck>;

/// A link-layer frame: addressing, trace context, plus one message.
/// (`trace` is declared last so the common `Frame{src, dst, body}`
/// aggregate initialization keeps working; on the wire it sits between
/// the addresses and the payload.)
struct Frame {
  MacAddress src;
  MacAddress dst;
  MessageBody body;
  TraceContext trace;  ///< pipeline trace envelope (zeros = untraced)

  [[nodiscard]] MessageType type() const noexcept;
};

/// Encodes a frame to wire bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decodes wire bytes; ParseError on truncation, unknown type, or any
/// malformed nested structure.
[[nodiscard]] Result<Frame> decode_frame(std::span<const std::uint8_t> bytes);

/// The byte string an RSU signs for AuthResponse (nonce || L || period).
[[nodiscard]] std::vector<std::uint8_t> auth_transcript(std::uint64_t nonce,
                                                        std::uint64_t location,
                                                        std::uint64_t period);

}  // namespace ptm
