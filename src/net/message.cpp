#include "net/message.hpp"

#include "common/serialize.hpp"

namespace ptm {

MessageType Frame::type() const noexcept {
  struct Visitor {
    MessageType operator()(const Beacon&) const { return MessageType::kBeacon; }
    MessageType operator()(const AuthRequest&) const {
      return MessageType::kAuthRequest;
    }
    MessageType operator()(const AuthResponse&) const {
      return MessageType::kAuthResponse;
    }
    MessageType operator()(const EncodeIndex&) const {
      return MessageType::kEncodeIndex;
    }
    MessageType operator()(const EncodeAck&) const {
      return MessageType::kEncodeAck;
    }
    MessageType operator()(const RecordUpload&) const {
      return MessageType::kRecordUpload;
    }
    MessageType operator()(const UploadAck&) const {
      return MessageType::kUploadAck;
    }
  };
  return std::visit(Visitor{}, body);
}

namespace {

void encode_body(const MessageBody& body, ByteWriter& w) {
  struct Visitor {
    ByteWriter& w;
    void operator()(const Beacon& b) const {
      w.u64(b.location);
      w.u64(b.period);
      w.u64(b.bitmap_size);
      const auto cert = b.certificate.serialize();
      w.bytes(cert);
    }
    void operator()(const AuthRequest& m) const { w.u64(m.nonce); }
    void operator()(const AuthResponse& m) const {
      w.u64(m.nonce);
      w.bytes(m.signature);
    }
    void operator()(const EncodeIndex& m) const { w.u64(m.index); }
    void operator()(const EncodeAck&) const {}
    void operator()(const RecordUpload& m) const {
      const auto rec = m.record.serialize();
      w.bytes(rec);
    }
    void operator()(const UploadAck& m) const {
      w.u64(m.location);
      w.u64(m.period);
    }
  };
  std::visit(Visitor{w}, body);
}

Result<MessageBody> decode_body(MessageType type, ByteReader& r) {
  switch (type) {
    case MessageType::kBeacon: {
      Beacon b;
      auto loc = r.u64();
      if (!loc) return loc.status();
      b.location = *loc;
      auto per = r.u64();
      if (!per) return per.status();
      b.period = *per;
      auto m = r.u64();
      if (!m) return m.status();
      b.bitmap_size = *m;
      auto cert_bytes = r.bytes();
      if (!cert_bytes) return cert_bytes.status();
      auto cert = Certificate::deserialize(*cert_bytes);
      if (!cert) return cert.status();
      b.certificate = std::move(*cert);
      return MessageBody{std::move(b)};
    }
    case MessageType::kAuthRequest: {
      auto nonce = r.u64();
      if (!nonce) return nonce.status();
      return MessageBody{AuthRequest{*nonce}};
    }
    case MessageType::kAuthResponse: {
      AuthResponse m;
      auto nonce = r.u64();
      if (!nonce) return nonce.status();
      m.nonce = *nonce;
      auto sig = r.bytes();
      if (!sig) return sig.status();
      m.signature = std::move(*sig);
      return MessageBody{std::move(m)};
    }
    case MessageType::kEncodeIndex: {
      auto index = r.u64();
      if (!index) return index.status();
      return MessageBody{EncodeIndex{*index}};
    }
    case MessageType::kEncodeAck:
      return MessageBody{EncodeAck{}};
    case MessageType::kRecordUpload: {
      auto rec_bytes = r.bytes();
      if (!rec_bytes) return rec_bytes.status();
      auto rec = TrafficRecord::deserialize(*rec_bytes);
      if (!rec) return rec.status();
      return MessageBody{RecordUpload{std::move(*rec)}};
    }
    case MessageType::kUploadAck: {
      UploadAck m;
      auto loc = r.u64();
      if (!loc) return loc.status();
      m.location = *loc;
      auto per = r.u64();
      if (!per) return per.status();
      m.period = *per;
      return MessageBody{m};
    }
  }
  return Status{ErrorCode::kParseError, "unknown message type"};
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(frame.type()));
  w.u64(frame.src.value);
  w.u64(frame.dst.value);
  w.u64(frame.trace.trace_id);
  w.u64(frame.trace.span_id);
  ByteWriter body;
  encode_body(frame.body, body);
  w.bytes(body.buffer());
  return w.take();
}

Result<Frame> decode_frame(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto type_byte = r.u8();
  if (!type_byte) return type_byte.status();
  if (*type_byte < 1 || *type_byte > 7) {
    return Status{ErrorCode::kParseError, "unknown frame type"};
  }
  Frame frame;
  auto src = r.u64();
  if (!src) return src.status();
  frame.src.value = *src;
  auto dst = r.u64();
  if (!dst) return dst.status();
  frame.dst.value = *dst;
  auto trace_id = r.u64();
  if (!trace_id) return trace_id.status();
  frame.trace.trace_id = *trace_id;
  auto span_id = r.u64();
  if (!span_id) return span_id.status();
  frame.trace.span_id = *span_id;
  auto payload = r.bytes();
  if (!payload) return payload.status();
  if (!r.exhausted()) {
    return Status{ErrorCode::kParseError, "trailing bytes after frame"};
  }
  ByteReader body_reader(*payload);
  auto body = decode_body(static_cast<MessageType>(*type_byte), body_reader);
  if (!body) return body.status();
  if (!body_reader.exhausted()) {
    return Status{ErrorCode::kParseError, "trailing bytes in message body"};
  }
  frame.body = std::move(*body);
  return frame;
}

std::vector<std::uint8_t> auth_transcript(std::uint64_t nonce,
                                          std::uint64_t location,
                                          std::uint64_t period) {
  ByteWriter w;
  w.u64(nonce);
  w.u64(location);
  w.u64(period);
  return w.take();
}

}  // namespace ptm
