#include "net/channel.hpp"

namespace ptm {

std::vector<std::uint8_t> SimulatedChannel::maybe_corrupt(
    std::span<const std::uint8_t> frame_bytes) {
  std::vector<std::uint8_t> copy(frame_bytes.begin(), frame_bytes.end());
  if (!copy.empty() && rng_.bernoulli(config_.corrupt_probability)) {
    const std::size_t pos = static_cast<std::size_t>(rng_.below(copy.size()));
    // Flip one random non-zero bit pattern so the byte always changes.
    copy[pos] ^= static_cast<std::uint8_t>(1U << rng_.below(8));
    ++stats_.corrupted;
  }
  return copy;
}

std::vector<std::vector<std::uint8_t>> SimulatedChannel::transmit(
    std::span<const std::uint8_t> frame_bytes) {
  ++stats_.sent;
  std::vector<std::vector<std::uint8_t>> out;
  if (rng_.bernoulli(config_.loss_probability)) {
    ++stats_.lost;
    return out;
  }
  out.push_back(maybe_corrupt(frame_bytes));
  ++stats_.delivered;
  if (rng_.bernoulli(config_.duplicate_probability)) {
    out.push_back(maybe_corrupt(frame_bytes));
    ++stats_.delivered;
    ++stats_.duplicated;
  }
  return out;
}

}  // namespace ptm
