#include "net/channel.hpp"

namespace ptm {

std::vector<std::uint8_t> SimulatedChannel::maybe_corrupt(
    std::span<const std::uint8_t> frame_bytes) {
  std::vector<std::uint8_t> copy(frame_bytes.begin(), frame_bytes.end());
  if (!copy.empty() && rng_.bernoulli(config_.corrupt_probability)) {
    const std::size_t pos = static_cast<std::size_t>(rng_.below(copy.size()));
    // Flip one random non-zero bit pattern so the byte always changes.
    copy[pos] ^= static_cast<std::uint8_t>(1U << rng_.below(8));
    ++stats_.corrupted;
  }
  return copy;
}

double SimulatedChannel::step_loss_probability() {
  const GilbertElliottConfig& ge = config_.gilbert_elliott;
  if (!ge.enabled) return config_.loss_probability;
  // Transition first, then sample: a burst begins with the frame that
  // flipped the chain into the bad state.
  if (ge_bad_) {
    if (rng_.bernoulli(ge.p_bad_to_good)) ge_bad_ = false;
  } else {
    if (rng_.bernoulli(ge.p_good_to_bad)) ge_bad_ = true;
  }
  return ge_bad_ ? ge.loss_bad : ge.loss_good;
}

std::vector<std::vector<std::uint8_t>> SimulatedChannel::transmit(
    std::span<const std::uint8_t> frame_bytes) {
  ++stats_.sent;
  std::vector<std::vector<std::uint8_t>> out;
  if (plan_.channel_down_at(now_)) {
    ++stats_.lost;
    ++stats_.outage_lost;
    return out;
  }
  const double loss_probability = step_loss_probability();
  if (rng_.bernoulli(loss_probability)) {
    ++stats_.lost;
    if (config_.gilbert_elliott.enabled && ge_bad_) ++stats_.burst_lost;
    return out;
  }
  out.push_back(maybe_corrupt(frame_bytes));
  ++stats_.delivered;
  if (rng_.bernoulli(config_.duplicate_probability)) {
    out.push_back(maybe_corrupt(frame_bytes));
    ++stats_.delivered;
    ++stats_.duplicated;
  }
  return out;
}

}  // namespace ptm
