// fault_plan.hpp - scripted failure sequences for the simulated deployment.
//
// The i.i.d. knobs in ChannelConfig model steady-state radio noise; real
// outages are bursty and correlated (a truck parks in front of the RSU, a
// backhaul link flaps, a unit reboots).  A FaultPlan scripts those events
// against the deployment's logical step clock so chaos tests and ablations
// can replay the exact same failure sequence run after run:
//
//   * channel outages  - the shared radio medium is dead (every frame lost);
//   * server outages   - the RSU->server backhaul is unreachable (uploads
//                        and acks lost; vehicle contacts unaffected);
//   * RSU outages      - one RSU's radio is off (its contacts and uploads
//                        fail while the window is open);
//   * RSU crashes      - at a trigger step the RSU loses volatile state and
//                        restarts from its journal + outbox;
//   * server crashes   - at a trigger step the central server process dies
//                        and restarts from its record archive (only
//                        meaningful when the deployment's server is
//                        durable; a volatile server has nothing to restart
//                        from).
//
// Windows are half-open [start, end) in deployment steps.  The plan is a
// passive schedule: SimulatedChannel consults the channel outages itself;
// Deployment consults the rest.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace ptm {

/// Half-open window [start, end) on the deployment's logical step clock.
struct FaultWindow {
  std::uint64_t start = 0;
  std::uint64_t end = 0;

  [[nodiscard]] bool contains(std::uint64_t step) const noexcept {
    return step >= start && step < end;
  }
};

/// A scripted failure sequence.  Default-constructed plans inject nothing.
struct FaultPlan {
  std::vector<FaultWindow> channel_outages;  ///< shared medium dead
  std::vector<FaultWindow> server_outages;   ///< backhaul unreachable
  /// Per-RSU (by location) radio-off windows.
  std::map<std::uint64_t, std::vector<FaultWindow>> rsu_outages;
  /// Per-RSU (by location) crash trigger steps, ascending.
  std::map<std::uint64_t, std::vector<std::uint64_t>> rsu_crashes;
  /// Central-server crash trigger steps, ascending.
  std::vector<std::uint64_t> server_crashes;

  [[nodiscard]] bool channel_down_at(std::uint64_t step) const noexcept;
  [[nodiscard]] bool server_unreachable_at(std::uint64_t step) const noexcept;
  [[nodiscard]] bool rsu_down_at(std::uint64_t location,
                                 std::uint64_t step) const noexcept;
  /// True if a crash trigger for `location` lies in [from, to).
  [[nodiscard]] bool rsu_crash_between(std::uint64_t location,
                                       std::uint64_t from,
                                       std::uint64_t to) const noexcept;
  /// True if a server crash trigger lies in [from, to).
  [[nodiscard]] bool server_crash_between(std::uint64_t from,
                                          std::uint64_t to) const noexcept;
};

}  // namespace ptm
