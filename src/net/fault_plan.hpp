// fault_plan.hpp - scripted failure sequences for the simulated deployment.
//
// The i.i.d. knobs in ChannelConfig model steady-state radio noise; real
// outages are bursty and correlated (a truck parks in front of the RSU, a
// backhaul link flaps, a unit reboots).  A FaultPlan scripts those events
// against the deployment's logical step clock so chaos tests and ablations
// can replay the exact same failure sequence run after run:
//
//   * channel outages  - the shared radio medium is dead (every frame lost);
//   * server outages   - the RSU->server backhaul is unreachable (uploads
//                        and acks lost; vehicle contacts unaffected);
//   * RSU outages      - one RSU's radio is off (its contacts and uploads
//                        fail while the window is open);
//   * RSU crashes      - at a trigger step the RSU loses volatile state and
//                        restarts from its journal + outbox;
//   * server crashes   - at a trigger step the central server process dies
//                        and restarts from its record archive (only
//                        meaningful when the deployment's server is
//                        durable; a volatile server has nothing to restart
//                        from).
//
// Windows are half-open [start, end) in deployment steps.  The plan is a
// passive schedule: SimulatedChannel consults the channel outages itself;
// Deployment consults the rest.
//
// Socket-level faults (PR 7) extend the same scripting idea below the
// frame layer: when the deployment runs out-of-process over real sockets
// (src/transport/), a FaultPlan can also carry per-connection scripts of
// byte-level misbehavior - dropped frames, delays, duplicates, mid-frame
// truncation, connection severs - keyed on the connection's outbound frame
// ordinal rather than the logical clock (a socket fault is "the 3rd frame
// on the 2nd connection dies", not "the network is down at step 40").
// transport/fault_injection.hpp executes these scripts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace ptm {

/// Half-open window [start, end) on the deployment's logical step clock.
struct FaultWindow {
  std::uint64_t start = 0;
  std::uint64_t end = 0;

  [[nodiscard]] bool contains(std::uint64_t step) const noexcept {
    return step >= start && step < end;
  }
};

/// What a scripted socket fault does to one outbound frame.
enum class SocketFaultAction : std::uint8_t {
  kDropFrame = 1,        ///< frame silently never written
  kDuplicateFrame = 2,   ///< frame written twice back to back
  kDelayFrame = 3,       ///< frame written after `param_ms` of real delay
  kTruncateAndSever = 4, ///< only the first `param_bytes` wire bytes are
                         ///< written, then the connection is severed - the
                         ///< receiver sees a torn length-prefixed frame
  kSever = 5,            ///< connection closed before the frame is written
};

[[nodiscard]] const char* socket_fault_action_name(
    SocketFaultAction a) noexcept;

/// One scripted socket fault: fires when the connection is about to write
/// its `frame_index`-th frame (0-based, counted per connection).
struct SocketFault {
  std::uint64_t frame_index = 0;
  SocketFaultAction action = SocketFaultAction::kDropFrame;
  std::uint64_t param_ms = 0;     ///< kDelayFrame: delay in milliseconds
  std::uint64_t param_bytes = 0;  ///< kTruncateAndSever: bytes that escape
};

/// A scripted failure sequence.  Default-constructed plans inject nothing.
struct FaultPlan {
  std::vector<FaultWindow> channel_outages;  ///< shared medium dead
  std::vector<FaultWindow> server_outages;   ///< backhaul unreachable
  /// Per-RSU (by location) radio-off windows.
  std::map<std::uint64_t, std::vector<FaultWindow>> rsu_outages;
  /// Per-RSU (by location) crash trigger steps, ascending.
  std::map<std::uint64_t, std::vector<std::uint64_t>> rsu_crashes;
  /// Central-server crash trigger steps, ascending.
  std::vector<std::uint64_t> server_crashes;
  /// Per-connection (by 0-based connection ordinal) socket fault scripts,
  /// each sorted by frame_index.  Executed by transport's
  /// FaultInjectingSocket when the deployment runs over real sockets.
  std::map<std::uint64_t, std::vector<SocketFault>> socket_faults;

  [[nodiscard]] bool channel_down_at(std::uint64_t step) const noexcept;
  [[nodiscard]] bool server_unreachable_at(std::uint64_t step) const noexcept;
  /// End of the latest server outage window covering `step` (several may
  /// overlap), or nullopt when the backhaul is reachable at `step`.  Retry
  /// scheduling uses this to re-arm backoff from the moment connectivity
  /// returns instead of piling every retry onto the outage itself.
  [[nodiscard]] std::optional<std::uint64_t> server_outage_end_at(
      std::uint64_t step) const noexcept;
  [[nodiscard]] bool rsu_down_at(std::uint64_t location,
                                 std::uint64_t step) const noexcept;
  /// True if a crash trigger for `location` lies in [from, to).
  [[nodiscard]] bool rsu_crash_between(std::uint64_t location,
                                       std::uint64_t from,
                                       std::uint64_t to) const noexcept;
  /// True if a server crash trigger lies in [from, to).
  [[nodiscard]] bool server_crash_between(std::uint64_t from,
                                          std::uint64_t to) const noexcept;
};

}  // namespace ptm
