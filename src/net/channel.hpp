// channel.hpp - simulated DSRC wireless channel.
//
// The paper evaluates on IEEE 802.11p radios; our substitution is a lossy
// byte-pipe with configurable loss, duplication, and corruption (DESIGN.md
// §5).  The estimators consume only bitmaps, so the channel's effect on the
// results is exactly "which vehicles got encoded" - with the default
// zero-loss config every passing vehicle is encoded, matching the paper's
// assumption; the failure-injection tests and the channel ablation raise the
// knobs to show graceful degradation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"

namespace ptm {

struct ChannelConfig {
  double loss_probability = 0.0;       ///< frame silently dropped
  double duplicate_probability = 0.0;  ///< frame delivered twice
  double corrupt_probability = 0.0;    ///< one random byte flipped
};

struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
};

/// A unidirectional lossy pipe.  `transmit` maps one encoded frame to zero,
/// one, or two delivered byte vectors (possibly corrupted); framing and
/// retransmission policy live above this layer.
class SimulatedChannel {
 public:
  SimulatedChannel(ChannelConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  [[nodiscard]] std::vector<std::vector<std::uint8_t>> transmit(
      std::span<const std::uint8_t> frame_bytes);

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ChannelConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::vector<std::uint8_t> maybe_corrupt(
      std::span<const std::uint8_t> frame_bytes);

  ChannelConfig config_;
  Xoshiro256 rng_;
  ChannelStats stats_;
};

}  // namespace ptm
