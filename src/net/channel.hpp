// channel.hpp - simulated DSRC wireless channel.
//
// The paper evaluates on IEEE 802.11p radios; our substitution is a lossy
// byte-pipe with configurable loss, duplication, and corruption (DESIGN.md
// §5).  The estimators consume only bitmaps, so the channel's effect on the
// results is exactly "which vehicles got encoded" - with the default
// zero-loss config every passing vehicle is encoded, matching the paper's
// assumption; the failure-injection tests and the channel ablation raise the
// knobs to show graceful degradation.
//
// Two time-varying fault models layer on top of the i.i.d. knobs:
//
//   * Gilbert-Elliott bursty loss: a two-state Markov chain (good/bad)
//     advanced once per transmitted frame; each state has its own loss
//     probability, so losses cluster into bursts the way fading does.
//   * Scheduled outages: a FaultPlan's channel_outages, checked against the
//     channel's logical clock (advance_to); every frame sent inside an open
//     window is lost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"
#include "net/fault_plan.hpp"

namespace ptm {

/// Two-state Markov loss model (Gilbert-Elliott).  State transitions happen
/// once per transmitted frame; `loss_probability` in ChannelConfig is
/// ignored while this is enabled.
struct GilbertElliottConfig {
  bool enabled = false;
  double p_good_to_bad = 0.0;  ///< per-frame P(good -> bad)
  double p_bad_to_good = 0.2;  ///< per-frame P(bad -> good); mean burst 1/p
  double loss_good = 0.0;      ///< loss probability in the good state
  double loss_bad = 1.0;       ///< loss probability in the bad state
};

struct ChannelConfig {
  double loss_probability = 0.0;       ///< frame silently dropped (i.i.d.)
  double duplicate_probability = 0.0;  ///< frame delivered twice
  double corrupt_probability = 0.0;    ///< one random byte flipped
  GilbertElliottConfig gilbert_elliott;///< bursty-loss overlay
};

struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;         ///< all losses (random + burst + outage)
  std::uint64_t burst_lost = 0;   ///< lost while the GE chain was bad
  std::uint64_t outage_lost = 0;  ///< lost inside a scheduled outage window
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
};

/// A unidirectional lossy pipe.  `transmit` maps one encoded frame to zero,
/// one, or two delivered byte vectors (possibly corrupted); framing and
/// retransmission policy live above this layer.
class SimulatedChannel {
 public:
  SimulatedChannel(ChannelConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  [[nodiscard]] std::vector<std::vector<std::uint8_t>> transmit(
      std::span<const std::uint8_t> frame_bytes);

  /// Installs the scripted outage schedule (only channel_outages are
  /// consulted here; the deployment interprets the rest of the plan).
  void set_fault_plan(FaultPlan plan) { plan_ = std::move(plan); }

  /// Moves the logical clock used to evaluate outage windows.  Time only
  /// moves forward; calls with an earlier step are ignored.
  void advance_to(std::uint64_t step) noexcept {
    if (step > now_) now_ = step;
  }
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  /// True while the Gilbert-Elliott chain sits in the bad state.
  [[nodiscard]] bool in_burst() const noexcept { return ge_bad_; }

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ChannelConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::vector<std::uint8_t> maybe_corrupt(
      std::span<const std::uint8_t> frame_bytes);
  /// Advances the GE chain one frame and returns this frame's loss
  /// probability under the active loss model.
  [[nodiscard]] double step_loss_probability();

  ChannelConfig config_;
  Xoshiro256 rng_;
  ChannelStats stats_;
  FaultPlan plan_;
  std::uint64_t now_ = 0;
  bool ge_bad_ = false;
};

}  // namespace ptm
