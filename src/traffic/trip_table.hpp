// trip_table.hpp - origin-destination trip tables (paper §VI-A).
//
// The paper's real-data evaluation draws point-to-point volumes from the
// Sioux Falls vehicle trip table (LeBlanc et al. 1975 [24]): entry (i, j) is
// the number of vehicles traveling from zone i to zone j per measurement
// period.  A location's total volume is the sum of all entries involving it;
// the p2p volume between two locations comes from the pair's entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"

namespace ptm {

class TripTable {
 public:
  /// All-zero table over `zones` zones.
  explicit TripTable(std::size_t zones);

  [[nodiscard]] std::size_t zones() const noexcept { return zones_; }

  /// Demand from zone `from` to zone `to` (0-based).  Diagonal entries are
  /// allowed (intra-zone trips) but excluded from pair volume.
  [[nodiscard]] std::uint64_t demand(std::size_t from, std::size_t to) const;
  void set_demand(std::size_t from, std::size_t to, std::uint64_t vehicles);

  /// Total volume observed at a zone: all trips departing from or arriving
  /// at it (the paper's n for a location).
  [[nodiscard]] std::uint64_t zone_volume(std::size_t zone) const;

  /// Point-to-point volume between two distinct zones: demand(a,b) +
  /// demand(b,a) (the paper's n'' source for a location pair).
  [[nodiscard]] std::uint64_t pair_volume(std::size_t a, std::size_t b) const;

  /// Sum of every entry.
  [[nodiscard]] std::uint64_t total_trips() const;

  /// Zone with the largest zone_volume (the paper picks it as L').
  [[nodiscard]] std::size_t busiest_zone() const;

  /// Scales every entry by `factor` with rounding.
  void scale(double factor);

 private:
  std::size_t zones_;
  std::vector<std::uint64_t> demand_;  // row-major zones_ x zones_
};

/// Deterministic gravity-model OD table: zone "masses" are drawn
/// log-uniformly and demand(i,j) ∝ mass_i * mass_j / (1 + dist(i,j)), then
/// the table is scaled to ~`total_trips`.  This is the synthetic stand-in
/// for road networks in examples and tests (see DESIGN.md §5 on why the
/// Table-I reproduction instead uses the paper's own published volumes).
[[nodiscard]] TripTable gravity_model_table(std::size_t zones,
                                            std::uint64_t total_trips,
                                            std::uint64_t seed);

/// The 24-zone Sioux-Falls-like demo network used by the examples: a
/// gravity-model table scaled so the busiest zone sees roughly the paper's
/// n' = 451,000 vehicles.
[[nodiscard]] TripTable sioux_falls_like_network();

}  // namespace ptm
