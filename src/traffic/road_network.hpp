// road_network.hpp - a road graph over the trip-table zones.
//
// The trip table says how many vehicles travel between zone pairs; it says
// nothing about the roads they use.  For trajectory-level experiments
// (which RSUs does a commuter actually pass?) we need a graph: zones are
// intersections with RSUs, edges are road segments with travel costs, and
// vehicles follow shortest paths.  This module provides the graph, a
// deterministic generator that produces a connected planar-ish network from
// zone coordinates, and Dijkstra routing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"

namespace ptm {

struct RoadEdge {
  std::size_t to = 0;
  double cost = 0.0;  ///< travel time / length
};

class RoadNetwork {
 public:
  /// Graph with `zones` isolated nodes at the given coordinates.
  RoadNetwork(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] std::size_t zone_count() const noexcept { return x_.size(); }
  [[nodiscard]] double x_of(std::size_t zone) const { return x_.at(zone); }
  [[nodiscard]] double y_of(std::size_t zone) const { return y_.at(zone); }

  /// Adds an undirected road of the given cost (must be > 0).
  void add_road(std::size_t a, std::size_t b, double cost);

  [[nodiscard]] const std::vector<RoadEdge>& roads_from(
      std::size_t zone) const {
    return adjacency_.at(zone);
  }
  [[nodiscard]] std::size_t road_count() const noexcept {
    return edge_count_;
  }

  /// True iff every zone can reach every other.
  [[nodiscard]] bool connected() const;

  /// Dijkstra shortest path from `from` to `to`, as the sequence of zones
  /// visited INCLUDING both endpoints.  NotFound when unreachable.
  [[nodiscard]] Result<std::vector<std::size_t>> shortest_path(
      std::size_t from, std::size_t to) const;

  /// Total cost of the shortest path (NotFound when unreachable).
  [[nodiscard]] Result<double> shortest_cost(std::size_t from,
                                             std::size_t to) const;

 private:
  std::vector<double> x_, y_;
  std::vector<std::vector<RoadEdge>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// Deterministic network generator: zones placed uniformly in the unit
/// square (seeded), each connected to its `k` nearest neighbours with cost
/// = Euclidean distance, then patched to connectivity by joining components
/// at their closest pair.  k >= 2 gives a road-like planar-ish mesh.
[[nodiscard]] RoadNetwork generate_road_network(std::size_t zones,
                                                std::size_t k,
                                                std::uint64_t seed);

}  // namespace ptm
