#include "traffic/workload.hpp"

#include <cassert>

#include "core/traffic_record.hpp"

namespace ptm {

std::vector<std::uint64_t> draw_period_volumes(std::size_t t,
                                               std::uint64_t volume_min,
                                               std::uint64_t volume_max,
                                               Xoshiro256& rng) {
  assert(volume_min >= 1 && volume_min <= volume_max);
  std::vector<std::uint64_t> volumes(t);
  for (auto& v : volumes) v = rng.in_range(volume_min, volume_max);
  return volumes;
}

std::vector<VehicleSecrets> make_vehicles(std::size_t n, std::size_t s,
                                          Xoshiro256& rng) {
  std::vector<std::uint64_t> ids = sample_distinct_ids(rng, n);
  std::vector<VehicleSecrets> out;
  out.reserve(n);
  for (std::uint64_t id : ids) {
    out.push_back(VehicleSecrets::create(id, s, rng));
  }
  return out;
}

void add_transient_traffic(Bitmap& record, std::uint64_t count,
                           Xoshiro256& rng) {
  const std::uint64_t m = record.size();
  for (std::uint64_t i = 0; i < count; ++i) {
    record.set(static_cast<std::size_t>(rng.below(m)));
  }
}

std::vector<Bitmap> generate_point_records(
    const std::vector<std::uint64_t>& volumes,
    const std::vector<VehicleSecrets>& common, std::uint64_t location,
    double load_factor, const EncodingParams& encoding, Xoshiro256& rng) {
  const VehicleEncoder encoder(encoding);
  std::vector<Bitmap> records;
  records.reserve(volumes.size());
  for (std::uint64_t volume : volumes) {
    assert(volume >= common.size());
    const std::size_t m =
        plan_bitmap_size(static_cast<double>(volume), load_factor);
    Bitmap record(m);
    for (const VehicleSecrets& vehicle : common) {
      encoder.encode(vehicle, location, record);
    }
    add_transient_traffic(record, volume - common.size(), rng);
    records.push_back(std::move(record));
  }
  return records;
}

P2PRecordSet generate_p2p_records(
    const std::vector<std::uint64_t>& volumes_l,
    const std::vector<std::uint64_t>& volumes_l_prime,
    const std::vector<VehicleSecrets>& common, std::uint64_t location_l,
    std::uint64_t location_l_prime, double load_factor,
    const EncodingParams& encoding, Xoshiro256& rng,
    bool same_size_benchmark) {
  assert(volumes_l.size() == volumes_l_prime.size());
  const VehicleEncoder encoder(encoding);
  P2PRecordSet out;
  out.at_l.reserve(volumes_l.size());
  out.at_l_prime.reserve(volumes_l_prime.size());

  for (std::size_t j = 0; j < volumes_l.size(); ++j) {
    assert(volumes_l[j] >= common.size() &&
           volumes_l_prime[j] >= common.size());
    const std::size_t m =
        plan_bitmap_size(static_cast<double>(volumes_l[j]), load_factor);
    // Table I's "same-size bitmaps" row plans L' from L's volume, ensuring
    // privacy for the smaller location at the cost of heavy mixing at the
    // larger one (§VI-A).
    const std::size_t m_prime =
        same_size_benchmark
            ? m
            : plan_bitmap_size(static_cast<double>(volumes_l_prime[j]),
                               load_factor);

    Bitmap record_l(m);
    Bitmap record_lp(m_prime);
    for (const VehicleSecrets& vehicle : common) {
      encoder.encode(vehicle, location_l, record_l);
      encoder.encode(vehicle, location_l_prime, record_lp);
    }
    add_transient_traffic(record_l, volumes_l[j] - common.size(), rng);
    add_transient_traffic(record_lp, volumes_l_prime[j] - common.size(), rng);
    out.at_l.push_back(std::move(record_l));
    out.at_l_prime.push_back(std::move(record_lp));
  }
  return out;
}

std::vector<std::vector<Bitmap>> generate_corridor_records(
    std::span<const std::uint64_t> location_ids,
    std::span<const std::vector<std::uint64_t>> volumes_per_location,
    const std::vector<VehicleSecrets>& common, double load_factor,
    const EncodingParams& encoding, Xoshiro256& rng) {
  assert(location_ids.size() == volumes_per_location.size() &&
         location_ids.size() >= 1);
  const VehicleEncoder encoder(encoding);
  std::vector<std::vector<Bitmap>> out(location_ids.size());

  for (std::size_t loc = 0; loc < location_ids.size(); ++loc) {
    const auto& volumes = volumes_per_location[loc];
    assert(volumes.size() == volumes_per_location[0].size());
    out[loc].reserve(volumes.size());
    for (std::uint64_t volume : volumes) {
      assert(volume >= common.size());
      const std::size_t m =
          plan_bitmap_size(static_cast<double>(volume), load_factor);
      Bitmap record(m);
      for (const VehicleSecrets& vehicle : common) {
        encoder.encode(vehicle, location_ids[loc], record);
      }
      add_transient_traffic(record, volume - common.size(), rng);
      out[loc].push_back(std::move(record));
    }
  }
  return out;
}

}  // namespace ptm
