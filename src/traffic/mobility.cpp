#include "traffic/mobility.hpp"

#include <algorithm>
#include <cassert>

namespace ptm {

MobilityModel::MobilityModel(const RoadNetwork& network,
                             const TripTable& demand, std::size_t commuters,
                             const EncodingParams& encoding, Xoshiro256& rng)
    : network_(network), encoding_(encoding), zones_(network.zone_count()) {
  assert(demand.zones() == network.zone_count());

  // Cumulative off-diagonal demand for proportional OD sampling.
  cumulative_demand_.reserve(zones_ * zones_);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < zones_; ++i) {
    for (std::size_t j = 0; j < zones_; ++j) {
      if (i != j) total += demand.demand(i, j);
      cumulative_demand_.push_back(total);
    }
  }
  assert(total > 0 && "trip table has no demand");

  commuters_.reserve(commuters);
  while (commuters_.size() < commuters) {
    const auto [origin, destination] = sample_od(rng);
    auto route = network_.shortest_path(origin, destination);
    if (!route) continue;  // disconnected pair (generator prevents this)
    Commuter c;
    c.secrets = VehicleSecrets::create(rng.next(), encoding_.s, rng);
    c.origin = origin;
    c.destination = destination;
    c.route = std::move(*route);
    commuters_.push_back(std::move(c));
  }
}

std::pair<std::size_t, std::size_t> MobilityModel::sample_od(
    Xoshiro256& rng) const {
  const std::uint64_t total = cumulative_demand_.back();
  const std::uint64_t pick = rng.below(total) + 1;  // in [1, total]
  const auto it = std::lower_bound(cumulative_demand_.begin(),
                                   cumulative_demand_.end(), pick);
  const auto flat =
      static_cast<std::size_t>(it - cumulative_demand_.begin());
  return {flat / zones_, flat % zones_};
}

PeriodTraffic MobilityModel::sample_period(std::size_t trips,
                                           Xoshiro256& rng) const {
  PeriodTraffic period;
  period.transients.reserve(trips);
  while (period.transients.size() < trips) {
    const auto [origin, destination] = sample_od(rng);
    auto route = network_.shortest_path(origin, destination);
    if (!route) continue;
    TransientTrip trip;
    trip.secrets = VehicleSecrets::create(rng.next(), encoding_.s, rng);
    trip.route = std::move(*route);
    period.transients.push_back(std::move(trip));
  }
  return period;
}

std::size_t MobilityModel::commuters_through(std::size_t zone) const {
  std::size_t count = 0;
  for (const Commuter& c : commuters_) {
    if (std::find(c.route.begin(), c.route.end(), zone) != c.route.end()) {
      ++count;
    }
  }
  return count;
}

std::size_t MobilityModel::commuters_through_both(std::size_t zone_a,
                                                  std::size_t zone_b) const {
  std::size_t count = 0;
  for (const Commuter& c : commuters_) {
    const bool through_a =
        std::find(c.route.begin(), c.route.end(), zone_a) != c.route.end();
    const bool through_b =
        std::find(c.route.begin(), c.route.end(), zone_b) != c.route.end();
    if (through_a && through_b) ++count;
  }
  return count;
}

std::vector<Bitmap> build_period_records(
    const MobilityModel& model, const PeriodTraffic& period,
    const std::vector<std::size_t>& record_sizes,
    const EncodingParams& encoding) {
  const VehicleEncoder encoder(encoding);
  std::vector<Bitmap> records;
  records.reserve(record_sizes.size());
  for (std::size_t m : record_sizes) records.emplace_back(m);

  auto drive = [&](const VehicleSecrets& secrets,
                   const std::vector<std::size_t>& route) {
    for (std::size_t zone : route) {
      encoder.encode(secrets, static_cast<std::uint64_t>(zone),
                     records[zone]);
    }
  };
  for (const Commuter& c : model.commuters()) drive(c.secrets, c.route);
  for (const TransientTrip& t : period.transients) drive(t.secrets, t.route);
  return records;
}

}  // namespace ptm
