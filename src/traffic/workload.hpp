// workload.hpp - synthetic traffic generators matching the paper's
// simulation setup (§VI).
//
// Ground truth in every experiment is a set of *common* vehicles planted at
// one location (point persistent) or a pair of locations (p2p persistent),
// plus per-period *transient* vehicles that never repeat.  Common vehicles
// are encoded through the real VehicleEncoder so all cross-period /
// cross-location hash structure is faithful.  Transient vehicles are fresh
// every period, so their bit indices are i.i.d. uniform - the generator sets
// uniform random bits directly instead of minting throwaway secrets, which
// is distribution-identical and keeps the paper's 451,000-vehicle Sioux
// Falls columns fast (the equivalence is property-tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitmap.hpp"
#include "common/random.hpp"
#include "core/encoding.hpp"

namespace ptm {

/// Draws `t` per-period volumes uniformly from [volume_min, volume_max]
/// (the paper's (2000, 10000] becomes [2001, 10000]).
[[nodiscard]] std::vector<std::uint64_t> draw_period_volumes(
    std::size_t t, std::uint64_t volume_min, std::uint64_t volume_max,
    Xoshiro256& rng);

/// Mints `n` vehicles with fresh secrets (the planted common set).
[[nodiscard]] std::vector<VehicleSecrets> make_vehicles(std::size_t n,
                                                        std::size_t s,
                                                        Xoshiro256& rng);

/// Sets `count` uniformly random bits in `record` - the statistical
/// equivalent of encoding `count` fresh transient vehicles (distinct IDs,
/// uniform hash outputs).
void add_transient_traffic(Bitmap& record, std::uint64_t count,
                           Xoshiro256& rng);

/// Generates the t per-period records of one location for the point
/// persistent experiment (§VI-B): per period j the bitmap has
/// m_j = plan_bitmap_size(volumes[j], f) bits, carries every common vehicle
/// (same bit each period) and volumes[j] - |common| fresh transients.
/// Precondition: |common| <= min(volumes).
[[nodiscard]] std::vector<Bitmap> generate_point_records(
    const std::vector<std::uint64_t>& volumes,
    const std::vector<VehicleSecrets>& common, std::uint64_t location,
    double load_factor, const EncodingParams& encoding, Xoshiro256& rng);

/// Record sets of the two locations in the p2p experiment.
struct P2PRecordSet {
  std::vector<Bitmap> at_l;
  std::vector<Bitmap> at_l_prime;
};

/// Generates per-period records at L and L' (§VI-A/B): every common vehicle
/// is encoded at BOTH locations every period; each location additionally
/// receives volumes[j] - |common| fresh transients per period.
/// `same_size_benchmark` reproduces Table I's last row: L''s bitmap is
/// planned from L's volume instead of its own (m' = m), the simpler design
/// the paper compares against.
/// Preconditions: equal t at both locations, |common| <= every volume.
[[nodiscard]] P2PRecordSet generate_p2p_records(
    const std::vector<std::uint64_t>& volumes_l,
    const std::vector<std::uint64_t>& volumes_l_prime,
    const std::vector<VehicleSecrets>& common, std::uint64_t location_l,
    std::uint64_t location_l_prime, double load_factor,
    const EncodingParams& encoding, Xoshiro256& rng,
    bool same_size_benchmark = false);

/// Generates per-period records for a k-location corridor: every common
/// vehicle is encoded at ALL locations every period; location j
/// additionally receives volumes_per_location[j][period] - |common| fresh
/// transients.  Result is indexed [location][period].
/// Preconditions: one volume vector per location, equal period counts,
/// every volume >= |common|.
[[nodiscard]] std::vector<std::vector<Bitmap>> generate_corridor_records(
    std::span<const std::uint64_t> location_ids,
    std::span<const std::vector<std::uint64_t>> volumes_per_location,
    const std::vector<VehicleSecrets>& common, double load_factor,
    const EncodingParams& encoding, Xoshiro256& rng);

}  // namespace ptm
