#include "traffic/road_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

namespace ptm {

RoadNetwork::RoadNetwork(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)), adjacency_(x_.size()) {
  assert(x_.size() == y_.size() && x_.size() >= 2);
}

void RoadNetwork::add_road(std::size_t a, std::size_t b, double cost) {
  assert(a < zone_count() && b < zone_count() && a != b && cost > 0.0);
  // Idempotent: ignore an existing road between the same pair.
  for (const RoadEdge& e : adjacency_[a]) {
    if (e.to == b) return;
  }
  adjacency_[a].push_back({b, cost});
  adjacency_[b].push_back({a, cost});
  ++edge_count_;
}

bool RoadNetwork::connected() const {
  std::vector<bool> seen(zone_count(), false);
  std::vector<std::size_t> stack = {0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t zone = stack.back();
    stack.pop_back();
    for (const RoadEdge& e : adjacency_[zone]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == zone_count();
}

Result<std::vector<std::size_t>> RoadNetwork::shortest_path(
    std::size_t from, std::size_t to) const {
  assert(from < zone_count() && to < zone_count());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(zone_count(), kInf);
  std::vector<std::size_t> prev(zone_count(), SIZE_MAX);
  using Entry = std::pair<double, std::size_t>;  // (dist, zone)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  dist[from] = 0.0;
  frontier.emplace(0.0, from);

  while (!frontier.empty()) {
    const auto [d, zone] = frontier.top();
    frontier.pop();
    if (d > dist[zone]) continue;  // stale entry
    if (zone == to) break;
    for (const RoadEdge& e : adjacency_[zone]) {
      const double candidate = d + e.cost;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        prev[e.to] = zone;
        frontier.emplace(candidate, e.to);
      }
    }
  }

  if (dist[to] == kInf) {
    return Status{ErrorCode::kNotFound, "zones not connected"};
  }
  std::vector<std::size_t> path;
  for (std::size_t z = to; z != SIZE_MAX; z = prev[z]) {
    path.push_back(z);
    if (z == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<double> RoadNetwork::shortest_cost(std::size_t from,
                                          std::size_t to) const {
  auto path = shortest_path(from, to);
  if (!path) return path.status();
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    for (const RoadEdge& e : adjacency_[(*path)[i]]) {
      if (e.to == (*path)[i + 1]) {
        total += e.cost;
        break;
      }
    }
  }
  return total;
}

RoadNetwork generate_road_network(std::size_t zones, std::size_t k,
                                  std::uint64_t seed) {
  assert(zones >= 2 && k >= 1);
  Xoshiro256 rng(seed);
  std::vector<double> x(zones), y(zones);
  for (std::size_t i = 0; i < zones; ++i) {
    x[i] = rng.uniform01();
    y[i] = rng.uniform01();
  }
  RoadNetwork net(x, y);

  auto distance = [&](std::size_t a, std::size_t b) {
    const double dx = x[a] - x[b];
    const double dy = y[a] - y[b];
    return std::sqrt(dx * dx + dy * dy);
  };

  // k-nearest-neighbour roads.
  for (std::size_t a = 0; a < zones; ++a) {
    std::vector<std::size_t> order;
    for (std::size_t b = 0; b < zones; ++b) {
      if (b != a) order.push_back(b);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t p, std::size_t q) {
      return distance(a, p) < distance(a, q);
    });
    for (std::size_t i = 0; i < std::min(k, order.size()); ++i) {
      net.add_road(a, order[i], distance(a, order[i]));
    }
  }

  // Patch to connectivity: while components remain, connect the closest
  // cross-component pair.
  while (!net.connected()) {
    // Label components with a DFS from zone 0.
    std::vector<bool> in_main(zones, false);
    std::vector<std::size_t> stack = {0};
    in_main[0] = true;
    while (!stack.empty()) {
      const std::size_t zone = stack.back();
      stack.pop_back();
      for (const RoadEdge& e : net.roads_from(zone)) {
        if (!in_main[e.to]) {
          in_main[e.to] = true;
          stack.push_back(e.to);
        }
      }
    }
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_a = 0, best_b = 1;
    for (std::size_t a = 0; a < zones; ++a) {
      if (!in_main[a]) continue;
      for (std::size_t b = 0; b < zones; ++b) {
        if (in_main[b]) continue;
        const double d = distance(a, b);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    net.add_road(best_a, best_b, best);
  }
  return net;
}

}  // namespace ptm
