// mobility.hpp - trajectory-level traffic: who drives where, through which
// RSUs.
//
// The estimator experiments (§VI) plant common vehicles directly; this
// module generates the richer ground truth behind them: a fleet of
// commuters with fixed home→work OD pairs who drive their shortest route
// every period, plus per-period transient trips sampled from the trip
// table.  Each trajectory is the exact sequence of zones (= RSUs) passed,
// so experiments can ask "how many vehicles persistently traverse BOTH
// zone 3 and zone 9?" with a known answer - including vehicles that pass
// through intermediate zones they are neither origin nor destination of,
// which the OD matrix alone cannot express.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"
#include "core/encoding.hpp"
#include "traffic/road_network.hpp"
#include "traffic/trip_table.hpp"

namespace ptm {

/// One vehicle's fixed daily route.
struct Commuter {
  VehicleSecrets secrets;
  std::size_t origin = 0;
  std::size_t destination = 0;
  std::vector<std::size_t> route;  ///< zones passed, endpoints included
};

/// A per-period trip by a one-off vehicle.
struct TransientTrip {
  VehicleSecrets secrets;
  std::vector<std::size_t> route;
};

/// The daily traffic of one measurement period.
struct PeriodTraffic {
  std::vector<TransientTrip> transients;
};

/// Mobility model: a persistent commuter fleet + per-period transient
/// trips, both routed over a road network.
class MobilityModel {
 public:
  /// Samples `commuters` fleet members with OD pairs drawn proportionally
  /// to the trip table's demands (table and network must have equal zone
  /// counts; unreachable OD pairs are resampled).
  MobilityModel(const RoadNetwork& network, const TripTable& demand,
                std::size_t commuters, const EncodingParams& encoding,
                Xoshiro256& rng);

  [[nodiscard]] const std::vector<Commuter>& commuters() const noexcept {
    return commuters_;
  }

  /// Samples one period's transient traffic: `trips` one-off vehicles with
  /// trip-table-proportional OD pairs.
  [[nodiscard]] PeriodTraffic sample_period(std::size_t trips,
                                            Xoshiro256& rng) const;

  /// Ground truth: commuters whose route passes through `zone`.
  [[nodiscard]] std::size_t commuters_through(std::size_t zone) const;
  /// Ground truth: commuters whose route passes through BOTH zones.
  [[nodiscard]] std::size_t commuters_through_both(std::size_t zone_a,
                                                   std::size_t zone_b) const;

 private:
  /// OD pair sampled with probability proportional to demand.
  [[nodiscard]] std::pair<std::size_t, std::size_t> sample_od(
      Xoshiro256& rng) const;

  const RoadNetwork& network_;
  std::vector<Commuter> commuters_;
  EncodingParams encoding_;
  // Flattened cumulative demand for O(log) OD sampling.
  std::vector<std::uint64_t> cumulative_demand_;
  std::size_t zones_ = 0;
};

/// Builds one period's traffic records for every zone: each commuter and
/// transient sets its bit at every RSU on its route.  `record_size(zone)`
/// supplies each RSU's m (power of two).
[[nodiscard]] std::vector<Bitmap> build_period_records(
    const MobilityModel& model, const PeriodTraffic& period,
    const std::vector<std::size_t>& record_sizes,
    const EncodingParams& encoding);

}  // namespace ptm
