#include "traffic/trip_table.hpp"

#include <cassert>
#include <cmath>

namespace ptm {

TripTable::TripTable(std::size_t zones)
    : zones_(zones), demand_(zones * zones, 0) {
  assert(zones >= 2);
}

std::uint64_t TripTable::demand(std::size_t from, std::size_t to) const {
  assert(from < zones_ && to < zones_);
  return demand_[from * zones_ + to];
}

void TripTable::set_demand(std::size_t from, std::size_t to,
                           std::uint64_t vehicles) {
  assert(from < zones_ && to < zones_);
  demand_[from * zones_ + to] = vehicles;
}

std::uint64_t TripTable::zone_volume(std::size_t zone) const {
  assert(zone < zones_);
  std::uint64_t total = 0;
  for (std::size_t other = 0; other < zones_; ++other) {
    total += demand(zone, other);
    if (other != zone) total += demand(other, zone);
  }
  return total;
}

std::uint64_t TripTable::pair_volume(std::size_t a, std::size_t b) const {
  assert(a < zones_ && b < zones_ && a != b);
  return demand(a, b) + demand(b, a);
}

std::uint64_t TripTable::total_trips() const {
  std::uint64_t total = 0;
  for (std::uint64_t d : demand_) total += d;
  return total;
}

std::size_t TripTable::busiest_zone() const {
  std::size_t best = 0;
  std::uint64_t best_volume = 0;
  for (std::size_t z = 0; z < zones_; ++z) {
    const std::uint64_t v = zone_volume(z);
    if (v > best_volume) {
      best_volume = v;
      best = z;
    }
  }
  return best;
}

void TripTable::scale(double factor) {
  assert(factor > 0.0);
  for (auto& d : demand_) {
    d = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(d) * factor));
  }
}

TripTable gravity_model_table(std::size_t zones, std::uint64_t total_trips,
                              std::uint64_t seed) {
  Xoshiro256 rng(seed);
  // Zone masses: log-uniform over [1, 100] so a few zones dominate, as in
  // real city networks.
  std::vector<double> mass(zones);
  for (auto& m : mass) m = std::exp(rng.uniform01() * std::log(100.0));
  // Zones placed uniformly on a unit square; "distance" is Euclidean.
  std::vector<double> x(zones), y(zones);
  for (std::size_t i = 0; i < zones; ++i) {
    x[i] = rng.uniform01();
    y[i] = rng.uniform01();
  }

  TripTable table(zones);
  double weight_total = 0.0;
  std::vector<double> weight(zones * zones, 0.0);
  for (std::size_t i = 0; i < zones; ++i) {
    for (std::size_t j = 0; j < zones; ++j) {
      if (i == j) continue;
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double w = mass[i] * mass[j] / (1.0 + dist);
      weight[i * zones + j] = w;
      weight_total += w;
    }
  }
  for (std::size_t i = 0; i < zones; ++i) {
    for (std::size_t j = 0; j < zones; ++j) {
      if (i == j) continue;
      const double share = weight[i * zones + j] / weight_total;
      table.set_demand(i, j,
                       static_cast<std::uint64_t>(std::llround(
                           share * static_cast<double>(total_trips))));
    }
  }
  return table;
}

TripTable sioux_falls_like_network() {
  // Seed chosen once; the table is deterministic.  Scaled so the busiest
  // zone's volume lands near the paper's n' = 451,000.
  TripTable table = gravity_model_table(24, 1'500'000, 0x510FA115ULL);
  const std::uint64_t busiest = table.zone_volume(table.busiest_zone());
  table.scale(451'000.0 / static_cast<double>(busiest));
  return table;
}

}  // namespace ptm
