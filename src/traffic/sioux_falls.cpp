#include "traffic/sioux_falls.hpp"

namespace ptm {

const SiouxFallsScenario& sioux_falls_scenario() {
  // Table I of the paper: (L, n, n'', m, m'/m) with n' = 451,000 and
  // m' = 2^20 = 1,048,576 (Eq. 2 with f = 2).
  static const SiouxFallsScenario scenario{
      451'000,
      1'048'576,
      3,
      2.0,
      {{
          {1, 213'000, 40'000, 524'288, 2},
          {2, 140'000, 20'000, 524'288, 2},
          {3, 121'000, 19'000, 262'144, 4},
          {4, 78'000, 8'000, 262'144, 4},
          {5, 76'000, 8'000, 262'144, 4},
          {6, 47'000, 7'000, 131'072, 8},
          {7, 40'000, 6'000, 131'072, 8},
          {8, 28'000, 3'000, 65'536, 16},
      }}};
  return scenario;
}

const SiouxFallsPaperErrors& sioux_falls_paper_errors() {
  // Rows 6-10 of Table I as published.
  static const SiouxFallsPaperErrors errors{
      {0.0122, 0.0167, 0.0210, 0.0369, 0.0361, 0.0398, 0.0438, 0.0948},
      {0.0101, 0.0144, 0.0169, 0.0252, 0.0267, 0.0284, 0.0265, 0.0585},
      {0.0111, 0.0151, 0.0171, 0.0257, 0.0241, 0.0279, 0.0251, 0.0518},
      {0.0104, 0.0139, 0.0172, 0.0258, 0.0256, 0.0261, 0.0234, 0.0497},
      {0.0110, 0.0172, 0.0267, 0.0510, 0.0491, 0.1271, 0.1305, 1.3749},
  };
  return errors;
}

}  // namespace ptm
