// sioux_falls.hpp - the paper's Table-I evaluation scenario (§VI-A).
//
// The paper measures p2p persistent traffic between L' (the busiest
// location in the Sioux Falls trip table, n' = 451,000) and 8 other
// locations.  Table I reports, for each L, the total volume n, the planned
// bitmap size m, the ratio m'/m, and the planted common volume n''.  We
// embed those published column values verbatim so the reproduction is
// driven by the same numbers as the paper (see DESIGN.md §5).
#pragma once

#include <array>
#include <cstdint>

namespace ptm {

/// One column of Table I.
struct SiouxFallsColumn {
  std::uint64_t location_label;  ///< the paper's L = 1..8
  std::uint64_t n;               ///< total volume at L per period
  std::uint64_t n_double_prime;  ///< planted p2p persistent volume
  std::uint64_t expected_m;      ///< the m the paper reports (Eq. 2, f = 2)
  std::uint64_t expected_ratio;  ///< the paper's m'/m row
};

struct SiouxFallsScenario {
  std::uint64_t n_prime = 451'000;        ///< volume at L' (busiest zone)
  std::uint64_t expected_m_prime = 1'048'576;  ///< Eq. 2 with f = 2
  std::size_t s = 3;
  double f = 2.0;
  std::array<SiouxFallsColumn, 8> columns;
};

/// The published Table-I configuration.
[[nodiscard]] const SiouxFallsScenario& sioux_falls_scenario();

/// The paper's reported relative errors, for EXPERIMENTS.md comparison:
/// rows t = 3, 5, 7, 10 and the same-size benchmark at t = 5.
struct SiouxFallsPaperErrors {
  std::array<double, 8> t3;
  std::array<double, 8> t5;
  std::array<double, 8> t7;
  std::array<double, 8> t10;
  std::array<double, 8> same_size_t5;
};
[[nodiscard]] const SiouxFallsPaperErrors& sioux_falls_paper_errors();

}  // namespace ptm
