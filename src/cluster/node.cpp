#include "cluster/node.hpp"

#include <algorithm>
#include <utility>

namespace ptm::cluster {

Result<std::unique_ptr<ClusterNode>> ClusterNode::create(
    ClusterNodeOptions options) {
  const auto self = std::find_if(
      options.config.nodes.begin(), options.config.nodes.end(),
      [&](const ClusterNodeSpec& n) { return n.node_id == options.node_id; });
  if (self == options.config.nodes.end()) {
    return Status{ErrorCode::kInvalidArgument,
                  "cluster node " + std::to_string(options.node_id) +
                      " is not in the cluster spec"};
  }
  // The spec is authoritative for everything membership-derived.
  options.server.endpoint = self->client;
  if (self->repl.to_string() != self->client.to_string()) {
    options.server.repl_endpoint = self->repl;
  } else {
    options.server.repl_endpoint.reset();
  }
  options.server.node_id = options.node_id;
  return std::unique_ptr<ClusterNode>(new ClusterNode(std::move(options)));
}

ClusterNode::ClusterNode(ClusterNodeOptions options)
    : options_(std::move(options)), map_(options_.config) {
  options_.server.repl_filter = [map = map_](std::uint64_t subscriber,
                                             std::uint64_t location) {
    return map.should_hold(subscriber, location);
  };
  server_ = std::make_unique<transport::PtmdServer>(options_.server);
  for (const ClusterNodeSpec& peer : options_.config.nodes) {
    if (peer.node_id == options_.node_id) continue;
    ReplicationClientOptions rc;
    rc.node_id = options_.node_id;
    rc.peer = peer.repl;
    rc.credentials = options_.credentials;
    // Distinct jitter seeds so peers recovering from one outage spread out.
    rc.seed = options_.node_id * 1000003 + peer.node_id;
    repl_clients_.push_back(
        std::make_unique<ReplicationClient>(std::move(rc),
                                            server_->service()));
  }
}

ClusterNode::~ClusterNode() { stop(); }

Status ClusterNode::start() {
  if (started_) return {};
  Status s = server_->start();
  if (!s.is_ok()) return s;
  for (auto& client : repl_clients_) client->start();
  started_ = true;
  return {};
}

void ClusterNode::stop() {
  if (!started_) return;
  for (auto& client : repl_clients_) client->stop();
  server_->stop();
  started_ = false;
}

}  // namespace ptm::cluster
