#include "cluster/replication.hpp"

#include <chrono>
#include <variant>

#include "core/traffic_record.hpp"
#include "transport/wire.hpp"

namespace ptm::cluster {

using namespace std::chrono_literals;

ReplicationClient::ReplicationClient(ReplicationClientOptions options,
                                     QueryService& service)
    : options_(std::move(options)),
      service_(service),
      connection_(options_.peer, options_.tuning, &service.telemetry(),
                  options_.seed) {
  if (options_.credentials.has_value()) {
    connection_.set_credentials(options_.credentials);
  }
}

ReplicationClient::~ReplicationClient() { stop(); }

void ReplicationClient::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { run(); });
}

void ReplicationClient::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  connection_.sever();
}

void ReplicationClient::run() {
  while (running_.load()) {
    pump_subscription();
    if (!running_.load()) break;
    // The channel died (or the subscribe failed); the dial path inside
    // ensure_connected already sleeps the backoff ladder, so no extra
    // sleep here - just go around and subscribe again.
  }
}

void ReplicationClient::pump_subscription() {
  // Bound each dial round so stop() is honored within one deadline.
  const Status connected =
      connection_.ensure_connected(Deadline::after(500ms));
  if (!connected.is_ok()) {
    if (connected.code() == ErrorCode::kAuthFailure) {
      // A rejected certificate cannot be fixed by redialing; park until
      // stop() instead of hammering the peer.
      while (running_.load()) std::this_thread::sleep_for(50ms);
    }
    return;
  }
  if (!connection_.send(transport::ReplSubscribe{options_.node_id})
           .is_ok()) {
    return;
  }
  subscriptions_.fetch_add(1);
  while (running_.load()) {
    auto message = connection_.receive(Deadline::after(200ms));
    if (!message) {
      if (message.status().code() == ErrorCode::kDeadlineExceeded) continue;
      connection_.sever();  // channel / codec casualty: resubscribe fresh
      return;
    }
    if (const auto* rec =
            std::get_if<transport::ReplRecord>(&*message)) {
      auto record = TrafficRecord::deserialize(rec->record);
      if (!record) {
        // A record that decodes as a frame but not as a TrafficRecord
        // means the peer is corrupt; drop the session, not the node.
        connection_.sever();
        return;
      }
      bool first_accept = false;
      const Status applied = service_.ingest(*record, {}, &first_accept);
      if (applied.is_ok()) {
        if (first_accept) {
          applied_.fetch_add(1);
        } else {
          duplicates_.fetch_add(1);
        }
      } else {
        conflicts_.fetch_add(1);
      }
      if (!connection_.send(transport::ReplAck{rec->seq}).is_ok()) {
        return;
      }
    } else if (std::holds_alternative<transport::ReplSnapshotEnd>(
                   *message)) {
      synced_.store(true);
    }
    // ReplSnapshotBegin and any stray acks/stats are informational.
  }
}

}  // namespace ptm::cluster
