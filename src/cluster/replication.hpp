// replication.hpp - the follower half of ptmd archive replication.
//
// A ReplicationClient keeps one subscription alive against one peer
// node's replication endpoint: dial (with PKI credentials when the
// cluster is authenticated), send repl-subscribe, then apply the
// snapshot-plus-live-tail stream into the local QueryService.  Because
// the local service is idempotent and write-ahead durable, applying is
// just `ingest`: a record already held (from the local archive replay, a
// previous subscription, or a direct RSU upload) deduplicates silently,
// so the at-least-once stream becomes exactly-once archive contents.
//
// The subscription survives the peer: any channel or codec failure
// severs the session, backs off, redials, and re-subscribes from scratch
// - the server answers every (re)subscribe with a fresh snapshot and the
// dedupe absorbs the overlap.  A follower that was down for an hour and
// one that missed a single frame recover through the same path; there is
// no ack-based resume cursor to corrupt.
//
// Threading: each ReplicationClient owns one thread driving its own
// SupervisedConnection; it touches the shared QueryService only through
// the service's thread-safe ingest.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>

#include "query/query_service.hpp"
#include "transport/auth.hpp"
#include "transport/connection.hpp"

namespace ptm::cluster {

struct ReplicationClientOptions {
  std::uint64_t node_id = 0;             ///< this follower's cluster id
  transport::Endpoint peer;              ///< the peer's replication endpoint
  transport::ConnectionTuning tuning{};  ///< dial/backoff/io bounds
  std::optional<transport::AuthCredentials> credentials;
  std::uint64_t seed = 1;                ///< reconnect jitter seed
};

class ReplicationClient {
 public:
  /// Applies the peer's stream into `service` (borrowed; must outlive the
  /// client).  The underlying connection registers its instruments
  /// (connects, reconnects, auth) on `service`'s telemetry registry;
  /// apply-side tallies are exposed through the accessors below.
  ReplicationClient(ReplicationClientOptions options, QueryService& service);
  ~ReplicationClient();
  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Spawns the subscription thread.  Idempotent.
  void start();
  /// Severs the session and joins the thread.  Idempotent.
  void stop();

  /// First-accept records applied from this peer's stream.
  [[nodiscard]] std::uint64_t applied() const noexcept {
    return applied_.load();
  }
  /// Stream records the local service already held (snapshot overlap,
  /// live/snapshot races, archive replay) - the dedupe doing its job.
  [[nodiscard]] std::uint64_t duplicates() const noexcept {
    return duplicates_.load();
  }
  /// Stream records conflicting with a locally held record.  Always a
  /// bug somewhere (two primaries accepted different bytes for one slot);
  /// counted and skipped rather than crashing the follower.
  [[nodiscard]] std::uint64_t conflicts() const noexcept {
    return conflicts_.load();
  }
  /// Subscriptions opened (1 = the initial one; more = recoveries).
  [[nodiscard]] std::uint64_t subscriptions() const noexcept {
    return subscriptions_.load();
  }
  /// True once at least one snapshot completed (repl-snapshot-end seen):
  /// the follower holds everything the peer held at subscribe time.
  [[nodiscard]] bool synced() const noexcept { return synced_.load(); }

 private:
  void run();
  /// One subscription lifetime: subscribe, then apply until the channel
  /// dies or stop() is called.
  void pump_subscription();

  ReplicationClientOptions options_;
  QueryService& service_;
  transport::SupervisedConnection connection_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> conflicts_{0};
  std::atomic<std::uint64_t> subscriptions_{0};
  std::atomic<bool> synced_{false};
};

}  // namespace ptm::cluster
