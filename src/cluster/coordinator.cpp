#include "cluster/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <variant>

#include "net/mac.hpp"
#include "transport/uplink.hpp"
#include "transport/wire.hpp"

namespace ptm::cluster {
namespace {

using namespace std::chrono_literals;

// Locally-administered MAC identifying coordinator uplinks in V2I frames.
constexpr MacAddress kCoordinatorMac{(0x02ULL << 40) | 0xC0DEULL};
constexpr MacAddress kServerMac{0x02ULL << 40 | 0x53525600ULL};  // "SRV"

/// The tighter of `outer` and a fresh `budget` - every per-node exchange
/// is bounded even under an unbounded caller deadline, so one dead node
/// cannot eat the whole query's time.
Deadline bounded(const Deadline& outer, std::chrono::milliseconds budget) {
  const Deadline local = Deadline::after(budget);
  if (outer.unbounded()) return local;
  return outer.time_point() < local.time_point()
             ? outer
             : Deadline::at(local.time_point());
}

/// The locations and explicit periods a request needs gathered.  An empty
/// period list means "every stored period" (the rolling recent window is
/// only resolvable against the full per-location history).
struct FetchPlan {
  std::vector<std::uint64_t> locations;
  std::vector<std::uint64_t> periods;
};

FetchPlan fetch_plan(const QueryRequest& request) {
  return std::visit(
      [](const auto& q) -> FetchPlan {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, PointVolumeQuery>) {
          return {{q.location}, {q.period}};
        } else if constexpr (std::is_same_v<T, PointPersistentQuery>) {
          return {{q.location}, q.periods};
        } else if constexpr (std::is_same_v<T, RecentPersistentQuery>) {
          return {{q.location}, {}};
        } else if constexpr (std::is_same_v<T, P2PPersistentQuery>) {
          return {{q.location_a, q.location_b}, q.periods};
        } else {
          return {q.locations, q.periods};
        }
      },
      request);
}

std::vector<std::uint64_t> sorted_unique(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

ClusterCoordinator::ClusterCoordinator(ClusterCoordinatorOptions options)
    : options_(std::move(options)), map_(options_.config) {
  std::uint64_t ordinal = 0;
  for (const ClusterNodeSpec& spec : options_.config.nodes) {
    NodeLink link;
    link.node_id = spec.node_id;
    link.spec = spec;
    link.conn = std::make_unique<transport::SupervisedConnection>(
        spec.client, options_.tuning, nullptr,
        options_.seed * 7919 + ++ordinal);
    if (options_.credentials.has_value()) {
      link.conn->set_credentials(options_.credentials);
    }
    links_.push_back(std::move(link));
  }
}

ClusterCoordinator::NodeLink* ClusterCoordinator::link_for(
    std::uint64_t node_id) {
  for (NodeLink& link : links_) {
    if (link.node_id == node_id) return &link;
  }
  return nullptr;
}

Status ClusterCoordinator::ingest(const TrafficRecord& record,
                                  const Deadline& deadline) {
  Status last{ErrorCode::kChannelError, "no replica reachable"};
  for (std::uint64_t node_id : map_.replicas(record.location)) {
    if (deadline.expired_now()) {
      return {ErrorCode::kDeadlineExceeded, "cluster ingest deadline"};
    }
    NodeLink* link = link_for(node_id);
    if (link == nullptr) continue;
    const Deadline attempt = bounded(deadline, 1000ms);
    const Status connected = link->conn->ensure_connected(attempt);
    if (!connected.is_ok()) {
      last = connected;
      continue;  // fail over down the replica list
    }
    transport::UplinkClient uplink(*link->conn, kCoordinatorMac, kServerMac);
    auto reply = uplink.deliver(record, {}, attempt);
    if (!reply) {
      last = reply.status();
      continue;  // unknown outcome here; a replica can still take it
    }
    if (reply->acked) return {};
    if (!reply->nack.retryable) {
      // A fatal verdict (conflicting record) is about the *record*, not
      // the node - no replica will decide differently.
      return {reply->nack.code, "cluster ingest rejected by node " +
                                    std::to_string(node_id)};
    }
    last = Status{reply->nack.code,
                  "node " + std::to_string(node_id) + " shed the ingest"};
  }
  return last;
}

Result<std::vector<TrafficRecord>> ClusterCoordinator::fetch_location(
    std::uint64_t location, std::span<const std::uint64_t> periods,
    const Deadline& deadline) {
  Status last{ErrorCode::kChannelError, "no replica reachable"};
  for (std::uint64_t node_id : map_.replicas(location)) {
    if (deadline.expired_now()) {
      return Status{ErrorCode::kDeadlineExceeded, "cluster fetch deadline"};
    }
    NodeLink* link = link_for(node_id);
    if (link == nullptr) continue;
    const Deadline attempt = bounded(deadline, 1000ms);
    const Status connected = link->conn->ensure_connected(attempt);
    if (!connected.is_ok()) {
      last = connected;
      continue;
    }
    transport::RecordsRequest request;
    request.location = location;
    request.periods.assign(periods.begin(), periods.end());
    if (!link->conn->send(request).is_ok()) {
      last = Status{ErrorCode::kChannelError, "records-request send failed"};
      continue;
    }
    // Skip unrelated inbound traffic (stale acks after a reconnect) until
    // the matching response; any channel casualty fails over.
    for (;;) {
      auto message = link->conn->receive(attempt);
      if (!message) {
        last = message.status();
        break;
      }
      const auto* resp = std::get_if<transport::RecordsResponse>(&*message);
      if (resp == nullptr || resp->location != location) continue;
      std::vector<TrafficRecord> records;
      records.reserve(resp->records.size());
      for (const std::vector<std::uint8_t>& blob : resp->records) {
        auto record = TrafficRecord::deserialize(blob);
        // A blob that fails to decode is that node's corruption; the
        // scratch run treats its period as missing.
        if (record) records.push_back(std::move(*record));
      }
      return records;
    }
  }
  return last;
}

QueryResponse ClusterCoordinator::run(const QueryRequest& request) {
  const FetchPlan plan = fetch_plan(request);
  const Deadline& deadline = query_deadline(request);

  // Stage the gathered records in a scratch service and run the request
  // through the exact single-node execution path.
  QueryService scratch(options_.service);
  bool any_location_unreached = false;
  for (std::uint64_t location : sorted_unique(plan.locations)) {
    auto records = fetch_location(location, plan.periods, deadline);
    if (!records) {
      any_location_unreached = true;
      continue;
    }
    for (const TrafficRecord& record : *records) {
      (void)scratch.ingest(record);
    }
  }

  QueryResponse response = scratch.run(request);

  // Fetch-stage coverage: a location with no reachable replica leaves
  // every requested period uncovered (corridor semantics - a period is
  // present only when every location holds it), which merge_coverage
  // folds into the response instead of failing the query outright.
  CoverageReport fetch_report;
  fetch_report.requested = sorted_unique(plan.periods);
  if (any_location_unreached) {
    fetch_report.missing = fetch_report.requested;
  } else {
    fetch_report.present = fetch_report.requested;
  }
  response.coverage = merge_coverage(response.coverage, fetch_report);
  return response;
}

std::vector<NodeStatus> ClusterCoordinator::cluster_status(
    const Deadline& deadline) {
  std::vector<NodeStatus> statuses;
  for (NodeLink& link : links_) {
    NodeStatus status;
    status.node_id = link.node_id;
    status.client_endpoint = link.spec.client.to_string();
    status.repl_endpoint = link.spec.repl.to_string();
    status.vnodes = map_.vnode_count(link.node_id);
    const Deadline attempt = bounded(deadline, 1000ms);
    if (link.conn->ensure_connected(attempt).is_ok() &&
        link.conn->send(transport::StatsRequest{}).is_ok()) {
      for (;;) {
        auto message = link.conn->receive(attempt);
        if (!message) break;
        if (const auto* stats =
                std::get_if<transport::StatsResponse>(&*message)) {
          status.reachable = true;
          status.stats_json = stats->json;
          break;
        }
      }
    }
    statuses.push_back(std::move(status));
  }
  return statuses;
}

void ClusterCoordinator::set_socket_faults(
    std::uint64_t node_id,
    std::map<std::uint64_t, std::vector<SocketFault>> faults) {
  if (NodeLink* link = link_for(node_id)) {
    link->conn->set_socket_faults(std::move(faults));
  }
}

std::uint64_t ClusterCoordinator::connections_opened() const {
  std::uint64_t total = 0;
  for (const NodeLink& link : links_) {
    total += link.conn->connections_opened();
  }
  return total;
}

}  // namespace ptm::cluster
