#include "cluster/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "core/traffic_record.hpp"
#include "obs/telemetry.hpp"
#include "traffic/trip_table.hpp"
#include "traffic/workload.hpp"

namespace ptm::cluster {
namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Result<transport::LoadgenReport> run_cluster_loadgen(
    const ClusterCoordinatorOptions& coordinator_options,
    const transport::LoadgenOptions& load) {
  transport::LoadgenOptions options = load;
  if (options.connections == 0) options.connections = 1;
  if (options.locations == 0) options.locations = 1;
  if (options.periods == 0) options.periods = 1;
  if (options.volume_min == 0) options.volume_min = 1;
  if (options.volume_max < options.volume_min) {
    options.volume_max = options.volume_min;
  }

  // Same workload synthesis as the single-node replay, so single-node and
  // cluster reports are comparable record-for-record.
  Xoshiro256 rng(options.seed);
  const TripTable table = gravity_model_table(
      options.locations, options.locations * options.volume_max / 2,
      options.seed);
  std::vector<TrafficRecord> work;
  work.reserve(options.locations * options.periods);
  for (std::size_t z = 0; z < options.locations; ++z) {
    const std::uint64_t volume = std::clamp(
        table.zone_volume(z), options.volume_min, options.volume_max);
    const std::size_t m = plan_bitmap_size(static_cast<double>(volume),
                                           options.load_factor);
    for (std::size_t p = 0; p < options.periods; ++p) {
      TrafficRecord record;
      record.location = z + 1;
      record.period = p;
      record.bits = Bitmap(m);
      add_transient_traffic(record.bits, volume, rng);
      work.push_back(std::move(record));
    }
  }

  struct SharedStats {
    std::atomic<std::uint64_t> acked{0};
    std::atomic<std::uint64_t> shed_events{0};
    std::atomic<std::uint64_t> fatal_nacks{0};
    std::atomic<std::uint64_t> channel_errors{0};
    std::atomic<std::uint64_t> abandoned{0};
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> reconnects{0};
    LatencyRecorder deliver_latency;
  } stats;
  std::atomic<std::size_t> next_item{0};
  std::atomic<std::uint64_t> workers_ever_connected{0};
  const std::uint64_t t0 = steady_now_ns();
  const Deadline cap =
      Deadline::after(std::chrono::milliseconds(options.time_cap_ms));

  auto worker = [&](std::size_t worker_index) {
    // Coordinators are single-threaded; each worker owns its own (with
    // its own connections and jitter seed).
    ClusterCoordinatorOptions co = coordinator_options;
    co.seed = options.seed + 7919 * (worker_index + 1);
    ClusterCoordinator coordinator(std::move(co));
    Xoshiro256 backoff_rng(options.seed ^ (worker_index + 1));
    bool connected_once = false;
    for (;;) {
      const std::size_t i = next_item.fetch_add(1);
      if (i >= work.size()) break;
      const TrafficRecord& record = work[i];
      bool settled = false;
      for (std::uint32_t attempt = 0;
           attempt < options.max_attempts && !cap.expired_now(); ++attempt) {
        stats.attempts.fetch_add(1);
        const std::uint64_t sent = steady_now_ns();
        const Status s = coordinator.ingest(
            record, Deadline::after(std::chrono::milliseconds(
                        options.deliver_timeout_ms)));
        if (s.is_ok()) {
          stats.deliver_latency.record(steady_now_ns() - sent);
          stats.acked.fetch_add(1);
          connected_once = true;
          settled = true;
          break;
        }
        if (s.code() == ErrorCode::kResourceExhausted) {
          stats.shed_events.fetch_add(1);
          connected_once = true;
        } else if (s.code() == ErrorCode::kFailedPrecondition ||
                   s.code() == ErrorCode::kInvalidArgument) {
          stats.fatal_nacks.fetch_add(1);
          connected_once = true;
          settled = true;
          break;
        } else {
          stats.channel_errors.fetch_add(1);
        }
        const std::uint32_t shift = std::min<std::uint32_t>(attempt, 16);
        std::uint64_t nap = options.retry_backoff_base_ms << shift;
        nap += backoff_rng.below(options.retry_backoff_base_ms + 1);
        nap = std::min(nap, options.retry_backoff_cap_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(nap));
      }
      if (!settled) stats.abandoned.fetch_add(1);
    }
    const std::uint64_t opened = coordinator.connections_opened();
    const std::size_t nodes = coordinator.partition_map().node_count();
    stats.reconnects.fetch_add(opened > nodes ? opened - nodes : 0);
    if (connected_once) workers_ever_connected.fetch_add(1);
  };

  std::vector<std::thread> threads;
  threads.reserve(options.connections);
  for (std::size_t w = 0; w < options.connections; ++w) {
    threads.emplace_back(worker, w);
  }
  for (auto& t : threads) t.join();

  if (workers_ever_connected.load() == 0) {
    return Status{ErrorCode::kChannelError,
                  "no worker ever reached any cluster node"};
  }
  transport::LoadgenReport report;
  report.records_total = work.size();
  report.acked = stats.acked.load();
  report.shed_events = stats.shed_events.load();
  report.fatal_nacks = stats.fatal_nacks.load();
  report.channel_errors = stats.channel_errors.load();
  report.abandoned = stats.abandoned.load();
  report.attempts = stats.attempts.load();
  report.reconnects = stats.reconnects.load();
  report.elapsed_ns = steady_now_ns() - t0;
  report.deliver_latency = stats.deliver_latency.snapshot();
  return report;
}

}  // namespace ptm::cluster
