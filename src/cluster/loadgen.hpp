// loadgen.hpp (cluster) - workload replay against a ptmd *cluster*.
//
// Reuses the transport load generator's workload synthesis and report
// schema (transport/loadgen.hpp), but each worker drives a
// ClusterCoordinator instead of one raw connection: every record routes
// to its location's owner and fails over down the replica list, so the
// replay measures the cluster's client-visible behavior - including how
// ingest throughput degrades (and recovers) while a node is down.
#pragma once

#include "cluster/coordinator.hpp"
#include "common/status.hpp"
#include "transport/loadgen.hpp"

namespace ptm::cluster {

/// Replays the transport loadgen workload through `load.connections`
/// coordinator workers.  Coordinator-level outcomes map onto the report:
/// an Ok ingest is an ack, kResourceExhausted a shed event, fatal
/// verdicts fatal nacks, everything else a channel error (retried up to
/// `load.max_attempts`).  Fails only when no worker ever reached any
/// node.
[[nodiscard]] Result<transport::LoadgenReport> run_cluster_loadgen(
    const ClusterCoordinatorOptions& coordinator_options,
    const transport::LoadgenOptions& load);

}  // namespace ptm::cluster
