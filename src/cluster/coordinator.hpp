// coordinator.hpp - the client-side router of a ptmd cluster.
//
// The coordinator is a *library*, not a process: ptmctl, loadgen, and the
// cluster tests embed one.  It derives the same PartitionMap every node
// derives from the shared ClusterConfig and uses it two ways:
//
//   * ingest routing - a record goes to its location's owner; if the
//     owner is unreachable the delivery fails over down the replica list,
//     and replication converges the copies behind the scenes.  Any
//     replica accepting the upload is durable (write-ahead archive on
//     that node), so "owner down" costs a redial, not a loss.
//
//   * scatter-gather queries - a query's estimator math (persistent
//     intersections, p2p/corridor encoding) is not decomposable into
//     per-node partial estimates, so the coordinator gathers the raw
//     *records* instead: for each location the query touches it fetches
//     the needed (location, period) records from the owner (failing over
//     to replicas), stages them in a scratch in-memory QueryService, and
//     runs the request locally - the exact single-node execution path,
//     byte-identical estimates.  A partition with no reachable replica
//     degrades the answer: its periods are folded into the response's
//     CoverageReport as missing (merge_coverage) instead of failing the
//     whole query.
//
// Threading: a coordinator belongs to one thread (it owns one
// SupervisedConnection per node).  Spin up one per worker.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/partition.hpp"
#include "core/traffic_record.hpp"
#include "query/query_service.hpp"
#include "query/query_types.hpp"
#include "transport/auth.hpp"
#include "transport/connection.hpp"

namespace ptm::cluster {

struct ClusterCoordinatorOptions {
  ClusterConfig config;
  transport::ConnectionTuning tuning{};
  std::optional<transport::AuthCredentials> credentials;
  /// Estimator configuration of the scratch service queries run in; must
  /// match the cluster's nodes for identical estimates (defaults match
  /// default daemons).
  QueryServiceOptions service{};
  std::uint64_t seed = 1;  ///< reconnect jitter seed
};

/// One node's health snapshot for `cluster_status`.
struct NodeStatus {
  std::uint64_t node_id = 0;
  std::string client_endpoint;
  std::string repl_endpoint;
  std::size_t vnodes = 0;     ///< ring share from the partition map
  bool reachable = false;     ///< stats round trip succeeded
  std::string stats_json;     ///< raw telemetry snapshot when reachable
};

class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(ClusterCoordinatorOptions options);

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Delivers `record` to its owner, failing over down the replica list
  /// on channel errors.  Ok = some replica acked (durably ingested or
  /// deduped); a *fatal* nack surfaces as that node's verdict without
  /// failover (retrying elsewhere cannot fix a conflicting record);
  /// kUnavailable when no replica could be reached before `deadline`.
  [[nodiscard]] Status ingest(const TrafficRecord& record,
                              const Deadline& deadline);

  /// Scatter-gathers `request` across the partitions it touches and runs
  /// it on the gathered records.  Unreachable partitions degrade to
  /// missing coverage under the request's own MissingPolicy semantics.
  [[nodiscard]] QueryResponse run(const QueryRequest& request);

  /// Polls every node for its telemetry snapshot; unreachable nodes come
  /// back with reachable=false rather than an error.
  [[nodiscard]] std::vector<NodeStatus> cluster_status(
      const Deadline& deadline);

  [[nodiscard]] const PartitionMap& partition_map() const noexcept {
    return map_;
  }
  /// Total sockets opened across all node connections (the chaos suite
  /// bounds reconnect storms with this).
  [[nodiscard]] std::uint64_t connections_opened() const;

  /// Installs a scripted socket-fault plan on the link to `node_id`
  /// (connection-index -> frame fault script, as
  /// SupervisedConnection::set_socket_faults).  No-op for unknown ids.
  /// The chaos suite tears coordinator frames mid-flight with this.
  void set_socket_faults(std::uint64_t node_id,
                         std::map<std::uint64_t, std::vector<SocketFault>> faults);

 private:
  struct NodeLink {
    std::uint64_t node_id = 0;
    ClusterNodeSpec spec;
    std::unique_ptr<transport::SupervisedConnection> conn;
  };

  [[nodiscard]] NodeLink* link_for(std::uint64_t node_id);
  /// Fetches the stored records for (location, periods) from the first
  /// reachable replica (owner first).  `periods` empty = all periods.
  /// NotFound-style gaps are NOT errors - the scratch run classifies
  /// them; failure means no replica answered.
  [[nodiscard]] Result<std::vector<TrafficRecord>> fetch_location(
      std::uint64_t location, std::span<const std::uint64_t> periods,
      const Deadline& deadline);

  ClusterCoordinatorOptions options_;
  PartitionMap map_;
  std::vector<NodeLink> links_;
};

}  // namespace ptm::cluster
