// partition.hpp - the cluster's consistent-hash location partition map.
//
// A single ptmd holds every (location, period) record; a cluster shards
// that keyspace by *location* so each of the paper's query shapes stays
// local to few nodes: all periods of one location live together (point
// and persistent queries touch one partition), and multi-location shapes
// (p2p, corridor) scatter-gather per location.
//
// The map is a classic consistent-hash ring: each node projects
// `kVnodesPerNode` virtual points onto the 64-bit ring, a location hashes
// to a point, and its *owner* is the first node clockwise.  The
// replication group is the owner plus the next `replication_factor - 1`
// distinct nodes on the ring, so losing a node moves only its arcs to the
// ring successors instead of reshuffling the whole keyspace.
//
// Every party derives the same map from the same ClusterConfig - nodes
// (for their server-side repl_filter), followers (for what to subscribe
// to), and coordinators (for routing) - so there is no membership
// service to keep consistent; the config string IS the membership.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "transport/socket.hpp"

namespace ptm::cluster {

/// One node of the cluster: its id plus where clients ingest/query
/// (`client`) and where peers subscribe for replication (`repl`).  A spec
/// without an explicit repl endpoint reuses the client endpoint -
/// replication then shares the ingest listener, which works but contends.
struct ClusterNodeSpec {
  std::uint64_t node_id = 0;
  transport::Endpoint client;
  transport::Endpoint repl;
};

struct ClusterConfig {
  std::vector<ClusterNodeSpec> nodes;
  /// Copies of every location (owner included).  Clamped to the node
  /// count; 1 = no redundancy.
  std::size_t replication_factor = 2;
};

/// Parses the cluster membership syntax shared by every tool flag:
///
///   <node_id>@<client_endpoint>[@<repl_endpoint>] ';' ...
///
/// e.g. "1@unix:/tmp/a.sock@unix:/tmp/a-repl.sock;2@tcp:127.0.0.1:7101".
/// InvalidArgument on malformed entries, duplicate node ids, or an id of
/// 0 (reserved for standalone daemons).
[[nodiscard]] Result<ClusterConfig> parse_cluster_spec(
    const std::string& spec);

class PartitionMap {
 public:
  /// Virtual points per node - enough that a 3-node ring splits load
  /// within a few percent of even.
  static constexpr std::size_t kVnodesPerNode = 64;

  /// Builds the ring from `config` (node order does not matter - the map
  /// is a pure function of the node ids).  Precondition: at least one
  /// node.
  explicit PartitionMap(const ClusterConfig& config);

  /// The node owning `location`: ingest routes here first and replicas
  /// follow it on the ring.
  [[nodiscard]] std::uint64_t owner(std::uint64_t location) const;

  /// The full replication group, owner first, then ring successors;
  /// size = min(replication_factor, node count), all distinct.
  [[nodiscard]] std::vector<std::uint64_t> replicas(
      std::uint64_t location) const;

  /// Should `node_id` hold `location`?  The server-side repl_filter and
  /// the follower-side apply predicate are both exactly this.
  [[nodiscard]] bool should_hold(std::uint64_t node_id,
                                 std::uint64_t location) const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_ids_.size();
  }
  [[nodiscard]] std::size_t replication_factor() const noexcept {
    return replication_factor_;
  }
  /// Ring arcs owned by `node_id`, as a count of its virtual points that
  /// are some location's first clockwise hit (ptmctl cluster-status
  /// reports this as the node's share of the ring).
  [[nodiscard]] std::size_t vnode_count(std::uint64_t node_id) const;

 private:
  /// (ring position, node id), sorted by position.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ring_;
  std::vector<std::uint64_t> node_ids_;
  std::size_t replication_factor_ = 1;
};

}  // namespace ptm::cluster
