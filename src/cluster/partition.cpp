#include "cluster/partition.hpp"

#include <algorithm>
#include <set>

#include "hash/hash_suite.hpp"

namespace ptm::cluster {
namespace {

// One fixed seed per purpose keeps ring placement and location lookup
// independent draws of the same hash family.
constexpr std::uint64_t kVnodeSeed = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kLocationSeed = 0xc2b2ae3d27d4eb4fULL;

std::uint64_t vnode_point(std::uint64_t node_id, std::size_t vnode) {
  // Mix the vnode ordinal into the hashed value so each virtual point is
  // a distinct draw; node_id alone would collapse all 64 onto one point.
  return hash64(HashFamily::kXxHash,
                node_id * PartitionMap::kVnodesPerNode + vnode, kVnodeSeed);
}

}  // namespace

Result<ClusterConfig> parse_cluster_spec(const std::string& spec) {
  ClusterConfig config;
  std::set<std::uint64_t> seen;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', start), spec.size());
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t id_at = entry.find('@');
    if (id_at == std::string::npos) {
      return Status{ErrorCode::kInvalidArgument,
                    "cluster spec entry '" + entry +
                        "': expected <id>@<endpoint>[@<repl_endpoint>]"};
    }
    ClusterNodeSpec node;
    const std::string id_text = entry.substr(0, id_at);
    std::size_t consumed = 0;
    try {
      node.node_id = std::stoull(id_text, &consumed);
    } catch (...) {
      consumed = 0;
    }
    if (consumed != id_text.size() || id_text.empty()) {
      return Status{ErrorCode::kInvalidArgument,
                    "cluster spec entry '" + entry + "': bad node id '" +
                        id_text + "'"};
    }
    if (node.node_id == 0) {
      return Status{ErrorCode::kInvalidArgument,
                    "cluster spec entry '" + entry +
                        "': node id 0 is reserved for standalone daemons"};
    }
    if (!seen.insert(node.node_id).second) {
      return Status{ErrorCode::kInvalidArgument,
                    "cluster spec: duplicate node id " +
                        std::to_string(node.node_id)};
    }
    const std::string rest = entry.substr(id_at + 1);
    // Endpoints themselves contain '@'-free "kind:addr" syntax, so the
    // next '@' (if any) splits client from repl endpoint.
    const std::size_t repl_at = rest.find('@');
    const std::string client_text = rest.substr(0, repl_at);
    auto client = transport::parse_endpoint(client_text);
    if (!client) return client.status();
    node.client = *client;
    if (repl_at != std::string::npos) {
      auto repl = transport::parse_endpoint(rest.substr(repl_at + 1));
      if (!repl) return repl.status();
      node.repl = *repl;
    } else {
      node.repl = node.client;
    }
    config.nodes.push_back(std::move(node));
  }
  if (config.nodes.empty()) {
    return Status{ErrorCode::kInvalidArgument, "cluster spec: no nodes"};
  }
  return config;
}

PartitionMap::PartitionMap(const ClusterConfig& config) {
  for (const ClusterNodeSpec& node : config.nodes) {
    node_ids_.push_back(node.node_id);
    for (std::size_t v = 0; v < kVnodesPerNode; ++v) {
      ring_.emplace_back(vnode_point(node.node_id, v), node.node_id);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  replication_factor_ =
      std::max<std::size_t>(1, std::min(config.replication_factor,
                                        node_ids_.size()));
}

std::uint64_t PartitionMap::owner(std::uint64_t location) const {
  const std::uint64_t point =
      hash64(HashFamily::kXxHash, location, kLocationSeed);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(point, std::uint64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();  // wrap the ring
  return it->second;
}

std::vector<std::uint64_t> PartitionMap::replicas(
    std::uint64_t location) const {
  const std::uint64_t point =
      hash64(HashFamily::kXxHash, location, kLocationSeed);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(point, std::uint64_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::uint64_t> group;
  for (std::size_t walked = 0;
       walked < ring_.size() && group.size() < replication_factor_;
       ++walked, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(group.begin(), group.end(), it->second) == group.end()) {
      group.push_back(it->second);
    }
  }
  return group;
}

bool PartitionMap::should_hold(std::uint64_t node_id,
                               std::uint64_t location) const {
  const std::vector<std::uint64_t> group = replicas(location);
  return std::find(group.begin(), group.end(), node_id) != group.end();
}

std::size_t PartitionMap::vnode_count(std::uint64_t node_id) const {
  std::size_t count = 0;
  for (const auto& [point, id] : ring_) {
    if (id == node_id) ++count;
  }
  return count;
}

}  // namespace ptm::cluster
