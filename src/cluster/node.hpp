// node.hpp - one member of a ptmd cluster.
//
// A ClusterNode is a PtmdServer plus the cluster glue derived from the
// shared ClusterConfig:
//
//   * the server's `repl_filter` becomes the partition map's should_hold
//     predicate, so each subscribing peer receives exactly the locations
//     the map assigns it;
//   * the node listens on its spec's replication endpoint (when distinct
//     from the client endpoint);
//   * one ReplicationClient per peer subscribes to every other node, so
//     the node converges on all locations it replicates - whether a
//     record first landed on its primary, on a replica during failover,
//     or on any node a loadgen round-robined onto.
//
// Failover needs no coordination protocol on top: a restarted node
// replays its own archive (PtmdServer::start), then its subscriptions
// re-snapshot from the surviving peers, and the idempotent store merges
// both histories.  A node restarted with an *empty* archive (disk lost)
// rebuilds purely from the peers the same way.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/partition.hpp"
#include "cluster/replication.hpp"
#include "transport/server.hpp"

namespace ptm::cluster {

struct ClusterNodeOptions {
  ClusterConfig config;               ///< full membership (this node included)
  std::uint64_t node_id = 0;          ///< which spec in `config` is us
  transport::PtmdOptions server{};    ///< base daemon options; endpoint,
                                      ///< repl_endpoint, node_id and
                                      ///< repl_filter are overwritten from
                                      ///< the cluster spec
  /// Credentials for *outbound* replication dials (needed when peers run
  /// require_auth).  Server-side auth policy comes via `server`.
  std::optional<transport::AuthCredentials> credentials;
};

class ClusterNode {
 public:
  /// InvalidArgument when `node_id` is not in the config.
  [[nodiscard]] static Result<std::unique_ptr<ClusterNode>> create(
      ClusterNodeOptions options);

  ~ClusterNode();
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Starts the server (archive replay included), then the peer
  /// subscriptions.
  [[nodiscard]] Status start();
  /// Stops subscriptions first (no new applies), then the server.
  void stop();

  [[nodiscard]] transport::PtmdServer& server() noexcept { return *server_; }
  [[nodiscard]] const PartitionMap& partition_map() const noexcept {
    return map_;
  }
  [[nodiscard]] std::uint64_t node_id() const noexcept {
    return options_.node_id;
  }
  /// The per-peer subscription clients, for test introspection.
  [[nodiscard]] const std::vector<std::unique_ptr<ReplicationClient>>&
  replication_clients() const noexcept {
    return repl_clients_;
  }

 private:
  explicit ClusterNode(ClusterNodeOptions options);

  ClusterNodeOptions options_;
  PartitionMap map_;
  std::unique_ptr<transport::PtmdServer> server_;
  std::vector<std::unique_ptr<ReplicationClient>> repl_clients_;
  bool started_ = false;
};

}  // namespace ptm::cluster
