// server.hpp - the ptmd ingest server: QueryService behind a real socket.
//
// PtmdServer is the daemon-side half of the out-of-process transport
// (docs/transport.md).  One epoll EventLoop thread owns every connection;
// a small ingest worker pool runs the actual QueryService::ingest calls
// (which take shard locks and, in durable mode, write the archive) so the
// loop thread never blocks on a disk write.  Backpressure is explicit at
// two levels:
//
//   * admission gate - an AdmissionController (try_admit, never blocking
//     the loop) bounds ingests in flight across all connections; a shed
//     ingest is answered with a *retryable* UploadNack(kResourceExhausted)
//     and the connection's reads are paused for `shed_pause_ms`, so the
//     kernel socket buffer - and eventually the RSU's own send path -
//     absorbs the overload instead of the daemon's memory;
//
//   * per-connection window - a connection with more than
//     `max_pending_per_conn` ingests outstanding stops being read until
//     half its window drains.  A single firehose RSU cannot starve the
//     rest.
//
// Durability mirrors the in-process server node: the archive is attached
// write-ahead (ingest Ok implies the record is on disk), and start()
// replays the archive into memory, so a kill -9 between accept and ack
// loses nothing - the RSU outbox retransmits anything unacked and the
// archive dedupes re-deliveries.  The chaos suite drives exactly that
// cycle.
//
// Authentication (docs/transport.md, *Authenticated handshake*): with a
// CA key configured the server answers auth-hello with a fresh challenge
// and verifies the proof against the §II-B certificate chain; with
// `require_auth` set every connection starts in an Authenticating phase
// where ALL non-handshake messages are rejected (auth-reject, then close)
// until the proof verifies - an unauthenticated peer can not inject one
// record, probe stats, or even get a heartbeat answered.  Distinct
// reject codes (wire.hpp AuthRejectCode) separate the failure classes,
// and a handshake that stalls past `auth_timeout_ms` is closed so idle
// half-authenticated sockets cannot accumulate.
//
// Protocol errors (bad length prefix, unknown kind, codec violation) close
// the connection: a length-prefixed stream cannot resync after a framing
// lie, and a peer that sends garbage cannot be trusted with partial state.
//
// Replication (docs/cluster.md): a peer node subscribes with
// repl-subscribe and receives a snapshot of every live record it should
// hold (filtered through `repl_filter`), then every later first-accept
// ingest live-forwarded.  The snapshot streams in bounded batches paced by
// the connection's own outbuf drain, so a slow follower holds a shard's
// shared lock only per batch and never stalls concurrent ingest.
// Subscribers ack sequence numbers; the outstanding delta is the
// `transport_repl_lag` gauge.  An optional second listener
// (`repl_endpoint`) isolates replication traffic from client ingest; both
// listeners speak the same protocol and the same auth policy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hpp"
#include "crypto/rsa.hpp"
#include "obs/trace.hpp"
#include "query/admission.hpp"
#include "query/query_service.hpp"
#include "store/archive.hpp"
#include "transport/event_loop.hpp"
#include "transport/framing.hpp"
#include "transport/socket.hpp"
#include "transport/wire.hpp"

namespace ptm::transport {

struct PtmdOptions {
  Endpoint endpoint;                 ///< where to listen
  /// Optional second listener dedicated to replication subscribers, so a
  /// follower resync cannot compete with client ingest for the same
  /// accept queue.  start() rejects it with InvalidArgument when it
  /// equals `endpoint` - a clear startup error beats a bind failure deep
  /// in the run loop.  Both listeners accept the full protocol.
  std::optional<Endpoint> repl_endpoint;
  /// This node's cluster id (0 for a standalone daemon); reported in
  /// stats and stamped on replication telemetry.
  std::uint64_t node_id = 0;
  /// Replication stream filter: should `subscriber_node` hold `location`?
  /// The cluster layer supplies the partition-map predicate; unset =
  /// stream everything (a full mirror).
  std::function<bool(std::uint64_t subscriber_node, std::uint64_t location)>
      repl_filter;
  std::string archive_path;          ///< empty = volatile (no durability)
  QueryServiceOptions service{};     ///< query engine configuration
  AdmissionOptions ingest_admission{16, 0};  ///< try_admit gate for ingests
  std::size_t ingest_threads = 2;    ///< worker pool size (>= 1)
  std::size_t max_pending_per_conn = 32;  ///< per-connection ingest window
  /// Read pause after shedding.  Clamped to >= 1 at construction: a shed
  /// pause must always arm its resume timer, because a shed connection may
  /// have zero pending ingests and then nothing else would ever unpause it.
  std::uint64_t shed_pause_ms = 10;
  /// Listener retry delay after a hard accept() error (fd exhaustion being
  /// the realistic one).  The listener's read interest is dropped for this
  /// long instead of letting the level-triggered loop spin on the error.
  /// Clamped to >= 1 at construction.
  std::uint64_t accept_retry_ms = 100;
  std::uint64_t idle_timeout_ms = 60000;  ///< close silent conns (0 = never)
  /// Test/benchmark knob: artificial microseconds of work per ingest, so
  /// loadgen can push the daemon into visible shedding on any machine.
  std::uint64_t ingest_stall_us = 0;
  /// CA public key certificates must chain to.  Present = the server
  /// answers handshakes; absent = auth-hello gets kAuthUnavailable.
  std::optional<RsaPublicKey> auth_ca_key;
  /// Refuse ALL traffic from unauthenticated connections.  start() fails
  /// with InvalidArgument if set without `auth_ca_key` - a server that
  /// demands proofs it cannot verify would reject everyone.
  bool require_auth = false;
  /// The measurement period certificates must cover (their validity
  /// windows are in periods, matching verify_certificate).
  std::uint64_t auth_period = 0;
  /// A require_auth connection still unauthenticated after this long is
  /// closed.  Clamped to >= 1 at construction.
  std::uint64_t auth_timeout_ms = 5000;
};

class PtmdServer {
 public:
  explicit PtmdServer(PtmdOptions options);
  ~PtmdServer();
  PtmdServer(const PtmdServer&) = delete;
  PtmdServer& operator=(const PtmdServer&) = delete;

  /// Opens the archive (durable mode), replays it into the query service,
  /// binds the listener, and spawns the loop + worker threads.  On Ok the
  /// endpoint is accepting connections.
  [[nodiscard]] Status start();

  /// Stops the loop, joins every thread, closes every connection.
  /// Idempotent.
  void stop();

  [[nodiscard]] const PtmdOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] QueryService& service() noexcept { return service_; }
  [[nodiscard]] TelemetryRegistry& telemetry() noexcept {
    return service_.telemetry();
  }
  /// Records replayed from the archive by start() (durable mode).
  [[nodiscard]] std::size_t restored_records() const noexcept {
    return restored_;
  }

 private:
  /// Handshake progress.  kReady on a require_auth connection means the
  /// proof verified; otherwise it is the (unauthenticated) initial state.
  enum class AuthPhase : std::uint8_t {
    kReady,
    kAwaitHello,  ///< require_auth: nothing accepted but auth-hello
    kAwaitProof,  ///< challenge sent; nothing accepted but auth-proof
  };

  /// Per-connection state; lives on the loop thread only.
  struct Conn {
    Socket sock;
    StreamDecoder decoder;
    std::vector<std::uint8_t> outbuf;  ///< unwritten reply bytes
    std::size_t out_off = 0;
    std::size_t pending_ingests = 0;
    bool paused = false;    ///< reads suspended (window or shed pause)
    bool closing = false;   ///< flush outbuf, then close
    std::uint64_t last_activity_ms = 0;
    std::uint64_t id = 0;
    AuthPhase auth_phase = AuthPhase::kReady;
    std::vector<std::uint8_t> auth_nonce;      ///< challenge sent, if any
    RsaPublicKey peer_key;                     ///< from the verified cert
    std::vector<std::uint8_t> peer_cert_bytes; ///< exact hello bytes
    // Replication subscription state (loop thread only).
    bool repl_subscriber = false;
    std::uint64_t subscriber_node = 0;
    std::uint64_t repl_seq = 0;    ///< last sequence number sent
    std::uint64_t repl_acked = 0;  ///< last sequence number acked
    bool snapshotting = false;     ///< snapshot stream still in flight
    QueryService::RecordCursor snapshot_cursor;
    std::uint64_t snapshot_streamed = 0;
  };

  struct IngestJob {
    std::uint64_t conn_id = 0;
    TrafficRecord record;
    TraceContext trace;
  };

  void loop_main();
  void worker_main();
  void on_acceptable(Socket& listener, bool& paused_flag);
  void pause_accepts(Socket& listener, bool& paused_flag);
  void on_conn_event(int fd, std::uint32_t events);
  void handle_payload(Conn& conn, std::span<const std::uint8_t> payload);
  void handle_auth(Conn& conn, const WireMessage& message);
  /// Sends auth-reject(code) and schedules the close (flush-then-close);
  /// `conn` may be destroyed during the call.
  void reject_auth(Conn& conn, AuthRejectCode code);
  void handle_frame(Conn& conn, const Frame& frame);
  /// Opens (or restarts) a replication subscription on `conn` and begins
  /// the snapshot stream; `conn` may be destroyed during the call.
  void handle_repl_subscribe(Conn& conn, const ReplSubscribe& sub);
  /// Streams more snapshot batches while the connection's outbuf is below
  /// the high-water mark; re-posted by flush() as the peer drains.
  void continue_snapshot(std::uint64_t conn_id);
  /// Live-forwards a first-accept ingest to every matching subscriber.
  void forward_to_subscribers(const TrafficRecord& record);
  /// Recomputes the subscriber-count and replication-lag gauges.
  void update_repl_gauges();
  void finish_ingest(std::uint64_t conn_id, std::uint64_t location,
                     std::uint64_t period, const TraceContext& trace,
                     const Status& status,
                     const std::optional<TrafficRecord>& forwarded);
  void send_message(Conn& conn, const WireMessage& message);
  void flush(Conn& conn);
  void update_interest(Conn& conn);
  void pause_reads(Conn& conn, std::uint64_t resume_after_ms);
  void close_conn(int fd);
  void sweep_idle();
  [[nodiscard]] Conn* conn_by_id(std::uint64_t id) noexcept;

  PtmdOptions options_;
  QueryService service_;
  AdmissionController ingest_gate_;
  std::optional<RecordArchive> archive_;
  std::size_t restored_ = 0;

  EventLoop loop_;
  Socket listener_;
  Socket repl_listener_;         ///< valid only with repl_endpoint set
  bool accepts_paused_ = false;  ///< listener read interest dropped
  bool repl_accepts_paused_ = false;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};

  // Loop-thread state.
  std::map<int, std::unique_ptr<Conn>> conns_;        ///< fd -> conn
  std::map<std::uint64_t, int> conn_fd_by_id_;        ///< id -> fd
  std::uint64_t next_conn_id_ = 1;
  Xoshiro256 auth_rng_{1};  ///< challenge nonces (reseeded from entropy
                            ///< at construction); loop thread only

  // Worker queue (mutex-guarded; workers block here, never in the loop).
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<IngestJob> jobs_;

  Counter& accepted_;         ///< transport_accepted_total
  Counter& accept_backoffs_;  ///< transport_accept_backoffs_total
  Counter& frames_;           ///< transport_frames_total
  Counter& ingest_shed_;      ///< transport_ingest_shed_total
  Counter& nacks_;            ///< transport_nacks_total
  Counter& protocol_errors_;  ///< transport_protocol_errors_total
  Counter& auth_ok_;          ///< transport_auth_ok_total
  Counter& auth_failures_;    ///< transport_auth_failures_total (timeouts)
  Counter& auth_rejects_;     ///< transport_auth_rejects_total
  Counter& repl_records_;     ///< transport_repl_records_total
  Gauge& connections_;        ///< transport_connections
  Gauge& repl_subscribers_;   ///< transport_repl_subscribers
  Gauge& repl_lag_;           ///< transport_repl_lag (sent - acked)
};

}  // namespace ptm::transport
