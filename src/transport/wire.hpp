// wire.hpp - the transport-level message envelope spoken over a socket.
//
// The in-process pump moves ptm::Frame values directly; the out-of-process
// transport (docs/transport.md) moves *transport messages*: either a V2I
// frame in its existing wire encoding, or one of a small set of
// connection-control messages that have no business in the paper's V2I
// protocol enum - heartbeats (liveness probes / half-open detection), the
// server's explicit ingest NACK (backpressure made visible instead of a
// silent stall), and a stats snapshot exchange for `ptmctl ping`.
//
//   message := kind(u8) payload
//   kind    := 1 v2i-frame        payload = encode_frame(Frame) bytes
//            | 2 heartbeat        payload = nonce(u64) send_unix_ns(u64)
//            | 3 heartbeat-ack    payload = nonce(u64) send_unix_ns(u64)
//            | 4 upload-nack      payload = location(u64) period(u64)
//                                           code(u8) retryable(u8)
//            | 5 stats-request    payload = empty
//            | 6 stats-response   payload = str(json)
//            | 7 auth-hello       payload = bytes(Certificate::serialize())
//            | 8 auth-challenge   payload = bytes(server nonce)
//            | 9 auth-proof       payload = bytes(RSA signature over the
//                                           channel-binding transcript)
//            | 10 auth-reject     payload = code(u8)
//            | 11 auth-ok         payload = empty
//            | 12 repl-subscribe  payload = subscriber_node(u64)
//            | 13 repl-record     payload = seq(u64)
//                                           bytes(TrafficRecord::serialize())
//            | 14 repl-ack        payload = acked_seq(u64)
//            | 15 repl-snapshot-begin  payload = live_records(u64)
//            | 16 repl-snapshot-end    payload = streamed(u64)
//            | 17 records-request payload = location(u64) count(u32)
//                                           period(u64)*count  (0 = all)
//            | 18 records-response payload = location(u64) count(u32)
//                                           bytes(record)*count
//
// Kinds 7-11 are the PKI handshake (docs/transport.md, *Authenticated
// handshake*): the client presents its §II-B certificate, the server
// challenges with a fresh nonce, and the client proves key possession by
// signing nonce + certificate hash.  auth-reject carries a distinct code
// per failure class so a fleet operator can tell a clock-skewed RSU from
// a rogue one in telemetry alone.
//
// Kinds 12-16 are the cluster archive-replication stream (docs/cluster.md):
// a follower subscribes with its node id, the primary answers with a
// snapshot of every live record the follower should hold (begin / record*
// / end), then forwards each first-accept ingest live.  Each repl-record
// carries a per-subscription sequence number the follower acknowledges,
// so replication lag is observable (`transport_repl_lag`).  Kinds 17-18
// are the coordinator's scatter-gather fetch: the records stored at one
// location for an explicit period set (or all periods), used to join
// cross-partition corridor/p2p queries at the coordinator.
//
// Messages travel length-prefixed on the stream (framing.hpp).  The codec
// is bounds-checked end to end: bytes arrive from a real network peer, so
// every malformed input must come back as ParseError, never UB (the
// transport fuzz suite pins this under ASan).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "net/message.hpp"

namespace ptm::transport {

enum class WireKind : std::uint8_t {
  kV2IFrame = 1,
  kHeartbeat = 2,
  kHeartbeatAck = 3,
  kUploadNack = 4,
  kStatsRequest = 5,
  kStatsResponse = 6,
  kAuthHello = 7,
  kAuthChallenge = 8,
  kAuthProof = 9,
  kAuthReject = 10,
  kAuthOk = 11,
  kReplSubscribe = 12,
  kReplRecord = 13,
  kReplAck = 14,
  kReplSnapshotBegin = 15,
  kReplSnapshotEnd = 16,
  kRecordsRequest = 17,
  kRecordsResponse = 18,
};

/// Why the server refused a handshake.  Distinct codes are part of the
/// contract: "expired window" (fix the clock / reissue) and "untrusted
/// certificate" (rogue peer) demand different operator responses.
enum class AuthRejectCode : std::uint8_t {
  kAuthRequired = 1,          ///< non-handshake message before auth-ok
  kMalformedCertificate = 2,  ///< auth-hello bytes do not decode
  kUntrustedCertificate = 3,  ///< CA signature verification failed
  kCertificateExpired = 4,    ///< validity window misses the auth period
  kBadProof = 5,              ///< challenge signature verification failed
  kAuthUnavailable = 6,       ///< server has no CA key configured
};

[[nodiscard]] const char* auth_reject_code_name(AuthRejectCode code) noexcept;

/// Liveness probe.  The receiver echoes the payload back verbatim as a
/// kHeartbeatAck, so the sender can measure round-trip time and detect a
/// half-open connection (TCP happily buffers writes into a dead peer; an
/// unanswered heartbeat is the only portable tell).
struct Heartbeat {
  std::uint64_t nonce = 0;
  std::uint64_t send_unix_ns = 0;  ///< sender's clock, echoed for RTT

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// The heartbeat echo.
struct HeartbeatAck {
  std::uint64_t nonce = 0;
  std::uint64_t send_unix_ns = 0;

  friend bool operator==(const HeartbeatAck&, const HeartbeatAck&) = default;
};

/// Server -> RSU: the upload for (location, period) was NOT ingested.
/// `retryable` distinguishes "try again later" (load shed - the RSU outbox
/// keeps the entry and re-arms backoff) from "never retransmit this"
/// (conflicting or malformed record - the outbox drops the entry, exactly
/// as the in-process pump drops server rejections).
struct UploadNack {
  std::uint64_t location = 0;
  std::uint64_t period = 0;
  ErrorCode code = ErrorCode::kResourceExhausted;
  bool retryable = true;

  friend bool operator==(const UploadNack&, const UploadNack&) = default;
};

/// Client -> server: ask for a telemetry snapshot (ptmctl ping).
struct StatsRequest {
  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

/// Server -> client: the registry snapshot as obs/export.hpp JSON.
struct StatsResponse {
  std::string json;

  friend bool operator==(const StatsResponse&,
                         const StatsResponse&) = default;
};

/// Client -> server: opens the handshake with the peer's serialized
/// §II-B certificate (raw bytes, not a decoded struct - the transcript
/// binds to the exact bytes presented, so re-serialization ambiguity can
/// never split what was verified from what was signed).
struct AuthHello {
  std::vector<std::uint8_t> certificate;

  friend bool operator==(const AuthHello&, const AuthHello&) = default;
};

/// Server -> client: a fresh random nonce the client must sign.
struct AuthChallenge {
  std::vector<std::uint8_t> nonce;

  friend bool operator==(const AuthChallenge&,
                         const AuthChallenge&) = default;
};

/// Client -> server: RSA signature over the channel-binding transcript
/// (auth.hpp) under the certificate's subject key.
struct AuthProof {
  std::vector<std::uint8_t> signature;

  friend bool operator==(const AuthProof&, const AuthProof&) = default;
};

/// Server -> client: handshake refused; the connection closes after this.
struct AuthReject {
  AuthRejectCode code = AuthRejectCode::kAuthRequired;

  friend bool operator==(const AuthReject&, const AuthReject&) = default;
};

/// Server -> client: proof verified; the session may carry traffic.
struct AuthOk {
  friend bool operator==(const AuthOk&, const AuthOk&) = default;
};

/// Follower -> primary: open an archive-replication subscription.  The
/// subscriber's node id lets the primary filter the stream to the
/// locations the subscriber should hold under the cluster partition map.
struct ReplSubscribe {
  std::uint64_t subscriber_node = 0;

  friend bool operator==(const ReplSubscribe&,
                         const ReplSubscribe&) = default;
};

/// Primary -> follower: one replicated record.  `seq` numbers the records
/// of this subscription from 1; the follower acks it after the record is
/// durably applied, so the primary can expose replication lag.  The record
/// travels as its own serialized bytes (TrafficRecord::serialize) - the
/// same encoding the RSU upload path uses.
struct ReplRecord {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> record;

  friend bool operator==(const ReplRecord&, const ReplRecord&) = default;
};

/// Follower -> primary: every repl-record up to `acked_seq` is applied.
struct ReplAck {
  std::uint64_t acked_seq = 0;

  friend bool operator==(const ReplAck&, const ReplAck&) = default;
};

/// Primary -> follower: the snapshot phase of a new subscription begins;
/// `live_records` is the primary's live record count at subscribe time
/// (an upper bound on the snapshot length - the stream is filtered to the
/// subscriber's partitions).
struct ReplSnapshotBegin {
  std::uint64_t live_records = 0;

  friend bool operator==(const ReplSnapshotBegin&,
                         const ReplSnapshotBegin&) = default;
};

/// Primary -> follower: snapshot complete after `streamed` records; every
/// later repl-record is a live-forwarded first accept.
struct ReplSnapshotEnd {
  std::uint64_t streamed = 0;

  friend bool operator==(const ReplSnapshotEnd&,
                         const ReplSnapshotEnd&) = default;
};

/// Coordinator -> node: the stored records at `location` for the listed
/// periods (empty = every stored period).  The reply skips periods with no
/// record - the coordinator computes coverage from what came back.
struct RecordsRequest {
  std::uint64_t location = 0;
  std::vector<std::uint64_t> periods;

  friend bool operator==(const RecordsRequest&,
                         const RecordsRequest&) = default;
};

/// Node -> coordinator: the matching records, each as its serialized
/// bytes.  Order follows the store's period order.
struct RecordsResponse {
  std::uint64_t location = 0;
  std::vector<std::vector<std::uint8_t>> records;

  friend bool operator==(const RecordsResponse&,
                         const RecordsResponse&) = default;
};

using WireMessage =
    std::variant<Frame, Heartbeat, HeartbeatAck, UploadNack, StatsRequest,
                 StatsResponse, AuthHello, AuthChallenge, AuthProof,
                 AuthReject, AuthOk, ReplSubscribe, ReplRecord, ReplAck,
                 ReplSnapshotBegin, ReplSnapshotEnd, RecordsRequest,
                 RecordsResponse>;

[[nodiscard]] WireKind wire_kind(const WireMessage& message) noexcept;
[[nodiscard]] const char* wire_kind_name(WireKind kind) noexcept;

/// Encodes one message (kind byte + payload, NOT length-prefixed; the
/// stream framing adds the length).
[[nodiscard]] std::vector<std::uint8_t> encode_wire_message(
    const WireMessage& message);

/// Decodes one message; ParseError on unknown kind, truncation, or
/// trailing bytes.
[[nodiscard]] Result<WireMessage> decode_wire_message(
    std::span<const std::uint8_t> bytes);

}  // namespace ptm::transport
