#include "transport/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace ptm::transport {
namespace {

std::uint32_t to_epoll(std::uint32_t interest) noexcept {
  std::uint32_t events = 0;
  if (interest & EventLoop::kReadable) events |= EPOLLIN;
  if (interest & EventLoop::kWritable) events |= EPOLLOUT;
  return events;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint64_t EventLoop::now_ms() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status EventLoop::add(int fd, std::uint32_t interest, IoCallback cb) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return {ErrorCode::kChannelError,
            std::string("epoll_ctl(ADD): ") + std::strerror(errno)};
  }
  io_callbacks_[fd] = std::move(cb);
  return Status::ok();
}

Status EventLoop::modify(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return {ErrorCode::kChannelError,
            std::string("epoll_ctl(MOD): ") + std::strerror(errno)};
  }
  return Status::ok();
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  io_callbacks_.erase(fd);
}

std::uint64_t EventLoop::add_timer(std::uint64_t delay_ms, TimerCallback cb) {
  const std::uint64_t id = next_timer_id_++;
  timers_.push(Timer{now_ms() + delay_ms, id});
  timer_callbacks_[id] = std::move(cb);
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) {
  // The heap entry stays until it surfaces; the erased callback marks it
  // cancelled (a one-shot heap with lazy deletion keeps this O(log n)).
  timer_callbacks_.erase(id);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  // A full eventfd counter (impossible at this volume) would just mean
  // the loop is already awake.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::fire_due_timers() {
  const std::uint64_t now = now_ms();
  while (!timers_.empty() && timers_.top().due_ms <= now) {
    const Timer t = timers_.top();
    timers_.pop();
    auto it = timer_callbacks_.find(t.id);
    if (it == timer_callbacks_.end()) continue;  // cancelled
    TimerCallback cb = std::move(it->second);
    timer_callbacks_.erase(it);
    cb();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return 1000;  // periodic housekeeping tick
  const std::uint64_t now = now_ms();
  const std::uint64_t due = timers_.top().due_ms;
  if (due <= now) return 0;
  const std::uint64_t delta = due - now;
  return delta > 1000 ? 1000 : static_cast<int>(delta);
}

void EventLoop::run() {
  stopped_ = false;
  std::vector<epoll_event> events(64);
  while (!stopped_) {
    fire_due_timers();
    drain_posted();
    if (stopped_) break;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane to do but unwind
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      auto it = io_callbacks_.find(ev.data.fd);
      if (it == io_callbacks_.end()) continue;  // removed by earlier cb
      std::uint32_t ready = 0;
      if (ev.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP)) {
        ready |= kReadable;
      }
      if (ev.events & EPOLLOUT) ready |= kWritable;
      // The callback may remove its own fd (and erase the map entry), so
      // copy the handle out before invoking.
      IoCallback cb = it->second;
      cb(ready);
    }
  }
}

}  // namespace ptm::transport
