#include "transport/fault_injection.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace ptm::transport {

FaultInjectingSocket::FaultInjectingSocket(Socket socket,
                                           std::vector<SocketFault> script)
    : socket_(std::move(socket)), script_(std::move(script)) {}

Status FaultInjectingSocket::write_all(std::span<const std::uint8_t> bytes,
                                       std::uint64_t timeout_ms) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    auto io = socket_.write_some(bytes.subspan(off));
    if (!io) return io.status();
    if (io->would_block) {
      auto ready = socket_.wait(/*want_write=*/true, timeout_ms);
      if (!ready) return ready.status();
      if (!*ready) {
        return {ErrorCode::kChannelError, "write deadline exceeded"};
      }
      continue;
    }
    off += io->bytes;
  }
  return Status::ok();
}

Result<InjectedWrite> FaultInjectingSocket::write_frame(
    std::span<const std::uint8_t> wire_bytes, std::uint64_t timeout_ms) {
  InjectedWrite out;
  if (severed_ || !socket_.valid()) {
    return Status{ErrorCode::kChannelError, "connection severed by script"};
  }
  const std::uint64_t ordinal = next_frame_++;
  // Collect every scripted action for this ordinal (a script may stack,
  // e.g. delay + duplicate).  Sever-type actions win over the rest.
  std::vector<const SocketFault*> fired;
  for (const SocketFault& f : script_) {
    if (f.frame_index == ordinal) fired.push_back(&f);
  }
  out.faults_fired = fired.size();

  std::size_t copies = 1;
  std::uint64_t delay_ms = 0;
  bool drop = false;
  const SocketFault* sever = nullptr;
  for (const SocketFault* f : fired) {
    switch (f->action) {
      case SocketFaultAction::kDropFrame: drop = true; break;
      case SocketFaultAction::kDuplicateFrame: copies = 2; break;
      case SocketFaultAction::kDelayFrame: delay_ms += f->param_ms; break;
      case SocketFaultAction::kTruncateAndSever:
      case SocketFaultAction::kSever:
        sever = f;
        break;
    }
  }

  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (sever != nullptr) {
    if (sever->action == SocketFaultAction::kTruncateAndSever) {
      const std::size_t cut = std::min<std::size_t>(
          static_cast<std::size_t>(sever->param_bytes), wire_bytes.size());
      // Best effort: the point is the torn tail, not its exact length.
      (void)write_all(wire_bytes.subspan(0, cut), timeout_ms);
    }
    socket_.close();
    severed_ = true;
    out.severed = true;
    return out;
  }
  if (drop) return out;  // silently swallowed; the ordinal still advanced
  for (std::size_t c = 0; c < copies; ++c) {
    if (Status s = write_all(wire_bytes, timeout_ms); !s.is_ok()) return s;
  }
  out.written = true;
  return out;
}

}  // namespace ptm::transport
