// connection.hpp - a supervised client connection to ptmd.
//
// A real RSU backhaul link flaps: connects time out, established sessions
// die mid-frame, and - worst of all - go *half-open* (the peer is gone but
// TCP keeps accepting writes into a buffer no one will ever read).  The
// SupervisedConnection owns the full lifecycle so callers never touch a
// raw socket:
//
//   * connect deadlines - a dial that cannot complete within
//     `connect_timeout_ms` fails instead of hanging;
//   * reconnect backoff - failed dials re-try with exponential backoff
//     plus uniform jitter (the outbox's clamp-after-jitter rule, in
//     milliseconds), so a fleet of RSUs recovering from one server outage
//     does not thunder in lockstep, and the attempts within one outage
//     are countable and bounded (the chaos suite asserts the cap);
//   * read/write deadlines - every blocking wait is bounded by
//     `io_timeout_ms` or the caller's Deadline;
//   * heartbeat keepalives - ping() round-trips a nonce; an unanswered
//     heartbeat within `heartbeat_timeout_ms` marks the connection
//     half-open and severs it, which is the only portable way to detect a
//     silently dead peer;
//   * scripted fault injection - an installed FaultPlan socket-fault map
//     (keyed by connection ordinal) wraps each new socket in a
//     FaultInjectingSocket, so chaos tests drive drops / truncations /
//     severs deterministically;
//   * PKI authentication - with credentials installed (set_credentials),
//     every connect AND reconnect runs the §II-B challenge-response
//     handshake (auth.hpp) before ensure_connected() reports success, so
//     no caller can ever send traffic on a half-authenticated session.
//     A handshake torn by the channel (drop / truncate / sever /
//     timeout) retries on the normal backoff ladder; a definitive
//     auth-reject from the server surfaces as kAuthFailure immediately -
//     redialing cannot fix a rejected certificate.
//
// Telemetry (registered on the given registry, or a private one):
//   transport_connects_total / transport_reconnects_total /
//   transport_connect_failures_total (counters),
//   transport_connection_state (gauge: 0 disconnected, 1 connected,
//   2 broken), transport_heartbeat_rtt_ns (histogram),
//   transport_heartbeat_timeouts_total (counter),
//   transport_auth_ok_total / transport_auth_failures_total (handshakes
//   torn by the channel) / transport_auth_rejects_total (definitive
//   server rejects) (counters).
//
// Threading: a SupervisedConnection belongs to one thread (each RSU
// emulator / loadgen worker owns its own).  The server side is the epoll
// loop in server.hpp; this class is deliberately synchronous because a
// client has exactly one connection to supervise.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "common/random.hpp"
#include "common/status.hpp"
#include "net/fault_plan.hpp"
#include "obs/telemetry.hpp"
#include "transport/auth.hpp"
#include "transport/fault_injection.hpp"
#include "transport/framing.hpp"
#include "transport/socket.hpp"
#include "transport/wire.hpp"

namespace ptm::transport {

struct ConnectionTuning {
  std::uint64_t connect_timeout_ms = 2000;
  std::uint64_t io_timeout_ms = 2000;        ///< per read/write wait bound
  std::uint64_t heartbeat_timeout_ms = 1500; ///< unanswered ping => half-open
  std::uint64_t backoff_base_ms = 20;        ///< reconnect backoff base
  std::uint64_t backoff_cap_ms = 2000;       ///< true ceiling (post-jitter)
};

class SupervisedConnection {
 public:
  enum class State : std::int64_t {
    kDisconnected = 0,
    kConnected = 1,
    kBroken = 2,  ///< last session died; next ensure_connected() redials
  };

  /// `registry` receives the connection's instruments (nullptr = own a
  /// private registry); `seed` drives the reconnect jitter.
  SupervisedConnection(Endpoint endpoint, ConnectionTuning tuning = {},
                       TelemetryRegistry* registry = nullptr,
                       std::uint64_t seed = 1);

  SupervisedConnection(const SupervisedConnection&) = delete;
  SupervisedConnection& operator=(const SupervisedConnection&) = delete;

  /// Installs scripted socket faults: connection ordinal (0-based count of
  /// sockets this supervisor has opened) -> that connection's script.
  void set_socket_faults(
      std::map<std::uint64_t, std::vector<SocketFault>> faults);

  /// Installs (or clears, with nullopt) the PKI credentials.  With
  /// credentials present, ensure_connected() only returns Ok once the
  /// handshake completed on the session it is reporting - including
  /// after every reconnect.  Takes effect on the next dial.
  void set_credentials(std::optional<AuthCredentials> credentials);
  [[nodiscard]] bool has_credentials() const noexcept {
    return credentials_.has_value();
  }

  /// Dials until connected or `deadline` expires, sleeping the backoff
  /// schedule between attempts.  Idempotent when already connected.
  [[nodiscard]] Status ensure_connected(const Deadline& deadline = Deadline());

  /// Sends one message on the current session (no auto-dial: callers
  /// decide when reconnecting is worth it).  kChannelError marks the
  /// connection broken; a scripted drop still returns Ok (the frame was
  /// "sent" as far as this endpoint can know).
  [[nodiscard]] Status send(const WireMessage& message);

  /// Next inbound message.  Server-initiated heartbeats are answered
  /// transparently and never surface.  kChannelError on session death,
  /// kParseError on a framing/codec violation (the session is severed -
  /// a length-prefixed stream cannot resync), kDeadlineExceeded when
  /// `deadline` passes first.
  [[nodiscard]] Result<WireMessage> receive(const Deadline& deadline);

  /// Heartbeat round trip; returns RTT in nanoseconds.  Any other
  /// messages that arrive while waiting are queued for later receive()
  /// calls.  An unanswered ping within heartbeat_timeout_ms severs the
  /// session (half-open detection) and returns kChannelError.
  [[nodiscard]] Result<std::uint64_t> ping();

  /// Hard-closes the current session (next ensure_connected redials).
  void sever() noexcept;

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] const Endpoint& endpoint() const noexcept {
    return endpoint_;
  }
  [[nodiscard]] const ConnectionTuning& tuning() const noexcept {
    return tuning_;
  }

  /// Sockets opened over this supervisor's lifetime (the fault-plan
  /// connection ordinal of the *next* dial).
  [[nodiscard]] std::uint64_t connections_opened() const noexcept {
    return connections_opened_;
  }
  /// Dial attempts that failed (the chaos suite bounds these per outage).
  [[nodiscard]] std::uint64_t connect_failures() const noexcept {
    return connect_failures_.value();
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_.value();
  }

 private:
  void mark(State s) noexcept;
  [[nodiscard]] std::uint64_t backoff_delay_ms(std::uint32_t attempt);
  /// Reads until the decoder yields one payload; deadline-bounded.
  [[nodiscard]] Result<std::vector<std::uint8_t>> read_frame(
      const Deadline& deadline);
  /// Runs hello -> challenge -> proof -> ok on the freshly dialed
  /// session.  kAuthFailure = definitive server reject; anything else is
  /// a channel casualty the caller may retry on backoff.
  [[nodiscard]] Status run_handshake(const Deadline& deadline);

  Endpoint endpoint_;
  ConnectionTuning tuning_;
  std::unique_ptr<TelemetryRegistry> owned_registry_;
  TelemetryRegistry& registry_;  ///< external registry or *owned_registry_
  Xoshiro256 rng_;
  std::map<std::uint64_t, std::vector<SocketFault>> socket_faults_;
  std::optional<AuthCredentials> credentials_;
  std::vector<std::uint8_t> cert_bytes_;  ///< serialized once at install

  std::optional<FaultInjectingSocket> session_;  ///< live socket, when any
  StreamDecoder decoder_;
  std::deque<WireMessage> pending_;  ///< messages read past by ping()
  State state_ = State::kDisconnected;
  std::uint64_t connections_opened_ = 0;
  /// Reseeded from rng_ on every dial: heartbeat nonces must never repeat
  /// across sessions, or a delayed/duplicated ack from a dead connection
  /// could satisfy a fresh ping and mask a half-open link.
  std::uint64_t next_heartbeat_nonce_ = 1;

  Counter& connects_;
  Counter& reconnects_;
  Counter& connect_failures_;
  Counter& heartbeat_timeouts_;
  Counter& auth_ok_;
  Counter& auth_failures_;
  Counter& auth_rejects_;
  Gauge& state_gauge_;
  LatencyRecorder& heartbeat_rtt_;
};

}  // namespace ptm::transport
