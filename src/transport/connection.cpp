#include "transport/connection.hpp"

#include <array>
#include <chrono>
#include <thread>
#include <utility>

namespace ptm::transport {
namespace {

TelemetryRegistry& resolve_registry(
    TelemetryRegistry* external, std::unique_ptr<TelemetryRegistry>& owned) {
  if (external != nullptr) return *external;
  owned = std::make_unique<TelemetryRegistry>();
  return *owned;
}

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Milliseconds left on `deadline`, clamped to `cap_ms`.
std::uint64_t budget_ms(const Deadline& deadline, std::uint64_t cap_ms) {
  if (deadline.unbounded()) return cap_ms;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline.remaining())
                        .count();
  const std::uint64_t ms = left <= 0 ? 0 : static_cast<std::uint64_t>(left);
  return ms < cap_ms ? ms : cap_ms;
}

}  // namespace

SupervisedConnection::SupervisedConnection(Endpoint endpoint,
                                           ConnectionTuning tuning,
                                           TelemetryRegistry* registry,
                                           std::uint64_t seed)
    : endpoint_(std::move(endpoint)),
      tuning_(tuning),
      registry_(resolve_registry(registry, owned_registry_)),
      rng_(seed),
      connects_(registry_.counter("transport_connects_total")),
      reconnects_(registry_.counter("transport_reconnects_total")),
      connect_failures_(
          registry_.counter("transport_connect_failures_total")),
      heartbeat_timeouts_(
          registry_.counter("transport_heartbeat_timeouts_total")),
      auth_ok_(registry_.counter("transport_auth_ok_total")),
      auth_failures_(registry_.counter("transport_auth_failures_total")),
      auth_rejects_(registry_.counter("transport_auth_rejects_total")),
      state_gauge_(registry_.gauge("transport_connection_state")),
      heartbeat_rtt_(registry_.histogram("transport_heartbeat_rtt_ns")) {}

void SupervisedConnection::set_socket_faults(
    std::map<std::uint64_t, std::vector<SocketFault>> faults) {
  socket_faults_ = std::move(faults);
}

void SupervisedConnection::set_credentials(
    std::optional<AuthCredentials> credentials) {
  credentials_ = std::move(credentials);
  cert_bytes_ = credentials_.has_value()
                    ? credentials_->certificate.serialize()
                    : std::vector<std::uint8_t>{};
}

void SupervisedConnection::mark(State s) noexcept {
  state_ = s;
  state_gauge_.set(static_cast<std::int64_t>(s));
}

std::uint64_t SupervisedConnection::backoff_delay_ms(std::uint32_t attempt) {
  // Same clamp-after-jitter rule as UploadOutbox::schedule_retry: the cap
  // is a true ceiling, not a pre-jitter base.
  const std::uint32_t shift = attempt < 32 ? attempt : 32;
  std::uint64_t delay = tuning_.backoff_base_ms << shift;
  if (delay == 0 || (delay >> shift) != tuning_.backoff_base_ms) {
    delay = tuning_.backoff_cap_ms;  // overflowed: already beyond the cap
  }
  if (tuning_.backoff_base_ms > 0) {
    delay += rng_.below(tuning_.backoff_base_ms + 1);
  }
  return delay < tuning_.backoff_cap_ms ? delay : tuning_.backoff_cap_ms;
}

Status SupervisedConnection::ensure_connected(const Deadline& deadline) {
  if (state_ == State::kConnected && session_.has_value() &&
      session_->socket().valid() && !session_->severed()) {
    return Status::ok();
  }
  sever();  // discard any broken session before redialing
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (deadline.expired_now()) {
      return {ErrorCode::kDeadlineExceeded,
              "connect deadline exceeded: " + endpoint_.to_string()};
    }
    const std::uint64_t connect_ms =
        budget_ms(deadline, tuning_.connect_timeout_ms);
    auto sock = Socket::connect(endpoint_, connect_ms);
    if (sock) {
      const std::uint64_t ordinal = connections_opened_++;
      std::vector<SocketFault> script;
      if (auto it = socket_faults_.find(ordinal);
          it != socket_faults_.end()) {
        script = it->second;
      }
      session_.emplace(std::move(*sock), std::move(script));
      decoder_ = StreamDecoder();
      pending_.clear();
      // Fresh nonce space per session (see the member comment): a stale
      // ack replayed from a prior connection must never match.
      next_heartbeat_nonce_ = rng_.next() | 1;
      connects_.add();
      if (ordinal > 0) reconnects_.add();
      mark(State::kConnected);
      if (!credentials_.has_value()) return Status::ok();
      Status auth = run_handshake(deadline);
      if (auth.is_ok()) {
        auth_ok_.add();
        return Status::ok();
      }
      sever();
      if (auth.code() == ErrorCode::kAuthFailure) {
        // The server's verdict, not the channel's: retrying the same
        // certificate can only be rejected again.
        auth_rejects_.add();
        return auth;
      }
      // Channel casualty mid-handshake (drop/truncate/sever/timeout):
      // never half-authenticated - the session is gone, and the normal
      // backoff ladder below paces the re-dial + re-handshake.
      auth_failures_.add();
    } else {
      connect_failures_.add();
    }
    const std::uint64_t sleep_ms =
        budget_ms(deadline, backoff_delay_ms(attempt));
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    } else if (!deadline.unbounded() && deadline.expired_now()) {
      return {ErrorCode::kDeadlineExceeded,
              "connect deadline exceeded: " + endpoint_.to_string()};
    }
  }
}

Status SupervisedConnection::run_handshake(const Deadline& deadline) {
  if (Status s = send(AuthHello{cert_bytes_}); !s.is_ok()) return s;
  // Each wait is bounded by io_timeout even under an unbounded caller
  // deadline: a server that swallowed the hello must not hang the dial
  // loop forever.
  const Deadline challenge_wait = Deadline::after(std::chrono::milliseconds(
      budget_ms(deadline, tuning_.io_timeout_ms)));
  auto challenge = receive(challenge_wait);
  if (!challenge) return challenge.status();
  const auto* ch = std::get_if<AuthChallenge>(&*challenge);
  if (ch == nullptr) {
    // receive() already surfaced an auth-reject as kAuthFailure; any
    // other kind here means the peer broke the handshake sequence.
    return {ErrorCode::kChannelError,
            std::string("handshake: expected auth-challenge, got ") +
                wire_kind_name(wire_kind(*challenge))};
  }
  const std::vector<std::uint8_t> transcript =
      auth_transcript(ch->nonce, cert_bytes_);
  if (Status s = send(AuthProof{rsa_sign(credentials_->keys, transcript)});
      !s.is_ok()) {
    return s;
  }
  const Deadline verdict_wait = Deadline::after(std::chrono::milliseconds(
      budget_ms(deadline, tuning_.io_timeout_ms)));
  auto verdict = receive(verdict_wait);
  if (!verdict) return verdict.status();
  if (std::holds_alternative<AuthOk>(*verdict)) return Status::ok();
  return {ErrorCode::kChannelError,
          std::string("handshake: expected auth-ok, got ") +
              wire_kind_name(wire_kind(*verdict))};
}

Status SupervisedConnection::send(const WireMessage& message) {
  if (state_ != State::kConnected || !session_.has_value()) {
    return {ErrorCode::kChannelError, "not connected"};
  }
  const std::vector<std::uint8_t> wire =
      frame_payload(encode_wire_message(message));
  auto written = session_->write_frame(wire, tuning_.io_timeout_ms);
  if (!written) {
    mark(State::kBroken);
    return written.status();
  }
  if (written->severed) {
    mark(State::kBroken);
    return {ErrorCode::kChannelError, "connection severed by fault script"};
  }
  return Status::ok();
}

Result<std::vector<std::uint8_t>> SupervisedConnection::read_frame(
    const Deadline& deadline) {
  for (;;) {
    auto payload = decoder_.next();
    if (!payload) {
      mark(State::kBroken);
      return payload.status();  // poisoned stream: caller must sever
    }
    if (payload->has_value()) return std::move(**payload);
    if (deadline.expired_now()) {
      return Status{ErrorCode::kDeadlineExceeded, "read deadline exceeded"};
    }
    Socket& sock = session_->socket();
    auto ready = sock.wait(/*want_write=*/false,
                           budget_ms(deadline, tuning_.io_timeout_ms));
    if (!ready) {
      mark(State::kBroken);
      return ready.status();
    }
    if (!*ready) {
      if (deadline.unbounded()) {
        return Status{ErrorCode::kDeadlineExceeded, "read timed out"};
      }
      continue;  // deadline loop decides whether to keep waiting
    }
    std::array<std::uint8_t, 16 * 1024> buf;
    auto io = sock.read_some(buf);
    if (!io) {
      mark(State::kBroken);
      return io.status();
    }
    if (io->peer_closed) {
      mark(State::kBroken);
      return Status{ErrorCode::kChannelError, "peer closed connection"};
    }
    decoder_.feed(std::span<const std::uint8_t>(buf.data(), io->bytes));
  }
}

Result<WireMessage> SupervisedConnection::receive(const Deadline& deadline) {
  for (;;) {
    if (!pending_.empty()) {
      WireMessage msg = std::move(pending_.front());
      pending_.pop_front();
      return msg;
    }
    if (state_ != State::kConnected || !session_.has_value()) {
      return Status{ErrorCode::kChannelError, "not connected"};
    }
    auto payload = read_frame(deadline);
    if (!payload) return payload.status();
    auto msg = decode_wire_message(*payload);
    if (!msg) {
      // A codec violation inside a well-framed payload is as fatal as a
      // bad length prefix: the peer is speaking a different protocol.
      sever();
      return msg.status();
    }
    if (const auto* hb = std::get_if<Heartbeat>(&*msg)) {
      // Server-initiated liveness probe: answer and keep reading.
      if (Status s = send(HeartbeatAck{hb->nonce, hb->send_unix_ns});
          !s.is_ok()) {
        return s;
      }
      continue;
    }
    if (const auto* reject = std::get_if<AuthReject>(&*msg)) {
      // The server refused this session (it closes right after sending
      // this); whether we were mid-handshake or sent traffic without
      // credentials, the session is unusable.
      sever();
      return Status{ErrorCode::kAuthFailure,
                    std::string("server rejected authentication: ") +
                        auth_reject_code_name(reject->code)};
    }
    return std::move(*msg);
  }
}

Result<std::uint64_t> SupervisedConnection::ping() {
  if (state_ != State::kConnected || !session_.has_value()) {
    return Status{ErrorCode::kChannelError, "not connected"};
  }
  const std::uint64_t nonce = next_heartbeat_nonce_++;
  const std::uint64_t sent_ns = steady_now_ns();
  if (Status s = send(Heartbeat{nonce, sent_ns}); !s.is_ok()) return s;
  const Deadline wait = Deadline::after(
      std::chrono::milliseconds(tuning_.heartbeat_timeout_ms));
  for (;;) {
    auto msg = receive(wait);
    if (!msg) {
      if (msg.status().code() == ErrorCode::kDeadlineExceeded) {
        // Half-open: the peer accepted our bytes but answers nothing.
        heartbeat_timeouts_.add();
        sever();
        return Status{ErrorCode::kChannelError,
                      "heartbeat unanswered: connection half-open"};
      }
      return msg.status();
    }
    if (const auto* ack = std::get_if<HeartbeatAck>(&*msg)) {
      if (ack->nonce != nonce) continue;  // stale ack from a prior ping
      const std::uint64_t rtt = steady_now_ns() - sent_ns;
      heartbeat_rtt_.record(rtt);
      return rtt;
    }
    // Not ours: park it for the next receive() call.
    pending_.push_back(std::move(*msg));
  }
}

void SupervisedConnection::sever() noexcept {
  const bool had_session = session_.has_value();
  session_.reset();
  decoder_ = StreamDecoder();
  pending_.clear();
  // A severed live session is kBroken (the next ensure_connected counts as
  // a reconnect); severing an already-dead connection changes nothing.
  mark(had_session ? State::kBroken : State::kDisconnected);
}

}  // namespace ptm::transport
