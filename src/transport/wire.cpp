#include "transport/wire.hpp"

#include "common/serialize.hpp"

namespace ptm::transport {

WireKind wire_kind(const WireMessage& message) noexcept {
  struct Visitor {
    WireKind operator()(const Frame&) const { return WireKind::kV2IFrame; }
    WireKind operator()(const Heartbeat&) const {
      return WireKind::kHeartbeat;
    }
    WireKind operator()(const HeartbeatAck&) const {
      return WireKind::kHeartbeatAck;
    }
    WireKind operator()(const UploadNack&) const {
      return WireKind::kUploadNack;
    }
    WireKind operator()(const StatsRequest&) const {
      return WireKind::kStatsRequest;
    }
    WireKind operator()(const StatsResponse&) const {
      return WireKind::kStatsResponse;
    }
  };
  return std::visit(Visitor{}, message);
}

const char* wire_kind_name(WireKind kind) noexcept {
  switch (kind) {
    case WireKind::kV2IFrame: return "v2i-frame";
    case WireKind::kHeartbeat: return "heartbeat";
    case WireKind::kHeartbeatAck: return "heartbeat-ack";
    case WireKind::kUploadNack: return "upload-nack";
    case WireKind::kStatsRequest: return "stats-request";
    case WireKind::kStatsResponse: return "stats-response";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_wire_message(const WireMessage& message) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(wire_kind(message)));
  struct Visitor {
    ByteWriter& w;
    void operator()(const Frame& f) const { w.raw(encode_frame(f)); }
    void operator()(const Heartbeat& h) const {
      w.u64(h.nonce);
      w.u64(h.send_unix_ns);
    }
    void operator()(const HeartbeatAck& h) const {
      w.u64(h.nonce);
      w.u64(h.send_unix_ns);
    }
    void operator()(const UploadNack& n) const {
      w.u64(n.location);
      w.u64(n.period);
      w.u8(static_cast<std::uint8_t>(n.code));
      w.u8(n.retryable ? 1 : 0);
    }
    void operator()(const StatsRequest&) const {}
    void operator()(const StatsResponse& s) const { w.str(s.json); }
  };
  std::visit(Visitor{w}, message);
  return w.take();
}

namespace {

Result<WireMessage> decode_heartbeat(ByteReader& r, bool ack) {
  auto nonce = r.u64();
  if (!nonce) return nonce.status();
  auto ns = r.u64();
  if (!ns) return ns.status();
  if (ack) return WireMessage{HeartbeatAck{*nonce, *ns}};
  return WireMessage{Heartbeat{*nonce, *ns}};
}

}  // namespace

Result<WireMessage> decode_wire_message(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto kind_byte = r.u8();
  if (!kind_byte) return kind_byte.status();
  Result<WireMessage> decoded =
      Status{ErrorCode::kParseError, "unknown transport message kind"};
  switch (static_cast<WireKind>(*kind_byte)) {
    case WireKind::kV2IFrame: {
      // The remainder is a full V2I frame in its existing encoding; its
      // codec consumes the rest of the payload (and enforces exhaustion).
      auto frame = decode_frame(bytes.subspan(1));
      if (!frame) return frame.status();
      return WireMessage{std::move(*frame)};
    }
    case WireKind::kHeartbeat:
      decoded = decode_heartbeat(r, /*ack=*/false);
      break;
    case WireKind::kHeartbeatAck:
      decoded = decode_heartbeat(r, /*ack=*/true);
      break;
    case WireKind::kUploadNack: {
      UploadNack n;
      auto loc = r.u64();
      if (!loc) return loc.status();
      n.location = *loc;
      auto per = r.u64();
      if (!per) return per.status();
      n.period = *per;
      auto code = r.u8();
      if (!code) return code.status();
      if (*code > static_cast<std::uint8_t>(ErrorCode::kResourceExhausted)) {
        return Status{ErrorCode::kParseError, "upload-nack: bad error code"};
      }
      n.code = static_cast<ErrorCode>(*code);
      auto retryable = r.u8();
      if (!retryable) return retryable.status();
      if (*retryable > 1) {
        return Status{ErrorCode::kParseError,
                      "upload-nack: retryable must be 0 or 1"};
      }
      n.retryable = *retryable == 1;
      decoded = WireMessage{n};
      break;
    }
    case WireKind::kStatsRequest:
      decoded = WireMessage{StatsRequest{}};
      break;
    case WireKind::kStatsResponse: {
      auto json = r.str();
      if (!json) return json.status();
      decoded = WireMessage{StatsResponse{std::move(*json)}};
      break;
    }
  }
  if (!decoded) return decoded;
  if (!r.exhausted()) {
    return Status{ErrorCode::kParseError,
                  "trailing bytes after transport message"};
  }
  return decoded;
}

}  // namespace ptm::transport
