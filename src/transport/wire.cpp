#include "transport/wire.hpp"

#include "common/serialize.hpp"

namespace ptm::transport {

WireKind wire_kind(const WireMessage& message) noexcept {
  struct Visitor {
    WireKind operator()(const Frame&) const { return WireKind::kV2IFrame; }
    WireKind operator()(const Heartbeat&) const {
      return WireKind::kHeartbeat;
    }
    WireKind operator()(const HeartbeatAck&) const {
      return WireKind::kHeartbeatAck;
    }
    WireKind operator()(const UploadNack&) const {
      return WireKind::kUploadNack;
    }
    WireKind operator()(const StatsRequest&) const {
      return WireKind::kStatsRequest;
    }
    WireKind operator()(const StatsResponse&) const {
      return WireKind::kStatsResponse;
    }
    WireKind operator()(const AuthHello&) const {
      return WireKind::kAuthHello;
    }
    WireKind operator()(const AuthChallenge&) const {
      return WireKind::kAuthChallenge;
    }
    WireKind operator()(const AuthProof&) const {
      return WireKind::kAuthProof;
    }
    WireKind operator()(const AuthReject&) const {
      return WireKind::kAuthReject;
    }
    WireKind operator()(const AuthOk&) const { return WireKind::kAuthOk; }
    WireKind operator()(const ReplSubscribe&) const {
      return WireKind::kReplSubscribe;
    }
    WireKind operator()(const ReplRecord&) const {
      return WireKind::kReplRecord;
    }
    WireKind operator()(const ReplAck&) const { return WireKind::kReplAck; }
    WireKind operator()(const ReplSnapshotBegin&) const {
      return WireKind::kReplSnapshotBegin;
    }
    WireKind operator()(const ReplSnapshotEnd&) const {
      return WireKind::kReplSnapshotEnd;
    }
    WireKind operator()(const RecordsRequest&) const {
      return WireKind::kRecordsRequest;
    }
    WireKind operator()(const RecordsResponse&) const {
      return WireKind::kRecordsResponse;
    }
  };
  return std::visit(Visitor{}, message);
}

const char* auth_reject_code_name(AuthRejectCode code) noexcept {
  switch (code) {
    case AuthRejectCode::kAuthRequired: return "auth-required";
    case AuthRejectCode::kMalformedCertificate:
      return "malformed-certificate";
    case AuthRejectCode::kUntrustedCertificate:
      return "untrusted-certificate";
    case AuthRejectCode::kCertificateExpired: return "certificate-expired";
    case AuthRejectCode::kBadProof: return "bad-proof";
    case AuthRejectCode::kAuthUnavailable: return "auth-unavailable";
  }
  return "unknown";
}

const char* wire_kind_name(WireKind kind) noexcept {
  switch (kind) {
    case WireKind::kV2IFrame: return "v2i-frame";
    case WireKind::kHeartbeat: return "heartbeat";
    case WireKind::kHeartbeatAck: return "heartbeat-ack";
    case WireKind::kUploadNack: return "upload-nack";
    case WireKind::kStatsRequest: return "stats-request";
    case WireKind::kStatsResponse: return "stats-response";
    case WireKind::kAuthHello: return "auth-hello";
    case WireKind::kAuthChallenge: return "auth-challenge";
    case WireKind::kAuthProof: return "auth-proof";
    case WireKind::kAuthReject: return "auth-reject";
    case WireKind::kAuthOk: return "auth-ok";
    case WireKind::kReplSubscribe: return "repl-subscribe";
    case WireKind::kReplRecord: return "repl-record";
    case WireKind::kReplAck: return "repl-ack";
    case WireKind::kReplSnapshotBegin: return "repl-snapshot-begin";
    case WireKind::kReplSnapshotEnd: return "repl-snapshot-end";
    case WireKind::kRecordsRequest: return "records-request";
    case WireKind::kRecordsResponse: return "records-response";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_wire_message(const WireMessage& message) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(wire_kind(message)));
  struct Visitor {
    ByteWriter& w;
    void operator()(const Frame& f) const { w.raw(encode_frame(f)); }
    void operator()(const Heartbeat& h) const {
      w.u64(h.nonce);
      w.u64(h.send_unix_ns);
    }
    void operator()(const HeartbeatAck& h) const {
      w.u64(h.nonce);
      w.u64(h.send_unix_ns);
    }
    void operator()(const UploadNack& n) const {
      w.u64(n.location);
      w.u64(n.period);
      w.u8(static_cast<std::uint8_t>(n.code));
      w.u8(n.retryable ? 1 : 0);
    }
    void operator()(const StatsRequest&) const {}
    void operator()(const StatsResponse& s) const { w.str(s.json); }
    void operator()(const AuthHello& h) const { w.bytes(h.certificate); }
    void operator()(const AuthChallenge& c) const { w.bytes(c.nonce); }
    void operator()(const AuthProof& p) const { w.bytes(p.signature); }
    void operator()(const AuthReject& r) const {
      w.u8(static_cast<std::uint8_t>(r.code));
    }
    void operator()(const AuthOk&) const {}
    void operator()(const ReplSubscribe& s) const { w.u64(s.subscriber_node); }
    void operator()(const ReplRecord& rec) const {
      w.u64(rec.seq);
      w.bytes(rec.record);
    }
    void operator()(const ReplAck& a) const { w.u64(a.acked_seq); }
    void operator()(const ReplSnapshotBegin& b) const {
      w.u64(b.live_records);
    }
    void operator()(const ReplSnapshotEnd& e) const { w.u64(e.streamed); }
    void operator()(const RecordsRequest& req) const {
      w.u64(req.location);
      w.u32(static_cast<std::uint32_t>(req.periods.size()));
      for (std::uint64_t p : req.periods) w.u64(p);
    }
    void operator()(const RecordsResponse& resp) const {
      w.u64(resp.location);
      w.u32(static_cast<std::uint32_t>(resp.records.size()));
      for (const auto& rec : resp.records) w.bytes(rec);
    }
  };
  std::visit(Visitor{w}, message);
  return w.take();
}

namespace {

Result<WireMessage> decode_heartbeat(ByteReader& r, bool ack) {
  auto nonce = r.u64();
  if (!nonce) return nonce.status();
  auto ns = r.u64();
  if (!ns) return ns.status();
  if (ack) return WireMessage{HeartbeatAck{*nonce, *ns}};
  return WireMessage{Heartbeat{*nonce, *ns}};
}

}  // namespace

Result<WireMessage> decode_wire_message(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto kind_byte = r.u8();
  if (!kind_byte) return kind_byte.status();
  Result<WireMessage> decoded =
      Status{ErrorCode::kParseError, "unknown transport message kind"};
  switch (static_cast<WireKind>(*kind_byte)) {
    case WireKind::kV2IFrame: {
      // The remainder is a full V2I frame in its existing encoding; its
      // codec consumes the rest of the payload (and enforces exhaustion).
      auto frame = decode_frame(bytes.subspan(1));
      if (!frame) return frame.status();
      return WireMessage{std::move(*frame)};
    }
    case WireKind::kHeartbeat:
      decoded = decode_heartbeat(r, /*ack=*/false);
      break;
    case WireKind::kHeartbeatAck:
      decoded = decode_heartbeat(r, /*ack=*/true);
      break;
    case WireKind::kUploadNack: {
      UploadNack n;
      auto loc = r.u64();
      if (!loc) return loc.status();
      n.location = *loc;
      auto per = r.u64();
      if (!per) return per.status();
      n.period = *per;
      auto code = r.u8();
      if (!code) return code.status();
      if (*code > static_cast<std::uint8_t>(ErrorCode::kResourceExhausted)) {
        return Status{ErrorCode::kParseError, "upload-nack: bad error code"};
      }
      n.code = static_cast<ErrorCode>(*code);
      auto retryable = r.u8();
      if (!retryable) return retryable.status();
      if (*retryable > 1) {
        return Status{ErrorCode::kParseError,
                      "upload-nack: retryable must be 0 or 1"};
      }
      n.retryable = *retryable == 1;
      decoded = WireMessage{n};
      break;
    }
    case WireKind::kStatsRequest:
      decoded = WireMessage{StatsRequest{}};
      break;
    case WireKind::kStatsResponse: {
      auto json = r.str();
      if (!json) return json.status();
      decoded = WireMessage{StatsResponse{std::move(*json)}};
      break;
    }
    case WireKind::kAuthHello: {
      auto cert = r.bytes();
      if (!cert) return cert.status();
      if (cert->empty()) {
        return Status{ErrorCode::kParseError, "auth-hello: empty certificate"};
      }
      decoded = WireMessage{AuthHello{std::move(*cert)}};
      break;
    }
    case WireKind::kAuthChallenge: {
      auto nonce = r.bytes();
      if (!nonce) return nonce.status();
      // A nonce is a few dozen bytes; past this bound the peer is either
      // broken or hostile, and signing megabytes of "nonce" is how a
      // signature oracle gets abused.
      if (nonce->empty() || nonce->size() > 256) {
        return Status{ErrorCode::kParseError,
                      "auth-challenge: nonce must be 1..256 bytes"};
      }
      decoded = WireMessage{AuthChallenge{std::move(*nonce)}};
      break;
    }
    case WireKind::kAuthProof: {
      auto sig = r.bytes();
      if (!sig) return sig.status();
      if (sig->empty()) {
        return Status{ErrorCode::kParseError, "auth-proof: empty signature"};
      }
      decoded = WireMessage{AuthProof{std::move(*sig)}};
      break;
    }
    case WireKind::kAuthReject: {
      auto code = r.u8();
      if (!code) return code.status();
      if (*code < static_cast<std::uint8_t>(AuthRejectCode::kAuthRequired) ||
          *code > static_cast<std::uint8_t>(AuthRejectCode::kAuthUnavailable)) {
        return Status{ErrorCode::kParseError, "auth-reject: unknown code"};
      }
      decoded = WireMessage{AuthReject{static_cast<AuthRejectCode>(*code)}};
      break;
    }
    case WireKind::kAuthOk:
      decoded = WireMessage{AuthOk{}};
      break;
    case WireKind::kReplSubscribe: {
      auto node = r.u64();
      if (!node) return node.status();
      decoded = WireMessage{ReplSubscribe{*node}};
      break;
    }
    case WireKind::kReplRecord: {
      auto seq = r.u64();
      if (!seq) return seq.status();
      if (*seq == 0) {
        return Status{ErrorCode::kParseError,
                      "repl-record: sequence numbers start at 1"};
      }
      auto rec = r.bytes();
      if (!rec) return rec.status();
      if (rec->empty()) {
        return Status{ErrorCode::kParseError, "repl-record: empty record"};
      }
      decoded = WireMessage{ReplRecord{*seq, std::move(*rec)}};
      break;
    }
    case WireKind::kReplAck: {
      auto seq = r.u64();
      if (!seq) return seq.status();
      decoded = WireMessage{ReplAck{*seq}};
      break;
    }
    case WireKind::kReplSnapshotBegin: {
      auto live = r.u64();
      if (!live) return live.status();
      decoded = WireMessage{ReplSnapshotBegin{*live}};
      break;
    }
    case WireKind::kReplSnapshotEnd: {
      auto streamed = r.u64();
      if (!streamed) return streamed.status();
      decoded = WireMessage{ReplSnapshotEnd{*streamed}};
      break;
    }
    case WireKind::kRecordsRequest: {
      RecordsRequest req;
      auto loc = r.u64();
      if (!loc) return loc.status();
      req.location = *loc;
      auto count = r.u32();
      if (!count) return count.status();
      // Guard the reserve against a lying count: each period is 8 bytes,
      // so a count beyond remaining/8 cannot be honest.
      if (*count > r.remaining() / 8) {
        return Status{ErrorCode::kParseError,
                      "records-request: period count exceeds payload"};
      }
      req.periods.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto p = r.u64();
        if (!p) return p.status();
        req.periods.push_back(*p);
      }
      decoded = WireMessage{std::move(req)};
      break;
    }
    case WireKind::kRecordsResponse: {
      RecordsResponse resp;
      auto loc = r.u64();
      if (!loc) return loc.status();
      resp.location = *loc;
      auto count = r.u32();
      if (!count) return count.status();
      // Each record blob carries at least its own u32 length prefix.
      if (*count > r.remaining() / 4) {
        return Status{ErrorCode::kParseError,
                      "records-response: record count exceeds payload"};
      }
      resp.records.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto rec = r.bytes();
        if (!rec) return rec.status();
        if (rec->empty()) {
          return Status{ErrorCode::kParseError,
                        "records-response: empty record"};
        }
        resp.records.push_back(std::move(*rec));
      }
      decoded = WireMessage{std::move(resp)};
      break;
    }
  }
  if (!decoded) return decoded;
  if (!r.exhausted()) {
    return Status{ErrorCode::kParseError,
                  "trailing bytes after transport message"};
  }
  return decoded;
}

}  // namespace ptm::transport
