#include "transport/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

namespace ptm::transport {
namespace {

Status errno_status(const char* what) {
  return {ErrorCode::kChannelError,
          std::string(what) + ": " + std::strerror(errno)};
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(O_NONBLOCK)");
  }
  return Status::ok();
}

/// Builds the sockaddr for an endpoint.  `storage` must outlive the
/// returned pointer.
struct SockAddr {
  sockaddr_storage storage{};
  socklen_t len = 0;
  int family = AF_UNIX;
};

Result<SockAddr> make_sockaddr(const Endpoint& endpoint) {
  SockAddr out;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    auto* addr = reinterpret_cast<sockaddr_un*>(&out.storage);
    addr->sun_family = AF_UNIX;
    if (endpoint.path.empty() ||
        endpoint.path.size() >= sizeof(addr->sun_path)) {
      return Status{ErrorCode::kInvalidArgument,
                    "unix socket path empty or too long"};
    }
    std::memcpy(addr->sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    out.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                     endpoint.path.size() + 1);
    out.family = AF_UNIX;
    return out;
  }
  auto* addr4 = reinterpret_cast<sockaddr_in*>(&out.storage);
  auto* addr6 = reinterpret_cast<sockaddr_in6*>(&out.storage);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr4->sin_addr) == 1) {
    addr4->sin_family = AF_INET;
    addr4->sin_port = htons(endpoint.port);
    out.len = sizeof(sockaddr_in);
    out.family = AF_INET;
    return out;
  }
  if (::inet_pton(AF_INET6, endpoint.host.c_str(), &addr6->sin6_addr) == 1) {
    addr6->sin6_family = AF_INET6;
    addr6->sin6_port = htons(endpoint.port);
    out.len = sizeof(sockaddr_in6);
    out.family = AF_INET6;
    return out;
  }
  return Status{ErrorCode::kInvalidArgument,
                "tcp endpoint host must be a numeric IPv4/IPv6 address"};
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<Endpoint> parse_endpoint(const std::string& text) {
  Endpoint out;
  if (text.rfind("unix:", 0) == 0) {
    out.kind = Endpoint::Kind::kUnix;
    out.path = text.substr(5);
    if (out.path.empty()) {
      return Status{ErrorCode::kInvalidArgument, "unix: endpoint needs a path"};
    }
    return out;
  }
  std::string rest = text;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    return Status{ErrorCode::kInvalidArgument,
                  "endpoint must be unix:/path or [tcp:]host:port"};
  }
  out.kind = Endpoint::Kind::kTcp;
  out.host = rest.substr(0, colon);
  // Bracketed IPv6 literals: [::1]:7777.
  if (out.host.size() >= 2 && out.host.front() == '[' &&
      out.host.back() == ']') {
    out.host = out.host.substr(1, out.host.size() - 2);
  }
  const std::string port_text = rest.substr(colon + 1);
  std::uint64_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status{ErrorCode::kInvalidArgument, "endpoint port not numeric"};
    }
    port = port * 10 + static_cast<std::uint64_t>(c - '0');
    if (port > 65535) {
      return Status{ErrorCode::kInvalidArgument, "endpoint port out of range"};
    }
  }
  if (port_text.empty()) {
    return Status{ErrorCode::kInvalidArgument, "endpoint port missing"};
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

int Socket::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Result<Socket> Socket::listen(const Endpoint& endpoint, int backlog) {
  auto addr = make_sockaddr(endpoint);
  if (!addr) return addr.status();
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    // A previous process's socket file makes bind fail with EADDRINUSE
    // even though nobody is listening; remove it first.  (A *live*
    // listener is a deployment error this happily clobbers - ptmd should
    // be supervised to one instance per path.)
    ::unlink(endpoint.path.c_str());
  }
  Socket sock(::socket(addr->family, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_status("socket");
  if (addr->family != AF_UNIX) {
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (Status s = set_nonblocking(sock.fd()); !s.is_ok()) return s;
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr->storage),
             addr->len) != 0) {
    return errno_status("bind");
  }
  if (::listen(sock.fd(), backlog) != 0) return errno_status("listen");
  return sock;
}

Result<Socket> Socket::connect(const Endpoint& endpoint,
                               std::uint64_t timeout_ms) {
  auto addr = make_sockaddr(endpoint);
  if (!addr) return addr.status();
  Socket sock(::socket(addr->family, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_status("socket");
  if (Status s = set_nonblocking(sock.fd()); !s.is_ok()) return s;
  if (addr->family != AF_UNIX) {
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr->storage),
                addr->len) == 0) {
    return sock;
  }
  if (errno != EINPROGRESS && errno != EAGAIN) {
    return errno_status("connect");
  }
  auto ready = sock.wait(/*want_write=*/true, timeout_ms);
  if (!ready) return ready.status();
  if (!*ready) {
    return Status{ErrorCode::kChannelError, "connect timed out"};
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno_status("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    return Status{ErrorCode::kChannelError,
                  std::string("connect: ") + std::strerror(err)};
  }
  return sock;
}

Result<Socket> Socket::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();  // soft
    return errno_status("accept");
  }
  Socket sock(fd);
  if (Status s = set_nonblocking(fd); !s.is_ok()) return s;
  return sock;
}

Result<IoResult> Socket::read_some(std::span<std::uint8_t> buf) {
  IoResult out;
  const ssize_t n = ::read(fd_, buf.data(), buf.size());
  if (n > 0) {
    out.bytes = static_cast<std::size_t>(n);
    return out;
  }
  if (n == 0) {
    out.peer_closed = true;
    return out;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    out.would_block = true;
    return out;
  }
  return errno_status("read");
}

Result<IoResult> Socket::write_some(std::span<const std::uint8_t> buf) {
  IoResult out;
  // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
  // not kill the process with SIGPIPE (chaos tests sever on purpose).
  const ssize_t n = ::send(fd_, buf.data(), buf.size(), MSG_NOSIGNAL);
  if (n >= 0) {
    out.bytes = static_cast<std::size_t>(n);
    return out;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    out.would_block = true;
    return out;
  }
  return errno_status("write");
}

Result<bool> Socket::wait(bool want_write, std::uint64_t timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = static_cast<short>(want_write ? POLLOUT : POLLIN);
  const int timeout =
      timeout_ms > static_cast<std::uint64_t>(INT32_MAX)
          ? INT32_MAX
          : static_cast<int>(timeout_ms);
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll");
    }
    return rc > 0;
  }
}

}  // namespace ptm::transport
