// loadgen.hpp - workload replay against a live ptmd, with ptm-bench-v1
// output.
//
// The load generator answers the capacity question the simulator cannot:
// what does THIS daemon on THIS machine do under N concurrent RSU
// uplinks?  It derives per-location volumes from the repo's trip-table
// workload (traffic/trip_table.hpp gravity model - the same shape the
// paper's Sioux Falls experiments use), synthesizes each location's
// per-period records at their Eq. 2-planned sizes, and replays them over
// `connections` parallel supervised connections.  Each worker retries
// shed records with backoff, so the report separates true throughput
// (acks) from backpressure (shed events) and failures.
//
// The report serializes as a ptm-bench-v1 JSON document (the bench
// harness's schema, docs/benchmarking.md): delivery-latency percentiles
// as `results` rows, the full counter set as a `tables` entry.  CI's
// transport-chaos job runs `loadgen --smoke` and a perf-tracking job can
// diff documents across revisions exactly as it does for microbenches.
//
// Backpressure demonstration (the ISSUE's acceptance bar): run with more
// connections than the daemon's ingest admission bound and a nonzero
// `ingest_stall_us`; the shed rate climbs while the delivery-latency p99
// stays bounded by deliver_timeout_ms - overload is shed, not queued into
// collapse.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "obs/telemetry.hpp"
#include "transport/auth.hpp"
#include "transport/connection.hpp"
#include "transport/socket.hpp"

namespace ptm::transport {

struct LoadgenOptions {
  std::size_t connections = 4;   ///< parallel uplink workers
  std::size_t locations = 8;     ///< trip-table zones to replay
  std::size_t periods = 8;       ///< records per location
  std::uint64_t volume_min = 64;    ///< clamp for zone volumes
  std::uint64_t volume_max = 2048;
  double load_factor = 2.0;         ///< Eq. 2 bitmap planning
  std::uint64_t deliver_timeout_ms = 2000;
  std::uint64_t time_cap_ms = 60000;   ///< hard stop for the whole replay
  std::uint64_t retry_backoff_base_ms = 5;   ///< shed/channel retry pacing
  std::uint64_t retry_backoff_cap_ms = 200;
  std::uint32_t max_attempts = 64;     ///< per record before giving up
  ConnectionTuning tuning{};
  std::uint64_t seed = 1;
  /// Shared by every worker connection when the target daemon runs
  /// --require-auth; each worker handshakes on its own connects and
  /// reconnects.
  std::optional<AuthCredentials> credentials;
};

struct LoadgenReport {
  std::uint64_t records_total = 0;
  std::uint64_t acked = 0;
  std::uint64_t shed_events = 0;     ///< retryable NACKs received
  std::uint64_t fatal_nacks = 0;
  std::uint64_t channel_errors = 0;
  std::uint64_t abandoned = 0;       ///< attempts/time exhausted
  std::uint64_t attempts = 0;        ///< delivery attempts, total
  std::uint64_t reconnects = 0;
  std::uint64_t elapsed_ns = 0;
  LatencyHistogramSnapshot deliver_latency;  ///< per-acked-record RTT

  /// Acked records per second of wall time.
  [[nodiscard]] double throughput_rps() const noexcept;
  /// Fraction of delivery attempts answered with a retryable NACK.
  [[nodiscard]] double shed_rate() const noexcept;
  /// ptm-bench-v1 document (schema of bench/bench_harness.cpp write_json):
  /// latency percentiles + throughput as `results`, counters as a table.
  [[nodiscard]] std::string to_bench_json(const std::string& rev) const;
};

class LoadGenerator {
 public:
  LoadGenerator(Endpoint server, LoadgenOptions options);

  /// Generates the workload and replays it.  Fails only on setup errors
  /// (e.g. no connection could ever be established); delivery failures
  /// are data in the report, not errors.
  [[nodiscard]] Result<LoadgenReport> run();

 private:
  Endpoint server_;
  LoadgenOptions options_;
};

}  // namespace ptm::transport
