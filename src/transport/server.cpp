#include "transport/server.hpp"

#include <array>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

#include "crypto/certificate.hpp"
#include "net/message.hpp"
#include "obs/export.hpp"
#include "transport/auth.hpp"

namespace ptm::transport {
namespace {

/// Failures worth retransmitting: everything except the errors that say
/// "this exact record can never be accepted".
bool retryable_ingest_failure(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kFailedPrecondition:  // conflicting record for the slot
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kOutOfRange:
    case ErrorCode::kParseError:
      return false;
    default:
      return true;
  }
}

/// Challenge nonces need unpredictability, not determinism: seed from the
/// system entropy source (the chaos scripts key on frame ordinals, never
/// on nonce values, so tests stay deterministic anyway).
std::uint64_t entropy_seed() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace

PtmdServer::PtmdServer(PtmdOptions options)
    : options_(std::move(options)),
      service_(options_.service),
      ingest_gate_(options_.ingest_admission, &service_.telemetry()),
      accepted_(service_.telemetry().counter("transport_accepted_total")),
      accept_backoffs_(
          service_.telemetry().counter("transport_accept_backoffs_total")),
      frames_(service_.telemetry().counter("transport_frames_total")),
      ingest_shed_(
          service_.telemetry().counter("transport_ingest_shed_total")),
      nacks_(service_.telemetry().counter("transport_nacks_total")),
      protocol_errors_(
          service_.telemetry().counter("transport_protocol_errors_total")),
      auth_ok_(service_.telemetry().counter("transport_auth_ok_total")),
      auth_failures_(
          service_.telemetry().counter("transport_auth_failures_total")),
      auth_rejects_(
          service_.telemetry().counter("transport_auth_rejects_total")),
      repl_records_(
          service_.telemetry().counter("transport_repl_records_total")),
      connections_(service_.telemetry().gauge("transport_connections")),
      repl_subscribers_(
          service_.telemetry().gauge("transport_repl_subscribers")),
      repl_lag_(service_.telemetry().gauge("transport_repl_lag")) {
  if (options_.ingest_threads == 0) options_.ingest_threads = 1;
  // A pause of 0 would never arm a resume timer; a shed connection with no
  // pending ingests would then stay paused forever (see PtmdOptions).
  if (options_.shed_pause_ms == 0) options_.shed_pause_ms = 1;
  if (options_.accept_retry_ms == 0) options_.accept_retry_ms = 1;
  if (options_.auth_timeout_ms == 0) options_.auth_timeout_ms = 1;
  auth_rng_.reseed(entropy_seed());
}

PtmdServer::~PtmdServer() { stop(); }

Status PtmdServer::start() {
  if (running_.load()) return Status::ok();
  if (options_.require_auth && !options_.auth_ca_key.has_value()) {
    return {ErrorCode::kInvalidArgument,
            "require_auth without a CA key would reject every peer"};
  }
  if (options_.repl_endpoint.has_value() &&
      options_.repl_endpoint->to_string() == options_.endpoint.to_string()) {
    // Catch the operator error at startup with a message that names the
    // endpoint, instead of the second bind failing deep in the run loop.
    return {ErrorCode::kInvalidArgument,
            "--repl-listen duplicates --listen (" +
                options_.endpoint.to_string() +
                "); replication needs its own endpoint"};
  }
  if (!options_.archive_path.empty()) {
    auto archive = RecordArchive::open(options_.archive_path, {});
    if (!archive) return archive.status();
    archive_.emplace(std::move(*archive));
    service_.attach_durability(*archive_);
    auto restored = service_.restore_from_archive();
    if (!restored) return restored.status();
    restored_ = *restored;
  }
  auto listener = Socket::listen(options_.endpoint);
  if (!listener) return listener.status();
  listener_ = std::move(*listener);
  if (Status s = loop_.add(listener_.fd(), EventLoop::kReadable,
                           [this](std::uint32_t) {
                             on_acceptable(listener_, accepts_paused_);
                           });
      !s.is_ok()) {
    return s;
  }
  if (options_.repl_endpoint.has_value()) {
    auto repl = Socket::listen(*options_.repl_endpoint);
    if (!repl) return repl.status();
    repl_listener_ = std::move(*repl);
    if (Status s =
            loop_.add(repl_listener_.fd(), EventLoop::kReadable,
                      [this](std::uint32_t) {
                        on_acceptable(repl_listener_, repl_accepts_paused_);
                      });
        !s.is_ok()) {
      return s;
    }
  }
  if (options_.idle_timeout_ms > 0) {
    loop_.add_timer(options_.idle_timeout_ms / 2 + 1,
                    [this] { sweep_idle(); });
  }
  running_.store(true);
  for (std::size_t i = 0; i < options_.ingest_threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  loop_thread_ = std::thread([this] { loop_main(); });
  return Status::ok();
}

void PtmdServer::stop() {
  if (!running_.exchange(false)) {
    // start() may have failed between archive open and thread spawn.
    if (loop_thread_.joinable()) loop_thread_.join();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    return;
  }
  jobs_cv_.notify_all();
  // Join the workers while the loop is still alive: an in-flight ingest
  // posts its finish_ingest (ack/nack + gate release) to a loop that will
  // actually run it.  Stopping the loop first would strand those posts.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Jobs the workers never picked up each hold one admission slot; release
  // them so gate accounting stays balanced through shutdown.  Their
  // uploads are unacked, so the RSU outbox retransmits after restart -
  // exactly the crash semantics the chaos suite proves.
  {
    std::lock_guard lock(jobs_mu_);
    for (std::size_t i = jobs_.size(); i > 0; --i) ingest_gate_.release();
    jobs_.clear();
  }
  loop_.post([this] { loop_.stop(); });
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop thread is gone; tearing down connection state is safe here.
  conns_.clear();
  conn_fd_by_id_.clear();
  connections_.set(0);
}

void PtmdServer::loop_main() { loop_.run(); }

void PtmdServer::worker_main() {
  for (;;) {
    IngestJob job;
    {
      std::unique_lock lock(jobs_mu_);
      jobs_cv_.wait(lock,
                    [this] { return !jobs_.empty() || !running_.load(); });
      // On stop, leave queued jobs for stop() to discard (it releases
      // their gate slots); once the loop is torn down their results could
      // never be posted anyway.
      if (!running_.load()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    if (options_.ingest_stall_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.ingest_stall_us));
    }
    const std::uint64_t location = job.record.location;
    const std::uint64_t period = job.record.period;
    bool first_accept = false;
    const Status status =
        service_.ingest(job.record, job.trace, &first_accept);
    // Only a first accept is worth forwarding to replication subscribers:
    // re-deliveries dedupe here and must not become duplicate repl
    // traffic.  The record rides the post back to the loop thread, which
    // owns the subscriber connections.
    std::optional<TrafficRecord> forwarded;
    if (status.is_ok() && first_accept) {
      forwarded.emplace(std::move(job.record));
    }
    loop_.post([this, conn_id = job.conn_id, location, period,
                trace = job.trace, status,
                forwarded = std::move(forwarded)] {
      finish_ingest(conn_id, location, period, trace, status, forwarded);
    });
  }
}

void PtmdServer::on_acceptable(Socket& listener, bool& paused_flag) {
  for (;;) {
    auto accepted = listener.accept();
    if (!accepted) {
      // Hard error (EMFILE/ENFILE under fd exhaustion).  The listener
      // stays readable in the level-triggered set, so returning with the
      // event pending would spin the loop thread at 100% CPU; drop its
      // read interest and retry after a breather instead.
      pause_accepts(listener, paused_flag);
      return;
    }
    if (!accepted->valid()) return;  // would-block: drained the backlog
    const int fd = accepted->fd();
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(*accepted);
    conn->id = next_conn_id_++;
    conn->last_activity_ms = EventLoop::now_ms();
    if (options_.require_auth) conn->auth_phase = AuthPhase::kAwaitHello;
    if (Status s =
            loop_.add(fd, EventLoop::kReadable,
                      [this, fd](std::uint32_t ev) { on_conn_event(fd, ev); });
        !s.is_ok()) {
      continue;  // conn destructor closes the socket
    }
    conn_fd_by_id_[conn->id] = fd;
    const std::uint64_t conn_id = conn->id;
    conns_[fd] = std::move(conn);
    accepted_.add();
    connections_.add(1);
    if (options_.require_auth) {
      // A peer that dials and never completes the handshake (or stalls
      // mid-way, e.g. a torn proof) must not hold a socket open; the
      // idle sweep may be configured off, so auth gets its own clock.
      loop_.add_timer(options_.auth_timeout_ms, [this, conn_id] {
        Conn* c = conn_by_id(conn_id);
        if (c == nullptr || c->auth_phase == AuthPhase::kReady) return;
        auth_failures_.add();
        close_conn(c->sock.fd());
      });
    }
  }
}

void PtmdServer::pause_accepts(Socket& listener, bool& paused_flag) {
  if (paused_flag) return;
  paused_flag = true;
  accept_backoffs_.add();
  (void)loop_.modify(listener.fd(), 0);
  loop_.add_timer(options_.accept_retry_ms, [this, &listener, &paused_flag] {
    paused_flag = false;
    (void)loop_.modify(listener.fd(), EventLoop::kReadable);
    // Drain connections that queued while paused.
    on_acceptable(listener, paused_flag);
  });
}

void PtmdServer::on_conn_event(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  conn.last_activity_ms = EventLoop::now_ms();
  if (events & EventLoop::kWritable) {
    flush(conn);
    if (conns_.find(fd) == conns_.end()) return;  // flush finished a close
  }
  if ((events & EventLoop::kReadable) && !conn.paused && !conn.closing) {
    std::array<std::uint8_t, 16 * 1024> buf;
    for (int round = 0; round < 4; ++round) {  // bounded per event: fairness
      auto io = conn.sock.read_some(buf);
      if (!io || io->peer_closed) {
        close_conn(fd);
        return;
      }
      if (io->would_block) break;
      conn.decoder.feed(std::span<const std::uint8_t>(buf.data(), io->bytes));
    }
    // Drain every complete frame buffered so far.  Stops early when a
    // handler pauses the connection (backpressure) - the remaining bytes
    // wait in the decoder until the resume path re-drains.
    while (!conn.paused && !conn.closing) {
      auto payload = conn.decoder.next();
      if (!payload) {
        protocol_errors_.add();
        close_conn(fd);
        return;
      }
      if (!payload->has_value()) break;
      handle_payload(conn, **payload);
      if (conns_.find(fd) == conns_.end()) return;  // handler closed it
    }
  }
}

void PtmdServer::handle_payload(Conn& conn,
                                std::span<const std::uint8_t> payload) {
  auto message = decode_wire_message(payload);
  if (!message) {
    protocol_errors_.add();
    close_conn(conn.sock.fd());
    return;
  }
  if (conn.auth_phase != AuthPhase::kReady ||
      std::holds_alternative<AuthHello>(*message) ||
      std::holds_alternative<AuthProof>(*message)) {
    // Mid-handshake every kind routes through the auth state machine (so
    // nothing leaks past an unverified peer); at kReady a hello is an
    // optional re/authentication attempt and a stray proof is a sequence
    // violation the state machine rejects.
    handle_auth(conn, *message);
    return;
  }
  if (const auto* frame = std::get_if<Frame>(&*message)) {
    handle_frame(conn, *frame);
    return;
  }
  if (const auto* hb = std::get_if<Heartbeat>(&*message)) {
    send_message(conn, HeartbeatAck{hb->nonce, hb->send_unix_ns});
    return;
  }
  if (std::holds_alternative<StatsRequest>(*message)) {
    send_message(conn,
                 StatsResponse{to_json(service_.telemetry().snapshot())});
    return;
  }
  if (const auto* sub = std::get_if<ReplSubscribe>(&*message)) {
    handle_repl_subscribe(conn, *sub);
    return;
  }
  if (const auto* ack = std::get_if<ReplAck>(&*message)) {
    if (conn.repl_subscriber && ack->acked_seq > conn.repl_acked &&
        ack->acked_seq <= conn.repl_seq) {
      conn.repl_acked = ack->acked_seq;
      update_repl_gauges();
    }
    return;
  }
  if (const auto* req = std::get_if<RecordsRequest>(&*message)) {
    // The coordinator's scatter-gather fetch.  The response is bounded to
    // one wire frame's worth of records; anything cut off looks like a
    // missing period to the coordinator, which degrades that partition to
    // partial coverage - never a protocol error.
    constexpr std::size_t kMaxResponseBytes = 8u << 20;
    RecordsResponse resp;
    resp.location = req->location;
    std::size_t total_bytes = 0;
    for (const TrafficRecord& rec :
         service_.records_at_periods(req->location, req->periods)) {
      std::vector<std::uint8_t> bytes = rec.serialize();
      total_bytes += bytes.size();
      if (total_bytes > kMaxResponseBytes) break;
      resp.records.push_back(std::move(bytes));
    }
    send_message(conn, resp);
    return;
  }
  // Acks/nacks/stats flowing server-ward carry nothing for us; ignoring
  // them keeps the protocol symmetric without inventing error paths.
}

void PtmdServer::handle_auth(Conn& conn, const WireMessage& message) {
  switch (conn.auth_phase) {
    case AuthPhase::kReady:
    case AuthPhase::kAwaitHello: {
      const auto* hello = std::get_if<AuthHello>(&message);
      if (hello == nullptr) {
        // require_auth and the peer led with traffic (or, at kReady, sent
        // a proof nobody challenged): authenticate first.
        reject_auth(conn, AuthRejectCode::kAuthRequired);
        return;
      }
      if (!options_.auth_ca_key.has_value()) {
        reject_auth(conn, AuthRejectCode::kAuthUnavailable);
        return;
      }
      auto cert = Certificate::deserialize(hello->certificate);
      if (!cert) {
        reject_auth(conn, AuthRejectCode::kMalformedCertificate);
        return;
      }
      if (options_.auth_period < cert->valid_from ||
          options_.auth_period > cert->valid_until) {
        reject_auth(conn, AuthRejectCode::kCertificateExpired);
        return;
      }
      if (!rsa_verify(*options_.auth_ca_key, cert->tbs_bytes(),
                      cert->signature)) {
        reject_auth(conn, AuthRejectCode::kUntrustedCertificate);
        return;
      }
      conn.peer_key = cert->subject_key;
      conn.peer_cert_bytes = hello->certificate;
      conn.auth_nonce.resize(kAuthNonceBytes);
      for (auto& b : conn.auth_nonce) {
        b = static_cast<std::uint8_t>(auth_rng_.next());
      }
      conn.auth_phase = AuthPhase::kAwaitProof;
      send_message(conn, AuthChallenge{conn.auth_nonce});
      return;
    }
    case AuthPhase::kAwaitProof: {
      const auto* proof = std::get_if<AuthProof>(&message);
      if (proof == nullptr) {
        reject_auth(conn, AuthRejectCode::kAuthRequired);
        return;
      }
      const std::vector<std::uint8_t> transcript =
          auth_transcript(conn.auth_nonce, conn.peer_cert_bytes);
      if (!rsa_verify(conn.peer_key, transcript, proof->signature)) {
        reject_auth(conn, AuthRejectCode::kBadProof);
        return;
      }
      conn.auth_phase = AuthPhase::kReady;
      conn.auth_nonce.clear();
      conn.peer_cert_bytes.clear();
      auth_ok_.add();
      send_message(conn, AuthOk{});
      return;
    }
  }
}

void PtmdServer::reject_auth(Conn& conn, AuthRejectCode code) {
  auth_rejects_.add();
  // Flush-then-close: the verdict must reach the peer (so it can stop
  // retrying a hopeless certificate), but nothing after it will.
  conn.closing = true;
  send_message(conn, AuthReject{code});
}

void PtmdServer::handle_frame(Conn& conn, const Frame& frame) {
  frames_.add();
  const auto* upload = std::get_if<RecordUpload>(&frame.body);
  if (upload == nullptr) return;  // ptmd ingests; other V2I traffic is noise
  const std::uint64_t location = upload->record.location;
  const std::uint64_t period = upload->record.period;
  if (Status gate = ingest_gate_.try_admit(); !gate.is_ok()) {
    ingest_shed_.add();
    nacks_.add();
    const std::uint64_t conn_id = conn.id;
    send_message(conn, UploadNack{location, period,
                                  ErrorCode::kResourceExhausted,
                                  /*retryable=*/true});
    // send_message flushes, and a hard write error (peer reset or
    // half-closed while we shed) destroys the Conn mid-call - re-resolve
    // before touching it, exactly as finish_ingest does.
    if (Conn* after = conn_by_id(conn_id); after != nullptr) {
      pause_reads(*after, options_.shed_pause_ms);
    }
    return;
  }
  ++conn.pending_ingests;
  if (conn.pending_ingests >= options_.max_pending_per_conn) {
    pause_reads(conn, /*resume_after_ms=*/0);  // resumes when half drains
  }
  {
    std::lock_guard lock(jobs_mu_);
    jobs_.push_back(IngestJob{conn.id, upload->record, frame.trace});
  }
  jobs_cv_.notify_one();
}

void PtmdServer::handle_repl_subscribe(Conn& conn, const ReplSubscribe& sub) {
  // (Re)subscribe resets the stream: a follower that redialed after a
  // sever gets a fresh snapshot, and its idempotent ingest absorbs the
  // overlap with what it already applied.
  conn.repl_subscriber = true;
  conn.subscriber_node = sub.subscriber_node;
  conn.repl_seq = 0;
  conn.repl_acked = 0;
  conn.snapshotting = true;
  conn.snapshot_cursor = QueryService::RecordCursor{};
  conn.snapshot_streamed = 0;
  const std::uint64_t conn_id = conn.id;
  update_repl_gauges();
  send_message(conn, ReplSnapshotBegin{service_.record_count()});
  // send_message may have destroyed the Conn on a write error;
  // continue_snapshot re-resolves by id.
  continue_snapshot(conn_id);
}

void PtmdServer::continue_snapshot(std::uint64_t conn_id) {
  // Pace the stream by the connection's own outbuf: stop queueing batches
  // once the peer stops draining.  A slow follower therefore costs this
  // node one high-water mark of memory and per-batch shared locks - not
  // an archive-sized copy under the archive mutex (the PR 9 fix).
  constexpr std::size_t kSnapshotBatch = 64;
  constexpr std::size_t kOutbufHighWater = 256u << 10;
  Conn* conn = conn_by_id(conn_id);
  if (conn == nullptr || !conn->snapshotting || conn->closing) return;
  while (conn->snapshotting &&
         conn->outbuf.size() - conn->out_off < kOutbufHighWater) {
    std::vector<TrafficRecord> batch =
        service_.records_batch(conn->snapshot_cursor, kSnapshotBatch);
    if (batch.empty()) {
      conn->snapshotting = false;
      send_message(*conn, ReplSnapshotEnd{conn->snapshot_streamed});
      break;
    }
    for (const TrafficRecord& rec : batch) {
      if (options_.repl_filter &&
          !options_.repl_filter(conn->subscriber_node, rec.location)) {
        continue;
      }
      ++conn->repl_seq;
      ++conn->snapshot_streamed;
      repl_records_.add();
      send_message(*conn, ReplRecord{conn->repl_seq, rec.serialize()});
      conn = conn_by_id(conn_id);  // a write error destroys the Conn
      if (conn == nullptr) return;
    }
  }
  update_repl_gauges();
}

void PtmdServer::forward_to_subscribers(const TrafficRecord& record) {
  // Collect ids first: send_message can destroy a Conn (write error), and
  // that invalidates any iterator into conns_.
  std::vector<std::uint64_t> subscriber_ids;
  for (const auto& [fd, conn] : conns_) {
    if (conn->repl_subscriber && !conn->closing) {
      subscriber_ids.push_back(conn->id);
    }
  }
  if (subscriber_ids.empty()) return;
  for (std::uint64_t id : subscriber_ids) {
    Conn* conn = conn_by_id(id);
    if (conn == nullptr) continue;
    if (options_.repl_filter &&
        !options_.repl_filter(conn->subscriber_node, record.location)) {
      continue;
    }
    ++conn->repl_seq;
    repl_records_.add();
    send_message(*conn, ReplRecord{conn->repl_seq, record.serialize()});
  }
  update_repl_gauges();
}

void PtmdServer::update_repl_gauges() {
  std::int64_t subscribers = 0;
  std::int64_t lag = 0;
  for (const auto& [fd, conn] : conns_) {
    if (!conn->repl_subscriber) continue;
    ++subscribers;
    lag += static_cast<std::int64_t>(conn->repl_seq - conn->repl_acked);
  }
  repl_subscribers_.set(subscribers);
  repl_lag_.set(lag);
}

void PtmdServer::finish_ingest(std::uint64_t conn_id, std::uint64_t location,
                               std::uint64_t period,
                               const TraceContext& trace,
                               const Status& status,
                               const std::optional<TrafficRecord>& forwarded) {
  ingest_gate_.release();
  // A first accept replicates even when the uploading connection died
  // between worker and loop: the record is already durable locally, so the
  // followers must see it too.
  if (forwarded.has_value()) forward_to_subscribers(*forwarded);
  Conn* conn = conn_by_id(conn_id);
  if (conn == nullptr) return;  // connection died while the ingest ran
  if (conn->pending_ingests > 0) --conn->pending_ingests;
  if (status.is_ok()) {
    Frame ack;
    ack.body = UploadAck{location, period};
    ack.trace = trace;
    send_message(*conn, ack);
  } else {
    nacks_.add();
    send_message(*conn,
                 UploadNack{location, period, status.code(),
                            retryable_ingest_failure(status.code())});
  }
  Conn* after = conn_by_id(conn_id);  // send_message may have closed it
  if (after != nullptr && after->paused &&
      after->pending_ingests <= options_.max_pending_per_conn / 2) {
    after->paused = false;
    update_interest(*after);
    // Re-drain frames that were decoded but parked behind the pause.
    const int fd = conn_fd_by_id_[conn_id];
    loop_.post([this, fd] { on_conn_event(fd, EventLoop::kReadable); });
  }
}

void PtmdServer::send_message(Conn& conn, const WireMessage& message) {
  const std::vector<std::uint8_t> wire =
      frame_payload(encode_wire_message(message));
  conn.outbuf.insert(conn.outbuf.end(), wire.begin(), wire.end());
  flush(conn);
}

void PtmdServer::flush(Conn& conn) {
  const int fd = conn.sock.fd();
  while (conn.out_off < conn.outbuf.size()) {
    auto io = conn.sock.write_some(std::span<const std::uint8_t>(
        conn.outbuf.data() + conn.out_off, conn.outbuf.size() - conn.out_off));
    if (!io) {
      close_conn(fd);
      return;
    }
    if (io->would_block) break;
    conn.out_off += io->bytes;
  }
  if (conn.out_off >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_off = 0;
    if (conn.closing) {
      close_conn(fd);
      return;
    }
    if (conn.snapshotting) {
      // The follower drained below the high-water mark - resume the
      // snapshot off-stack (flush can run deep inside send_message).
      loop_.post([this, id = conn.id] { continue_snapshot(id); });
    }
  }
  update_interest(conn);
}

void PtmdServer::update_interest(Conn& conn) {
  std::uint32_t interest = 0;
  if (!conn.paused && !conn.closing) interest |= EventLoop::kReadable;
  if (conn.out_off < conn.outbuf.size()) interest |= EventLoop::kWritable;
  (void)loop_.modify(conn.sock.fd(), interest);
}

void PtmdServer::pause_reads(Conn& conn, std::uint64_t resume_after_ms) {
  if (conn.paused) return;
  conn.paused = true;
  update_interest(conn);
  if (resume_after_ms > 0) {
    loop_.add_timer(resume_after_ms, [this, id = conn.id] {
      Conn* c = conn_by_id(id);
      if (c == nullptr || !c->paused || c->closing) return;
      c->paused = false;
      update_interest(*c);
      const int fd = conn_fd_by_id_[id];
      loop_.post([this, fd] { on_conn_event(fd, EventLoop::kReadable); });
    });
  }
}

void PtmdServer::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const bool was_subscriber = it->second->repl_subscriber;
  loop_.remove(fd);
  conn_fd_by_id_.erase(it->second->id);
  conns_.erase(it);
  connections_.sub(1);
  if (was_subscriber) update_repl_gauges();
}

void PtmdServer::sweep_idle() {
  if (options_.idle_timeout_ms > 0) {
    const std::uint64_t now = EventLoop::now_ms();
    std::vector<int> stale;
    for (const auto& [fd, conn] : conns_) {
      if (conn->pending_ingests == 0 &&
          now - conn->last_activity_ms > options_.idle_timeout_ms) {
        stale.push_back(fd);
      }
    }
    for (int fd : stale) close_conn(fd);
    loop_.add_timer(options_.idle_timeout_ms / 2 + 1,
                    [this] { sweep_idle(); });
  }
}

PtmdServer::Conn* PtmdServer::conn_by_id(std::uint64_t id) noexcept {
  auto it = conn_fd_by_id_.find(id);
  if (it == conn_fd_by_id_.end()) return nullptr;
  auto cit = conns_.find(it->second);
  return cit == conns_.end() ? nullptr : cit->second.get();
}

}  // namespace ptm::transport
