// fault_injection.hpp - scripted socket-level misbehavior for chaos tests.
//
// The in-process LossyChannel models radio loss; a real backhaul fails in
// uglier, *stateful* ways: a frame vanishes inside a TCP session that
// otherwise looks healthy, a connection dies halfway through a length-
// prefixed frame (leaving the receiver a torn tail to refuse), a flaky
// NAT duplicates a segment, a middlebox adds seconds of delay.  The
// FaultInjectingSocket wraps a connected Socket and executes a
// FaultPlan's per-connection SocketFault script (net/fault_plan.hpp) at
// frame granularity on the *write* side - the injector counts outbound
// frames and fires the scripted action when its ordinal comes up:
//
//   kDropFrame        - the frame is silently never written
//   kDuplicateFrame   - the frame is written twice
//   kDelayFrame       - the write happens after param_ms of real sleep
//   kTruncateAndSever - only the first param_bytes of the wire bytes go
//                       out, then the socket is closed (mid-frame cut)
//   kSever            - the socket is closed before the write
//
// Reads pass through untouched: the receiving side's robustness is
// exercised by what the *writer* mangles, which keeps the injected state
// machine in exactly one place.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "net/fault_plan.hpp"
#include "transport/socket.hpp"

namespace ptm::transport {

/// Outcome of a fault-injected frame write.
struct InjectedWrite {
  bool written = false;   ///< at least one full copy reached the socket
  bool severed = false;   ///< the script closed the connection
  std::uint64_t faults_fired = 0;  ///< scripted actions consumed
};

class FaultInjectingSocket {
 public:
  /// Takes ownership of `socket`; `script` is this connection's slice of
  /// the FaultPlan (sorted or not - the injector matches by exact frame
  /// ordinal).
  FaultInjectingSocket(Socket socket, std::vector<SocketFault> script);

  /// Writes one whole wire frame (length prefix included), applying any
  /// scripted fault for the current outbound frame ordinal.  Blocks (via
  /// Socket::wait) until the bytes are out, `timeout_ms` expires
  /// (kChannelError), or a hard error/sever occurs.
  [[nodiscard]] Result<InjectedWrite> write_frame(
      std::span<const std::uint8_t> wire_bytes, std::uint64_t timeout_ms);

  [[nodiscard]] Socket& socket() noexcept { return socket_; }
  [[nodiscard]] bool severed() const noexcept { return severed_; }
  [[nodiscard]] std::uint64_t frames_written() const noexcept {
    return next_frame_;
  }

 private:
  /// Writes exactly `bytes` (all of them), waiting on writability.
  [[nodiscard]] Status write_all(std::span<const std::uint8_t> bytes,
                                 std::uint64_t timeout_ms);

  Socket socket_;
  std::vector<SocketFault> script_;
  std::uint64_t next_frame_ = 0;  ///< ordinal of the next outbound frame
  bool severed_ = false;
};

}  // namespace ptm::transport
