#include "transport/emulator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/traffic_record.hpp"
#include "crypto/certificate.hpp"
#include "net/message.hpp"
#include "transport/event_loop.hpp"

namespace ptm::transport {
namespace {

/// Builds the emulated Rsu's identity.  With wire credentials installed
/// the node carries exactly the key + certificate the daemon will verify;
/// otherwise a throwaway CA self-certifies.  Returned as a prvalue so the
/// non-movable Rsu constructs in place.
Rsu make_rsu(const EmulatorOptions& options, Xoshiro256& rng) {
  if (options.credentials.has_value()) {
    RsaKeyPair keys = options.credentials->keys;
    Certificate cert = options.credentials->certificate;
    return Rsu(options.location, std::move(keys), std::move(cert),
               options.initial_bitmap_size);
  }
  CertificateAuthority ca("rsu-emu-ca", options.modulus_bits, rng);
  RsaKeyPair keys = rsa_generate(options.modulus_bits, rng);
  auto cert =
      ca.issue("rsu:" + std::to_string(options.location), options.location,
               keys.pub, 0, options.location + options.periods + 1'000'000);
  // The window above is never inverted, so issue() cannot fail here.
  return Rsu(options.location, std::move(keys), std::move(*cert),
             options.initial_bitmap_size);
}

MacAddress rsu_mac(std::uint64_t location) noexcept {
  // Locally-administered, deterministic per location.
  return MacAddress{(0x02ULL << 40) | (location & 0xFFFFFFFFFFULL)};
}

constexpr MacAddress kServerMac{0x02ULL << 40 | 0x53525600ULL};  // "SRV"

}  // namespace

RsuEmulator::RsuEmulator(Endpoint server, EmulatorOptions options,
                         TelemetryRegistry* registry)
    : options_(options),
      rng_(options.seed),
      rsu_(make_rsu(options_, rng_)),
      connection_(std::move(server), options_.tuning, registry,
                  options_.seed ^ 0x9e3779b97f4a7c15ULL),
      uplink_(connection_, rsu_mac(options_.location), kServerMac) {
  if (options_.credentials.has_value()) {
    connection_.set_credentials(options_.credentials);
  }
  if (!options_.journal_path.empty() && !options_.outbox_path.empty()) {
    // A failed attach leaves the RSU volatile; run() still works, the
    // deployment just loses crash recovery (callers who need durability
    // check rsu().durable()).
    (void)rsu_.attach_durability(options_.journal_path,
                                 options_.outbox_path);
  }
}

Result<EmulatorReport> RsuEmulator::run() {
  EmulatorReport report;
  for (std::size_t p = 0; p < options_.periods; ++p) {
    // Synthetic vehicle contacts: the emulator exercises the transport,
    // so contacts skip the auth handshake and send bare EncodeIndex
    // frames (the journal still records every set bit durably).
    const std::size_t m = rsu_.bitmap_size();
    for (std::uint64_t v = 0; v < options_.encodes_per_period; ++v) {
      Frame contact;
      contact.src = MacAddress{rng_.next() & 0xFFFFFFFFFFFFULL};
      contact.dst = rsu_mac(options_.location);
      contact.body = EncodeIndex{rng_.below(m)};
      auto ack = rsu_.handle_frame(contact);
      if (!ack) return ack.status();  // programming error, not transport
    }
    if (Status s = rsu_.stage_upload(); !s.is_ok()) return s;
    const double expected = std::max<double>(
        1.0, static_cast<double>(options_.encodes_per_period));
    rsu_.start_next_period(plan_bitmap_size(expected, options_.load_factor));
    ++report.periods_closed;
    // Opportunistic pump between periods: bounded so a dead server cannot
    // stall the measurement lifecycle (records accumulate in the outbox).
    pump(Deadline::after(std::chrono::milliseconds(
             options_.deliver_timeout_ms)),
         report);
  }
  // Final drain: keep retrying until the outbox is empty or the cap hits.
  pump(Deadline::after(std::chrono::milliseconds(options_.drain_timeout_ms)),
       report);
  report.reconnects = connection_.connections_opened() > 0
                          ? connection_.connections_opened() - 1
                          : 0;
  report.outbox_pending_at_exit = rsu_.outbox().pending();
  return report;
}

void RsuEmulator::pump(const Deadline& deadline, EmulatorReport& report) {
  while (rsu_.outbox().pending() > 0 && !deadline.expired_now()) {
    const std::uint64_t now = EventLoop::now_ms();
    auto due = rsu_.outbox().due(now);
    if (due.empty()) {
      // Nothing due yet: sleep to the earliest next_attempt_at (bounded).
      std::uint64_t wake = now + 50;
      for (const auto& e : rsu_.outbox().entries()) {
        wake = std::min(wake, e.next_attempt_at);
      }
      const std::uint64_t nap = wake > now ? wake - now : 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(nap));
      continue;
    }
    // One entry per iteration: acknowledge() invalidates Entry pointers,
    // so never hold `due` across an outcome.
    UploadOutbox::Entry* entry = due.front();
    const std::uint64_t location = entry->record.location;
    const std::uint64_t period = entry->record.period;
    if (Status s = connection_.ensure_connected(deadline); !s.is_ok()) {
      ++report.channel_errors;
      UploadOutbox::schedule_retry(*entry, EventLoop::now_ms(),
                                   options_.backoff_base_ms,
                                   options_.backoff_cap_ms, rng_);
      continue;
    }
    auto reply = uplink_.deliver(
        entry->record, entry->trace,
        Deadline::after(
            std::chrono::milliseconds(options_.deliver_timeout_ms)));
    if (!reply) {
      // Unknown outcome: the ack may be lost, the ingest may have landed.
      // Retry unconditionally - the server dedupes.
      ++report.channel_errors;
      UploadOutbox::schedule_retry(*entry, EventLoop::now_ms(),
                                   options_.backoff_base_ms,
                                   options_.backoff_cap_ms, rng_);
      connection_.sever();  // the stream may hold a torn frame
      continue;
    }
    if (reply->acked) {
      ++report.uploads_acked;
      (void)rsu_.handle_upload_ack(UploadAck{location, period});
    } else if (reply->nack.retryable) {
      ++report.nacks_retryable;
      UploadOutbox::schedule_retry(*entry, EventLoop::now_ms(),
                                   options_.backoff_base_ms,
                                   options_.backoff_cap_ms, rng_);
    } else {
      ++report.nacks_fatal;
      (void)rsu_.outbox().acknowledge(location, period);
    }
  }
}

}  // namespace ptm::transport
