// uplink.hpp - one record-upload round trip over a supervised connection.
//
// Both socket clients (the RSU emulator's outbox pump and loadgen's replay
// workers) speak the same two-message exchange with ptmd: send a V2I
// RecordUpload frame, then wait for the matching UploadAck (ingested -
// retire the record) or UploadNack (retryable: re-arm backoff and keep the
// record; fatal: drop it, retrying can never succeed).  UplinkClient is
// that exchange, factored out so the retry *policies* stay with the
// callers - the emulator books retries on its durable outbox, loadgen on
// an in-memory work queue - while the wire conversation lives here once.
#pragma once

#include <cstdint>

#include "common/deadline.hpp"
#include "common/status.hpp"
#include "core/traffic_record.hpp"
#include "net/mac.hpp"
#include "obs/trace.hpp"
#include "transport/connection.hpp"
#include "transport/wire.hpp"

namespace ptm::transport {

/// Terminal outcome of one delivery attempt (channel/deadline failures
/// surface as the Result's Status instead).
struct UplinkReply {
  bool acked = false;      ///< the server ingested (or deduped) the record
  UploadNack nack;         ///< valid when !acked
};

class UplinkClient {
 public:
  /// Borrows `connection` (caller keeps ownership and decides when to
  /// dial/redial).  `src` identifies this uplink in the V2I frames.
  UplinkClient(SupervisedConnection& connection, MacAddress src,
               MacAddress server) noexcept
      : connection_(connection), src_(src), server_(server) {}

  /// Sends `record` and waits for the server's verdict on exactly this
  /// (location, period).  Unrelated inbound messages (acks for earlier
  /// uploads after a reconnect, stats responses) are skipped; heartbeats
  /// are answered inside receive().  kChannelError / kDeadlineExceeded
  /// mean "unknown outcome": the record MUST be retried - the server
  /// dedupes re-deliveries, losing one is permanent.
  [[nodiscard]] Result<UplinkReply> deliver(const TrafficRecord& record,
                                            const TraceContext& trace,
                                            const Deadline& deadline);

 private:
  SupervisedConnection& connection_;
  MacAddress src_;
  MacAddress server_;
};

}  // namespace ptm::transport
