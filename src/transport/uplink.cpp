#include "transport/uplink.hpp"

#include "net/message.hpp"

namespace ptm::transport {

Result<UplinkReply> UplinkClient::deliver(const TrafficRecord& record,
                                          const TraceContext& trace,
                                          const Deadline& deadline) {
  Frame upload;
  upload.src = src_;
  upload.dst = server_;
  upload.body = RecordUpload{record};
  upload.trace = trace;
  if (Status s = connection_.send(upload); !s.is_ok()) return s;

  for (;;) {
    auto message = connection_.receive(deadline);
    if (!message) return message.status();
    if (const auto* nack = std::get_if<UploadNack>(&*message)) {
      if (nack->location != record.location || nack->period != record.period) {
        continue;  // verdict for an earlier in-flight upload
      }
      UplinkReply reply;
      reply.nack = *nack;
      return reply;
    }
    if (const auto* frame = std::get_if<Frame>(&*message)) {
      const auto* ack = std::get_if<UploadAck>(&frame->body);
      if (ack != nullptr && ack->location == record.location &&
          ack->period == record.period) {
        UplinkReply reply;
        reply.acked = true;
        return reply;
      }
    }
    // Anything else (stale acks, stats) is not this record's verdict.
  }
}

}  // namespace ptm::transport
