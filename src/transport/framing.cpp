#include "transport/framing.hpp"

#include <cstdlib>

namespace ptm::transport {

std::vector<std::uint8_t> frame_payload(
    std::span<const std::uint8_t> payload) {
  // A payload above the decoder bound would be rejected by every receiver,
  // and one above 4 GiB would silently truncate the u32 prefix and poison
  // the peer's stream.  No real message comes within two orders of
  // magnitude of the bound, so crossing it is a programming error, not an
  // I/O condition - fail loudly at the encode site (NDEBUG-proof, like the
  // rsa.cpp padding check).
  if (payload.size() > StreamDecoder::kMaxFrameBytes) std::abort();
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void StreamDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return;
  // Reclaim the consumed prefix before growing, so the buffer stays
  // O(one partial frame) instead of O(connection lifetime).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<std::optional<std::vector<std::uint8_t>>> StreamDecoder::next() {
  if (poisoned_) {
    return Status{ErrorCode::kParseError,
                  "stream poisoned by an earlier framing violation"};
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::optional<std::vector<std::uint8_t>>{};
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {  // explicit little-endian, like serialize.hpp
    len |= static_cast<std::uint32_t>(buffer_[consumed_ + i]) << (8 * i);
  }
  if (len == 0 || len > max_frame_bytes_) {
    poisoned_ = true;
    return Status{ErrorCode::kParseError,
                  len == 0 ? "zero-length frame on stream"
                           : "frame length exceeds the transport bound"};
  }
  if (available - 4 < len) return std::optional<std::vector<std::uint8_t>>{};
  std::vector<std::uint8_t> payload(
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4),
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4 + len));
  consumed_ += 4 + static_cast<std::size_t>(len);
  ++frames_decoded_;
  return std::optional<std::vector<std::uint8_t>>{std::move(payload)};
}

}  // namespace ptm::transport
