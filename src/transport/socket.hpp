// socket.hpp - RAII stream sockets (unix-domain and TCP) for the
// out-of-process transport.
//
// Everything here is non-blocking: reads and writes return kChannelError
// only on hard failures, report would-block as a distinct soft outcome,
// and let the caller decide how to wait (the server parks fds on an epoll
// loop, the supervised client polls with explicit deadlines).  Endpoints
// are written as strings so every tool shares one flag syntax:
//
//   unix:/path/to/ptmd.sock   - unix-domain stream socket
//   tcp:host:port             - TCP (numeric host; no resolver dependency)
//   host:port                 - shorthand for tcp:
//
// Unix sockets are the default in tests and CI (no port allocation races,
// work in sandboxes); TCP is what a real RSU backhaul would use.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/status.hpp"

namespace ptm::transport {

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: filesystem path
  std::string host;  ///< kTcp: numeric IPv4/IPv6 address
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Parses the endpoint syntax above.  InvalidArgument on anything else.
[[nodiscard]] Result<Endpoint> parse_endpoint(const std::string& text);

/// Outcome of one non-blocking I/O attempt.
struct IoResult {
  std::size_t bytes = 0;       ///< bytes moved (0 is legal)
  bool would_block = false;    ///< no progress now; wait for readiness
  bool peer_closed = false;    ///< orderly EOF from the peer (reads only)
};

/// A connected (or listening) stream socket.  Move-only; closes on
/// destruction.  All sockets are created non-blocking.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Binds and listens on `endpoint`.  For unix endpoints a stale socket
  /// file from a dead process is removed first.
  [[nodiscard]] static Result<Socket> listen(const Endpoint& endpoint,
                                             int backlog = 64);

  /// Connects to `endpoint`, waiting up to `timeout_ms` for the handshake
  /// (0 = no wait beyond the non-blocking attempt).  kChannelError on
  /// refusal or timeout.
  [[nodiscard]] static Result<Socket> connect(const Endpoint& endpoint,
                                              std::uint64_t timeout_ms);

  /// Accepts one pending connection; would_block when none is ready.
  /// (Returned via Result: the soft case is a Socket with valid() false.)
  [[nodiscard]] Result<Socket> accept();

  [[nodiscard]] Result<IoResult> read_some(std::span<std::uint8_t> buf);
  [[nodiscard]] Result<IoResult> write_some(
      std::span<const std::uint8_t> buf);

  /// Waits until the socket is readable (`want_write` false) or writable,
  /// up to `timeout_ms`.  Ok(true) = ready, Ok(false) = timed out.
  [[nodiscard]] Result<bool> wait(bool want_write, std::uint64_t timeout_ms);

  /// Half-closes the write side (the peer reads EOF after our last byte).
  void shutdown_write() noexcept;
  void close() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Releases ownership of the fd to the caller.
  [[nodiscard]] int release() noexcept;

 private:
  int fd_ = -1;
};

}  // namespace ptm::transport
