// event_loop.hpp - a small single-threaded epoll reactor for ptmd.
//
// The daemon serves many RSU connections from one thread: every socket is
// non-blocking and parked on this loop, which dispatches readiness
// callbacks, runs monotonic-clock timers (heartbeat sweeps, half-open
// detection), and accepts cross-thread wakeups through an eventfd so the
// ingest workers can hand results back without touching any fd state
// themselves.  Level-triggered epoll on purpose: pausing a connection
// under backpressure is then just "drop EPOLLIN from its interest set" -
// the data sits in the kernel buffer (and eventually in the peer's send
// queue, which is what makes backpressure propagate) until the connection
// is resumed.
//
// Threading contract: add/modify/remove/add_timer/run/stop belong to the
// loop thread; only post() may be called from other threads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "common/status.hpp"

namespace ptm::transport {

class EventLoop {
 public:
  /// Bitmask for fd interest (mapped onto EPOLLIN/EPOLLOUT internally).
  enum : std::uint32_t { kReadable = 1, kWritable = 2 };

  using IoCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] bool valid() const noexcept { return epoll_fd_ >= 0; }

  /// Registers `fd` with the given interest.  The callback receives the
  /// ready events (kReadable/kWritable mask; errors/hangups surface as
  /// kReadable so the owner's read discovers the EOF/error).
  [[nodiscard]] Status add(int fd, std::uint32_t interest, IoCallback cb);
  [[nodiscard]] Status modify(int fd, std::uint32_t interest);
  void remove(int fd);

  /// One-shot timer `delay_ms` from now; returns an id usable with
  /// cancel_timer.  Timers fire on the loop thread between poll batches.
  std::uint64_t add_timer(std::uint64_t delay_ms, TimerCallback cb);
  void cancel_timer(std::uint64_t id);

  /// Thread-safe: enqueues `fn` to run on the loop thread and wakes it.
  void post(std::function<void()> fn);

  /// Runs until stop() is called (from a callback or via post()).
  void run();
  void stop() noexcept { stopped_ = true; }

  /// Monotonic milliseconds used by the timer queue (exposed so owners
  /// can schedule relative work consistently).
  [[nodiscard]] static std::uint64_t now_ms() noexcept;

 private:
  struct Timer {
    std::uint64_t due_ms;
    std::uint64_t id;
    bool operator>(const Timer& other) const noexcept {
      return due_ms != other.due_ms ? due_ms > other.due_ms : id > other.id;
    }
  };

  void drain_posted();
  void fire_due_timers();
  [[nodiscard]] int next_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd for cross-thread post()
  bool stopped_ = false;
  std::map<int, IoCallback> io_callbacks_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::map<std::uint64_t, TimerCallback> timer_callbacks_;
  std::uint64_t next_timer_id_ = 1;
  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace ptm::transport
