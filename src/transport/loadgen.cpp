#include "transport/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/random.hpp"
#include "core/traffic_record.hpp"
#include "net/mac.hpp"
#include "obs/trace.hpp"
#include "simd/kernels.hpp"
#include "traffic/trip_table.hpp"
#include "traffic/workload.hpp"
#include "transport/uplink.hpp"

namespace ptm::transport {
namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shared counters the workers feed; folded into the report at the end.
struct SharedStats {
  std::atomic<std::uint64_t> acked{0};
  std::atomic<std::uint64_t> shed_events{0};
  std::atomic<std::uint64_t> fatal_nacks{0};
  std::atomic<std::uint64_t> channel_errors{0};
  std::atomic<std::uint64_t> abandoned{0};
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> reconnects{0};
  LatencyRecorder deliver_latency;
};

constexpr MacAddress kServerMac{0x02ULL << 40 | 0x53525600ULL};

void json_kv(std::ostringstream& os, const char* key, double value,
             bool trailing_comma) {
  os << "\"" << key << "\": " << value << (trailing_comma ? ", " : "");
}

}  // namespace

double LoadgenReport::throughput_rps() const noexcept {
  if (elapsed_ns == 0) return 0.0;
  return static_cast<double>(acked) * 1e9 /
         static_cast<double>(elapsed_ns);
}

double LoadgenReport::shed_rate() const noexcept {
  if (attempts == 0) return 0.0;
  return static_cast<double>(shed_events) / static_cast<double>(attempts);
}

std::string LoadgenReport::to_bench_json(const std::string& rev) const {
  // Mirrors bench/bench_harness.cpp write_json so bench tooling can diff
  // loadgen documents alongside microbench ones.
  // Every interpolated string goes through json_escape: `rev` in
  // particular can carry a dirty-tree suffix with characters that would
  // otherwise break the document for bench_runner compare.
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"ptm-bench-v1\",\n"
     << "  \"rev\": \"" << json_escape(rev) << "\",\n"
     << "  \"host_isa\": \"" << json_escape(simd::host_isa()) << "\",\n"
     << "  \"kernel_variant\": \"" << json_escape(simd::active().name)
     << "\",\n"
     << "  \"results\": [\n";
  const auto result = [&](const char* name, double ns_per_op,
                          double items_per_op, bool last) {
    os << "    {\"bench\": \"loadgen\", \"name\": \"" << json_escape(name)
       << "\", ";
    json_kv(os, "ns_per_op", ns_per_op, true);
    json_kv(os, "bytes_per_op", 0.0, true);
    json_kv(os, "items_per_op", items_per_op, true);
    os << "\"label\": \"socket\", \"noisy\": true}" << (last ? "\n" : ",\n");
  };
  const double per_record =
      acked > 0 ? static_cast<double>(elapsed_ns) / static_cast<double>(acked)
                : 0.0;
  result("deliver-latency-p50",
         static_cast<double>(deliver_latency.percentile_ns(50.0)), 1.0,
         false);
  result("deliver-latency-p99",
         static_cast<double>(deliver_latency.percentile_ns(99.0)), 1.0,
         false);
  result("throughput", per_record, static_cast<double>(acked), true);
  os << "  ],\n  \"tables\": [\n"
     << "    {\"bench\": \"loadgen\", \"name\": \"summary\", "
     << "\"headers\": [\"metric\", \"value\"], \"rows\": [";
  const auto row = [&](const char* metric, double value, bool last) {
    std::ostringstream v;
    v << value;
    os << "[\"" << json_escape(metric) << "\", \"" << json_escape(v.str())
       << "\"]" << (last ? "" : ", ");
  };
  row("records_total", static_cast<double>(records_total), false);
  row("acked", static_cast<double>(acked), false);
  row("attempts", static_cast<double>(attempts), false);
  row("shed_events", static_cast<double>(shed_events), false);
  row("shed_rate", shed_rate(), false);
  row("fatal_nacks", static_cast<double>(fatal_nacks), false);
  row("channel_errors", static_cast<double>(channel_errors), false);
  row("abandoned", static_cast<double>(abandoned), false);
  row("reconnects", static_cast<double>(reconnects), false);
  row("throughput_rps", throughput_rps(), false);
  row("elapsed_ms", static_cast<double>(elapsed_ns) / 1e6, true);
  os << "]}\n  ]\n}\n";
  return os.str();
}

LoadGenerator::LoadGenerator(Endpoint server, LoadgenOptions options)
    : server_(std::move(server)), options_(options) {
  if (options_.connections == 0) options_.connections = 1;
  if (options_.locations == 0) options_.locations = 1;
  if (options_.periods == 0) options_.periods = 1;
  if (options_.volume_min == 0) options_.volume_min = 1;
  if (options_.volume_max < options_.volume_min) {
    options_.volume_max = options_.volume_min;
  }
}

Result<LoadgenReport> LoadGenerator::run() {
  // --- Workload synthesis: trip-table volumes -> per-period records. ---
  Xoshiro256 rng(options_.seed);
  const TripTable table = gravity_model_table(
      options_.locations, options_.locations * options_.volume_max / 2,
      options_.seed);
  std::vector<TrafficRecord> work;
  work.reserve(options_.locations * options_.periods);
  for (std::size_t z = 0; z < options_.locations; ++z) {
    const std::uint64_t volume =
        std::clamp(table.zone_volume(z), options_.volume_min,
                   options_.volume_max);
    const std::size_t m = plan_bitmap_size(static_cast<double>(volume),
                                           options_.load_factor);
    for (std::size_t p = 0; p < options_.periods; ++p) {
      TrafficRecord record;
      record.location = z + 1;  // location 0 is reserved-looking; avoid it
      record.period = p;
      record.bits = Bitmap(m);
      add_transient_traffic(record.bits, volume, rng);
      work.push_back(std::move(record));
    }
  }

  // --- Replay over `connections` workers. ---
  SharedStats stats;
  std::atomic<std::size_t> next_item{0};
  const std::uint64_t t0 = steady_now_ns();
  const Deadline cap =
      Deadline::after(std::chrono::milliseconds(options_.time_cap_ms));
  std::atomic<std::uint64_t> workers_ever_connected{0};

  auto worker = [&](std::size_t worker_index) {
    SupervisedConnection conn(server_, options_.tuning, nullptr,
                              options_.seed + 7919 * (worker_index + 1));
    if (options_.credentials.has_value()) {
      conn.set_credentials(options_.credentials);
    }
    UplinkClient uplink(
        conn,
        MacAddress{(0x02ULL << 40) | (0xB0ADULL << 16) | worker_index},
        kServerMac);
    Xoshiro256 backoff_rng(options_.seed ^ (worker_index + 1));
    bool connected_once = false;
    for (;;) {
      const std::size_t i = next_item.fetch_add(1);
      if (i >= work.size()) break;
      const TrafficRecord& record = work[i];
      const TraceContext trace =
          TraceContext::for_record(record.location, record.period);
      bool settled = false;
      for (std::uint32_t attempt = 0;
           attempt < options_.max_attempts && !cap.expired_now(); ++attempt) {
        if (Status s = conn.ensure_connected(cap); !s.is_ok()) break;
        connected_once = true;
        stats.attempts.fetch_add(1);
        const std::uint64_t sent = steady_now_ns();
        auto reply = uplink.deliver(
            record, trace,
            Deadline::after(
                std::chrono::milliseconds(options_.deliver_timeout_ms)));
        if (!reply) {
          stats.channel_errors.fetch_add(1);
          conn.sever();
        } else if (reply->acked) {
          stats.deliver_latency.record(steady_now_ns() - sent);
          stats.acked.fetch_add(1);
          settled = true;
          break;
        } else if (!reply->nack.retryable) {
          stats.fatal_nacks.fetch_add(1);
          settled = true;
          break;
        } else {
          stats.shed_events.fetch_add(1);
        }
        // Shed or unknown outcome: back off before the retry (clamped
        // jitterless ladder - worker seeds already de-synchronize).
        const std::uint32_t shift = std::min<std::uint32_t>(attempt, 16);
        std::uint64_t nap = options_.retry_backoff_base_ms << shift;
        nap += backoff_rng.below(options_.retry_backoff_base_ms + 1);
        nap = std::min(nap, options_.retry_backoff_cap_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(nap));
      }
      if (!settled) stats.abandoned.fetch_add(1);
    }
    stats.reconnects.fetch_add(
        conn.connections_opened() > 0 ? conn.connections_opened() - 1 : 0);
    if (connected_once) workers_ever_connected.fetch_add(1);
  };

  std::vector<std::thread> threads;
  threads.reserve(options_.connections);
  for (std::size_t w = 0; w < options_.connections; ++w) {
    threads.emplace_back(worker, w);
  }
  for (auto& t : threads) t.join();

  if (workers_ever_connected.load() == 0) {
    return Status{ErrorCode::kChannelError,
                  "no worker ever connected to " + server_.to_string()};
  }
  LoadgenReport report;
  report.records_total = work.size();
  report.acked = stats.acked.load();
  report.shed_events = stats.shed_events.load();
  report.fatal_nacks = stats.fatal_nacks.load();
  report.channel_errors = stats.channel_errors.load();
  report.abandoned = stats.abandoned.load();
  report.attempts = stats.attempts.load();
  report.reconnects = stats.reconnects.load();
  report.elapsed_ns = steady_now_ns() - t0;
  report.deliver_latency = stats.deliver_latency.snapshot();
  return report;
}

}  // namespace ptm::transport
