// framing.hpp - length-prefixed stream framing for transport messages.
//
// A TCP/unix stream has no message boundaries; the transport restores them
// with the simplest possible frame:
//
//   stream := frame*
//   frame  := u32 payload_length (little-endian) | payload
//
// where payload is one encoded WireMessage (wire.hpp).  The decoder is
// *incremental*: bytes arrive in whatever chunks the kernel hands back,
// so it buffers, peels complete frames, and keeps partial tails across
// feeds.  It is also *adversarial-input safe*: a length prefix above
// kMaxFrameBytes (a corrupt peer, or plain garbage hitting the port) is a
// fatal ParseError - the connection must be severed, because after a bad
// length there is no way to re-synchronize a length-prefixed stream.  The
// transport fuzz suite feeds this decoder garbage and truncated frames
// under ASan.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace ptm::transport {

/// Prepends the u32 length prefix to one message payload.  Aborts when the
/// payload exceeds StreamDecoder::kMaxFrameBytes: an oversize frame could
/// never be decoded by a peer, and past 4 GiB the prefix would silently
/// truncate - an encode-side framing violation is a programming error.
[[nodiscard]] std::vector<std::uint8_t> frame_payload(
    std::span<const std::uint8_t> payload);

class StreamDecoder {
 public:
  /// Hard upper bound on one frame's payload.  A period record for a
  /// million-vehicle location is ~2^21 bits = 256 KiB; 16 MiB leaves two
  /// orders of magnitude of headroom while making a garbage length prefix
  /// (up to 4 GiB) unmistakable.
  static constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

  explicit StreamDecoder(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends received bytes to the internal buffer.  After poisoned()
  /// turns true, further feeds are ignored (the connection is dead).
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete frame payload: nullopt when the buffer
  /// holds only a partial frame (read more), ParseError when the stream is
  /// poisoned by an oversize or zero-length prefix (sever the connection).
  [[nodiscard]] Result<std::optional<std::vector<std::uint8_t>>> next();

  /// True once an unrecoverable framing violation was seen.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

  /// Bytes currently buffered (partial frame + unparsed tail).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

  /// Complete frames successfully extracted so far.
  [[nodiscard]] std::uint64_t frames_decoded() const noexcept {
    return frames_decoded_;
  }

 private:
  std::uint32_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  bool poisoned_ = false;
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace ptm::transport
