#include "transport/auth.hpp"

#include "common/serialize.hpp"
#include "hash/sha256.hpp"

namespace ptm::transport {

std::vector<std::uint8_t> auth_transcript(
    std::span<const std::uint8_t> nonce,
    std::span<const std::uint8_t> certificate_bytes) {
  const Sha256Digest cert_hash = Sha256::digest(certificate_bytes);
  ByteWriter w;
  w.str("ptm-auth-v1");
  w.bytes(nonce);
  w.raw(cert_hash);
  return w.take();
}

}  // namespace ptm::transport
