// emulator.hpp - a whole RSU process in a box, talking to ptmd over a
// real socket.
//
// The RsuEmulator runs the existing Rsu node - journal, outbox, period
// lifecycle and all - but replaces the in-process delivery pump with a
// SupervisedConnection + UplinkClient: periods close into the durable
// outbox, and the pump retransmits due entries over the wire until the
// server's UploadAck retires them.  The retry policy is byte-for-byte the
// outbox's own (schedule_retry: exponential backoff, clamp-after-jitter),
// just driven by the wall clock in milliseconds instead of simulation
// steps.
//
// Outcome handling mirrors the in-process deployment:
//   * UploadAck           -> Rsu::handle_upload_ack (durable outbox drop)
//   * retryable UploadNack-> schedule_retry, entry stays
//   * fatal UploadNack    -> entry dropped (retrying can never succeed)
//   * channel error       -> UNKNOWN outcome: schedule_retry and redial -
//                            the server's idempotent ingest absorbs the
//                            re-delivery if the lost ack had landed
//
// That last arm is the whole exactly-once story: at-least-once retries on
// this side, dedup on the server side.  The chaos suite kills ptmd mid-
// pump and asserts the archive ends up with every record exactly once.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/random.hpp"
#include "common/status.hpp"
#include "nodes/rsu.hpp"
#include "obs/telemetry.hpp"
#include "transport/auth.hpp"
#include "transport/connection.hpp"
#include "transport/socket.hpp"
#include "transport/uplink.hpp"

namespace ptm::transport {

struct EmulatorOptions {
  std::uint64_t location = 1;
  std::size_t periods = 4;                ///< measurement periods to run
  std::uint64_t encodes_per_period = 64;  ///< synthetic vehicle contacts
  std::size_t initial_bitmap_size = 256;
  double load_factor = 2.0;               ///< Eq. 2 planning for next m
  std::string journal_path;               ///< empty = volatile RSU
  std::string outbox_path;                ///< paired with journal_path
  std::uint64_t backoff_base_ms = 20;     ///< outbox retry backoff
  std::uint64_t backoff_cap_ms = 1000;
  std::uint64_t deliver_timeout_ms = 2000;  ///< per upload round trip
  std::uint64_t drain_timeout_ms = 30000;   ///< cap on emptying the outbox
  ConnectionTuning tuning{};
  std::uint64_t seed = 1;
  std::size_t modulus_bits = 512;  ///< simulation-grade keys (rsa.hpp
                                   ///< needs >= 344 bits for padding)
  /// Wire credentials for an authenticated ptmd (--require-auth).  The
  /// RSU identity reuses them (key + certificate) instead of minting a
  /// throwaway CA, so the cert the daemon verifies is the cert the node
  /// carries.  Absent = unauthenticated transport, self-minted identity.
  std::optional<AuthCredentials> credentials;
};

struct EmulatorReport {
  std::uint64_t periods_closed = 0;
  std::uint64_t uploads_acked = 0;
  std::uint64_t nacks_retryable = 0;  ///< sheds absorbed by backoff
  std::uint64_t nacks_fatal = 0;
  std::uint64_t channel_errors = 0;   ///< unknown outcomes, retried
  std::uint64_t reconnects = 0;
  std::uint64_t outbox_pending_at_exit = 0;  ///< 0 = fully drained
};

class RsuEmulator {
 public:
  /// Without `options.credentials`, self-certifies: mints a CA + RSU
  /// keypair from `options.seed` (exercising transport robustness, not
  /// the PKI).  With credentials, the supervised connection handshakes
  /// on every connect and reconnect.
  RsuEmulator(Endpoint server, EmulatorOptions options,
              TelemetryRegistry* registry = nullptr);

  /// Runs every period (contacts -> stage -> pump), then drains the
  /// outbox until empty or drain_timeout_ms.  A non-empty outbox at exit
  /// is NOT an error (the journal/outbox carry it into the next run) -
  /// check `outbox_pending_at_exit`.
  [[nodiscard]] Result<EmulatorReport> run();

  [[nodiscard]] Rsu& rsu() noexcept { return rsu_; }
  [[nodiscard]] SupervisedConnection& connection() noexcept {
    return connection_;
  }

 private:
  /// Delivers due outbox entries until the outbox is empty or `deadline`
  /// expires; `final_drain` keeps pumping through scheduled backoff gaps.
  void pump(const Deadline& deadline, EmulatorReport& report);

  EmulatorOptions options_;
  Xoshiro256 rng_;
  Rsu rsu_;
  SupervisedConnection connection_;
  UplinkClient uplink_;
};

}  // namespace ptm::transport
