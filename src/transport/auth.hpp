// auth.hpp - the PKI challenge-response handshake for the ptmd wire
// (paper §II-B applied to the RSU -> collector uplink).
//
// PR 7's transport trusted the socket: any process that could reach the
// daemon could inject records into the archive.  The handshake closes
// that hole with the certificate chain the crypto layer already
// reproduces for beacons:
//
//   client                                server (ptmd)
//   ------                                -------------
//   auth-hello(certificate bytes)  ---->  decode; verify window + CA sig
//                                  <----  auth-challenge(random nonce)
//   sign transcript with own key   ---->  auth-proof(signature)
//                                  <----  auth-ok | auth-reject(code)
//
// Both sides sign/verify the same *transcript* - a domain tag, the
// server's nonce, and the SHA-256 of the exact certificate bytes from
// the hello.  Binding the certificate hash into the signed material
// means a proof can never be replayed under a different identity, and
// the fresh nonce means it can never be replayed across connections.
//
// Possession of the private key is what the proof demonstrates; the CA
// signature on the certificate is what ties that key to an identity the
// operator trusts.  Reject codes distinguish the failure classes
// (wire.hpp AuthRejectCode) because they demand different responses:
// an expired window is a clock/reissue problem, an untrusted certificate
// is a rogue peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/certificate.hpp"
#include "crypto/rsa.hpp"

namespace ptm::transport {

/// Bytes of server challenge nonce (the wire codec accepts 1..256 from
/// peers; we always mint this much).
inline constexpr std::size_t kAuthNonceBytes = 32;

/// What a client needs to authenticate: its keypair and a certificate
/// issued for `keys.pub` by the CA the server trusts.
struct AuthCredentials {
  RsaKeyPair keys;
  Certificate certificate;
};

/// The channel-binding transcript signed by auth-proof:
/// "ptm-auth-v1" ‖ nonce ‖ SHA-256(certificate bytes as sent in hello).
[[nodiscard]] std::vector<std::uint8_t> auth_transcript(
    std::span<const std::uint8_t> nonce,
    std::span<const std::uint8_t> certificate_bytes);

}  // namespace ptm::transport
