#include "query/estimate_summary.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace ptm {
namespace {

/// Whang's bound, defined only where the theory is (n > 0, m >= 2).
std::optional<double> stderr_if_defined(double n, double m) {
  if (n <= 0.0 || m < 2.0) return std::nullopt;
  return linear_counting_relative_stderr(n, m);
}

/// Densest join = lowest zero fraction among the measured joins.
double fill_from_zero_fractions(std::initializer_list<double> zeros) {
  double min_zero = 1.0;
  for (double z : zeros) min_zero = std::min(min_zero, z);
  return 1.0 - min_zero;
}

}  // namespace

EstimateSummary summarize_estimate(const CardinalityEstimate& e,
                                   std::size_t m) {
  EstimateSummary s;
  s.kind = "point volume";
  s.value = e.value;
  s.outcome = e.outcome;
  s.m = m;
  s.fill = 1.0 - e.fraction_zeros;
  s.relative_stderr = stderr_if_defined(e.value, static_cast<double>(m));
  return s;
}

EstimateSummary summarize_estimate(const PointPersistentEstimate& e) {
  EstimateSummary s;
  s.kind = "point persistent";
  s.value = e.n_star;
  s.outcome = e.outcome;
  s.m = e.m;
  s.fill = fill_from_zero_fractions({e.v_a0, e.v_b0});
  return s;
}

EstimateSummary summarize_estimate(const PointToPointPersistentEstimate& e) {
  EstimateSummary s;
  s.kind = "p2p persistent";
  s.value = e.n_double_prime;
  s.outcome = e.outcome;
  s.m = e.m_prime;
  s.fill = fill_from_zero_fractions({e.v0, e.v0_prime});
  return s;
}

EstimateSummary summarize_estimate(const CorridorPersistentEstimate& e) {
  EstimateSummary s;
  s.kind = "corridor persistent";
  s.value = e.n_corridor;
  s.outcome = e.outcome;
  s.m = e.m.empty() ? 0 : e.m.back();
  double min_zero = 1.0;
  for (double z : e.v0) min_zero = std::min(min_zero, z);
  s.fill = 1.0 - min_zero;
  return s;
}

EstimateSummary summarize_estimate(const KwayPersistentEstimate& e) {
  EstimateSummary s;
  s.kind = "k-way persistent";
  s.value = e.n_star;
  s.outcome = e.outcome;
  s.m = e.m;
  double min_zero = 1.0;
  for (double z : e.group_v0) min_zero = std::min(min_zero, z);
  s.fill = 1.0 - min_zero;
  return s;
}

std::string format_estimate_summary(const EstimateSummary& s) {
  std::ostringstream out;
  out << TableWriter::fmt(s.value, 1) << " ("
      << estimate_outcome_name(s.outcome) << ", m = " << s.m << ", fill "
      << TableWriter::fmt(s.fill * 100.0, 1) << "%";
  if (s.relative_stderr) {
    out << ", ±" << TableWriter::fmt(*s.relative_stderr * 100.0, 2)
        << "% expected";
  }
  out << ")";
  return out.str();
}

}  // namespace ptm
