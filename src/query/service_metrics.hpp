// service_metrics.hpp - observability for the sharded QueryService.
//
// The instruments themselves (counters, gauges, the log2 latency
// histogram) live in obs/telemetry.hpp and are registered on the
// service's TelemetryRegistry; this header keeps the *snapshot view* that
// existing callers consume.  `ServiceMetrics` is a thin coherent copy of
// the registry's query-service instruments (`ptmctl stats` prints it);
// `LatencyRecorder` / `LatencyHistogramSnapshot` are re-exported from
// obs/ for source compatibility.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitmap_pool.hpp"
#include "obs/telemetry.hpp"

namespace ptm {

/// Per-shard slice of a ServiceMetrics snapshot.
struct ShardMetrics {
  std::size_t records = 0;           ///< live records in the shard
  std::uint64_t ingest_ok = 0;       ///< accepted uploads
  std::uint64_t ingest_duplicate = 0;///< idempotent re-deliveries (Ok, no-op)
  std::uint64_t ingest_rejected = 0; ///< conflicting + invalid records
  std::uint64_t queries = 0;         ///< queries that touched this shard
  std::uint64_t shed = 0;            ///< queries refused with ResourceExhausted
  std::uint64_t deadline_exceeded = 0;  ///< queries lost to their Deadline
  std::uint64_t archive_append = 0;  ///< records persisted before their ack
};

/// Point-in-time view of a QueryService's counters ("/stats" payload).
struct ServiceMetrics {
  std::vector<ShardMetrics> shards;
  std::size_t records_total = 0;
  std::uint64_t ingest_ok_total = 0;
  std::uint64_t ingest_duplicate_total = 0;
  std::uint64_t ingest_rejected_total = 0;
  std::uint64_t queries_total = 0;
  std::uint64_t queries_failed = 0;  ///< completed with a non-ok Status
  std::uint64_t shed_total = 0;      ///< load-shed rejections (never executed)
  std::uint64_t deadline_exceeded_total = 0;  ///< Deadline losses (all stages)
  std::uint64_t archive_append_total = 0;  ///< write-ahead archive appends
  std::size_t in_flight = 0;       ///< queries executing at snapshot time
  std::size_t peak_in_flight = 0;  ///< high-water concurrency mark
  LatencyHistogramSnapshot latency;
  /// Dispatched SIMD kernel variant ("scalar", "popcnt", "avx2", ...) -
  /// which inner loops every estimator in this process is running.
  std::string kernel_variant;
  /// Scratch-bitmap arena counters for the snapshotting thread (pools are
  /// thread-local; worker arenas behave alike under a steady query mix).
  BitmapPool::Stats pool;

  /// Multi-line human-readable rendering:
  ///
  ///   records: 128 across 16 shards (min 6 / max 10 per shard)
  ///   ingest:  128 ok, 3 rejected
  ///   queries: 640 total, 2 failed
  ///   overload: 5 shed, 1 deadline-exceeded, 3 in flight (peak 8)
  ///   durability: 128 archive appends
  ///   latency: p50 <= 16.4us, p90 <= 32.8us, p99 <= 65.5us (640 samples)
  [[nodiscard]] std::string to_string() const;
};

}  // namespace ptm
