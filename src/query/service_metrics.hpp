// service_metrics.hpp - observability for the sharded QueryService.
//
// The service records three things about itself: how many records each
// shard holds and has accepted/rejected, how many queries ran (and how
// many failed), and the end-to-end latency distribution of those queries.
// Counters are lock-free atomics so the hot paths never serialize on a
// metrics mutex; `ServiceMetrics` is the coherent snapshot handed to
// callers (`ptmctl stats` prints it).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ptm {

/// Snapshot of a log2-bucketed latency histogram.  Bucket b counts query
/// latencies in [2^b, 2^(b+1)) nanoseconds (bucket 0 also absorbs 0 ns);
/// the last bucket absorbs everything larger.
struct LatencyHistogramSnapshot {
  static constexpr std::size_t kBuckets = 40;  ///< covers up to ~9 minutes

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;

  /// Upper-bound estimate of the p-th percentile (0 <= p <= 100) in
  /// nanoseconds: the upper edge of the bucket containing that rank.
  /// Returns 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const noexcept;
};

/// Concurrent latency recorder backing the snapshot above.  `record` is
/// wait-free (one relaxed fetch_add); snapshots are not linearizable with
/// respect to concurrent records, which is fine for monitoring.
class LatencyRecorder {
 public:
  void record(std::uint64_t nanos) noexcept;
  [[nodiscard]] LatencyHistogramSnapshot snapshot() const noexcept;
  /// Zeroes every bucket (crash simulation: volatile state does not
  /// survive a restart).  Not linearizable w.r.t. concurrent record().
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, LatencyHistogramSnapshot::kBuckets>
      buckets_{};
};

/// Per-shard slice of a ServiceMetrics snapshot.
struct ShardMetrics {
  std::size_t records = 0;           ///< live records in the shard
  std::uint64_t ingest_ok = 0;       ///< accepted uploads
  std::uint64_t ingest_duplicate = 0;///< idempotent re-deliveries (Ok, no-op)
  std::uint64_t ingest_rejected = 0; ///< conflicting + invalid records
  std::uint64_t queries = 0;         ///< queries that touched this shard
  std::uint64_t shed = 0;            ///< queries refused with ResourceExhausted
  std::uint64_t deadline_exceeded = 0;  ///< queries lost to their Deadline
  std::uint64_t archive_append = 0;  ///< records persisted before their ack
};

/// Point-in-time view of a QueryService's counters ("/stats" payload).
struct ServiceMetrics {
  std::vector<ShardMetrics> shards;
  std::size_t records_total = 0;
  std::uint64_t ingest_ok_total = 0;
  std::uint64_t ingest_duplicate_total = 0;
  std::uint64_t ingest_rejected_total = 0;
  std::uint64_t queries_total = 0;
  std::uint64_t queries_failed = 0;  ///< completed with a non-ok Status
  std::uint64_t shed_total = 0;      ///< load-shed rejections (never executed)
  std::uint64_t deadline_exceeded_total = 0;  ///< Deadline losses (all stages)
  std::uint64_t archive_append_total = 0;  ///< write-ahead archive appends
  std::size_t in_flight = 0;       ///< queries executing at snapshot time
  std::size_t peak_in_flight = 0;  ///< high-water concurrency mark
  LatencyHistogramSnapshot latency;

  /// Multi-line human-readable rendering:
  ///
  ///   records: 128 across 16 shards (min 6 / max 10 per shard)
  ///   ingest:  128 ok, 3 rejected
  ///   queries: 640 total, 2 failed
  ///   overload: 5 shed, 1 deadline-exceeded, 3 in flight (peak 8)
  ///   durability: 128 archive appends
  ///   latency: p50 <= 16.4us, p90 <= 32.8us, p99 <= 65.5us (640 samples)
  [[nodiscard]] std::string to_string() const;
};

}  // namespace ptm
