// admission.hpp - bounded-concurrency gate in front of the query engine.
//
// A planner query storm can put more work in flight than the machine has
// cores to run it; past that point every extra admitted query only adds
// queueing delay until *all* of them miss their deadlines (congestion
// collapse).  The controller enforces a hard in-flight bound instead:
//
//   * up to `max_in_flight` queries execute concurrently;
//   * once saturated, up to `max_queue` callers wait for a slot (bounded,
//     so the queue cannot grow without limit either);
//   * beyond that, callers are shed immediately with
//     ErrorCode::kResourceExhausted - a fast, honest "retry later" that
//     costs the server nothing;
//   * a queued caller whose Deadline expires before a slot frees gives up
//     with kDeadlineExceeded rather than executing stale work.
//
// The default (max_in_flight == 0) is a no-op gate that only maintains the
// in-flight gauge and high-water mark with relaxed atomics - the unguarded
// hot path takes no mutex.
//
// The gauges are TelemetryRegistry instruments (`queries_in_flight`,
// `queries_peak_in_flight`, `admission_queued`), registered on the
// registry passed at construction so they appear in the same snapshot as
// the query-service counters; a controller constructed without a registry
// owns a private one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>

#include "common/deadline.hpp"
#include "common/status.hpp"
#include "obs/telemetry.hpp"

namespace ptm {

struct AdmissionOptions {
  /// Concurrent queries allowed to execute (0 = unlimited, gate disabled).
  std::size_t max_in_flight = 0;
  /// Callers allowed to wait for a slot once saturated; arrivals beyond
  /// in-flight + queue are shed with kResourceExhausted.
  std::size_t max_queue = 0;
};

class AdmissionController {
 public:
  /// `registry` receives the controller's gauges; nullptr means "own a
  /// private registry" (standalone construction in tests/tools).
  explicit AdmissionController(AdmissionOptions options = {},
                               TelemetryRegistry* registry = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Takes one execution slot, blocking in the bounded queue while
  /// saturated.  Every Ok return must be paired with one release().
  /// Failure modes: kResourceExhausted (shed - bound and queue both full),
  /// kDeadlineExceeded (`deadline` passed before a slot freed).
  [[nodiscard]] Status admit(const Deadline& deadline = Deadline());

  /// Non-blocking admit for callers that must never park a thread (the
  /// ptmd event loop pauses the connection instead of waiting).  Takes a
  /// slot when one is free; otherwise fails immediately with the same
  /// precedence as admit(): kResourceExhausted when the in-flight bound is
  /// saturated (shedding wins over an expired deadline - the caller's
  /// retry signal is the more actionable error), else kDeadlineExceeded
  /// when `deadline` has already passed.  Never queues.
  [[nodiscard]] Status try_admit(const Deadline& deadline = Deadline());

  /// Returns the slot taken by a successful admit() / try_admit().
  void release() noexcept;

  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return options_;
  }

  /// Currently executing queries (monitoring gauge).
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return static_cast<std::size_t>(in_flight_.value());
  }
  /// Highest concurrency ever observed - with a bound configured this
  /// never exceeds max_in_flight (the overload tests pin that).
  [[nodiscard]] std::size_t peak_in_flight() const noexcept {
    return static_cast<std::size_t>(peak_in_flight_.value());
  }
  /// Callers currently waiting for a slot.
  [[nodiscard]] std::size_t queued() const noexcept {
    return static_cast<std::size_t>(queued_.value());
  }

 private:
  void note_admitted() noexcept;

  AdmissionOptions options_;
  std::unique_ptr<TelemetryRegistry> owned_registry_;  ///< standalone mode
  std::mutex mutex_;
  std::condition_variable slot_freed_;
  Gauge& in_flight_;       ///< registry instrument "queries_in_flight"
  Gauge& peak_in_flight_;  ///< registry instrument "queries_peak_in_flight"
  Gauge& queued_;          ///< registry instrument "admission_queued"
};

}  // namespace ptm
