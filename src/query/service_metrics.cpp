#include "query/service_metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace ptm {
namespace {

/// Pretty-prints a nanosecond quantity with a unit that keeps the mantissa
/// short (ns / us / ms / s).
std::string format_nanos(std::uint64_t nanos) {
  const double ns = static_cast<double>(nanos);
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  if (nanos < 1'000ULL) {
    out << nanos << "ns";
  } else if (nanos < 1'000'000ULL) {
    out << ns / 1e3 << "us";
  } else if (nanos < 1'000'000'000ULL) {
    out << ns / 1e6 << "ms";
  } else {
    out << ns / 1e9 << "s";
  }
  return out.str();
}

}  // namespace

std::uint64_t LatencyHistogramSnapshot::percentile_ns(double p) const noexcept {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile, 1-based (p = 100 -> rank = count).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= std::max<std::uint64_t>(rank, 1)) {
      // Upper edge of bucket b (the final bucket is effectively open-ended,
      // but its nominal edge still orders correctly).
      return (1ULL << (b + 1)) - 1;
    }
  }
  return ~0ULL;  // unreachable while count > 0
}

void LatencyRecorder::record(std::uint64_t nanos) noexcept {
  const std::size_t bucket = std::min<std::size_t>(
      nanos == 0 ? 0 : static_cast<std::size_t>(std::bit_width(nanos)) - 1,
      LatencyHistogramSnapshot::kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

LatencyHistogramSnapshot LatencyRecorder::snapshot() const noexcept {
  LatencyHistogramSnapshot snap;
  for (std::size_t b = 0; b < LatencyHistogramSnapshot::kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.buckets[b];
  }
  return snap;
}

std::string ServiceMetrics::to_string() const {
  std::size_t min_records = 0;
  std::size_t max_records = 0;
  std::size_t occupied = 0;
  for (const ShardMetrics& shard : shards) {
    if (shard.records > 0) ++occupied;
    max_records = std::max(max_records, shard.records);
  }
  if (!shards.empty()) {
    min_records = shards.front().records;
    for (const ShardMetrics& shard : shards) {
      min_records = std::min(min_records, shard.records);
    }
  }

  std::ostringstream out;
  out << "records: " << records_total << " across " << shards.size()
      << " shards (" << occupied << " occupied, min " << min_records
      << " / max " << max_records << " per shard)\n"
      << "ingest:  " << ingest_ok_total << " ok, " << ingest_duplicate_total
      << " duplicate, " << ingest_rejected_total << " rejected\n"
      << "queries: " << queries_total << " total, " << queries_failed
      << " failed\n"
      << "overload: " << shed_total << " shed, " << deadline_exceeded_total
      << " deadline-exceeded, " << in_flight << " in flight (peak "
      << peak_in_flight << ")\n"
      << "durability: " << archive_append_total << " archive appends\n"
      << "latency: p50 <= " << format_nanos(latency.percentile_ns(50))
      << ", p90 <= " << format_nanos(latency.percentile_ns(90))
      << ", p99 <= " << format_nanos(latency.percentile_ns(99)) << " ("
      << latency.count << " samples)\n";
  return out.str();
}

}  // namespace ptm
