#include "query/service_metrics.hpp"

#include <algorithm>
#include <sstream>

namespace ptm {
namespace {

/// Pretty-prints a nanosecond quantity with a unit that keeps the mantissa
/// short (ns / us / ms / s).
std::string format_nanos(std::uint64_t nanos) {
  const double ns = static_cast<double>(nanos);
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  if (nanos < 1'000ULL) {
    out << nanos << "ns";
  } else if (nanos < 1'000'000ULL) {
    out << ns / 1e3 << "us";
  } else if (nanos < 1'000'000'000ULL) {
    out << ns / 1e6 << "ms";
  } else {
    out << ns / 1e9 << "s";
  }
  return out.str();
}

}  // namespace

std::string ServiceMetrics::to_string() const {
  std::size_t min_records = 0;
  std::size_t max_records = 0;
  std::size_t occupied = 0;
  for (const ShardMetrics& shard : shards) {
    if (shard.records > 0) ++occupied;
    max_records = std::max(max_records, shard.records);
  }
  if (!shards.empty()) {
    min_records = shards.front().records;
    for (const ShardMetrics& shard : shards) {
      min_records = std::min(min_records, shard.records);
    }
  }

  std::ostringstream out;
  out << "records: " << records_total << " across " << shards.size()
      << " shards (" << occupied << " occupied, min " << min_records
      << " / max " << max_records << " per shard)\n"
      << "ingest:  " << ingest_ok_total << " ok, " << ingest_duplicate_total
      << " duplicate, " << ingest_rejected_total << " rejected\n"
      << "queries: " << queries_total << " total, " << queries_failed
      << " failed\n"
      << "overload: " << shed_total << " shed, " << deadline_exceeded_total
      << " deadline-exceeded, " << in_flight << " in flight (peak "
      << peak_in_flight << ")\n"
      << "durability: " << archive_append_total << " archive appends\n"
      << "kernels: " << (kernel_variant.empty() ? "?" : kernel_variant)
      << " dispatch; bitmap pool " << pool.reuses << " reuses / "
      << pool.allocations << " allocations (" << pool.retired << " parked)\n"
      << "latency: p50 <= " << format_nanos(latency.percentile_ns(50))
      << ", p90 <= " << format_nanos(latency.percentile_ns(90))
      << ", p99 <= " << format_nanos(latency.percentile_ns(99)) << " ("
      << latency.count << " samples)\n";
  return out.str();
}

}  // namespace ptm
