// query_service.hpp - sharded, thread-safe record store + query engine.
//
// The paper's central server (§II-A, §II-D) is a single logical store of
// per-(location, period) traffic records, but a deployment ingests from
// many RSUs while answering planner queries - a many-writer/many-reader
// workload.  QueryService shards the record map by hash(location) %
// n_shards, guarding each shard with a std::shared_mutex: ingests take one
// shard's exclusive lock, queries take shared locks, and queries for
// different locations proceed fully in parallel.  All records of one
// location land in one shard, so every single-location query locks exactly
// one shard; cross-location queries (p2p, corridor) lock shards one at a
// time and never hold two locks at once (no lock-order concerns).
//
// Queries arrive as the unified QueryRequest variant (query_types.hpp) and
// are answered through exactly one execution path, `run`; `run_batch` fans
// a span of requests across a worker pool (common/parallel.hpp).  All
// instrumentation lives on a per-service TelemetryRegistry (obs/): the
// per-shard ingest/query counters are `ingest_ok{shard=i}`-style families,
// the latency histogram is the `query_latency_ns` instrument, and the
// admission gauges register on the same registry - ServiceMetrics remains
// as the thin snapshot view over those instruments.  A SpanRecorder
// ("query-service") collects ingest / admission-wait / estimator-kernel
// spans; traced ingests (TraceContext from the RSU pipeline) stitch into
// the end-to-end record timeline.
//
// Two robustness layers wrap that core:
//
//   * Durability (attach_durability): with a RecordArchive attached, a
//     first-accept ingest appends the record to the archive *before* it
//     becomes queryable and before the Ok that lets the RSU retire it from
//     its outbox - the server-side mirror of the RSU's
//     outbox-before-journal-reset discipline.  After a crash,
//     restore_from_archive() rebuilds the shards and the Eq. 2 volume
//     history from the archive alone; re-deliveries of in-flight uploads
//     land as idempotent duplicates.
//
//   * Overload control (QueryServiceOptions::admission): `run` passes
//     every request through an AdmissionController - bounded concurrency,
//     bounded wait queue, load shedding with kResourceExhausted - and
//     honors the request's Deadline before, while queued for, and during
//     execution (kDeadlineExceeded).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "core/traffic_record.hpp"
#include "obs/trace.hpp"
#include "query/admission.hpp"
#include "query/query_types.hpp"
#include "query/service_metrics.hpp"

namespace ptm {

class RecordArchive;

struct QueryServiceOptions {
  double load_factor = 2.0;  ///< system-wide f of Eq. 2
  std::size_t s = 3;         ///< encoding representative count (p2p/corridor)
  std::size_t n_shards = 16; ///< record-store shards; >= 1
  AdmissionOptions admission{};  ///< query overload policy (default: no gate)
};

class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  [[nodiscard]] const QueryServiceOptions& options() const noexcept {
    return options_;
  }

  /// Ingests an uploaded record.  Idempotent: a re-delivery carrying bytes
  /// identical to the stored (location, period) record is Ok (counted as a
  /// duplicate, history untouched); a *conflicting* record for an occupied
  /// slot and structurally invalid records are rejected.  On first accept
  /// the record's estimated point volume updates the location's historical
  /// average used by plan_size (Eq. 2).  With an archive attached the
  /// first accept is written ahead to it; an archive failure fails the
  /// ingest with nothing admitted to memory (the RSU keeps the record and
  /// retries).  Thread-safe.
  ///
  /// With an active `trace` (a record's pipeline TraceContext), the ingest
  /// and its archive append are recorded as spans on the service's
  /// SpanRecorder; an inactive trace records nothing and costs nothing.
  ///
  /// `first_accept` (optional) reports whether this call newly admitted
  /// the record (true) or deduplicated / rejected it (false) - the
  /// replication layer forwards exactly the first accepts, so a
  /// re-delivered upload never turns into a duplicate repl-record.
  Status ingest(const TrafficRecord& record, const TraceContext& trace = {},
                bool* first_accept = nullptr);

  /// Attaches the write-ahead archive.  Every later first-accept ingest
  /// appends to `archive` before returning Ok; the caller keeps ownership
  /// and must keep `archive` alive until detachment (wipe_volatile_state)
  /// or destruction.  External synchronization on `archive` is not needed:
  /// the service serializes its own archive access.
  void attach_durability(RecordArchive& archive);

  /// True while an archive is attached.
  [[nodiscard]] bool durable() const;

  /// Rebuilds the in-memory store from the attached archive: every live
  /// archive record missing from memory is inserted and folded into the
  /// Eq. 2 volume history (in (location, period) order, without
  /// re-appending or counting as new ingest).  Returns the number of
  /// records restored.  FailedPrecondition without an attached archive.
  [[nodiscard]] Result<std::size_t> restore_from_archive();

  /// Crash simulation: drops every record, history entry, counter, and the
  /// latency histogram, and detaches the archive - the state a freshly
  /// restarted server process would have before re-attaching its archive.
  void wipe_volatile_state();

  [[nodiscard]] std::size_t record_count() const;
  [[nodiscard]] bool has_record(std::uint64_t location,
                                std::uint64_t period) const;
  /// Periods stored for `location`, ascending.  Empty when unknown.
  [[nodiscard]] std::vector<std::uint64_t> periods_at(
      std::uint64_t location) const;

  /// Resumable position for records_batch: a shard index plus the last
  /// (location, period) key returned inside it.  Key-based, so inserts
  /// between batches never invalidate it.
  struct RecordCursor {
    std::size_t shard = 0;
    bool in_shard = false;  ///< last_* marks a key already returned
    std::uint64_t last_location = 0;
    std::uint64_t last_period = 0;
  };

  /// At most `max_records` stored records following `cursor` (copies -
  /// safe to use after the service mutates), advancing the cursor past
  /// them.  Order is per-shard (location, period), shards visited in
  /// index order; empty return = iteration complete.  Each batch holds one
  /// shard's shared lock only while copying that batch, so a slow consumer
  /// (a replication snapshot draining to a congested follower) never
  /// stalls concurrent ingest.  Records inserted behind the cursor are
  /// missed by design - the replication stream's live forwarding covers
  /// them.
  [[nodiscard]] std::vector<TrafficRecord> records_batch(
      RecordCursor& cursor, std::size_t max_records) const;

  /// Copies of the stored records at `location` for the given periods
  /// (missing periods are skipped; empty `periods` = every stored period,
  /// ascending).  The coordinator's records-request handler.
  [[nodiscard]] std::vector<TrafficRecord> records_at_periods(
      std::uint64_t location, std::span<const std::uint64_t> periods) const;

  /// Eq. 2 with the location's historical average volume; `default_volume`
  /// for locations with no history yet.
  [[nodiscard]] std::size_t plan_size(std::uint64_t location,
                                      double default_volume = 1024.0) const;

  /// Executes one request of any shape - the single query execution path.
  /// Overload behavior: a request whose Deadline has already passed fails
  /// with kDeadlineExceeded without executing; otherwise the request takes
  /// an admission slot (possibly waiting, bounded by the deadline and the
  /// queue limit) and kResourceExhausted / kDeadlineExceeded from the gate
  /// are returned verbatim.  Either way the failure is counted against the
  /// primary location's shard (see query_primary_location).
  [[nodiscard]] QueryResponse run(const QueryRequest& request) const;

  /// Executes a batch concurrently across up to `threads` workers (0 =
  /// default_parallelism()).  Responses align index-for-index with the
  /// requests and are identical to issuing each through `run`.
  [[nodiscard]] std::vector<QueryResponse> run_batch(
      std::span<const QueryRequest> requests, std::size_t threads = 0) const;

  /// Point-in-time counters + latency histogram ("/stats").
  [[nodiscard]] ServiceMetrics metrics() const;

  /// The admission gate `run` passes every request through.  Exposed so
  /// overload tests (and monitoring) can occupy/inspect slots directly.
  [[nodiscard]] AdmissionController& admission() const noexcept {
    return admission_;
  }

  /// The registry every service instrument lives on (shard counter
  /// families, `query_latency_ns`, admission gauges).  Snapshot it and
  /// feed obs/export.hpp for Prometheus / JSON exposition.
  [[nodiscard]] TelemetryRegistry& telemetry() const noexcept {
    return telemetry_;
  }

  /// The service-side span buffer (ingest, admission-wait, estimator
  /// kernels).
  [[nodiscard]] SpanRecorder& spans() const noexcept { return spans_; }

 private:
  /// Minimal history accumulator (count + mean) planning Eq. 2 sizes.
  struct VolumeHistory {
    std::uint64_t count = 0;
    double mean = 0.0;
    void add(double x) noexcept {
      ++count;
      mean += (x - mean) / static_cast<double>(count);
    }
  };

  // Counters are registry instruments (`ingest_ok{shard=i}`, ...) wired up
  // at construction; the pointers are a cache of the registry handles so
  // the hot paths skip the registration lookup.
  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::pair<std::uint64_t, std::uint64_t>, TrafficRecord> records;
    std::map<std::uint64_t, VolumeHistory> history;
    Counter* ingest_ok = nullptr;
    Counter* ingest_duplicate = nullptr;
    Counter* ingest_rejected = nullptr;
    Counter* queries = nullptr;
    Counter* shed = nullptr;
    Counter* deadline_exceeded = nullptr;
    Counter* archive_append = nullptr;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t location) const noexcept;

  /// Pointers to the location's stored bitmaps for the given periods,
  /// gathered under the shard's shared lock.  NotFound if any period is
  /// missing.  The pointers stay valid after the lock is released: the
  /// store is insert-only (no record is ever erased or overwritten -
  /// conflicting ingests are rejected) and std::map nodes are
  /// address-stable, so handlers feed the estimators' zero-copy
  /// pointer-span overloads without copying a single record.
  [[nodiscard]] Result<std::vector<const Bitmap*>> collect_bitmaps(
      std::uint64_t location, std::span<const std::uint64_t> periods) const;

  /// Gap-tolerant variant: stored-record pointers for the *stored* subset
  /// of `periods` plus the coverage split.  Never fails on gaps; `bitmaps`
  /// aligns index-for-index with `coverage.present`.  Same lifetime
  /// argument as collect_bitmaps.
  struct PresentBitmaps {
    std::vector<const Bitmap*> bitmaps;
    CoverageReport coverage;
  };
  [[nodiscard]] PresentBitmaps collect_present(
      std::uint64_t location, std::span<const std::uint64_t> periods) const;

  [[nodiscard]] QueryResponse dispatch(const QueryRequest& request) const;
  [[nodiscard]] QueryResponse handle(const PointVolumeQuery& q) const;
  [[nodiscard]] QueryResponse handle(const PointPersistentQuery& q) const;
  [[nodiscard]] QueryResponse handle(const RecentPersistentQuery& q) const;
  [[nodiscard]] QueryResponse handle(const P2PPersistentQuery& q) const;
  [[nodiscard]] QueryResponse handle(const CorridorQuery& q) const;

  QueryServiceOptions options_;
  // Declared before every member that registers on it.
  mutable TelemetryRegistry telemetry_;
  mutable SpanRecorder spans_;
  std::unique_ptr<Shard[]> shards_;
  LatencyRecorder& latency_;  ///< registry instrument "query_latency_ns"
  Counter& queries_total_;    ///< registry instrument "queries_total"
  Counter& queries_failed_;   ///< registry instrument "queries_failed"
  mutable AdmissionController admission_;
  // Write-ahead archive (nullptr = volatile mode).  archive_mutex_
  // serializes all access; when an ingest holds both its shard lock and
  // this mutex the order is always shard -> archive, and shard locks never
  // nest, so the lock graph is acyclic.
  RecordArchive* archive_ = nullptr;
  mutable std::mutex archive_mutex_;
};

}  // namespace ptm
