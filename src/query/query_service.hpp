// query_service.hpp - sharded, thread-safe record store + query engine.
//
// The paper's central server (§II-A, §II-D) is a single logical store of
// per-(location, period) traffic records, but a deployment ingests from
// many RSUs while answering planner queries - a many-writer/many-reader
// workload.  QueryService shards the record map by hash(location) %
// n_shards, guarding each shard with a std::shared_mutex: ingests take one
// shard's exclusive lock, queries take shared locks, and queries for
// different locations proceed fully in parallel.  All records of one
// location land in one shard, so every single-location query locks exactly
// one shard; cross-location queries (p2p, corridor) lock shards one at a
// time and never hold two locks at once (no lock-order concerns).
//
// Queries arrive as the unified QueryRequest variant (query_types.hpp) and
// are answered through exactly one execution path, `run`; `run_batch` fans
// a span of requests across a worker pool (common/parallel.hpp).  The
// service keeps per-shard ingest/query counters and a global latency
// histogram, exposed as a ServiceMetrics snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "core/traffic_record.hpp"
#include "query/query_types.hpp"
#include "query/service_metrics.hpp"

namespace ptm {

struct QueryServiceOptions {
  double load_factor = 2.0;  ///< system-wide f of Eq. 2
  std::size_t s = 3;         ///< encoding representative count (p2p/corridor)
  std::size_t n_shards = 16; ///< record-store shards; >= 1
};

class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  [[nodiscard]] const QueryServiceOptions& options() const noexcept {
    return options_;
  }

  /// Ingests an uploaded record.  Idempotent: a re-delivery carrying bytes
  /// identical to the stored (location, period) record is Ok (counted as a
  /// duplicate, history untouched); a *conflicting* record for an occupied
  /// slot and structurally invalid records are rejected.  On first accept
  /// the record's estimated point volume updates the location's historical
  /// average used by plan_size (Eq. 2).  Thread-safe.
  Status ingest(const TrafficRecord& record);

  [[nodiscard]] std::size_t record_count() const;
  [[nodiscard]] bool has_record(std::uint64_t location,
                                std::uint64_t period) const;
  /// Periods stored for `location`, ascending.  Empty when unknown.
  [[nodiscard]] std::vector<std::uint64_t> periods_at(
      std::uint64_t location) const;

  /// Eq. 2 with the location's historical average volume; `default_volume`
  /// for locations with no history yet.
  [[nodiscard]] std::size_t plan_size(std::uint64_t location,
                                      double default_volume = 1024.0) const;

  /// Executes one request of any shape - the single query execution path.
  [[nodiscard]] QueryResponse run(const QueryRequest& request) const;

  /// Executes a batch concurrently across up to `threads` workers (0 =
  /// default_parallelism()).  Responses align index-for-index with the
  /// requests and are identical to issuing each through `run`.
  [[nodiscard]] std::vector<QueryResponse> run_batch(
      std::span<const QueryRequest> requests, std::size_t threads = 0) const;

  /// Point-in-time counters + latency histogram ("/stats").
  [[nodiscard]] ServiceMetrics metrics() const;

 private:
  /// Minimal history accumulator (count + mean) planning Eq. 2 sizes.
  struct VolumeHistory {
    std::uint64_t count = 0;
    double mean = 0.0;
    void add(double x) noexcept {
      ++count;
      mean += (x - mean) / static_cast<double>(count);
    }
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::pair<std::uint64_t, std::uint64_t>, TrafficRecord> records;
    std::map<std::uint64_t, VolumeHistory> history;
    mutable std::atomic<std::uint64_t> ingest_ok{0};
    mutable std::atomic<std::uint64_t> ingest_duplicate{0};
    mutable std::atomic<std::uint64_t> ingest_rejected{0};
    mutable std::atomic<std::uint64_t> queries{0};
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t location) const noexcept;

  /// Pointers to the location's stored bitmaps for the given periods,
  /// gathered under the shard's shared lock.  NotFound if any period is
  /// missing.  The pointers stay valid after the lock is released: the
  /// store is insert-only (no record is ever erased or overwritten -
  /// conflicting ingests are rejected) and std::map nodes are
  /// address-stable, so handlers feed the estimators' zero-copy
  /// pointer-span overloads without copying a single record.
  [[nodiscard]] Result<std::vector<const Bitmap*>> collect_bitmaps(
      std::uint64_t location, std::span<const std::uint64_t> periods) const;

  /// Gap-tolerant variant: stored-record pointers for the *stored* subset
  /// of `periods` plus the coverage split.  Never fails on gaps; `bitmaps`
  /// aligns index-for-index with `coverage.present`.  Same lifetime
  /// argument as collect_bitmaps.
  struct PresentBitmaps {
    std::vector<const Bitmap*> bitmaps;
    CoverageReport coverage;
  };
  [[nodiscard]] PresentBitmaps collect_present(
      std::uint64_t location, std::span<const std::uint64_t> periods) const;

  [[nodiscard]] QueryResponse dispatch(const QueryRequest& request) const;
  [[nodiscard]] QueryResponse handle(const PointVolumeQuery& q) const;
  [[nodiscard]] QueryResponse handle(const PointPersistentQuery& q) const;
  [[nodiscard]] QueryResponse handle(const RecentPersistentQuery& q) const;
  [[nodiscard]] QueryResponse handle(const P2PPersistentQuery& q) const;
  [[nodiscard]] QueryResponse handle(const CorridorQuery& q) const;

  QueryServiceOptions options_;
  std::unique_ptr<Shard[]> shards_;
  mutable LatencyRecorder latency_;
  mutable std::atomic<std::uint64_t> queries_total_{0};
  mutable std::atomic<std::uint64_t> queries_failed_{0};
};

}  // namespace ptm
