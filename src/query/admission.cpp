#include "query/admission.hpp"

namespace ptm {

void AdmissionController::note_admitted() noexcept {
  const std::size_t now_in_flight =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (now_in_flight > peak &&
         !peak_in_flight_.compare_exchange_weak(peak, now_in_flight,
                                                std::memory_order_relaxed)) {
  }
}

Status AdmissionController::admit(const Deadline& deadline) {
  if (options_.max_in_flight == 0) {
    // Gate disabled: gauge bookkeeping only, no lock on the hot path.
    note_admitted();
    return Status::ok();
  }

  std::unique_lock lock(mutex_);
  const auto slot_available = [this] {
    return in_flight_.load(std::memory_order_relaxed) <
           options_.max_in_flight;
  };
  if (!slot_available()) {
    if (queued_.load(std::memory_order_relaxed) >= options_.max_queue) {
      return {ErrorCode::kResourceExhausted,
              "query shed: in-flight bound and admission queue are full"};
    }
    if (deadline.expired_now()) {
      return {ErrorCode::kDeadlineExceeded,
              "deadline expired while waiting for admission"};
    }
    queued_.fetch_add(1, std::memory_order_relaxed);
    bool got_slot = true;
    if (deadline.unbounded()) {
      slot_freed_.wait(lock, slot_available);
    } else {
      got_slot =
          slot_freed_.wait_until(lock, deadline.time_point(), slot_available);
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    if (!got_slot) {
      return {ErrorCode::kDeadlineExceeded,
              "deadline expired while waiting for admission"};
    }
  }
  note_admitted();
  return Status::ok();
}

void AdmissionController::release() noexcept {
  if (options_.max_in_flight == 0) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  {
    // Decrement under the mutex so a waiter cannot observe "no slot", then
    // miss the wakeup between its check and its wait.
    std::lock_guard lock(mutex_);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
  slot_freed_.notify_one();
}

}  // namespace ptm
