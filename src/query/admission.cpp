#include "query/admission.hpp"

namespace ptm {
namespace {

TelemetryRegistry& resolve_registry(
    TelemetryRegistry* registry,
    std::unique_ptr<TelemetryRegistry>& owned) {
  if (registry != nullptr) return *registry;
  owned = std::make_unique<TelemetryRegistry>();
  return *owned;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options,
                                         TelemetryRegistry* registry)
    : options_(options),
      owned_registry_(),
      in_flight_(resolve_registry(registry, owned_registry_)
                     .gauge("queries_in_flight")),
      peak_in_flight_((registry != nullptr ? *registry : *owned_registry_)
                          .gauge("queries_peak_in_flight")),
      queued_((registry != nullptr ? *registry : *owned_registry_)
                  .gauge("admission_queued")) {}

void AdmissionController::note_admitted() noexcept {
  peak_in_flight_.update_max(in_flight_.add(1));
}

Status AdmissionController::admit(const Deadline& deadline) {
  if (options_.max_in_flight == 0) {
    // Gate disabled: gauge bookkeeping only, no lock on the hot path.
    note_admitted();
    return Status::ok();
  }

  std::unique_lock lock(mutex_);
  const auto slot_available = [this] {
    return in_flight() < options_.max_in_flight;
  };
  if (!slot_available()) {
    if (queued() >= options_.max_queue) {
      return {ErrorCode::kResourceExhausted,
              "query shed: in-flight bound and admission queue are full"};
    }
    if (deadline.expired_now()) {
      return {ErrorCode::kDeadlineExceeded,
              "deadline expired while waiting for admission"};
    }
    queued_.add(1);
    bool got_slot = true;
    if (deadline.unbounded()) {
      slot_freed_.wait(lock, slot_available);
    } else {
      got_slot =
          slot_freed_.wait_until(lock, deadline.time_point(), slot_available);
    }
    queued_.sub(1);
    if (!got_slot) {
      return {ErrorCode::kDeadlineExceeded,
              "deadline expired while waiting for admission"};
    }
  }
  note_admitted();
  return Status::ok();
}

Status AdmissionController::try_admit(const Deadline& deadline) {
  if (options_.max_in_flight == 0) {
    if (deadline.expired_now()) {
      return {ErrorCode::kDeadlineExceeded,
              "deadline expired before admission"};
    }
    note_admitted();
    return Status::ok();
  }
  std::lock_guard lock(mutex_);
  if (in_flight() >= options_.max_in_flight) {
    // Same precedence as admit(): shedding is reported even when the
    // deadline has also passed, because kResourceExhausted is the signal
    // the caller can act on (back off and retry).
    return {ErrorCode::kResourceExhausted,
            "ingest shed: in-flight bound is full"};
  }
  if (deadline.expired_now()) {
    return {ErrorCode::kDeadlineExceeded,
            "deadline expired before admission"};
  }
  note_admitted();
  return Status::ok();
}

void AdmissionController::release() noexcept {
  if (options_.max_in_flight == 0) {
    in_flight_.sub(1);
    return;
  }
  {
    // Decrement under the mutex so a waiter cannot observe "no slot", then
    // miss the wakeup between its check and its wait.
    std::lock_guard lock(mutex_);
    in_flight_.sub(1);
  }
  slot_freed_.notify_one();
}

}  // namespace ptm
