#include "query/query_service.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/bitmap_pool.hpp"
#include "common/parallel.hpp"
#include "core/linear_counting.hpp"
#include "simd/kernels.hpp"
#include "store/archive.hpp"

namespace ptm {
namespace {

/// splitmix64 finalizer - cheap, well-mixed location -> shard hash (the
/// low bits of raw location codes are far from uniform).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

CoverageReport merge_coverage(const CoverageReport& a,
                              const CoverageReport& b) {
  const auto sorted_union = [](const std::vector<std::uint64_t>& x,
                               const std::vector<std::uint64_t>& y) {
    std::vector<std::uint64_t> out;
    out.reserve(x.size() + y.size());
    out.insert(out.end(), x.begin(), x.end());
    out.insert(out.end(), y.begin(), y.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  CoverageReport merged;
  merged.requested = sorted_union(a.requested, b.requested);
  merged.missing = sorted_union(a.missing, b.missing);
  merged.present.reserve(merged.requested.size());
  for (std::uint64_t period : merged.requested) {
    if (!std::binary_search(merged.missing.begin(), merged.missing.end(),
                            period)) {
      merged.present.push_back(period);
    }
  }
  return merged;
}

const char* query_kind_name(const QueryRequest& request) noexcept {
  struct Namer {
    const char* operator()(const PointVolumeQuery&) { return "point-volume"; }
    const char* operator()(const PointPersistentQuery&) {
      return "point-persistent";
    }
    const char* operator()(const RecentPersistentQuery&) {
      return "recent-persistent";
    }
    const char* operator()(const P2PPersistentQuery&) {
      return "p2p-persistent";
    }
    const char* operator()(const CorridorQuery&) { return "corridor"; }
  };
  return std::visit(Namer{}, request);
}

const Deadline& query_deadline(const QueryRequest& request) noexcept {
  return std::visit(
      [](const auto& q) -> const Deadline& { return q.deadline; }, request);
}

std::uint64_t query_primary_location(const QueryRequest& request) noexcept {
  struct Primary {
    std::uint64_t operator()(const PointVolumeQuery& q) { return q.location; }
    std::uint64_t operator()(const PointPersistentQuery& q) {
      return q.location;
    }
    std::uint64_t operator()(const RecentPersistentQuery& q) {
      return q.location;
    }
    std::uint64_t operator()(const P2PPersistentQuery& q) {
      return q.location_a;
    }
    std::uint64_t operator()(const CorridorQuery& q) {
      return q.locations.empty() ? 0 : q.locations.front();
    }
  };
  return std::visit(Primary{}, request);
}

QueryService::QueryService(QueryServiceOptions options)
    : options_(options),
      spans_("query-service"),
      latency_(telemetry_.histogram("query_latency_ns")),
      queries_total_(telemetry_.counter("queries_total")),
      queries_failed_(telemetry_.counter("queries_failed")),
      admission_(options.admission, &telemetry_) {
  options_.n_shards = std::max<std::size_t>(options_.n_shards, 1);
  shards_ = std::make_unique<Shard[]>(options_.n_shards);
  for (std::size_t i = 0; i < options_.n_shards; ++i) {
    const TelemetryLabels labels{{"shard", std::to_string(i)}};
    Shard& shard = shards_[i];
    shard.ingest_ok = &telemetry_.counter("ingest_ok", labels);
    shard.ingest_duplicate = &telemetry_.counter("ingest_duplicate", labels);
    shard.ingest_rejected = &telemetry_.counter("ingest_rejected", labels);
    shard.queries = &telemetry_.counter("shard_queries", labels);
    shard.shed = &telemetry_.counter("queries_shed", labels);
    shard.deadline_exceeded =
        &telemetry_.counter("queries_deadline_exceeded", labels);
    shard.archive_append = &telemetry_.counter("archive_append", labels);
  }
}

QueryService::Shard& QueryService::shard_for(
    std::uint64_t location) const noexcept {
  return shards_[mix64(location) % options_.n_shards];
}

Status QueryService::ingest(const TrafficRecord& record,
                            const TraceContext& trace, bool* first_accept) {
  if (first_accept != nullptr) *first_accept = false;
  // Untraced ingests (the overwhelming majority) skip span recording
  // entirely; the null-recorder ScopedTimer does not even read the clock.
  ScopedTimer ingest_span(trace.active() ? &spans_ : nullptr, "ingest",
                          trace);
  Shard& shard = shard_for(record.location);
  if (Status s = record.validate(); !s.is_ok()) {
    shard.ingest_rejected->add();
    ingest_span.set_ok(false);
    return s;
  }
  // The volume estimate feeding the Eq. 2 history only reads the caller's
  // record, so it runs before the exclusive section.
  const CardinalityEstimate est = estimate_cardinality(record.bits);
  const auto key = std::make_pair(record.location, record.period);
  {
    std::unique_lock lock(shard.mutex);
    const auto it = shard.records.find(key);
    if (it != shard.records.end()) {
      // Idempotent re-delivery: an RSU retransmitting an unacknowledged
      // upload after an outage must not be punished for the lost ack.
      // Identical bytes are a no-op success; different bytes mean two
      // divergent records claim the same (location, period) - that never
      // happens from a healthy RSU and is rejected loudly.
      const bool identical = it->second == record;
      lock.unlock();
      if (identical) {
        shard.ingest_duplicate->add();
        return Status::ok();
      }
      shard.ingest_rejected->add();
      ingest_span.set_ok(false);
      return {ErrorCode::kFailedPrecondition,
              "conflicting record for this location and period"};
    }
    // Write-ahead: a first accept must be durable before it becomes
    // queryable and before the Ok that lets the RSU retire the record
    // from its outbox.  The disk write happens under the shard's
    // exclusive lock - durability-before-ack is worth the ingest-side
    // stall, and queries on other shards are unaffected.
    {
      std::lock_guard archive_lock(archive_mutex_);
      if (archive_ != nullptr) {
        ScopedTimer archive_span(trace.active() ? &spans_ : nullptr,
                                 "archive-append", ingest_span.context());
        if (Status s = archive_->append(record); !s.is_ok()) {
          // Nothing admitted to memory and no ack: the RSU keeps the
          // record and retries, exactly as after a lost ack.
          lock.unlock();
          shard.ingest_rejected->add();
          archive_span.set_ok(false);
          ingest_span.set_ok(false);
          return s;
        }
        shard.archive_append->add();
      }
    }
    shard.records.emplace(key, record);
    shard.history[record.location].add(est.value);
  }
  if (first_accept != nullptr) *first_accept = true;
  shard.ingest_ok->add();
  return Status::ok();
}

void QueryService::attach_durability(RecordArchive& archive) {
  std::lock_guard lock(archive_mutex_);
  archive_ = &archive;
}

bool QueryService::durable() const {
  std::lock_guard lock(archive_mutex_);
  return archive_ != nullptr;
}

Result<std::size_t> QueryService::restore_from_archive() {
  // Batched replay: the archive mutex is held per batch, not for the
  // whole sweep, so a restore racing live ingest (a follower replaying
  // its replica while its subscriptions already stream) never stalls the
  // write path for the archive's full O(n) copy.  Iteration is
  // (location, period)-ordered within each batch, so the volume history
  // mean rebuilds deterministically regardless of original arrival order.
  constexpr std::size_t kRestoreBatch = 512;
  RecordArchive::SnapshotCursor cursor;
  std::size_t restored = 0;
  for (;;) {
    std::vector<TrafficRecord> records;
    {
      std::lock_guard lock(archive_mutex_);
      if (archive_ == nullptr) {
        return Status{ErrorCode::kFailedPrecondition,
                      "restore requires an attached archive"};
      }
      records = archive_->live_batch(cursor, kRestoreBatch);
    }
    if (records.empty()) return restored;
    for (TrafficRecord& rec : records) {
      Shard& shard = shard_for(rec.location);
      const CardinalityEstimate est = estimate_cardinality(rec.bits);
      const auto key = std::make_pair(rec.location, rec.period);
      std::unique_lock lock(shard.mutex);
      if (shard.records.contains(key)) continue;  // already live in memory
      shard.history[rec.location].add(est.value);
      shard.records.emplace(key, std::move(rec));
      ++restored;
    }
  }
}

void QueryService::wipe_volatile_state() {
  for (std::size_t i = 0; i < options_.n_shards; ++i) {
    Shard& shard = shards_[i];
    std::unique_lock lock(shard.mutex);
    shard.records.clear();
    shard.history.clear();
    // Instrument values are volatile state too; registrations survive
    // (the admission gauges are deliberately left alone - in-flight
    // accounting must stay balanced across a simulated crash).
    shard.ingest_ok->reset();
    shard.ingest_duplicate->reset();
    shard.ingest_rejected->reset();
    shard.queries->reset();
    shard.shed->reset();
    shard.deadline_exceeded->reset();
    shard.archive_append->reset();
  }
  latency_.reset();
  queries_total_.reset();
  queries_failed_.reset();
  spans_.clear();
  std::lock_guard lock(archive_mutex_);
  archive_ = nullptr;
}

std::size_t QueryService::record_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < options_.n_shards; ++i) {
    std::shared_lock lock(shards_[i].mutex);
    total += shards_[i].records.size();
  }
  return total;
}

bool QueryService::has_record(std::uint64_t location,
                              std::uint64_t period) const {
  const Shard& shard = shard_for(location);
  std::shared_lock lock(shard.mutex);
  return shard.records.contains(std::make_pair(location, period));
}

std::vector<std::uint64_t> QueryService::periods_at(
    std::uint64_t location) const {
  const Shard& shard = shard_for(location);
  std::vector<std::uint64_t> periods;
  std::shared_lock lock(shard.mutex);
  // The map is ordered by (location, period): one contiguous, sorted range.
  for (auto it = shard.records.lower_bound(std::make_pair(location, 0ULL));
       it != shard.records.end() && it->first.first == location; ++it) {
    periods.push_back(it->first.second);
  }
  return periods;
}

std::vector<TrafficRecord> QueryService::records_batch(
    RecordCursor& cursor, std::size_t max_records) const {
  std::vector<TrafficRecord> out;
  if (max_records == 0) return out;
  while (cursor.shard < options_.n_shards && out.size() < max_records) {
    const Shard& shard = shards_[cursor.shard];
    {
      std::shared_lock lock(shard.mutex);
      auto it = cursor.in_shard
                    ? shard.records.upper_bound(std::make_pair(
                          cursor.last_location, cursor.last_period))
                    : shard.records.begin();
      for (; it != shard.records.end() && out.size() < max_records; ++it) {
        out.push_back(it->second);
        cursor.in_shard = true;
        cursor.last_location = it->first.first;
        cursor.last_period = it->first.second;
      }
      if (it != shard.records.end()) return out;  // batch full mid-shard
    }
    ++cursor.shard;
    cursor.in_shard = false;
  }
  return out;
}

std::vector<TrafficRecord> QueryService::records_at_periods(
    std::uint64_t location, std::span<const std::uint64_t> periods) const {
  const Shard& shard = shard_for(location);
  std::vector<TrafficRecord> out;
  std::shared_lock lock(shard.mutex);
  if (periods.empty()) {
    for (auto it = shard.records.lower_bound(std::make_pair(location, 0ULL));
         it != shard.records.end() && it->first.first == location; ++it) {
      out.push_back(it->second);
    }
    return out;
  }
  out.reserve(periods.size());
  for (std::uint64_t period : periods) {
    const auto it = shard.records.find(std::make_pair(location, period));
    if (it != shard.records.end()) out.push_back(it->second);
  }
  return out;
}

std::size_t QueryService::plan_size(std::uint64_t location,
                                    double default_volume) const {
  const Shard& shard = shard_for(location);
  double expected = default_volume;
  {
    std::shared_lock lock(shard.mutex);
    const auto it = shard.history.find(location);
    if (it != shard.history.end() && it->second.count > 0 &&
        it->second.mean >= 1.0) {
      expected = it->second.mean;
    }
  }
  return plan_bitmap_size(expected, options_.load_factor);
}

Result<std::vector<const Bitmap*>> QueryService::collect_bitmaps(
    std::uint64_t location, std::span<const std::uint64_t> periods) const {
  const Shard& shard = shard_for(location);
  std::vector<const Bitmap*> out;
  out.reserve(periods.size());
  std::shared_lock lock(shard.mutex);
  for (std::uint64_t period : periods) {
    const auto it = shard.records.find(std::make_pair(location, period));
    if (it == shard.records.end()) {
      return Status{ErrorCode::kNotFound,
                    "missing record for a requested period"};
    }
    out.push_back(&it->second.bits);
  }
  return out;
}

QueryService::PresentBitmaps QueryService::collect_present(
    std::uint64_t location, std::span<const std::uint64_t> periods) const {
  const Shard& shard = shard_for(location);
  PresentBitmaps out;
  out.coverage.requested.assign(periods.begin(), periods.end());
  std::shared_lock lock(shard.mutex);
  for (std::uint64_t period : periods) {
    const auto it = shard.records.find(std::make_pair(location, period));
    if (it == shard.records.end()) {
      out.coverage.missing.push_back(period);
    } else {
      out.coverage.present.push_back(period);
      out.bitmaps.push_back(&it->second.bits);
    }
  }
  return out;
}

namespace {

/// Shared epilogue of the gap-tolerant persistent handlers: apply the
/// missing policy to a coverage split and either fail (with the coverage
/// attached, so the caller can see which periods gapped) or approve
/// estimation over the present subset.
[[nodiscard]] Status apply_missing_policy(MissingPolicy policy,
                                          const CoverageReport& coverage) {
  if (coverage.complete()) return Status::ok();  // estimator takes it whole
  if (policy == MissingPolicy::kFail) {
    return {ErrorCode::kNotFound, "missing record for a requested period"};
  }
  if (coverage.present.size() < 2) {
    return {ErrorCode::kNotFound,
            "fewer than 2 periods present; persistence needs at least 2"};
  }
  return Status::ok();
}

}  // namespace

QueryResponse QueryService::handle(const PointVolumeQuery& q) const {
  const Shard& shard = shard_for(q.location);
  shard.queries->add();
  QueryResponse response;
  // Pointer, not copy: stored records are immutable and never evicted
  // (see collect_bitmaps), so reading outside the lock is safe.
  const Bitmap* bits = nullptr;
  {
    std::shared_lock lock(shard.mutex);
    const auto it =
        shard.records.find(std::make_pair(q.location, q.period));
    if (it == shard.records.end()) {
      response.status =
          Status{ErrorCode::kNotFound, "no record for location/period"};
      return response;
    }
    bits = &it->second.bits;
  }
  const CardinalityEstimate est = estimate_cardinality(*bits);
  response.result = est;
  response.summary = summarize_estimate(est, bits->size());
  return response;
}

QueryResponse QueryService::handle(const PointPersistentQuery& q) const {
  shard_for(q.location).queries->add();
  QueryResponse response;
  PresentBitmaps split = collect_present(q.location, q.periods);
  response.coverage = std::move(split.coverage);
  if (Status s = apply_missing_policy(q.missing, response.coverage);
      !s.is_ok()) {
    response.status = s;
    return response;
  }
  auto est = [&] {
    ScopedTimer kernel_span(&spans_, "eq12-kernel");
    auto r = estimate_point_persistent(split.bitmaps);
    kernel_span.set_ok(r.has_value());
    return r;
  }();
  if (!est) {
    response.status = est.status();
    return response;
  }
  response.result = *est;
  response.summary = summarize_estimate(*est);
  return response;
}

QueryResponse QueryService::handle(const RecentPersistentQuery& q) const {
  shard_for(q.location).queries->add();
  QueryResponse response;
  if (q.window == 0) {
    response.status = Status{ErrorCode::kInvalidArgument,
                             "recent window must be at least 1 period"};
    return response;
  }
  const std::vector<std::uint64_t> stored = periods_at(q.location);
  if (stored.empty()) {
    response.status =
        Status{ErrorCode::kNotFound, "no records stored for this location"};
    return response;
  }

  std::vector<std::uint64_t> wanted;
  if (q.missing == MissingPolicy::kFail) {
    // Strict mode keeps the pre-gap-tolerance contract: the `window` most
    // recent *stored* periods, NotFound when fewer exist.
    if (stored.size() < q.window) {
      response.status =
          Status{ErrorCode::kNotFound,
                 "fewer stored periods than the requested window"};
      return response;
    }
    wanted.assign(stored.end() - static_cast<std::ptrdiff_t>(q.window),
                  stored.end());
  } else {
    // Gap-aware mode: the trailing `window` period *numbers* ending at the
    // newest stored period ("the last 7 days"), gaps included so the
    // coverage report names them.
    const std::uint64_t newest = stored.back();
    const std::uint64_t first =
        newest >= q.window - 1 ? newest - (q.window - 1) : 0;
    for (std::uint64_t p = first; p <= newest; ++p) wanted.push_back(p);
  }

  PresentBitmaps split = collect_present(q.location, wanted);
  response.coverage = std::move(split.coverage);
  if (Status s = apply_missing_policy(q.missing, response.coverage);
      !s.is_ok()) {
    response.status = s;
    return response;
  }
  auto est = [&] {
    ScopedTimer kernel_span(&spans_, "eq12-kernel");
    auto r = estimate_point_persistent(split.bitmaps);
    kernel_span.set_ok(r.has_value());
    return r;
  }();
  if (!est) {
    response.status = est.status();
    return response;
  }
  response.result = *est;
  response.summary = summarize_estimate(*est);
  return response;
}

QueryResponse QueryService::handle(const P2PPersistentQuery& q) const {
  Shard& shard_a = shard_for(q.location_a);
  Shard& shard_b = shard_for(q.location_b);
  shard_a.queries->add();
  if (&shard_b != &shard_a) {
    shard_b.queries->add();
  }
  QueryResponse response;
  auto bitmaps_a = collect_bitmaps(q.location_a, q.periods);
  if (!bitmaps_a) {
    response.status = bitmaps_a.status();
    return response;
  }
  auto bitmaps_b = collect_bitmaps(q.location_b, q.periods);
  if (!bitmaps_b) {
    response.status = bitmaps_b.status();
    return response;
  }
  PointToPointOptions estimator_options;
  estimator_options.s = options_.s;
  auto est = [&] {
    ScopedTimer kernel_span(&spans_, "eq21-kernel");
    auto r = estimate_p2p_persistent(*bitmaps_a, *bitmaps_b,
                                     estimator_options);
    kernel_span.set_ok(r.has_value());
    return r;
  }();
  if (!est) {
    response.status = est.status();
    return response;
  }
  response.result = *est;
  response.summary = summarize_estimate(*est);
  return response;
}

QueryResponse QueryService::handle(const CorridorQuery& q) const {
  // Count the query once per distinct shard it touches.
  std::vector<const Shard*> touched;
  for (std::uint64_t location : q.locations) {
    const Shard* shard = &shard_for(location);
    if (std::find(touched.begin(), touched.end(), shard) == touched.end()) {
      touched.push_back(shard);
      shard->queries->add();
    }
  }
  QueryResponse response;
  // Coverage first: a period is present only when *every* corridor
  // location stores it (the joined estimate needs the full column).  This
  // loop and the gather loop below are the corridor's yield points: the
  // deadline is re-checked between periods and between locations, and an
  // expiry abandons the query with the coverage gathered so far (partial
  // on expiry mid-coverage) instead of finishing a stale answer.
  response.coverage.requested = q.periods;
  for (std::uint64_t period : q.periods) {
    if (q.deadline.expired_now()) {
      response.status = Status{ErrorCode::kDeadlineExceeded,
                               "deadline expired during corridor coverage"};
      return response;
    }
    const bool everywhere =
        std::all_of(q.locations.begin(), q.locations.end(),
                    [&](std::uint64_t location) {
                      return has_record(location, period);
                    });
    (everywhere ? response.coverage.present : response.coverage.missing)
        .push_back(period);
  }
  if (Status s = apply_missing_policy(q.missing, response.coverage);
      !s.is_ok()) {
    response.status = s;
    return response;
  }
  std::vector<std::vector<const Bitmap*>> per_location;
  per_location.reserve(q.locations.size());
  for (std::uint64_t location : q.locations) {
    if (q.deadline.expired_now()) {
      response.status = Status{ErrorCode::kDeadlineExceeded,
                               "deadline expired during corridor gather"};
      return response;
    }
    auto bitmaps = collect_bitmaps(location, response.coverage.present);
    if (!bitmaps) {
      // A record vanished between the coverage pass and the pointer
      // gather - the store only grows, so this cannot happen in practice;
      // surface it.
      response.status = bitmaps.status();
      return response;
    }
    per_location.push_back(std::move(*bitmaps));
  }
  auto est = [&] {
    ScopedTimer kernel_span(&spans_, "corridor-kernel");
    auto r = estimate_corridor_persistent(per_location, options_.s);
    kernel_span.set_ok(r.has_value());
    return r;
  }();
  if (!est) {
    response.status = est.status();
    return response;
  }
  response.summary = summarize_estimate(*est);
  response.result = std::move(*est);
  return response;
}

QueryResponse QueryService::dispatch(const QueryRequest& request) const {
  return std::visit([this](const auto& q) { return handle(q); }, request);
}

QueryResponse QueryService::run(const QueryRequest& request) const {
  const auto start = std::chrono::steady_clock::now();
  const Deadline& deadline = query_deadline(request);
  const Shard& primary = shard_for(query_primary_location(request));
  QueryResponse response;
  if (deadline.expired_now()) {
    // Expired on arrival: refuse before spending admission or estimator
    // time.  The shard `queries` counter stays untouched - nothing ran.
    response.status = Status{ErrorCode::kDeadlineExceeded,
                             "deadline expired before execution began"};
  } else {
    Status admitted;
    {
      // Admission waits only happen with the gate enabled; the span is
      // suppressed otherwise so the unguarded hot path stays span-free.
      ScopedTimer wait_span(
          options_.admission.max_in_flight > 0 ? &spans_ : nullptr,
          "admission-wait");
      admitted = admission_.admit(deadline);
      wait_span.set_ok(admitted.is_ok());
    }
    if (!admitted.is_ok()) {
      response.status = admitted;
    } else {
      response = dispatch(request);
      admission_.release();
    }
  }
  switch (response.status.code()) {
    case ErrorCode::kDeadlineExceeded:
      primary.deadline_exceeded->add();
      break;
    case ErrorCode::kResourceExhausted:
      primary.shed->add();
      break;
    default:
      break;
  }
  response.latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  latency_.record(response.latency_ns);
  queries_total_.add();
  if (!response.ok()) {
    queries_failed_.add();
  }
  return response;
}

std::vector<QueryResponse> QueryService::run_batch(
    std::span<const QueryRequest> requests, std::size_t threads) const {
  std::vector<QueryResponse> responses(requests.size());
  parallel_for_indexed(
      requests.size(),
      [&](std::size_t i) { responses[i] = run(requests[i]); }, threads);
  return responses;
}

ServiceMetrics QueryService::metrics() const {
  ServiceMetrics out;
  out.shards.reserve(options_.n_shards);
  for (std::size_t i = 0; i < options_.n_shards; ++i) {
    const Shard& shard = shards_[i];
    ShardMetrics sm;
    {
      std::shared_lock lock(shard.mutex);
      sm.records = shard.records.size();
    }
    sm.ingest_ok = shard.ingest_ok->value();
    sm.ingest_duplicate = shard.ingest_duplicate->value();
    sm.ingest_rejected = shard.ingest_rejected->value();
    sm.queries = shard.queries->value();
    sm.shed = shard.shed->value();
    sm.deadline_exceeded = shard.deadline_exceeded->value();
    sm.archive_append = shard.archive_append->value();
    out.records_total += sm.records;
    out.ingest_ok_total += sm.ingest_ok;
    out.ingest_duplicate_total += sm.ingest_duplicate;
    out.ingest_rejected_total += sm.ingest_rejected;
    out.shed_total += sm.shed;
    out.deadline_exceeded_total += sm.deadline_exceeded;
    out.archive_append_total += sm.archive_append;
    out.shards.push_back(sm);
  }
  out.queries_total = queries_total_.value();
  out.queries_failed = queries_failed_.value();
  out.in_flight = admission_.in_flight();
  out.peak_in_flight = admission_.peak_in_flight();
  out.latency = latency_.snapshot();
  out.kernel_variant = simd::active().name;
  out.pool = BitmapPool::local().stats();
  return out;
}

}  // namespace ptm
