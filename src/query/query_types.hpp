// query_types.hpp - the unified query API of the ptm_query subsystem.
//
// The paper's server answers several query shapes over the same record
// store (§II-A): point volume (Eq. 3), point persistent (Eq. 12), its
// rolling "last w periods" form, point-to-point persistent (Eq. 21), and
// the corridor extension.  Instead of one entry point per shape, every
// front end (CLI, examples, benches, batch API) speaks one variant-based
// QueryRequest/QueryResponse pair; QueryService::run is the single
// execution path that interprets them.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "core/corridor_persistent.hpp"
#include "core/linear_counting.hpp"
#include "core/p2p_persistent.hpp"
#include "core/point_persistent.hpp"
#include "query/estimate_summary.hpp"

namespace ptm {

/// Point traffic volume at one (location, period) - Eq. 3.
struct PointVolumeQuery {
  std::uint64_t location = 0;
  std::uint64_t period = 0;
};

/// Point persistent traffic at one location over explicit periods - Eq. 12.
struct PointPersistentQuery {
  std::uint64_t location = 0;
  std::vector<std::uint64_t> periods;
};

/// Rolling form of Eq. 12: the `window` most recent periods stored for the
/// location.  window == 0 is InvalidArgument; fewer stored periods than
/// `window` is NotFound.
struct RecentPersistentQuery {
  std::uint64_t location = 0;
  std::size_t window = 0;
};

/// Point-to-point persistent traffic between two locations over explicit
/// periods - Eq. 21.  Both locations must hold every requested period.
struct P2PPersistentQuery {
  std::uint64_t location_a = 0;
  std::uint64_t location_b = 0;
  std::vector<std::uint64_t> periods;
};

/// Corridor persistent traffic through k >= 2 locations over explicit
/// periods (the k-location generalization of Eq. 21).
struct CorridorQuery {
  std::vector<std::uint64_t> locations;
  std::vector<std::uint64_t> periods;
};

/// One request, any shape.
using QueryRequest =
    std::variant<PointVolumeQuery, PointPersistentQuery,
                 RecentPersistentQuery, P2PPersistentQuery, CorridorQuery>;

/// The typed payload of a successful response; monostate while failed.
using QueryResult =
    std::variant<std::monostate, CardinalityEstimate, PointPersistentEstimate,
                 PointToPointPersistentEstimate, CorridorPersistentEstimate>;

struct QueryResponse {
  Status status;        ///< ok iff `result` holds an estimate
  QueryResult result;   ///< shape matches the request's query kind
  EstimateSummary summary;  ///< unified view; valid only when status is ok
  std::uint64_t latency_ns = 0;  ///< service-side execution time

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }

  /// Typed accessor: the contained estimate, or the failure Status.
  /// Precondition when ok(): the response actually holds a T (i.e. T
  /// corresponds to the request shape that produced this response).
  template <typename T>
  [[nodiscard]] Result<T> as() const {
    if (!status.is_ok()) return status;
    return std::get<T>(result);
  }
};

/// Short human-readable name of a request's shape ("point-volume", ...).
[[nodiscard]] const char* query_kind_name(const QueryRequest& request) noexcept;

}  // namespace ptm
