// query_types.hpp - the unified query API of the ptm_query subsystem.
//
// The paper's server answers several query shapes over the same record
// store (§II-A): point volume (Eq. 3), point persistent (Eq. 12), its
// rolling "last w periods" form, point-to-point persistent (Eq. 21), and
// the corridor extension.  Instead of one entry point per shape, every
// front end (CLI, examples, benches, batch API) speaks one variant-based
// QueryRequest/QueryResponse pair; QueryService::run is the single
// execution path that interprets them.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/deadline.hpp"
#include "common/status.hpp"
#include "core/corridor_persistent.hpp"
#include "core/linear_counting.hpp"
#include "core/p2p_persistent.hpp"
#include "core/point_persistent.hpp"
#include "query/estimate_summary.hpp"

namespace ptm {

/// What a multi-period query does about periods with no stored record.  A
/// fault-tolerant pipeline delivers every record *eventually*, but a query
/// can arrive while an RSU is still crashed or its outbox still draining.
enum class MissingPolicy {
  kFail,         ///< strict (the paper's model): any gap fails the query
  kSkipMissing,  ///< estimate over the present periods; report the gaps
};

/// Which requested periods actually had records - returned alongside every
/// multi-period estimate so a caller choosing kSkipMissing can judge how
/// much of the window the answer really covers.  For corridor queries a
/// period is `present` only when *every* corridor location stores it.
struct CoverageReport {
  std::vector<std::uint64_t> requested;  ///< periods the query asked for
  std::vector<std::uint64_t> present;    ///< subset with stored records
  std::vector<std::uint64_t> missing;    ///< subset without

  [[nodiscard]] bool complete() const noexcept { return missing.empty(); }
};

/// Combines two coverage views of one logical query - e.g. per-partition
/// reports gathered by the cluster coordinator, or a fetch-stage report
/// merged with the local execution's report.  Corridor semantics: the
/// merged `requested` is the union, and a period is `present` only when no
/// contributing report counts it missing - a partition that could not be
/// reached degrades the answer to partial coverage instead of failing it.
/// All three vectors come back sorted and deduplicated.
[[nodiscard]] CoverageReport merge_coverage(const CoverageReport& a,
                                            const CoverageReport& b);

// Every query shape carries a Deadline (default: unbounded).  A request
// whose deadline has passed on arrival - or passes mid-execution, checked
// at the yield points of multi-location queries - completes with
// kDeadlineExceeded instead of burning estimator time on an answer nobody
// is still waiting for; the CoverageReport gathered so far is returned.
// The deadline also bounds time spent queued at admission (see
// query/admission.hpp).

/// Point traffic volume at one (location, period) - Eq. 3.
struct PointVolumeQuery {
  std::uint64_t location = 0;
  std::uint64_t period = 0;
  Deadline deadline{};
};

/// Point persistent traffic at one location over explicit periods - Eq. 12.
/// Under kSkipMissing, stored periods alone feed the estimate (at least two
/// must be present; otherwise NotFound with the coverage report populated).
struct PointPersistentQuery {
  std::uint64_t location = 0;
  std::vector<std::uint64_t> periods;
  MissingPolicy missing = MissingPolicy::kFail;
  Deadline deadline{};
};

/// Rolling form of Eq. 12 over the trailing `window` periods at the
/// location.  window == 0 is InvalidArgument.  Under kFail the `window`
/// most recent *stored* periods are used and fewer stored than `window` is
/// NotFound (the pre-gap-tolerance behavior).  Under kSkipMissing the
/// window is the trailing `window` period *numbers* ending at the newest
/// stored period; gaps inside it are skipped and reported as coverage.
struct RecentPersistentQuery {
  std::uint64_t location = 0;
  std::size_t window = 0;
  MissingPolicy missing = MissingPolicy::kFail;
  Deadline deadline{};
};

/// Point-to-point persistent traffic between two locations over explicit
/// periods - Eq. 21.  Both locations must hold every requested period.
struct P2PPersistentQuery {
  std::uint64_t location_a = 0;
  std::uint64_t location_b = 0;
  std::vector<std::uint64_t> periods;
  Deadline deadline{};
};

/// Corridor persistent traffic through k >= 2 locations over explicit
/// periods (the k-location generalization of Eq. 21).  Under kSkipMissing
/// a period counts as present only when every corridor location stores it;
/// partially-covered periods are skipped and reported.
struct CorridorQuery {
  std::vector<std::uint64_t> locations;
  std::vector<std::uint64_t> periods;
  MissingPolicy missing = MissingPolicy::kFail;
  Deadline deadline{};
};

/// One request, any shape.
using QueryRequest =
    std::variant<PointVolumeQuery, PointPersistentQuery,
                 RecentPersistentQuery, P2PPersistentQuery, CorridorQuery>;

/// The typed payload of a successful response; monostate while failed.
using QueryResult =
    std::variant<std::monostate, CardinalityEstimate, PointPersistentEstimate,
                 PointToPointPersistentEstimate, CorridorPersistentEstimate>;

struct QueryResponse {
  Status status;        ///< ok iff `result` holds an estimate
  QueryResult result;   ///< shape matches the request's query kind
  EstimateSummary summary;  ///< unified view; valid only when status is ok
  /// Period coverage for multi-period queries (persistent/recent/corridor).
  /// Populated even on NotFound so callers can see *which* periods gapped;
  /// empty for single-period and p2p queries.
  CoverageReport coverage;
  std::uint64_t latency_ns = 0;  ///< service-side execution time

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }

  /// Typed accessor: the contained estimate, or the failure Status.
  /// Precondition when ok(): the response actually holds a T (i.e. T
  /// corresponds to the request shape that produced this response).
  template <typename T>
  [[nodiscard]] Result<T> as() const {
    if (!status.is_ok()) return status;
    return std::get<T>(result);
  }
};

/// Short human-readable name of a request's shape ("point-volume", ...).
[[nodiscard]] const char* query_kind_name(const QueryRequest& request) noexcept;

/// The deadline a request carries, whatever its shape.
[[nodiscard]] const Deadline& query_deadline(
    const QueryRequest& request) noexcept;

/// The request's primary location: the single location for point-style
/// shapes, location_a for p2p, the first listed location for corridors
/// (0 for an empty corridor).  Shed/deadline metrics are attributed to the
/// primary location's shard.
[[nodiscard]] std::uint64_t query_primary_location(
    const QueryRequest& request) noexcept;

}  // namespace ptm
