// estimate_summary.hpp - one view over every estimator's result type.
//
// The estimators each return a rich struct carrying their derivation's
// intermediates (CardinalityEstimate, PointPersistentEstimate,
// PointToPointPersistentEstimate, CorridorPersistentEstimate,
// KwayPersistentEstimate).  Callers that only present results - ptmctl,
// the benches, the batched query API - need the common subset: the value,
// the outcome, how big the joined bitmaps were, how full they ran, and an
// analytic error bound when the theory provides one.  EstimateSummary is
// that subset, and format_estimate_summary is the single formatter every
// front end prints through.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/corridor_persistent.hpp"
#include "core/kway_persistent.hpp"
#include "core/linear_counting.hpp"
#include "core/p2p_persistent.hpp"
#include "core/point_persistent.hpp"

namespace ptm {

struct EstimateSummary {
  std::string_view kind;  ///< "point volume", "point persistent", ...
  double value = 0.0;     ///< the estimate itself (n̂, n̂_*, n̂'', ...)
  EstimateOutcome outcome = EstimateOutcome::kOk;
  std::size_t m = 0;      ///< (largest) bitmap size the estimate used
  /// One-fraction of the densest bitmap/join the estimator measured - the
  /// saturation early-warning (near 1.0 means m was planned too small).
  double fill = 0.0;
  /// Analytic relative standard error, when the estimator's theory gives
  /// one (linear counting's Whang bound); nullopt otherwise.
  std::optional<double> relative_stderr;
};

/// Summaries for each estimator result.  `m` accompanies the plain
/// cardinality estimate because CardinalityEstimate does not carry the
/// bitmap size it was measured on.
[[nodiscard]] EstimateSummary summarize_estimate(const CardinalityEstimate& e,
                                                 std::size_t m);
[[nodiscard]] EstimateSummary summarize_estimate(
    const PointPersistentEstimate& e);
[[nodiscard]] EstimateSummary summarize_estimate(
    const PointToPointPersistentEstimate& e);
[[nodiscard]] EstimateSummary summarize_estimate(
    const CorridorPersistentEstimate& e);
[[nodiscard]] EstimateSummary summarize_estimate(
    const KwayPersistentEstimate& e);

/// "<value> (<outcome>, m = <m>, fill <pct>%[, ±<pct>% expected])".
/// Starts with the numeric value so existing "...: <value>" call sites
/// stay machine-parseable.
[[nodiscard]] std::string format_estimate_summary(const EstimateSummary& s);

}  // namespace ptm
