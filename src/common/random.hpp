// random.hpp - deterministic, fast pseudo-random number generation.
//
// Simulations here are seeded end-to-end so every experiment is
// reproducible run-to-run; std::mt19937 is avoided because its state is
// large and its seeding is easy to get wrong.  SplitMix64 seeds and
// xoshiro256** generates (the standard pairing recommended by the xoshiro
// authors).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ptm {

/// SplitMix64: tiny, full-period 64-bit generator.  Primarily used to expand
/// a single user seed into the larger xoshiro state, and as a cheap
/// standalone stream when state size matters.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 - the workhorse generator for all simulations.
/// Satisfies the UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) for bound >= 1, via Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; precondition lo <= hi.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Fork an independent stream; the child's seed is drawn from this stream
  /// so that per-trial generators do not overlap.
  Xoshiro256 fork() noexcept { return Xoshiro256(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Sample `k` distinct uint64 IDs (uniform over the full 64-bit space, so
/// collisions are practically impossible but still checked).  Used to mint
/// vehicle identities.
std::vector<std::uint64_t> sample_distinct_ids(Xoshiro256& rng, std::size_t k);

/// Fisher-Yates shuffle of a vector, driven by the given generator.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    using std::swap;
    swap(v[i - 1], v[rng.below(i)]);
  }
}

}  // namespace ptm
