#include "common/random.hpp"

#include <cassert>
#include <unordered_set>

namespace ptm {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  assert(bound >= 1);
  // Lemire 2019: multiply a 64-bit draw by the bound and keep the high word;
  // reject the short low-word region to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint64_t> sample_distinct_ids(Xoshiro256& rng, std::size_t k) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(k * 2);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::uint64_t id = rng.next();
    if (seen.insert(id).second) out.push_back(id);
  }
  return out;
}

}  // namespace ptm
