#include "common/deadline.hpp"

namespace ptm {

Deadline Deadline::after(std::chrono::nanoseconds budget) {
  return Deadline(Clock::now() + budget);
}

Deadline Deadline::at(Clock::time_point when) noexcept {
  return Deadline(when);
}

Deadline Deadline::expired() noexcept {
  // min() is safely comparable but never waited on: admission checks
  // expired_now() before any wait_until.
  return Deadline(Clock::time_point::min());
}

bool Deadline::expired_now() const noexcept {
  return when_.has_value() && Clock::now() >= *when_;
}

std::chrono::nanoseconds Deadline::remaining() const noexcept {
  if (!when_.has_value()) return std::chrono::nanoseconds::max();
  // Compare before subtracting: time_point::min() - now() would underflow.
  const auto now = Clock::now();
  if (now >= *when_) return std::chrono::nanoseconds::zero();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(*when_ - now);
}

}  // namespace ptm
