// env.hpp - environment-variable knobs for the benchmark harness.
//
// The paper averages 1000 simulation runs per table cell; the bench binaries
// default to a lighter count so `for b in build/bench/*; do $b; done` stays
// fast, and let the user scale back up with PTM_RUNS=1000.  All knobs are
// read through this header so they are discoverable in one place:
//
//   PTM_RUNS  - simulation runs averaged per reported cell (default per-bench)
//   PTM_SEED  - master RNG seed (default 20170605, the ICDCS'17 opening day)
//   PTM_CSV   - if set, benches also write <PTM_CSV>/<bench>.csv
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ptm {

/// Value of an environment variable, if set and non-empty.
[[nodiscard]] std::optional<std::string> env_string(const char* name);

/// Integer environment variable; returns `fallback` when unset or
/// unparseable.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Number of simulation runs per reported cell (PTM_RUNS, else `fallback`).
[[nodiscard]] std::size_t bench_runs(std::size_t fallback);

/// Master seed for experiment RNGs (PTM_SEED, else 20170605).
[[nodiscard]] std::uint64_t bench_seed();

/// Directory for CSV mirrors of bench output (PTM_CSV), if requested.
[[nodiscard]] std::optional<std::string> csv_dir();

}  // namespace ptm
