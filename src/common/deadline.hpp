// deadline.hpp - a point in time after which work is not worth finishing.
//
// A planner dashboard that re-issues a query every second has no use for
// an answer that arrives two seconds late; under a query storm, finishing
// stale work is how a server melts.  A Deadline travels with each request
// (query/query_types.hpp) and is consulted at admission, on arrival, and
// at the natural yield points of long multi-location queries - work past
// the deadline is abandoned with ErrorCode::kDeadlineExceeded instead of
// being completed into the void.
//
// Deadlines are wall-budget times on std::chrono::steady_clock (immune to
// clock steps).  A default-constructed Deadline is unbounded: it never
// expires and admission never times out on it, so every pre-deadline call
// site behaves exactly as before.
#pragma once

#include <chrono>
#include <optional>

namespace ptm {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded: never expires.
  constexpr Deadline() noexcept = default;

  /// Expires `budget` from now (non-positive budgets are already expired).
  [[nodiscard]] static Deadline after(std::chrono::nanoseconds budget);

  /// Expires at the given instant.
  [[nodiscard]] static Deadline at(Clock::time_point when) noexcept;

  /// Already expired - for "shed everything" tests and drain paths.
  [[nodiscard]] static Deadline expired() noexcept;

  [[nodiscard]] bool unbounded() const noexcept { return !when_.has_value(); }

  /// True when the instant has passed.  An unbounded deadline never expires.
  [[nodiscard]] bool expired_now() const noexcept;

  /// Time left before expiry, clamped at zero.  Unbounded deadlines report
  /// nanoseconds::max().
  [[nodiscard]] std::chrono::nanoseconds remaining() const noexcept;

  /// The expiry instant - only meaningful when bounded (callers branch on
  /// unbounded() before waiting on this).
  [[nodiscard]] Clock::time_point time_point() const noexcept {
    return when_.value_or(Clock::time_point::max());
  }

 private:
  explicit Deadline(Clock::time_point when) noexcept : when_(when) {}

  std::optional<Clock::time_point> when_;
};

}  // namespace ptm
