// bitmap.hpp - dense bit array, the physical representation of a traffic
// record (paper §II-D).
//
// An RSU's traffic record is an m-bit bitmap; the whole measurement pipeline
// reduces to setting bits, counting zeros, ANDing/ORing equal-sized bitmaps,
// and replicating a bitmap to a larger power-of-two size (§III-A expansion).
// This class provides exactly those operations over packed 64-bit words.
//
// The word loops themselves live in ptm::simd (src/simd/kernels.hpp): a
// runtime-dispatched vtable with scalar / POPCNT / AVX2 / AVX-512 / NEON
// variants.  Bitmap is the bit-level API; every counting and join method
// below routes through simd::active(), so changing the dispatched variant
// changes every estimator's inner loop at once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace ptm {

class Bitmap {
 public:
  /// Empty bitmap (0 bits).
  Bitmap() = default;

  /// All-zero bitmap of `bit_count` bits.
  explicit Bitmap(std::size_t bit_count);

  [[nodiscard]] std::size_t size() const noexcept { return bit_count_; }
  [[nodiscard]] bool empty() const noexcept { return bit_count_ == 0; }

  /// Sets bit `index` to one.  Precondition: index < size().
  void set(std::size_t index) noexcept;

  /// Clears bit `index`.  Precondition: index < size().
  void reset(std::size_t index) noexcept;

  /// Value of bit `index`.  Precondition: index < size().
  [[nodiscard]] bool test(std::size_t index) const noexcept;

  /// Resets every bit to zero (start of a new measurement period).
  void clear() noexcept;

  /// Sets every bit to one (the neutral seed of an AND cascade).
  void set_all() noexcept;

  /// Re-shapes to `bit_count` all-zero bits, reusing the existing word
  /// storage when it is large enough (no allocation then).  This is the
  /// BitmapPool recycling hook; semantically identical to
  /// `*this = Bitmap(bit_count)`.
  void reshape(std::size_t bit_count);

  /// Overwrites this bitmap with `small` replicated to `target_bits`
  /// (in-place counterpart of replicate_to, for pooled buffers).  Requires
  /// a non-empty `small` whose size divides `target_bits`.
  Status assign_replicated(const Bitmap& small, std::size_t target_bits);

  /// Number of one-bits / zero-bits (popcount over words).
  [[nodiscard]] std::size_t count_ones() const noexcept;
  [[nodiscard]] std::size_t count_zeros() const noexcept {
    return bit_count_ - count_ones();
  }

  /// Fraction of bits that are zero (the V_0 of Eq. 1) / one.
  /// Precondition: size() > 0.
  [[nodiscard]] double fraction_zeros() const noexcept;
  [[nodiscard]] double fraction_ones() const noexcept {
    return 1.0 - fraction_zeros();
  }

  /// In-place bitwise AND / OR with an equal-sized bitmap.
  /// Returns InvalidArgument if sizes differ.
  Status and_with(const Bitmap& other) noexcept;
  Status or_with(const Bitmap& other) noexcept;

  /// Tiled (lazy-expansion) joins: in-place AND / OR against the *virtual*
  /// replication of `small` to this bitmap's size (paper Fig. 2).  A
  /// replicated bitmap is periodic, so `word[i] OP= small_word[i mod s]`
  /// applies the join directly - the expanded copy is never materialized
  /// and no allocation happens.  Bit-for-bit identical to
  /// `op_with(*small.replicate_to(size()))`.
  /// Returns InvalidArgument unless small is non-empty and small.size()
  /// divides size() (guaranteed when both are powers of two, Eq. 2).
  Status and_with_tiled(const Bitmap& small) noexcept;
  Status or_with_tiled(const Bitmap& small) noexcept;

  /// Replication expansion (paper Fig. 2): returns a bitmap of
  /// `target_bits` bits consisting of this bitmap repeated
  /// `target_bits / size()` times.  Requires target_bits to be a positive
  /// multiple of size(); the paper guarantees this by making every bitmap
  /// size a power of two (Eq. 2).
  [[nodiscard]] Result<Bitmap> replicate_to(std::size_t target_bits) const;

  /// Raw word access (read-only), for tests and serialization.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Serialization: 8-byte little-endian bit count followed by the packed
  /// words.  `deserialize` validates the length.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Result<Bitmap> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const Bitmap& a, const Bitmap& b) noexcept {
    return a.bit_count_ == b.bit_count_ && a.words_ == b.words_;
  }

 private:
  static constexpr std::size_t kWordBits = 64;

  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }
  /// Mask of valid bits in the final word (all-ones when size is a
  /// multiple of 64).  Maintained so count/compare never see stray bits.
  [[nodiscard]] std::uint64_t tail_mask() const noexcept;

  std::size_t bit_count_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Free-function joins returning a fresh bitmap; sizes must match.
[[nodiscard]] Result<Bitmap> bitmap_and(const Bitmap& a, const Bitmap& b);
[[nodiscard]] Result<Bitmap> bitmap_or(const Bitmap& a, const Bitmap& b);

/// Fused join-and-count kernels: the number of one-bits of the AND (resp.
/// zero-bits of the OR) of the virtual replications of `a` and `b` to
/// `m_bits`, computed word-by-word with zero allocations - no expanded
/// bitmap and no join result is ever built.  These are the innermost loops
/// of every estimator (Eqs. 12/21 and the corridor union).
/// Returns InvalidArgument unless both bitmaps are non-empty and their
/// sizes divide `m_bits`.
[[nodiscard]] Result<std::size_t> tiled_and_count_ones(const Bitmap& a,
                                                       const Bitmap& b,
                                                       std::size_t m_bits);
[[nodiscard]] Result<std::size_t> tiled_or_count_zeros(const Bitmap& a,
                                                       const Bitmap& b,
                                                       std::size_t m_bits);

/// One-bit counts of the virtual replications of `a`, `b`, and of their
/// AND, all at `m_bits` - the whole Eq. 12 measurement triple in a single
/// sweep.  When both operands are already at `m_bits` the three popcounts
/// share one pass over the two word arrays; otherwise the individual
/// counts are scaled from each operand's own size (replication multiplies
/// the one count by the copy factor, exactly) and only the AND is swept.
struct TiledTripleCount {
  std::size_t ones_a = 0;    ///< ones of expand(a, m)
  std::size_t ones_b = 0;    ///< ones of expand(b, m)
  std::size_t ones_and = 0;  ///< ones of expand(a, m) AND expand(b, m)
};
[[nodiscard]] Result<TiledTripleCount> tiled_and_triple_count(
    const Bitmap& a, const Bitmap& b, std::size_t m_bits);

}  // namespace ptm
