// bitmap.hpp - dense bit array, the physical representation of a traffic
// record (paper §II-D).
//
// An RSU's traffic record is an m-bit bitmap; the whole measurement pipeline
// reduces to setting bits, counting zeros, ANDing/ORing equal-sized bitmaps,
// and replicating a bitmap to a larger power-of-two size (§III-A expansion).
// This class provides exactly those operations over packed 64-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace ptm {

class Bitmap {
 public:
  /// Empty bitmap (0 bits).
  Bitmap() = default;

  /// All-zero bitmap of `bit_count` bits.
  explicit Bitmap(std::size_t bit_count);

  [[nodiscard]] std::size_t size() const noexcept { return bit_count_; }
  [[nodiscard]] bool empty() const noexcept { return bit_count_ == 0; }

  /// Sets bit `index` to one.  Precondition: index < size().
  void set(std::size_t index) noexcept;

  /// Clears bit `index`.  Precondition: index < size().
  void reset(std::size_t index) noexcept;

  /// Value of bit `index`.  Precondition: index < size().
  [[nodiscard]] bool test(std::size_t index) const noexcept;

  /// Resets every bit to zero (start of a new measurement period).
  void clear() noexcept;

  /// Number of one-bits / zero-bits (popcount over words).
  [[nodiscard]] std::size_t count_ones() const noexcept;
  [[nodiscard]] std::size_t count_zeros() const noexcept {
    return bit_count_ - count_ones();
  }

  /// Fraction of bits that are zero (the V_0 of Eq. 1) / one.
  /// Precondition: size() > 0.
  [[nodiscard]] double fraction_zeros() const noexcept;
  [[nodiscard]] double fraction_ones() const noexcept {
    return 1.0 - fraction_zeros();
  }

  /// In-place bitwise AND / OR with an equal-sized bitmap.
  /// Returns InvalidArgument if sizes differ.
  Status and_with(const Bitmap& other) noexcept;
  Status or_with(const Bitmap& other) noexcept;

  /// Replication expansion (paper Fig. 2): returns a bitmap of
  /// `target_bits` bits consisting of this bitmap repeated
  /// `target_bits / size()` times.  Requires target_bits to be a positive
  /// multiple of size(); the paper guarantees this by making every bitmap
  /// size a power of two (Eq. 2).
  [[nodiscard]] Result<Bitmap> replicate_to(std::size_t target_bits) const;

  /// Raw word access (read-only), for tests and serialization.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Serialization: 8-byte little-endian bit count followed by the packed
  /// words.  `deserialize` validates the length.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Result<Bitmap> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const Bitmap& a, const Bitmap& b) noexcept {
    return a.bit_count_ == b.bit_count_ && a.words_ == b.words_;
  }

 private:
  static constexpr std::size_t kWordBits = 64;

  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }
  /// Mask of valid bits in the final word (all-ones when size is a
  /// multiple of 64).  Maintained so count/compare never see stray bits.
  [[nodiscard]] std::uint64_t tail_mask() const noexcept;

  std::size_t bit_count_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Free-function joins returning a fresh bitmap; sizes must match.
[[nodiscard]] Result<Bitmap> bitmap_and(const Bitmap& a, const Bitmap& b);
[[nodiscard]] Result<Bitmap> bitmap_or(const Bitmap& a, const Bitmap& b);

}  // namespace ptm
