// config.hpp - key=value configuration parsing for the ptmctl tool and
// scenario files.
//
// Format: one `key = value` per line; `#` starts a comment; blank lines
// ignored; later keys override earlier ones.  Typed getters validate and
// report which key failed, so a user mistyping a scenario file gets a
// pointed error instead of a default silently applied.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace ptm {

class Config {
 public:
  Config() = default;

  /// Parses config text; ParseError names the offending line.
  [[nodiscard]] static Result<Config> parse(std::string_view text);

  /// Loads and parses a file (NotFound / ParseError).
  [[nodiscard]] static Result<Config> load(const std::string& path);

  /// Programmatic set (used by CLI flag overrides: --set key=value).
  void set(std::string key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Raw string (NotFound if absent).
  [[nodiscard]] Result<std::string> get_string(const std::string& key) const;
  /// Typed getters: NotFound if absent, InvalidArgument if unparseable.
  [[nodiscard]] Result<std::uint64_t> get_u64(const std::string& key) const;
  [[nodiscard]] Result<double> get_double(const std::string& key) const;
  [[nodiscard]] Result<bool> get_bool(const std::string& key) const;

  /// Getters with defaults - absent is fine, malformed is still an error.
  [[nodiscard]] Result<std::string> get_string_or(const std::string& key,
                                                  std::string fallback) const;
  [[nodiscard]] Result<std::uint64_t> get_u64_or(const std::string& key,
                                                 std::uint64_t fallback) const;
  [[nodiscard]] Result<double> get_double_or(const std::string& key,
                                             double fallback) const;
  [[nodiscard]] Result<bool> get_bool_or(const std::string& key,
                                         bool fallback) const;

  /// All keys, sorted (for diagnostics / help output).
  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ptm
