#include "common/status.hpp"

namespace ptm {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kFailedPrecondition: return "FailedPrecondition";
    case ErrorCode::kParseError: return "ParseError";
    case ErrorCode::kAuthFailure: return "AuthFailure";
    case ErrorCode::kChannelError: return "ChannelError";
    case ErrorCode::kDegenerate: return "Degenerate";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "Ok";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ptm
