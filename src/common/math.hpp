// math.hpp - integer and floating-point helpers shared across the libraries.
//
// The paper's design leans on two mathematical conventions that recur
// everywhere: bitmap sizes are powers of two (so replication-expansion is
// well defined, Eq. 2), and estimators are ratios of logarithms whose
// arguments must be clamped away from 0 and above 1 to stay finite
// (Eqs. 1, 12, 21).  The helpers here centralize both.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ptm {

/// True iff `x` is a power of two.  Zero is not a power of two.
[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Smallest power of two >= x (x >= 1).  next_power_of_two(1) == 1.
[[nodiscard]] constexpr std::uint64_t next_power_of_two(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  --x;
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  x |= x >> 32;
  return x + 1;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t x) noexcept {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr unsigned ceil_log2(std::uint64_t x) noexcept {
  return is_power_of_two(x) ? floor_log2(x) : floor_log2(x) + 1;
}

/// ceil(a / b) for b > 0.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Natural log with the argument clamped to [floor, 1].  The estimators take
/// logs of zero-bit fractions; an all-ones bitmap would yield log(0) = -inf,
/// so callers clamp to one representable "almost empty" fraction instead and
/// report saturation through their outcome enums.
[[nodiscard]] inline double clamped_log(double v, double floor_value) noexcept {
  if (v < floor_value) v = floor_value;
  if (v > 1.0) v = 1.0;
  return std::log(v);
}

/// ln(1 - 1/m) for m >= 2, computed via log1p for accuracy at large m.
[[nodiscard]] inline double log_one_minus_inv(double m) noexcept {
  return std::log1p(-1.0 / m);
}

/// Relative error |estimate - actual| / actual.  Actual of 0 maps an exact
/// estimate to 0 error, anything else to +inf, matching the paper's metric
/// domain (persistent volumes are positive in every experiment).
[[nodiscard]] inline double relative_error(double estimate, double actual) noexcept {
  if (actual == 0.0) {
    return estimate == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::abs(estimate - actual) / std::abs(actual);
}

/// True iff two doubles agree within an absolute-or-relative epsilon.
[[nodiscard]] inline bool almost_equal(double a, double b, double eps = 1e-9) noexcept {
  const double diff = std::abs(a - b);
  return diff <= eps || diff <= eps * std::max(std::abs(a), std::abs(b));
}

}  // namespace ptm
