// table.hpp - aligned console tables and CSV output for the benchmark
// harness.  Every bench binary reproduces one of the paper's tables or
// figures; TableWriter prints the same rows the paper reports, aligned for
// the console, and can mirror them to CSV for external plotting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ptm {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);

  /// Prints an aligned, ruled table.
  void print(std::ostream& os) const;

  /// Writes headers+rows as RFC-4180-ish CSV (quotes cells containing
  /// commas or quotes).
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Raw cells, for structured (JSON) mirrors of the console table.
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  static std::string csv_escape(const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ptm
