#include "common/parallel.hpp"

#include <algorithm>

namespace ptm {

std::size_t default_parallelism() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 16);
}

void parallel_for_indexed(std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_parallelism();
  threads = std::min(threads, count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (count + threads - 1) / threads;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, count);
    if (begin >= end) break;
    workers.emplace_back([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  for (std::thread& t : workers) t.join();
}

}  // namespace ptm
