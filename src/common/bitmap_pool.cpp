#include "common/bitmap_pool.hpp"

#include <algorithm>

namespace ptm {

BitmapPool::Lease BitmapPool::acquire(std::size_t bits) {
  const std::size_t words_needed = (bits + 63) / 64;
  // Best fit: the smallest retired buffer whose word count covers the
  // request.  reshape() then re-zeroes without touching the allocator.
  const auto it = std::lower_bound(
      free_.begin(), free_.end(), words_needed,
      [](const auto& entry, std::size_t need) { return entry.first < need; });
  if (it != free_.end()) {
    Bitmap b = std::move(it->second);
    free_.erase(it);
    b.reshape(bits);
    ++stats_.reuses;
    stats_.retired = free_.size();
    return Lease(this, std::move(b));
  }
  // No buffer is big enough: grow the largest retired one (its capacity is
  // the closest starting point) or start fresh when the pool is empty.
  ++stats_.allocations;
  if (!free_.empty()) {
    Bitmap b = std::move(free_.back().second);
    free_.pop_back();
    b.reshape(bits);
    stats_.retired = free_.size();
    return Lease(this, std::move(b));
  }
  return Lease(this, Bitmap(bits));
}

void BitmapPool::put_back(Bitmap&& b) noexcept {
  const std::size_t words = (b.size() + 63) / 64;
  if (words == 0) return;
  if (free_.size() >= kMaxRetired) {
    // Full: keep the larger buffers (they are the expensive ones to
    // re-create).  Drop the smallest parked entry if the incoming buffer
    // beats it, else drop the incoming one.
    if (free_.front().first >= words) return;
    free_.erase(free_.begin());
  }
  const auto it = std::lower_bound(
      free_.begin(), free_.end(), words,
      [](const auto& entry, std::size_t w) { return entry.first < w; });
  free_.emplace(it, words, std::move(b));
  stats_.retired = free_.size();
}

void BitmapPool::trim() noexcept {
  free_.clear();
  stats_.retired = 0;
}

BitmapPool& BitmapPool::local() {
  thread_local BitmapPool pool;
  return pool;
}

}  // namespace ptm
