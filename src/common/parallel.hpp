// parallel.hpp - a minimal fork-join helper for the experiment runners.
//
// Every table cell averages independent seeded trials, which is
// embarrassingly parallel.  parallel_for_indexed runs f(i) for i in
// [0, count) across a bounded number of std::threads; the caller keeps
// determinism by deriving each trial's RNG from its index, never from
// thread identity or scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace ptm {

/// Number of worker threads to use by default: hardware concurrency,
/// clamped to [1, 16] (experiment trials are CPU-bound and short).
[[nodiscard]] std::size_t default_parallelism() noexcept;

/// Runs body(i) for every i in [0, count), split contiguously across up to
/// `threads` workers (0 = default_parallelism()).  Blocks until all
/// complete.  The body must only write to index-owned state; no
/// synchronization is provided (by design - trials share nothing).
void parallel_for_indexed(std::size_t count,
                          const std::function<void(std::size_t)>& body,
                          std::size_t threads = 0);

}  // namespace ptm
