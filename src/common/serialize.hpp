// serialize.hpp - little-endian byte-buffer reader/writer used by the V2I
// message codecs, certificates, and record uploads.
//
// All on-the-wire integers in this project are fixed-width little-endian;
// variable-length fields are length-prefixed with a u32.  The reader is
// bounds-checked and returns ParseError rather than asserting, because its
// inputs cross the (simulated) trust boundary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace ptm {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v, 2); }
  void u32(std::uint32_t v) { append_le(v, 4); }
  void u64(std::uint64_t v) { append_le(v, 8); }
  void f64(double v);

  /// Length-prefixed (u32) byte blob.
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix (caller knows the framing).
  void raw(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void append_le(std::uint64_t v, int bytes_count) {
    for (int i = 0; i < bytes_count; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<double> f64();
  /// Length-prefixed blob (u32 length).
  [[nodiscard]] Result<std::vector<std::uint8_t>> bytes();
  /// Length-prefixed UTF-8 string.
  [[nodiscard]] Result<std::string> str();
  /// Exactly `n` raw bytes.
  [[nodiscard]] Result<std::vector<std::uint8_t>> raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  [[nodiscard]] Result<std::uint64_t> read_le(int bytes_count);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ptm
