// stats.hpp - statistics accumulators used by the experiment harness.
//
// Every table/figure in the paper reports either a mean relative error over
// many simulation runs (Table I, Fig. 4) or raw (actual, estimated) pairs
// (Figs. 5-6).  RunningStats implements Welford's online algorithm so means
// and variances are numerically stable over thousands of trials.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ptm {

/// Online mean / variance / min / max accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean: stddev / sqrt(n).
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-th percentile (0 <= p <= 100) by linear interpolation on a copy of the
/// data.  Returns 0 for empty input.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Root-mean-square error between paired vectors (equal, non-zero length).
[[nodiscard]] double rmse(const std::vector<double>& estimates,
                          const std::vector<double>& actuals);

/// Ordinary least-squares fit y = a*x + b; returns {slope, intercept, r2}.
/// Used to summarize the Fig. 5/6 scatter plots (a perfect estimator gives
/// slope 1, intercept 0, r2 1).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit least_squares(const std::vector<double>& x,
                                      const std::vector<double>& y);

}  // namespace ptm
