#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ptm {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double rmse(const std::vector<double>& estimates,
            const std::vector<double>& actuals) {
  assert(estimates.size() == actuals.size() && !estimates.empty());
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    const double d = estimates[i] - actuals[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(estimates.size()));
}

LinearFit least_squares(const std::vector<double>& x,
                        const std::vector<double>& y) {
  assert(x.size() == y.size() && x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;  // vertical line; leave zeros
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double r = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

}  // namespace ptm
