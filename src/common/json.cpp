#include "common/json.hpp"

#include <cstdio>

namespace ptm {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ptm
