#include "common/table.hpp"

#include <cassert>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace ptm {

void TableWriter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::fmt(std::uint64_t v) { return std::to_string(v); }
std::string TableWriter::fmt(std::int64_t v) { return std::to_string(v); }

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };
  print_rule();
  print_cells(headers_);
  print_rule();
  for (const auto& row : rows_) print_cells(row);
  print_rule();
}

std::string TableWriter::csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void TableWriter::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace ptm
