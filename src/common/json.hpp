// json.hpp - minimal JSON string escaping shared by every hand-rolled
// JSON emitter in the tree (bench harness, loadgen's ptm-bench-v1
// documents, the telemetry exporter).
//
// The emitters build documents with ostream inserts, which is fine until
// an interpolated string carries a quote or backslash - a git revision
// with a dirty-tree suffix, a bench label, a telemetry label value - and
// the document stops parsing.  Escaping must happen at every string
// insertion point, so the helper lives in ptm_common where all of them
// can reach it.
#pragma once

#include <string>
#include <string_view>

namespace ptm {

/// Escapes `s` for inclusion inside a double-quoted JSON string literal:
/// `"` and `\` are backslash-escaped, `\n`/`\t`/`\r` use their short
/// forms, and every other control byte (< 0x20) becomes `\u00XX`.  The
/// surrounding quotes are the caller's.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ptm
