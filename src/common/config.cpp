#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ptm {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<Config> Config::parse(std::string_view text) {
  Config config;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++line_number;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status{ErrorCode::kParseError,
                    "line " + std::to_string(line_number) +
                        ": expected key = value"};
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status{ErrorCode::kParseError,
                    "line " + std::to_string(line_number) + ": empty key"};
    }
    config.values_[std::string(key)] = std::string(value);
  }
  return config;
}

Result<Config> Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status{ErrorCode::kNotFound, "cannot open config file: " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

Result<std::string> Config::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return Status{ErrorCode::kNotFound, "missing config key: " + key};
  }
  return it->second;
}

Result<std::uint64_t> Config::get_u64(const std::string& key) const {
  auto raw = get_string(key);
  if (!raw) return raw.status();
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') {
    return Status{ErrorCode::kInvalidArgument,
                  "config key " + key + " is not an integer: " + *raw};
  }
  return static_cast<std::uint64_t>(v);
}

Result<double> Config::get_double(const std::string& key) const {
  auto raw = get_string(key);
  if (!raw) return raw.status();
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') {
    return Status{ErrorCode::kInvalidArgument,
                  "config key " + key + " is not a number: " + *raw};
  }
  return v;
}

Result<bool> Config::get_bool(const std::string& key) const {
  auto raw = get_string(key);
  if (!raw) return raw.status();
  std::string lower = *raw;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return Status{ErrorCode::kInvalidArgument,
                "config key " + key + " is not a boolean: " + *raw};
}

Result<std::string> Config::get_string_or(const std::string& key,
                                          std::string fallback) const {
  if (!has(key)) return fallback;
  return get_string(key);
}

Result<std::uint64_t> Config::get_u64_or(const std::string& key,
                                         std::uint64_t fallback) const {
  if (!has(key)) return fallback;
  return get_u64(key);
}

Result<double> Config::get_double_or(const std::string& key,
                                     double fallback) const {
  if (!has(key)) return fallback;
  return get_double(key);
}

Result<bool> Config::get_bool_or(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  return get_bool(key);
}

}  // namespace ptm
