#include "common/env.hpp"

#include <cstdlib>

namespace ptm {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

std::size_t bench_runs(std::size_t fallback) {
  return static_cast<std::size_t>(env_u64("PTM_RUNS", fallback));
}

std::uint64_t bench_seed() { return env_u64("PTM_SEED", 20170605ULL); }

std::optional<std::string> csv_dir() { return env_string("PTM_CSV"); }

}  // namespace ptm
