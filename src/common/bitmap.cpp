#include "common/bitmap.hpp"

#include <bit>
#include <cassert>
#include <cstring>

#include "common/math.hpp"
#include "simd/kernels.hpp"

namespace ptm {

Bitmap::Bitmap(std::size_t bit_count)
    : bit_count_(bit_count), words_(ceil_div(bit_count, kWordBits), 0) {}

void Bitmap::set(std::size_t index) noexcept {
  assert(index < bit_count_);
  words_[index / kWordBits] |= (1ULL << (index % kWordBits));
}

void Bitmap::reset(std::size_t index) noexcept {
  assert(index < bit_count_);
  words_[index / kWordBits] &= ~(1ULL << (index % kWordBits));
}

bool Bitmap::test(std::size_t index) const noexcept {
  assert(index < bit_count_);
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1ULL;
}

void Bitmap::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0ULL);
}

void Bitmap::set_all() noexcept {
  simd::active().fill(words_.data(), ~0ULL, words_.size());
  if (!words_.empty()) words_.back() &= tail_mask();
}

void Bitmap::reshape(std::size_t bit_count) {
  bit_count_ = bit_count;
  words_.assign(ceil_div(bit_count, kWordBits), 0ULL);
}

Status Bitmap::assign_replicated(const Bitmap& small,
                                 std::size_t target_bits) {
  if (small.bit_count_ == 0 || target_bits == 0 ||
      target_bits % small.bit_count_ != 0) {
    return {ErrorCode::kInvalidArgument,
            "replication target must be a positive multiple of the source "
            "size"};
  }
  const std::size_t copies = target_bits / small.bit_count_;
  if (small.bit_count_ % kWordBits == 0) {
    bit_count_ = target_bits;
    words_.resize(copies * small.words_.size());
    simd::active().replicate(words_.data(), small.words_.data(),
                             small.words_.size(), copies);
    return Status::ok();
  }
  reshape(target_bits);
  for (std::size_t i = 0; i < small.bit_count_; ++i) {
    if (!small.test(i)) continue;
    for (std::size_t c = 0; c < copies; ++c) set(c * small.bit_count_ + i);
  }
  return Status::ok();
}

std::uint64_t Bitmap::tail_mask() const noexcept {
  const std::size_t rem = bit_count_ % kWordBits;
  return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
}

std::size_t Bitmap::count_ones() const noexcept {
  // Tail bits beyond size() are zero by class invariant, so the raw word
  // sweep needs no mask.
  return simd::active().popcount(words_.data(), words_.size());
}

double Bitmap::fraction_zeros() const noexcept {
  assert(bit_count_ > 0);
  return static_cast<double>(count_zeros()) / static_cast<double>(bit_count_);
}

namespace {

/// A sub-word bitmap (size dividing 64) replicated across one 64-bit word.
std::uint64_t pattern_word(const Bitmap& src) noexcept {
  const auto words = src.words();
  const std::uint64_t base = words.empty() ? 0 : words[0];
  std::uint64_t pattern = 0;
  for (std::size_t off = 0; off < 64; off += src.size()) {
    pattern |= base << off;
  }
  return pattern;
}

/// Sequential word stream of the virtual replication of `src` to a larger
/// bit count - the i-th next() call yields word i.  Three shapes, all
/// allocation-free:
///  * word-aligned source (size % 64 == 0): a wrapping cursor over the
///    source words - one load plus a predictable branch per word;
///  * sub-word source dividing 64: one precomputed pattern word serves
///    every position (the replication period divides the word width);
///  * any other divisor: per-bit gather (correct but slow; unreachable
///    with the project's power-of-two sizes).
class TileReader {
 public:
  explicit TileReader(const Bitmap& src) noexcept
      : words_(src.words()), s_bits_(src.size()), src_(&src) {
    if (s_bits_ % 64 == 0) {
      mode_ = Mode::kAligned;
    } else if (64 % s_bits_ == 0) {
      mode_ = Mode::kPattern;
      pattern_ = pattern_word(src);
    } else {
      mode_ = Mode::kGather;
    }
  }

  [[nodiscard]] std::uint64_t next() noexcept {
    switch (mode_) {
      case Mode::kAligned: {
        const std::uint64_t w = words_[cursor_];
        if (++cursor_ == words_.size()) cursor_ = 0;
        return w;
      }
      case Mode::kPattern:
        return pattern_;
      case Mode::kGather:
      default: {
        std::uint64_t w = 0;
        const std::size_t base_bit = word_index_++ * 64;
        for (std::size_t j = 0; j < 64; ++j) {
          if (src_->test((base_bit + j) % s_bits_)) w |= 1ULL << j;
        }
        return w;
      }
    }
  }

 private:
  enum class Mode { kAligned, kPattern, kGather };
  std::span<const std::uint64_t> words_;
  std::size_t s_bits_;
  const Bitmap* src_;
  std::uint64_t pattern_ = 0;
  std::size_t cursor_ = 0;
  std::size_t word_index_ = 0;
  Mode mode_ = Mode::kAligned;
};

Status check_tile_operand(std::size_t small_bits,
                          std::size_t target_bits) noexcept {
  if (small_bits == 0 || target_bits == 0 ||
      target_bits % small_bits != 0) {
    return {ErrorCode::kInvalidArgument,
            "tiled join needs a non-empty operand whose size divides the "
            "target size"};
  }
  return Status::ok();
}

}  // namespace

Status Bitmap::and_with_tiled(const Bitmap& small) noexcept {
  if (Status s = check_tile_operand(small.bit_count_, bit_count_);
      !s.is_ok()) {
    return s;
  }
  if (small.bit_count_ == bit_count_) return and_with(small);
  if (small.bit_count_ % kWordBits == 0) {
    // Word-aligned tile: the kernel folds the periodic source in
    // contiguous period-sized runs.
    simd::active().and_tiled(words_.data(), words_.size(),
                             small.words().data(), small.words().size());
  } else if (kWordBits % small.bit_count_ == 0) {
    const std::uint64_t pattern = pattern_word(small);
    for (std::uint64_t& w : words_) w &= pattern;
  } else {
    TileReader tile(small);
    for (std::uint64_t& w : words_) w &= tile.next();
  }
  // Our own tail bits were zero and AND keeps them zero: invariant holds.
  return Status::ok();
}

Status Bitmap::or_with_tiled(const Bitmap& small) noexcept {
  if (Status s = check_tile_operand(small.bit_count_, bit_count_);
      !s.is_ok()) {
    return s;
  }
  if (small.bit_count_ == bit_count_) return or_with(small);
  if (small.bit_count_ % kWordBits == 0) {
    simd::active().or_tiled(words_.data(), words_.size(),
                            small.words().data(), small.words().size());
  } else if (kWordBits % small.bit_count_ == 0) {
    const std::uint64_t pattern = pattern_word(small);
    for (std::uint64_t& w : words_) w |= pattern;
  } else {
    TileReader tile(small);
    for (std::uint64_t& w : words_) w |= tile.next();
  }
  // A sub-word pattern fills all 64 bits; re-zero anything past size().
  if (!words_.empty()) words_.back() &= tail_mask();
  return Status::ok();
}

Status Bitmap::and_with(const Bitmap& other) noexcept {
  if (other.bit_count_ != bit_count_) {
    return {ErrorCode::kInvalidArgument, "bitmap sizes differ in AND"};
  }
  simd::active().and_inplace(words_.data(), other.words_.data(),
                             words_.size());
  return Status::ok();
}

Status Bitmap::or_with(const Bitmap& other) noexcept {
  if (other.bit_count_ != bit_count_) {
    return {ErrorCode::kInvalidArgument, "bitmap sizes differ in OR"};
  }
  simd::active().or_inplace(words_.data(), other.words_.data(),
                            words_.size());
  return Status::ok();
}

Result<Bitmap> Bitmap::replicate_to(std::size_t target_bits) const {
  if (bit_count_ == 0) {
    return Status{ErrorCode::kFailedPrecondition,
                  "cannot expand an empty bitmap"};
  }
  if (target_bits % bit_count_ != 0 || target_bits == 0) {
    return Status{ErrorCode::kInvalidArgument,
                  "expansion target must be a positive multiple of the size"};
  }
  // The common case in this project is word-aligned (sizes are powers of two
  // >= 64), where replication appends whole source words; the append fills
  // every word, so the usual zero-initializing construction would write the
  // buffer twice.  Fall back to bit-by-bit for small or unaligned sizes.
  const std::size_t copies = target_bits / bit_count_;
  if (bit_count_ % kWordBits == 0) {
    Bitmap out;
    out.bit_count_ = target_bits;
    out.words_.reserve(copies * words_.size());
    for (std::size_t c = 0; c < copies; ++c) {
      out.words_.insert(out.words_.end(), words_.begin(), words_.end());
    }
    return out;
  }
  Bitmap out(target_bits);
  for (std::size_t i = 0; i < bit_count_; ++i) {
    if (!test(i)) continue;
    for (std::size_t c = 0; c < copies; ++c) out.set(c * bit_count_ + i);
  }
  return out;
}

std::vector<std::uint8_t> Bitmap::serialize() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(8 + words_.size() * 8);
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(bit_count_ >> (8 * i)));
  }
  for (std::uint64_t w : words_) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }
  return bytes;
}

Result<Bitmap> Bitmap::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8) {
    return Status{ErrorCode::kParseError, "bitmap header truncated"};
  }
  std::uint64_t bit_count = 0;
  for (int i = 0; i < 8; ++i) {
    bit_count |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  const std::uint64_t expected_words = ceil_div(bit_count, kWordBits);
  if (bytes.size() != 8 + expected_words * 8) {
    return Status{ErrorCode::kParseError, "bitmap body length mismatch"};
  }
  Bitmap out(static_cast<std::size_t>(bit_count));
  for (std::size_t w = 0; w < expected_words; ++w) {
    std::uint64_t word = 0;
    for (int i = 0; i < 8; ++i) {
      word |= static_cast<std::uint64_t>(bytes[8 + w * 8 + i]) << (8 * i);
    }
    out.words_[w] = word;
  }
  if (expected_words > 0 &&
      (out.words_.back() & ~out.tail_mask()) != 0) {
    return Status{ErrorCode::kParseError, "stray bits beyond bitmap size"};
  }
  return out;
}

Result<Bitmap> bitmap_and(const Bitmap& a, const Bitmap& b) {
  Bitmap out = a;
  if (Status s = out.and_with(b); !s.is_ok()) return s;
  return out;
}

Result<Bitmap> bitmap_or(const Bitmap& a, const Bitmap& b) {
  Bitmap out = a;
  if (Status s = out.or_with(b); !s.is_ok()) return s;
  return out;
}

namespace {

Result<std::size_t> tiled_count(const Bitmap& a, const Bitmap& b,
                                std::size_t m_bits, bool is_and) {
  if (a.empty() || b.empty() || m_bits == 0 || m_bits % a.size() != 0 ||
      m_bits % b.size() != 0) {
    return Status{ErrorCode::kInvalidArgument,
                  "fused count needs non-empty bitmaps whose sizes divide "
                  "the target size"};
  }
  const std::size_t n_words = ceil_div(m_bits, std::size_t{64});
  const simd::Kernels& kernels = simd::active();

  // Fast path 1: both operands already at the target size - one fused
  // op+count sweep (this is the split-stats shape: two half joins at m).
  // Both operands keep their tails zero by Bitmap invariant, so the raw
  // word sweep needs no mask.
  if (a.size() == m_bits && b.size() == m_bits) {
    const auto wa = a.words();
    const auto wb = b.words();
    return is_and ? kernels.and_count(wa.data(), wb.data(), n_words)
                  : kernels.or_count(wa.data(), wb.data(), n_words);
  }

  // Fast path 2: one full-size operand, one word-aligned smaller one -
  // blocked runs over the smaller period (the p2p second-level shape).
  // Word alignment of the smaller size forces m_bits % 64 == 0: no tail.
  const Bitmap* full = nullptr;
  const Bitmap* part = nullptr;
  if (a.size() == m_bits && b.size() % 64 == 0) {
    full = &a;
    part = &b;
  } else if (b.size() == m_bits && a.size() % 64 == 0) {
    full = &b;
    part = &a;
  }
  if (full != nullptr) {
    const auto wf = full->words();
    const auto wp = part->words();
    return is_and
               ? kernels.and_tiled_count(wf.data(), n_words, wp.data(),
                                         wp.size())
               : kernels.or_tiled_count(wf.data(), n_words, wp.data(),
                                        wp.size());
  }

  // General case: stream both virtual expansions word by word (sub-word
  // sizes only; unreachable with the project's power-of-two >= 64 maps).
  const std::size_t rem = m_bits % 64;
  const std::uint64_t last_mask = rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  std::size_t ones = 0;
  TileReader tile_a(a);
  TileReader tile_b(b);
  for (std::size_t i = 0; i < n_words; ++i) {
    const std::uint64_t x = tile_a.next();
    const std::uint64_t y = tile_b.next();
    std::uint64_t w = is_and ? (x & y) : (x | y);
    if (i + 1 == n_words) w &= last_mask;
    ones += static_cast<std::size_t>(std::popcount(w));
  }
  return ones;
}

}  // namespace

Result<std::size_t> tiled_and_count_ones(const Bitmap& a, const Bitmap& b,
                                         std::size_t m_bits) {
  return tiled_count(a, b, m_bits, /*is_and=*/true);
}

Result<std::size_t> tiled_or_count_zeros(const Bitmap& a, const Bitmap& b,
                                         std::size_t m_bits) {
  auto ones = tiled_count(a, b, m_bits, /*is_and=*/false);
  if (!ones) return ones.status();
  return m_bits - *ones;
}

Result<TiledTripleCount> tiled_and_triple_count(const Bitmap& a,
                                                const Bitmap& b,
                                                std::size_t m_bits) {
  if (a.empty() || b.empty() || m_bits == 0 || m_bits % a.size() != 0 ||
      m_bits % b.size() != 0) {
    return Status{ErrorCode::kInvalidArgument,
                  "fused count needs non-empty bitmaps whose sizes divide "
                  "the target size"};
  }
  TiledTripleCount out;
  if (a.size() == m_bits && b.size() == m_bits) {
    // The split-stats shape: both half joins at m.  One kernel sweep over
    // the two word arrays yields all three popcounts; tails are zero by
    // Bitmap invariant, so no mask is needed.
    const std::size_t n_words = ceil_div(m_bits, std::size_t{64});
    const simd::TripleCount t =
        simd::active().triple_count(a.words().data(), b.words().data(),
                                    n_words);
    out.ones_a = t.ones_a;
    out.ones_b = t.ones_b;
    out.ones_and = t.ones_and;
    return out;
  }
  // Mixed sizes: replication multiplies the one count by the (integral)
  // copy factor, so the individual counts come from each operand's own
  // size; only the AND needs a tiled sweep.
  out.ones_a = a.count_ones() * (m_bits / a.size());
  out.ones_b = b.count_ones() * (m_bits / b.size());
  auto ones = tiled_and_count_ones(a, b, m_bits);
  if (!ones) return ones.status();
  out.ones_and = *ones;
  return out;
}

}  // namespace ptm
