#include "common/bitmap.hpp"

#include <bit>
#include <cassert>
#include <cstring>

#include "common/math.hpp"

namespace ptm {

Bitmap::Bitmap(std::size_t bit_count)
    : bit_count_(bit_count), words_(ceil_div(bit_count, kWordBits), 0) {}

void Bitmap::set(std::size_t index) noexcept {
  assert(index < bit_count_);
  words_[index / kWordBits] |= (1ULL << (index % kWordBits));
}

void Bitmap::reset(std::size_t index) noexcept {
  assert(index < bit_count_);
  words_[index / kWordBits] &= ~(1ULL << (index % kWordBits));
}

bool Bitmap::test(std::size_t index) const noexcept {
  assert(index < bit_count_);
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1ULL;
}

void Bitmap::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0ULL);
}

std::uint64_t Bitmap::tail_mask() const noexcept {
  const std::size_t rem = bit_count_ % kWordBits;
  return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
}

std::size_t Bitmap::count_ones() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += std::popcount(w);
  return total;
}

double Bitmap::fraction_zeros() const noexcept {
  assert(bit_count_ > 0);
  return static_cast<double>(count_zeros()) / static_cast<double>(bit_count_);
}

Status Bitmap::and_with(const Bitmap& other) noexcept {
  if (other.bit_count_ != bit_count_) {
    return {ErrorCode::kInvalidArgument, "bitmap sizes differ in AND"};
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return Status::ok();
}

Status Bitmap::or_with(const Bitmap& other) noexcept {
  if (other.bit_count_ != bit_count_) {
    return {ErrorCode::kInvalidArgument, "bitmap sizes differ in OR"};
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return Status::ok();
}

Result<Bitmap> Bitmap::replicate_to(std::size_t target_bits) const {
  if (bit_count_ == 0) {
    return Status{ErrorCode::kFailedPrecondition,
                  "cannot expand an empty bitmap"};
  }
  if (target_bits % bit_count_ != 0 || target_bits == 0) {
    return Status{ErrorCode::kInvalidArgument,
                  "expansion target must be a positive multiple of the size"};
  }
  Bitmap out(target_bits);
  // The common case in this project is word-aligned (sizes are powers of two
  // >= 64), where replication is a memcpy of whole words; fall back to
  // bit-by-bit for small or unaligned sizes.
  const std::size_t copies = target_bits / bit_count_;
  if (bit_count_ % kWordBits == 0) {
    const std::size_t src_words = words_.size();
    for (std::size_t c = 0; c < copies; ++c) {
      std::memcpy(out.words_.data() + c * src_words, words_.data(),
                  src_words * sizeof(std::uint64_t));
    }
  } else {
    for (std::size_t i = 0; i < bit_count_; ++i) {
      if (!test(i)) continue;
      for (std::size_t c = 0; c < copies; ++c) out.set(c * bit_count_ + i);
    }
  }
  return out;
}

std::vector<std::uint8_t> Bitmap::serialize() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(8 + words_.size() * 8);
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(bit_count_ >> (8 * i)));
  }
  for (std::uint64_t w : words_) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }
  return bytes;
}

Result<Bitmap> Bitmap::deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8) {
    return Status{ErrorCode::kParseError, "bitmap header truncated"};
  }
  std::uint64_t bit_count = 0;
  for (int i = 0; i < 8; ++i) {
    bit_count |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  const std::uint64_t expected_words = ceil_div(bit_count, kWordBits);
  if (bytes.size() != 8 + expected_words * 8) {
    return Status{ErrorCode::kParseError, "bitmap body length mismatch"};
  }
  Bitmap out(static_cast<std::size_t>(bit_count));
  for (std::size_t w = 0; w < expected_words; ++w) {
    std::uint64_t word = 0;
    for (int i = 0; i < 8; ++i) {
      word |= static_cast<std::uint64_t>(bytes[8 + w * 8 + i]) << (8 * i);
    }
    out.words_[w] = word;
  }
  if (expected_words > 0 &&
      (out.words_.back() & ~out.tail_mask()) != 0) {
    return Status{ErrorCode::kParseError, "stray bits beyond bitmap size"};
  }
  return out;
}

Result<Bitmap> bitmap_and(const Bitmap& a, const Bitmap& b) {
  Bitmap out = a;
  if (Status s = out.and_with(b); !s.is_ok()) return s;
  return out;
}

Result<Bitmap> bitmap_or(const Bitmap& a, const Bitmap& b) {
  Bitmap out = a;
  if (Status s = out.or_with(b); !s.is_ok()) return s;
  return out;
}

}  // namespace ptm
