// bitmap_pool.hpp - thread-local recycling arena for temporary bitmaps.
//
// Every non-trivial query allocates scratch bitmaps: join-cascade
// accumulators, replication upgrades, the Eq. 12 folded halves, the
// corridor union.  Their sizes repeat run after run (Eq. 2 quantizes every
// record to a power of two), so the allocator sees the same handful of
// large requests over and over.  BitmapPool keeps retired word buffers and
// re-shapes them in place: in steady state a query's temporaries perform
// zero heap allocations.
//
// The pool is deliberately thread-local (`BitmapPool::local()`): the query
// service runs shard work on worker threads, and a per-thread free list
// needs no locks and keeps buffers NUMA-node-local to the thread that
// touches them.  Leases are RAII and must not cross threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitmap.hpp"

namespace ptm {

class BitmapPool {
 public:
  /// RAII handle over a pooled bitmap: returns the buffer to the pool on
  /// destruction.  Move-only; `detach()` steals the bitmap out of pool
  /// circulation for results that escape.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          bitmap_(std::move(other.bitmap_)) {}
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        bitmap_ = std::move(other.bitmap_);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] Bitmap& operator*() noexcept { return bitmap_; }
    [[nodiscard]] const Bitmap& operator*() const noexcept { return bitmap_; }
    [[nodiscard]] Bitmap* operator->() noexcept { return &bitmap_; }
    [[nodiscard]] const Bitmap* operator->() const noexcept {
      return &bitmap_;
    }
    [[nodiscard]] Bitmap& get() noexcept { return bitmap_; }

    /// Steals the bitmap; the buffer leaves the pool for good (use when a
    /// pooled intermediate becomes the returned result).
    [[nodiscard]] Bitmap detach() noexcept {
      pool_ = nullptr;
      return std::move(bitmap_);
    }

   private:
    friend class BitmapPool;
    Lease(BitmapPool* pool, Bitmap bitmap) noexcept
        : pool_(pool), bitmap_(std::move(bitmap)) {}
    void release() noexcept {
      if (pool_ != nullptr) {
        pool_->put_back(std::move(bitmap_));
        pool_ = nullptr;
      }
    }

    BitmapPool* pool_ = nullptr;
    Bitmap bitmap_;
  };

  BitmapPool() = default;
  BitmapPool(const BitmapPool&) = delete;
  BitmapPool& operator=(const BitmapPool&) = delete;

  /// An all-zero bitmap of `bits` bits, backed by a retired buffer when one
  /// with enough capacity is available (best fit; no allocation then).
  [[nodiscard]] Lease acquire(std::size_t bits);

  /// Cumulative behaviour counters (exported through ServiceMetrics).
  struct Stats {
    std::uint64_t reuses = 0;       ///< acquire served without allocating
    std::uint64_t allocations = 0;  ///< acquire had to grow or start fresh
    std::uint64_t retired = 0;      ///< buffers currently parked in the pool
  };
  [[nodiscard]] Stats stats() const noexcept { return stats_; }

  /// Drops every retired buffer (tests; memory pressure).
  void trim() noexcept;

  /// The calling thread's pool - the default arena for query temporaries.
  [[nodiscard]] static BitmapPool& local();

 private:
  friend class Lease;

  void put_back(Bitmap&& b) noexcept;

  /// Retired buffers with their word counts at release time (a lower bound
  /// on vector capacity), kept sorted ascending for best-fit lookup.
  std::vector<std::pair<std::size_t, Bitmap>> free_;
  Stats stats_;

  /// Retention cap: beyond this many parked buffers the smallest is
  /// dropped - bounds worst-case idle memory to ~kMaxRetired large maps.
  static constexpr std::size_t kMaxRetired = 32;
};

}  // namespace ptm
