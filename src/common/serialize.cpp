#include "common/serialize.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace ptm {

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Result<std::uint64_t> ByteReader::read_le(int bytes_count) {
  if (remaining() < static_cast<std::size_t>(bytes_count)) {
    return Status{ErrorCode::kParseError, "buffer underrun"};
  }
  std::uint64_t v = 0;
  for (int i = 0; i < bytes_count; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += static_cast<std::size_t>(bytes_count);
  return v;
}

Result<std::uint8_t> ByteReader::u8() {
  auto r = read_le(1);
  if (!r) return r.status();
  return static_cast<std::uint8_t>(*r);
}

Result<std::uint16_t> ByteReader::u16() {
  auto r = read_le(2);
  if (!r) return r.status();
  return static_cast<std::uint16_t>(*r);
}

Result<std::uint32_t> ByteReader::u32() {
  auto r = read_le(4);
  if (!r) return r.status();
  return static_cast<std::uint32_t>(*r);
}

Result<std::uint64_t> ByteReader::u64() { return read_le(8); }

Result<double> ByteReader::f64() {
  auto r = read_le(8);
  if (!r) return r.status();
  double v;
  const std::uint64_t bits = *r;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::vector<std::uint8_t>> ByteReader::bytes() {
  auto len = u32();
  if (!len) return len.status();
  return raw(*len);
}

Result<std::string> ByteReader::str() {
  auto blob = bytes();
  if (!blob) return blob.status();
  return std::string(blob->begin(), blob->end());
}

Result<std::vector<std::uint8_t>> ByteReader::raw(std::size_t n) {
  if (remaining() < n) {
    return Status{ErrorCode::kParseError, "buffer underrun in raw read"};
  }
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace ptm
