// crc32.hpp - CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the record-log file format to detect corruption of stored traffic
// records; table-driven, one table built at static-init time.
#pragma once

#include <cstdint>
#include <span>

namespace ptm {

/// CRC-32 of a byte span (init 0xFFFFFFFF, final xor 0xFFFFFFFF - the
/// standard zlib-compatible convention).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Incremental form: feed `crc` from a previous call (or crc32_init()).
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept {
  return 0xFFFFFFFFu;
}
[[nodiscard]] std::uint32_t crc32_update(
    std::uint32_t crc, std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] constexpr std::uint32_t crc32_finish(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ptm
