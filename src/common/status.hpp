// status.hpp - lightweight error handling primitives for the ptm libraries.
//
// The libraries in this project are used both from long-running simulations
// and from command-line tools; exceptions are reserved for programming errors
// (violated preconditions), while expected runtime failures (malformed
// messages, failed signature checks, degenerate estimator inputs) travel as
// values through `Status` / `Result<T>`.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ptm {

/// Coarse category of a failure.  Keep this list short: callers branch on it,
/// humans read the message.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something structurally wrong
  kOutOfRange,        ///< index / size outside the valid domain
  kFailedPrecondition,///< object not in a state where the call makes sense
  kParseError,        ///< malformed serialized input
  kAuthFailure,       ///< certificate / signature verification failed
  kChannelError,      ///< simulated network refused or lost the payload
  kDegenerate,        ///< estimator input admits no finite estimate
  kNotFound,          ///< lookup missed
  kInternal,          ///< invariant broke; indicates a bug in this library
  kDeadlineExceeded,  ///< the caller's deadline passed before completion
  kResourceExhausted, ///< load shed: in-flight bound and admission queue full
};

/// Human-readable name of an ErrorCode ("InvalidArgument", ...).
std::string_view error_code_name(ErrorCode code) noexcept;

/// A success-or-error value.  Default construction is success.
class Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  [[nodiscard]] std::string to_string() const;

  explicit operator bool() const noexcept { return is_ok(); }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Either a value of type T or a Status describing why there is none.
/// The contained Status is never `ok` when the value is absent.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors
  // absl::StatusOr ergonomics.
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).is_ok() &&
           "Result constructed from an ok Status carries no value");
  }
  Result(ErrorCode code, std::string message)
      : data_(Status(code, std::move(message))) {}

  [[nodiscard]] bool has_value() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return has_value(); }

  /// Status of the operation; `ok` iff a value is present.
  [[nodiscard]] Status status() const {
    if (has_value()) return Status::ok();
    return std::get<Status>(data_);
  }

  /// Precondition: has_value().
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<T>(data_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace ptm
