// hash_suite.hpp - pluggable instantiation of the paper's hash function H.
//
// §II-D only requires H to "provide good randomness"; the estimators'
// correctness rests on H being uniform, not on any particular family.  The
// suite exposes the three families implemented in this library behind one
// switch so experiments (and tests) can confirm the results are
// hash-agnostic.
#pragma once

#include <cstdint>
#include <string_view>

#include "hash/murmur3.hpp"
#include "hash/siphash.hpp"
#include "hash/xxhash.hpp"

namespace ptm {

enum class HashFamily {
  kMurmur3,  ///< MurmurHash3 x64_128 low half (default)
  kXxHash,   ///< XXH64
  kSipHash,  ///< SipHash-2-4 (keyed PRF; seed splits into the 128-bit key)
};

[[nodiscard]] std::string_view hash_family_name(HashFamily family) noexcept;

/// 64-bit hash of a 64-bit value under the chosen family and seed.
/// This is the `H` of the paper's encoding h_v = H(...) mod m.
[[nodiscard]] inline std::uint64_t hash64(HashFamily family,
                                          std::uint64_t value,
                                          std::uint64_t seed) noexcept {
  switch (family) {
    case HashFamily::kMurmur3:
      return murmur3_64(value, static_cast<std::uint32_t>(seed));
    case HashFamily::kXxHash:
      return xxhash64(value, seed);
    case HashFamily::kSipHash:
      // Derive a 128-bit key from the seed; SplitMix-style constants keep
      // the two halves decorrelated.
      return siphash24(value, seed, seed * 0x9e3779b97f4a7c15ULL + 1);
  }
  return 0;  // unreachable
}

/// Bit-mixing quality measure used by the hash property tests: flips each
/// input bit of `trials` random values and returns the mean fraction of
/// output bits that flip (ideal: 0.5).
[[nodiscard]] double avalanche_score(HashFamily family, std::uint64_t seed,
                                     int trials);

}  // namespace ptm
