// xxhash.hpp - XXH64 (Yann Collet, BSD), from-scratch implementation.
//
// Provided as an alternative instantiation of the paper's hash `H`; the
// hash suite can swap it in to confirm the estimators are insensitive to the
// particular hash family (any uniform hash works, per §II-D).
#pragma once

#include <cstdint>
#include <span>

namespace ptm {

/// XXH64 over a byte span with the given seed (bit-compatible with the
/// reference implementation; verified against published vectors in tests).
[[nodiscard]] std::uint64_t xxhash64(std::span<const std::uint8_t> data,
                                     std::uint64_t seed) noexcept;

/// XXH64 of a single little-endian encoded 64-bit value.
[[nodiscard]] std::uint64_t xxhash64(std::uint64_t value,
                                     std::uint64_t seed) noexcept;

}  // namespace ptm
