// murmur3.hpp - MurmurHash3 (Austin Appleby, public domain), 32-bit and
// x64 128-bit variants.
//
// The paper's encoding function `H` only needs "good randomness" (§II-D);
// MurmurHash3 is the default instantiation because it is fast, seedable and
// has well-studied avalanche behaviour.  The implementation is from-scratch
// but bit-compatible with the reference smhasher vectors (verified in
// tests/hash_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ptm {

/// MurmurHash3_x86_32 over an arbitrary byte span.
[[nodiscard]] std::uint32_t murmur3_32(std::span<const std::uint8_t> data,
                                       std::uint32_t seed) noexcept;

/// MurmurHash3_x64_128; returns the two 64-bit halves.
[[nodiscard]] std::array<std::uint64_t, 2> murmur3_x64_128(
    std::span<const std::uint8_t> data, std::uint32_t seed) noexcept;

/// Convenience: 64-bit hash (low half of the 128-bit variant) of a span.
[[nodiscard]] std::uint64_t murmur3_64(std::span<const std::uint8_t> data,
                                       std::uint32_t seed) noexcept;

/// 64-bit hash of a single 64-bit value (the common case in vehicle
/// encoding, where inputs are XOR-combined words).
[[nodiscard]] std::uint64_t murmur3_64(std::uint64_t value,
                                       std::uint32_t seed) noexcept;

}  // namespace ptm
