#include "hash/siphash.hpp"

#include <cstring>

namespace ptm {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  constexpr void sipround() noexcept {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }
};

std::uint64_t load64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::uint64_t siphash24(std::span<const std::uint8_t> data, std::uint64_t key0,
                        std::uint64_t key1) noexcept {
  SipState s{
      key0 ^ 0x736f6d6570736575ULL,
      key1 ^ 0x646f72616e646f6dULL,
      key0 ^ 0x6c7967656e657261ULL,
      key1 ^ 0x7465646279746573ULL,
  };

  const std::size_t full_blocks = data.size() / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = load64(data.data() + i * 8);
    s.v3 ^= m;
    s.sipround();
    s.sipround();
    s.v0 ^= m;
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t b = static_cast<std::uint64_t>(data.size() & 0xff) << 56;
  const std::uint8_t* tail = data.data() + full_blocks * 8;
  switch (data.size() & 7U) {
    case 7: b |= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: b |= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: b |= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: b |= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: b |= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: b |= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1: b |= static_cast<std::uint64_t>(tail[0]); break;
    case 0: break;
  }
  s.v3 ^= b;
  s.sipround();
  s.sipround();
  s.v0 ^= b;

  s.v2 ^= 0xff;
  s.sipround();
  s.sipround();
  s.sipround();
  s.sipround();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24(std::uint64_t value, std::uint64_t key0,
                        std::uint64_t key1) noexcept {
  std::uint8_t buf[8];
  std::memcpy(buf, &value, sizeof(buf));
  return siphash24(std::span<const std::uint8_t>(buf, sizeof(buf)), key0, key1);
}

}  // namespace ptm
