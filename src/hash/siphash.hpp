// siphash.hpp - SipHash-2-4 (Aumasson & Bernstein), from-scratch.
//
// A keyed PRF, used where the hash must be unpredictable to anyone without
// the key: the vehicle-side encoding combines its private key K_v into the
// hashed value (§II-D), and SipHash keyed by K_v is the natural "keyed"
// instantiation of the paper's H(v ⊕ K_v ⊕ ...) construction.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ptm {

/// SipHash-2-4 with a 128-bit key over an arbitrary byte span
/// (bit-compatible with the reference vectors; verified in tests).
[[nodiscard]] std::uint64_t siphash24(std::span<const std::uint8_t> data,
                                      std::uint64_t key0,
                                      std::uint64_t key1) noexcept;

/// SipHash-2-4 of a single little-endian encoded 64-bit value.
[[nodiscard]] std::uint64_t siphash24(std::uint64_t value, std::uint64_t key0,
                                      std::uint64_t key1) noexcept;

}  // namespace ptm
