// sha256.hpp - SHA-256 (FIPS 180-4), from-scratch, plus HMAC-SHA256.
//
// The PKI substrate signs SHA-256 digests of certificates and messages;
// HMAC-SHA256 backs key derivation in the protocol simulation.  Verified
// against the NIST test vectors in tests/hash_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace ptm {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.  Typical use:
///   Sha256 h; h.update(a); h.update(b); Sha256Digest d = h.finish();
/// `finish` may be called once; the object is then spent.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view text) noexcept;
  [[nodiscard]] Sha256Digest finish() noexcept;

  /// One-shot digest of a byte span.
  [[nodiscard]] static Sha256Digest digest(
      std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Sha256Digest digest(std::string_view text) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
};

/// HMAC-SHA256(key, message) per RFC 2104.
[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> message) noexcept;

/// Hex string of a digest (lowercase, 64 chars).
[[nodiscard]] std::string digest_hex(const Sha256Digest& d);

}  // namespace ptm
