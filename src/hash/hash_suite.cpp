#include "hash/hash_suite.hpp"

#include <bit>

#include "common/random.hpp"

namespace ptm {

std::string_view hash_family_name(HashFamily family) noexcept {
  switch (family) {
    case HashFamily::kMurmur3: return "murmur3";
    case HashFamily::kXxHash: return "xxhash64";
    case HashFamily::kSipHash: return "siphash24";
  }
  return "unknown";
}

double avalanche_score(HashFamily family, std::uint64_t seed, int trials) {
  Xoshiro256 rng(0xA11A4C8EULL ^ seed);
  std::uint64_t flipped_bits = 0;
  std::uint64_t total_bits = 0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t x = rng.next();
    const std::uint64_t hx = hash64(family, x, seed);
    for (int bit = 0; bit < 64; ++bit) {
      const std::uint64_t hy = hash64(family, x ^ (1ULL << bit), seed);
      flipped_bits += static_cast<std::uint64_t>(std::popcount(hx ^ hy));
      total_bits += 64;
    }
  }
  return static_cast<double>(flipped_bits) / static_cast<double>(total_bits);
}

}  // namespace ptm
