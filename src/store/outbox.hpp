// outbox.hpp - bounded, persistent retransmission queue for RecordUploads.
//
// The paper assumes every per-period record reaches the central server
// (§II-D); a deployed RSU cannot.  The outbox is the RSU-side half of the
// at-least-once delivery pair (server-side idempotent ingest is the other
// half): a period's record is pushed here when the period closes, survives
// RSU reboots via an append-only ops log (framed_log framing), and leaves
// only when the server's UploadAck arrives or capacity forces the oldest
// entry out.  Retransmission *scheduling* state (attempt count, next-due
// step) is deliberately volatile - after a reboot every pending entry is
// immediately due again, which is the safe direction.
//
//   ops log := magic "PTMOBOX1", entry* where
//   entry   := 0x01 record-bytes [trace_id span_id]   (push)
//            | 0x02 location period                   (ack)
//            | 0x03 location period                   (evict: overflow)
//
// The trailing trace ids on a push op are the record's pipeline
// TraceContext (obs/trace.hpp); logs written before tracing existed omit
// them and replay as untraced entries (the reader tolerates their
// absence).  The log is compacted (rewritten with only pending pushes) on
// open, which also heals torn tails.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"
#include "core/traffic_record.hpp"
#include "obs/trace.hpp"

namespace ptm {

class UploadOutbox {
 public:
  struct Entry {
    TrafficRecord record;
    std::uint32_t attempts = 0;        ///< delivery attempts so far
    std::uint64_t next_attempt_at = 0; ///< earliest step for the next try
    TraceContext trace;                ///< pipeline trace, durable with push
  };

  /// In-memory outbox (no persistence) holding at most `capacity` entries.
  explicit UploadOutbox(std::size_t capacity = kDefaultCapacity);

  /// Opens/creates a persistent outbox at `path`, replaying and compacting
  /// the ops log.  FailedPrecondition if the file is not an outbox log.
  [[nodiscard]] static Result<UploadOutbox> open(std::string path,
                                                 std::size_t capacity =
                                                     kDefaultCapacity);

  /// Enqueues a closed period's record.  A re-push of an already-pending
  /// (location, period) is idempotent when the bytes match and
  /// FailedPrecondition when they conflict.  When the outbox is full the
  /// oldest entry is evicted (counted in `evicted()`), which is the bounded
  /// buffer's honest data loss.  `trace` (the record's pipeline
  /// TraceContext) is persisted alongside the record so retries after a
  /// reboot stay stitched to the same trace.
  Status push(const TrafficRecord& record, const TraceContext& trace = {});

  /// Drops the entry for (location, period) - the server acknowledged it.
  /// Ok even when absent (duplicate acks are expected after re-delivery).
  Status acknowledge(std::uint64_t location, std::uint64_t period);

  [[nodiscard]] bool contains(std::uint64_t location,
                              std::uint64_t period) const;
  [[nodiscard]] std::size_t pending() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t evicted() const noexcept { return evicted_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool persistent() const noexcept { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Pending entries, oldest first.  Pointers stay valid until the next
  /// push/acknowledge.
  [[nodiscard]] std::vector<Entry*> due(std::uint64_t now);
  /// The pending entry for (location, period), or nullptr.
  [[nodiscard]] Entry* find(std::uint64_t location, std::uint64_t period);
  [[nodiscard]] const std::deque<Entry>& entries() const noexcept {
    return entries_;
  }

  /// Books the next retransmission of `entry`: exponential backoff
  /// (base << attempts, capped) plus uniform jitter in [0, base] to keep a
  /// fleet of recovering RSUs from thundering in lockstep.
  static void schedule_retry(Entry& entry, std::uint64_t now,
                             std::uint64_t backoff_base,
                             std::uint64_t backoff_cap, Xoshiro256& rng);

  static constexpr std::size_t kDefaultCapacity = 64;

 private:
  [[nodiscard]] Status log_op(std::uint8_t kind, const Entry* pushed,
                              std::uint64_t location, std::uint64_t period);
  [[nodiscard]] Status compact();

  std::string path_;  ///< empty for in-memory outboxes
  std::size_t capacity_;
  std::deque<Entry> entries_;  ///< oldest first
  std::uint64_t evicted_ = 0;
};

}  // namespace ptm
