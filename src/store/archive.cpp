#include "store/archive.hpp"

#include <cstdio>

#include "store/record_log.hpp"

namespace ptm {

Result<RecordArchive> RecordArchive::open(std::string path,
                                          ArchiveOptions options) {
  RecordArchive archive(std::move(path), options);
  // Ensure the log exists with a valid header (also validates magic).
  auto writer = RecordLogWriter::open(archive.path_);
  if (!writer) return writer.status();
  auto contents = read_record_log(archive.path_);
  if (!contents) return contents.status();
  for (TrafficRecord& rec : contents->records) {
    auto& at_location = archive.index_[rec.location];
    if (!at_location.emplace(rec.period, std::move(rec.bits)).second) {
      ++archive.dead_in_log_;  // duplicate on disk: keep the first
    }
  }
  for (auto& [location, periods] : archive.index_) {
    (void)periods;
    archive.apply_retention(location);
  }
  if (contents->truncated_tail) {
    // Heal immediately: appending after torn bytes would strand the new
    // records beyond the reader's stop point.
    if (auto compacted = archive.compact(); !compacted) {
      return compacted.status();
    }
  }
  return archive;
}

void RecordArchive::apply_retention(std::uint64_t location) {
  if (options_.max_periods_per_location == 0) return;
  auto& periods = index_[location];
  while (periods.size() > options_.max_periods_per_location) {
    periods.erase(periods.begin());  // oldest period first
    ++dead_in_log_;
  }
}

Status RecordArchive::append(const TrafficRecord& record) {
  if (Status s = record.validate(); !s.is_ok()) return s;
  auto at_location = index_.find(record.location);
  if (at_location != index_.end()) {
    const auto at_period = at_location->second.find(record.period);
    if (at_period != at_location->second.end()) {
      if (at_period->second == record.bits) {
        // Byte-identical replay of a record already durable: succeed
        // without writing a redundant frame.
        return Status::ok();
      }
      return {ErrorCode::kFailedPrecondition,
              "conflicting record for this location and period"};
    }
  }
  auto writer = RecordLogWriter::open(path_);
  if (!writer) return writer.status();
  if (Status s = writer->append(record); !s.is_ok()) return s;
  index_[record.location].emplace(record.period, record.bits);
  apply_retention(record.location);
  return Status::ok();
}

std::size_t RecordArchive::live_records() const {
  std::size_t total = 0;
  for (const auto& [location, periods] : index_) total += periods.size();
  return total;
}

std::size_t RecordArchive::periods_at(std::uint64_t location) const {
  const auto it = index_.find(location);
  return it == index_.end() ? 0 : it->second.size();
}

std::vector<std::uint64_t> RecordArchive::locations() const {
  std::vector<std::uint64_t> out;
  out.reserve(index_.size());
  for (const auto& [location, periods] : index_) {
    if (!periods.empty()) out.push_back(location);
  }
  return out;
}

std::vector<TrafficRecord> RecordArchive::live_batch(
    SnapshotCursor& cursor, std::size_t max_records) const {
  std::vector<TrafficRecord> out;
  if (max_records == 0) return out;
  auto at_location = cursor.started ? index_.lower_bound(cursor.location)
                                    : index_.begin();
  for (; at_location != index_.end() && out.size() < max_records;
       ++at_location) {
    const auto& [location, periods] = *at_location;
    auto at_period =
        (cursor.started && location == cursor.location)
            ? periods.upper_bound(cursor.period)
            : periods.begin();
    for (; at_period != periods.end() && out.size() < max_records;
         ++at_period) {
      TrafficRecord rec;
      rec.location = location;
      rec.period = at_period->first;
      rec.bits = at_period->second;
      out.push_back(std::move(rec));
      cursor.started = true;
      cursor.location = location;
      cursor.period = at_period->first;
    }
  }
  return out;
}

std::vector<TrafficRecord> RecordArchive::live_contents() const {
  SnapshotCursor cursor;
  std::vector<TrafficRecord> out = live_batch(cursor, live_records());
  return out;
}

Result<std::vector<Bitmap>> RecordArchive::records_at(
    std::uint64_t location) const {
  const auto it = index_.find(location);
  if (it == index_.end() || it->second.empty()) {
    return Status{ErrorCode::kNotFound, "no live records for location"};
  }
  std::vector<Bitmap> out;
  out.reserve(it->second.size());
  for (const auto& [period, bits] : it->second) out.push_back(bits);
  return out;
}

Result<std::vector<Bitmap>> RecordArchive::latest(std::uint64_t location,
                                                  std::size_t window) const {
  auto all = records_at(location);
  if (!all) return all.status();
  if (all->size() < window) {
    return Status{ErrorCode::kNotFound,
                  "fewer live periods than the requested window"};
  }
  return std::vector<Bitmap>(all->end() - static_cast<std::ptrdiff_t>(window),
                             all->end());
}

Result<std::size_t> RecordArchive::compact() {
  const std::string temp_path = path_ + ".compact";
  std::remove(temp_path.c_str());
  {
    auto writer = RecordLogWriter::open(temp_path);
    if (!writer) return writer.status();
    for (const auto& [location, periods] : index_) {
      for (const auto& [period, bits] : periods) {
        TrafficRecord rec;
        rec.location = location;
        rec.period = period;
        rec.bits = bits;
        if (Status s = writer->append(rec); !s.is_ok()) {
          std::remove(temp_path.c_str());
          return s;
        }
      }
    }
  }
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Status{ErrorCode::kInternal, "compaction rename failed"};
  }
  const std::size_t dropped = dead_in_log_;
  dead_in_log_ = 0;
  return dropped;
}

}  // namespace ptm
