#include "store/framed_log.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.hpp"

namespace ptm {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::vector<std::uint8_t> frame_entry(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> entry;
  entry.reserve(payload.size() + 8);
  put_u32(entry, static_cast<std::uint32_t>(payload.size()));
  entry.insert(entry.end(), payload.begin(), payload.end());
  put_u32(entry, crc32(payload));
  return entry;
}

}  // namespace

Status framed_log_create(const std::string& path, const LogMagic& magic) {
  std::ifstream probe(path, std::ios::binary);
  if (probe) {
    char header[8] = {};
    probe.read(header, sizeof(header));
    if (probe.gcount() > 0 &&
        (probe.gcount() != 8 ||
         std::memcmp(header, magic.data(), 8) != 0)) {
      return Status{ErrorCode::kFailedPrecondition,
                    path + " exists but holds a different file format"};
    }
    if (probe.gcount() == 8) return Status::ok();
    // Empty file: fall through and write the header.
  }
  std::ofstream create(path, std::ios::binary | std::ios::app);
  if (!create) {
    return Status{ErrorCode::kInternal, "cannot create " + path};
  }
  create.write(magic.data(), magic.size());
  if (!create) {
    return Status{ErrorCode::kInternal, "cannot write header to " + path};
  }
  return Status::ok();
}

Status framed_log_append(const std::string& path,
                         std::span<const std::uint8_t> payload) {
  const auto entry = frame_entry(payload);
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return {ErrorCode::kInternal, "cannot open " + path + " for append"};
  }
  out.write(reinterpret_cast<const char*>(entry.data()),
            static_cast<std::streamsize>(entry.size()));
  out.flush();
  if (!out) {
    return {ErrorCode::kInternal, "short write to " + path};
  }
  return Status::ok();
}

Result<FramedLogContents> read_framed_log(const std::string& path,
                                          const LogMagic& magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status{ErrorCode::kNotFound, "cannot open " + path};
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.size() < 8 ||
      std::memcmp(bytes.data(), magic.data(), 8) != 0) {
    return Status{ErrorCode::kParseError, path + ": bad log magic"};
  }

  FramedLogContents contents;
  std::size_t pos = 8;
  while (pos < bytes.size()) {
    if (pos + 4 > bytes.size()) {
      contents.truncated_tail = true;
      contents.tail_error = "torn length prefix";
      break;
    }
    const std::uint32_t length = get_u32(bytes.data() + pos);
    if (pos + 4 + length + 4 > bytes.size()) {
      contents.truncated_tail = true;
      contents.tail_error = "torn entry body";
      break;
    }
    const std::span<const std::uint8_t> payload(bytes.data() + pos + 4,
                                                length);
    const std::uint32_t stored_crc = get_u32(bytes.data() + pos + 4 + length);
    if (crc32(payload) != stored_crc) {
      contents.truncated_tail = true;
      contents.tail_error = "crc mismatch";
      break;
    }
    contents.entries.emplace_back(payload.begin(), payload.end());
    pos += 4 + length + 4;
  }
  return contents;
}

Status framed_log_rewrite(const std::string& path, const LogMagic& magic,
                          std::span<const std::vector<std::uint8_t>> entries) {
  const std::string temp_path = path + ".rewrite";
  std::remove(temp_path.c_str());
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status{ErrorCode::kInternal, "cannot create " + temp_path};
    }
    out.write(magic.data(), magic.size());
    for (const auto& payload : entries) {
      const auto entry = frame_entry(payload);
      out.write(reinterpret_cast<const char*>(entry.data()),
                static_cast<std::streamsize>(entry.size()));
    }
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      return Status{ErrorCode::kInternal, "short write to " + temp_path};
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Status{ErrorCode::kInternal, "rewrite rename failed for " + path};
  }
  return Status::ok();
}

}  // namespace ptm
