// framed_log.hpp - the shared on-disk framing under every durable file in
// this project (record log, RSU journal, upload outbox).
//
//   file   := magic(8) entry*
//   entry  := u32 payload_length | payload | u32 crc32(payload)
//
// All integers little-endian.  The reader stops at the first torn or
// corrupt entry and reports it; everything before loads normally, which is
// what makes append-mid-crash recoverable: a process killed during a write
// leaves at worst one torn tail entry, never a poisoned prefix.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ptm {

using LogMagic = std::array<char, 8>;

/// Creates `path` with the magic header if absent/empty; validates the
/// magic if it exists.  FailedPrecondition when the file holds something
/// else.
[[nodiscard]] Status framed_log_create(const std::string& path,
                                       const LogMagic& magic);

/// Appends one length-prefixed, CRC-protected entry and flushes.
[[nodiscard]] Status framed_log_append(const std::string& path,
                                       std::span<const std::uint8_t> payload);

/// Result of reading a framed log: the intact entry payloads, plus whether
/// a torn / corrupt tail was skipped (and why).
struct FramedLogContents {
  std::vector<std::vector<std::uint8_t>> entries;
  bool truncated_tail = false;  ///< a trailing partial/corrupt entry existed
  std::string tail_error;       ///< human-readable reason when truncated
};

/// Reads every intact entry.  NotFound for a missing file, ParseError for
/// bad magic; mid-file corruption after intact entries is reported via
/// `truncated_tail`.
[[nodiscard]] Result<FramedLogContents> read_framed_log(
    const std::string& path, const LogMagic& magic);

/// Atomically replaces `path` with a fresh log holding `entries`, via a
/// temp file + rename.  The old contents survive any crash before the
/// rename commits.
[[nodiscard]] Status framed_log_rewrite(
    const std::string& path, const LogMagic& magic,
    std::span<const std::vector<std::uint8_t>> entries);

}  // namespace ptm
