#include "store/outbox.hpp"

#include <algorithm>

#include "common/serialize.hpp"
#include "store/framed_log.hpp"

namespace ptm {
namespace {

constexpr LogMagic kMagic = {'P', 'T', 'M', 'O', 'B', 'O', 'X', '1'};
constexpr std::uint8_t kOpPush = 1;
constexpr std::uint8_t kOpAck = 2;
constexpr std::uint8_t kOpEvict = 3;

std::vector<std::uint8_t> encode_push(const TrafficRecord& record,
                                      const TraceContext& trace) {
  ByteWriter w;
  w.u8(kOpPush);
  w.bytes(record.serialize());
  w.u64(trace.trace_id);
  w.u64(trace.span_id);
  return w.take();
}

std::vector<std::uint8_t> encode_keyed(std::uint8_t kind,
                                       std::uint64_t location,
                                       std::uint64_t period) {
  ByteWriter w;
  w.u8(kind);
  w.u64(location);
  w.u64(period);
  return w.take();
}

}  // namespace

UploadOutbox::UploadOutbox(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

Result<UploadOutbox> UploadOutbox::open(std::string path,
                                        std::size_t capacity) {
  UploadOutbox outbox(capacity);
  outbox.path_ = std::move(path);
  if (Status s = framed_log_create(outbox.path_, kMagic); !s.is_ok()) {
    if (s.code() == ErrorCode::kFailedPrecondition) {
      return Status{ErrorCode::kFailedPrecondition,
                    outbox.path_ + " exists but is not an outbox log"};
    }
    return s;
  }
  auto contents = read_framed_log(outbox.path_, kMagic);
  if (!contents) return contents.status();
  for (const auto& payload : contents->entries) {
    ByteReader r(payload);
    auto kind = r.u8();
    if (!kind) continue;  // unreadable op: skip, compaction drops it
    if (*kind == kOpPush) {
      auto rec_bytes = r.bytes();
      if (!rec_bytes) continue;
      auto record = TrafficRecord::deserialize(*rec_bytes);
      if (!record) continue;
      // Trailing trace context - absent in pre-tracing logs, which replay
      // as untraced entries.
      TraceContext trace;
      if (r.remaining() >= 16) {
        auto trace_id = r.u64();
        auto span_id = r.u64();
        if (trace_id && span_id) {
          trace = TraceContext{*trace_id, *span_id};
        }
      }
      // Replay through the in-memory path minus the durable logging (the
      // op is already on disk); conflicts in the log keep the first push.
      const bool duplicate = outbox.contains(record->location,
                                             record->period);
      if (!duplicate) {
        if (outbox.entries_.size() == outbox.capacity_) {
          outbox.entries_.pop_front();
          ++outbox.evicted_;
        }
        outbox.entries_.push_back(Entry{std::move(*record), 0, 0, trace});
      }
    } else if (*kind == kOpAck || *kind == kOpEvict) {
      auto loc = r.u64();
      auto per = r.u64();
      if (!loc || !per) continue;
      const auto it = std::find_if(
          outbox.entries_.begin(), outbox.entries_.end(),
          [&](const Entry& e) {
            return e.record.location == *loc && e.record.period == *per;
          });
      if (it != outbox.entries_.end()) outbox.entries_.erase(it);
    }
  }
  // Compact eagerly: drops acked ops, heals a torn tail, and bounds the
  // ops log to O(pending).
  if (Status s = outbox.compact(); !s.is_ok()) return s;
  return outbox;
}

Status UploadOutbox::log_op(std::uint8_t kind, const Entry* pushed,
                            std::uint64_t location, std::uint64_t period) {
  if (!persistent()) return Status::ok();
  const auto payload = kind == kOpPush
                           ? encode_push(pushed->record, pushed->trace)
                           : encode_keyed(kind, location, period);
  return framed_log_append(path_, payload);
}

Status UploadOutbox::compact() {
  if (!persistent()) return Status::ok();
  std::vector<std::vector<std::uint8_t>> ops;
  ops.reserve(entries_.size());
  for (const Entry& e : entries_) {
    ops.push_back(encode_push(e.record, e.trace));
  }
  return framed_log_rewrite(path_, kMagic, ops);
}

Status UploadOutbox::push(const TrafficRecord& record,
                          const TraceContext& trace) {
  if (Status s = record.validate(); !s.is_ok()) return s;
  const auto it = std::find_if(
      entries_.begin(), entries_.end(), [&](const Entry& e) {
        return e.record.location == record.location &&
               e.record.period == record.period;
      });
  if (it != entries_.end()) {
    if (it->record == record) return Status::ok();
    return {ErrorCode::kFailedPrecondition,
            "conflicting record already pending for this location and "
            "period"};
  }
  if (entries_.size() == capacity_) {
    const Entry& oldest = entries_.front();
    if (Status s = log_op(kOpEvict, nullptr, oldest.record.location,
                          oldest.record.period);
        !s.is_ok()) {
      return s;
    }
    entries_.pop_front();
    ++evicted_;
  }
  entries_.push_back(Entry{record, 0, 0, trace});
  return log_op(kOpPush, &entries_.back(), record.location, record.period);
}

Status UploadOutbox::acknowledge(std::uint64_t location,
                                 std::uint64_t period) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(), [&](const Entry& e) {
        return e.record.location == location && e.record.period == period;
      });
  if (it == entries_.end()) return Status::ok();  // duplicate ack
  if (Status s = log_op(kOpAck, nullptr, location, period); !s.is_ok()) {
    return s;
  }
  entries_.erase(it);
  return Status::ok();
}

bool UploadOutbox::contains(std::uint64_t location,
                            std::uint64_t period) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) {
                       return e.record.location == location &&
                              e.record.period == period;
                     });
}

UploadOutbox::Entry* UploadOutbox::find(std::uint64_t location,
                                        std::uint64_t period) {
  for (Entry& e : entries_) {
    if (e.record.location == location && e.record.period == period) {
      return &e;
    }
  }
  return nullptr;
}

std::vector<UploadOutbox::Entry*> UploadOutbox::due(std::uint64_t now) {
  std::vector<Entry*> out;
  for (Entry& e : entries_) {
    if (e.next_attempt_at <= now) out.push_back(&e);
  }
  return out;
}

void UploadOutbox::schedule_retry(Entry& entry, std::uint64_t now,
                                  std::uint64_t backoff_base,
                                  std::uint64_t backoff_cap,
                                  Xoshiro256& rng) {
  backoff_base = std::max<std::uint64_t>(backoff_base, 1);
  backoff_cap = std::max<std::uint64_t>(backoff_cap, backoff_base);
  // base << attempts, saturating well before the shift overflows.
  const std::uint32_t shift = std::min<std::uint32_t>(entry.attempts, 32);
  std::uint64_t delay = backoff_base << shift;
  delay += rng.below(backoff_base + 1);  // jitter: de-synchronize the fleet
  // Clamp AFTER jitter so backoff_cap is a true ceiling - jitter added to
  // an already-capped delay would overshoot it by up to backoff_base.
  delay = std::min(delay, backoff_cap);
  ++entry.attempts;
  entry.next_attempt_at = now + delay;
}

}  // namespace ptm
