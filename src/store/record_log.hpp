// record_log.hpp - durable storage for traffic records.
//
// The central server of §II-A accumulates one record per RSU per period,
// indefinitely (persistent queries reach back weeks).  This module gives
// that archive a crash-safe on-disk form: an append-only log of
// length-prefixed, CRC-32-protected records.
//
//   file   := magic(8) record*
//   magic  := "PTMRLOG1"
//   record := u32 payload_length | payload | u32 crc32(payload)
//
// All integers little-endian.  A torn final record (crash mid-append) is
// detected and reported; everything before it loads normally.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/traffic_record.hpp"

namespace ptm {

/// Appends records to a log file, creating it (with the magic header) when
/// absent.  Not concurrency-safe; one writer per file.
class RecordLogWriter {
 public:
  /// Opens/creates the log.  FailedPrecondition if an existing file has
  /// the wrong magic.
  [[nodiscard]] static Result<RecordLogWriter> open(const std::string& path);

  /// Appends one record (serialize + CRC) and flushes.
  Status append(const TrafficRecord& record);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  explicit RecordLogWriter(std::string path) : path_(std::move(path)) {}

  std::string path_;
};

/// Result of reading a log: the intact records, plus whether a torn /
/// corrupt tail was skipped (and why).
struct RecordLogContents {
  std::vector<TrafficRecord> records;
  bool truncated_tail = false;   ///< a trailing partial/corrupt entry existed
  std::string tail_error;        ///< human-readable reason when truncated
};

/// Reads every intact record.  ParseError only for unreadable files or bad
/// magic; mid-file corruption after intact records is reported via
/// `truncated_tail` (the archive keeps what it can prove whole).
[[nodiscard]] Result<RecordLogContents> read_record_log(
    const std::string& path);

}  // namespace ptm
