// journal.hpp - crash-safe journal of an RSU's in-progress traffic record.
//
// The record an RSU is currently filling exists only in RAM in the paper's
// model; a reboot would silently zero one period's measurement.  The
// journal makes the in-progress period replayable: starting a period
// atomically rewrites the file (temp + rename) with one PeriodStart entry,
// and every accepted encode appends an Encode entry, all in framed_log
// framing so a torn tail costs at most the final encode:
//
//   file  := magic "PTMRJNL1", entry*
//   entry := 0x01 location period bitmap_size   (PeriodStart)
//          | 0x02 index                         (Encode)
//
// Replay-on-open rebuilds (location, period, bitmap) from the latest
// PeriodStart and the encodes after it.  Whether the replayed period is
// still open or was already closed into the outbox is the RSU's call (it
// cross-checks the outbox), not the journal's.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace ptm {

struct JournalPeriodStart {
  std::uint64_t location = 0;
  std::uint64_t period = 0;
  std::uint64_t bitmap_size = 0;
};

struct JournalEncode {
  std::uint64_t index = 0;
};

using JournalEntry = std::variant<JournalPeriodStart, JournalEncode>;

/// Codec for one journal entry payload.  Exposed (rather than buried in the
/// reader) because journal files cross a crash boundary and the decoder is
/// fuzzed like every other one.
[[nodiscard]] std::vector<std::uint8_t> encode_journal_entry(
    const JournalEntry& entry);
[[nodiscard]] Result<JournalEntry> decode_journal_entry(
    std::span<const std::uint8_t> payload);

class RsuJournal {
 public:
  /// The reconstructed in-progress period found in an existing journal.
  struct ReplayedPeriod {
    std::uint64_t location = 0;
    std::uint64_t period = 0;
    std::uint64_t bitmap_size = 0;
    std::vector<std::uint64_t> encode_indices;  ///< in arrival order
  };

  /// Opens/creates the journal and replays any existing entries.  A torn
  /// tail is tolerated; a non-journal file is FailedPrecondition.
  [[nodiscard]] static Result<RsuJournal> open(std::string path);

  /// The period replayed at open time, if the journal held one.
  [[nodiscard]] const std::optional<ReplayedPeriod>& replayed()
      const noexcept {
    return replayed_;
  }

  /// Atomically resets the journal to a single PeriodStart entry.  The
  /// previous period's entries are gone after this - callers must have
  /// moved its record into the outbox first.
  [[nodiscard]] Status begin_period(std::uint64_t location,
                                    std::uint64_t period,
                                    std::uint64_t bitmap_size);

  /// Appends one accepted encode.  Called on the contact hot path; one
  /// buffered append + flush.
  [[nodiscard]] Status record_encode(std::uint64_t index);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  explicit RsuJournal(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::optional<ReplayedPeriod> replayed_;
};

}  // namespace ptm
