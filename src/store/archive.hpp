// archive.hpp - the measurement archive: a record log plus an in-memory
// index, a retention policy, and compaction.
//
// The raw RecordLog is append-only and unbounded; a long-lived deployment
// wants (a) indexed access by location, (b) bounded storage ("keep the
// last 90 periods per RSU"), and (c) a way to reclaim the space of
// records that aged out.  RecordArchive layers those on the log: appends
// go to disk immediately (crash-safe), the index tracks what is live,
// retention drops the oldest periods per location from the index, and
// compact() rewrites the log with only live records (atomically via a
// temp file + rename).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "core/traffic_record.hpp"

namespace ptm {

struct ArchiveOptions {
  /// Retain at most this many most-recent periods per location
  /// (0 = unlimited).
  std::size_t max_periods_per_location = 0;
};

class RecordArchive {
 public:
  /// Opens (or creates) the archive at `path`, loading any existing log.
  /// A torn log tail is tolerated (intact prefix loads); a non-log file
  /// is FailedPrecondition.
  [[nodiscard]] static Result<RecordArchive> open(std::string path,
                                                  ArchiveOptions options);

  /// Appends a record: durable write, then index update, then retention.
  /// Idempotent: re-appending bytes identical to the live record for that
  /// (location, period) is a no-op Ok - an at-least-once delivery pipeline
  /// may replay an upload whose ack was lost, and the archive must not
  /// turn that replay into an error (or a second log frame).  A
  /// *conflicting* record for an occupied slot is FailedPrecondition.
  Status append(const TrafficRecord& record);

  /// Live (retained) record count / per-location period count.
  [[nodiscard]] std::size_t live_records() const;
  [[nodiscard]] std::size_t periods_at(std::uint64_t location) const;
  [[nodiscard]] std::vector<std::uint64_t> locations() const;

  /// All live bitmaps of a location, ordered by period (NotFound if none).
  [[nodiscard]] Result<std::vector<Bitmap>> records_at(
      std::uint64_t location) const;

  /// Resumable position inside the live index, keyed by the last
  /// (location, period) a batch returned.  Key-based (not iterator-based)
  /// so appends and retention between batches never invalidate it: the
  /// next batch simply resumes after the last returned key.
  struct SnapshotCursor {
    bool started = false;        ///< false = next batch starts at the front
    std::uint64_t location = 0;  ///< last key returned
    std::uint64_t period = 0;
  };

  /// At most `max_records` live records following `cursor`, ordered by
  /// (location, period); advances the cursor past them.  An empty return
  /// means the iteration is complete.  Unlike live_contents(), a caller
  /// streaming a large archive holds whatever lock serializes archive
  /// access only per-batch, so concurrent ingest proceeds between batches
  /// (the replication snapshot path relies on exactly that).
  [[nodiscard]] std::vector<TrafficRecord> live_batch(
      SnapshotCursor& cursor, std::size_t max_records) const;

  /// Every live record, ordered by (location, period) - the replay feed
  /// for rebuilding a server's in-memory store after a crash
  /// (QueryService::restore_from_archive).  One unbounded live_batch
  /// sweep; prefer batched iteration when the archive is large and the
  /// serializing lock is contended.
  [[nodiscard]] std::vector<TrafficRecord> live_contents() const;

  /// The `window` most recent live bitmaps of a location, ordered by
  /// period (NotFound when fewer exist).
  [[nodiscard]] Result<std::vector<Bitmap>> latest(std::uint64_t location,
                                                   std::size_t window) const;

  /// Rewrites the on-disk log with only live records (temp file + rename).
  /// Returns the number of dead records dropped.
  [[nodiscard]] Result<std::size_t> compact();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  RecordArchive(std::string path, ArchiveOptions options)
      : path_(std::move(path)), options_(options) {}

  void apply_retention(std::uint64_t location);

  std::string path_;
  ArchiveOptions options_;
  // Live index: location -> period -> bitmap.  (The log may hold more.)
  std::map<std::uint64_t, std::map<std::uint64_t, Bitmap>> index_;
  std::size_t dead_in_log_ = 0;
};

}  // namespace ptm
