#include "store/journal.hpp"

#include "common/serialize.hpp"
#include "store/framed_log.hpp"

namespace ptm {
namespace {

constexpr LogMagic kMagic = {'P', 'T', 'M', 'R', 'J', 'N', 'L', '1'};
constexpr std::uint8_t kKindPeriodStart = 1;
constexpr std::uint8_t kKindEncode = 2;

}  // namespace

std::vector<std::uint8_t> encode_journal_entry(const JournalEntry& entry) {
  ByteWriter w;
  if (const auto* start = std::get_if<JournalPeriodStart>(&entry)) {
    w.u8(kKindPeriodStart);
    w.u64(start->location);
    w.u64(start->period);
    w.u64(start->bitmap_size);
  } else {
    w.u8(kKindEncode);
    w.u64(std::get<JournalEncode>(entry).index);
  }
  return w.take();
}

Result<JournalEntry> decode_journal_entry(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  auto kind = r.u8();
  if (!kind) return kind.status();
  switch (*kind) {
    case kKindPeriodStart: {
      JournalPeriodStart start;
      auto loc = r.u64();
      if (!loc) return loc.status();
      start.location = *loc;
      auto per = r.u64();
      if (!per) return per.status();
      start.period = *per;
      auto m = r.u64();
      if (!m) return m.status();
      start.bitmap_size = *m;
      if (!r.exhausted()) {
        return Status{ErrorCode::kParseError,
                      "trailing bytes in journal period-start"};
      }
      return JournalEntry{start};
    }
    case kKindEncode: {
      auto index = r.u64();
      if (!index) return index.status();
      if (!r.exhausted()) {
        return Status{ErrorCode::kParseError,
                      "trailing bytes in journal encode"};
      }
      return JournalEntry{JournalEncode{*index}};
    }
    default:
      return Status{ErrorCode::kParseError, "unknown journal entry kind"};
  }
}

Result<RsuJournal> RsuJournal::open(std::string path) {
  RsuJournal journal(std::move(path));
  if (Status s = framed_log_create(journal.path_, kMagic); !s.is_ok()) {
    if (s.code() == ErrorCode::kFailedPrecondition) {
      return Status{ErrorCode::kFailedPrecondition,
                    journal.path_ + " exists but is not an RSU journal"};
    }
    return s;
  }
  auto contents = read_framed_log(journal.path_, kMagic);
  if (!contents) return contents.status();
  for (const auto& payload : contents->entries) {
    auto entry = decode_journal_entry(payload);
    if (!entry) break;  // undecodable entry: stop like a torn tail
    if (const auto* start = std::get_if<JournalPeriodStart>(&*entry)) {
      // A later PeriodStart supersedes everything before it (a crash
      // between outbox push and journal reset can leave two).
      journal.replayed_ = ReplayedPeriod{start->location, start->period,
                                         start->bitmap_size, {}};
    } else if (journal.replayed_) {
      journal.replayed_->encode_indices.push_back(
          std::get<JournalEncode>(*entry).index);
    }
  }
  return journal;
}

Status RsuJournal::begin_period(std::uint64_t location, std::uint64_t period,
                                std::uint64_t bitmap_size) {
  const std::vector<std::vector<std::uint8_t>> entries = {
      encode_journal_entry(
          JournalPeriodStart{location, period, bitmap_size})};
  return framed_log_rewrite(path_, kMagic, entries);
}

Status RsuJournal::record_encode(std::uint64_t index) {
  return framed_log_append(path_, encode_journal_entry(JournalEncode{index}));
}

}  // namespace ptm
