#include "store/record_log.hpp"

#include "store/framed_log.hpp"

namespace ptm {
namespace {

constexpr LogMagic kMagic = {'P', 'T', 'M', 'R', 'L', 'O', 'G', '1'};

}  // namespace

Result<RecordLogWriter> RecordLogWriter::open(const std::string& path) {
  if (Status s = framed_log_create(path, kMagic); !s.is_ok()) {
    if (s.code() == ErrorCode::kFailedPrecondition) {
      return Status{ErrorCode::kFailedPrecondition,
                    path + " exists but is not a record log"};
    }
    return s;
  }
  return RecordLogWriter(path);
}

Status RecordLogWriter::append(const TrafficRecord& record) {
  if (Status s = record.validate(); !s.is_ok()) return s;
  return framed_log_append(path_, record.serialize());
}

Result<RecordLogContents> read_record_log(const std::string& path) {
  auto framed = read_framed_log(path, kMagic);
  if (!framed) {
    if (framed.status().code() == ErrorCode::kParseError) {
      return Status{ErrorCode::kParseError, path + ": bad record-log magic"};
    }
    return framed.status();
  }
  RecordLogContents contents;
  contents.truncated_tail = framed->truncated_tail;
  contents.tail_error = framed->tail_error;
  for (const auto& payload : framed->entries) {
    auto record = TrafficRecord::deserialize(payload);
    if (!record) {
      // An entry with a valid CRC but an undecodable body means the writer
      // itself was cut off mid-logic (or the file was tampered with); keep
      // the provably-whole prefix exactly like a torn tail.
      contents.truncated_tail = true;
      contents.tail_error =
          "undecodable record: " + record.status().to_string();
      break;
    }
    contents.records.push_back(std::move(*record));
  }
  return contents;
}

}  // namespace ptm
