#include "store/record_log.hpp"

#include <cstring>
#include <fstream>

#include "common/crc32.hpp"

namespace ptm {
namespace {

constexpr char kMagic[8] = {'P', 'T', 'M', 'R', 'L', 'O', 'G', '1'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Result<RecordLogWriter> RecordLogWriter::open(const std::string& path) {
  // If the file exists, validate its magic; otherwise create it with one.
  std::ifstream probe(path, std::ios::binary);
  if (probe) {
    char magic[8] = {};
    probe.read(magic, sizeof(magic));
    if (probe.gcount() > 0 &&
        (probe.gcount() != 8 || std::memcmp(magic, kMagic, 8) != 0)) {
      return Status{ErrorCode::kFailedPrecondition,
                    path + " exists but is not a record log"};
    }
    if (probe.gcount() == 8) return RecordLogWriter(path);
    // Empty file: fall through and write the header.
  }
  std::ofstream create(path, std::ios::binary | std::ios::app);
  if (!create) {
    return Status{ErrorCode::kInternal, "cannot create " + path};
  }
  create.write(kMagic, sizeof(kMagic));
  if (!create) {
    return Status{ErrorCode::kInternal, "cannot write header to " + path};
  }
  return RecordLogWriter(path);
}

Status RecordLogWriter::append(const TrafficRecord& record) {
  if (Status s = record.validate(); !s.is_ok()) return s;
  const auto payload = record.serialize();

  std::vector<std::uint8_t> entry;
  entry.reserve(payload.size() + 8);
  put_u32(entry, static_cast<std::uint32_t>(payload.size()));
  entry.insert(entry.end(), payload.begin(), payload.end());
  put_u32(entry, crc32(payload));

  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) {
    return {ErrorCode::kInternal, "cannot open " + path_ + " for append"};
  }
  out.write(reinterpret_cast<const char*>(entry.data()),
            static_cast<std::streamsize>(entry.size()));
  out.flush();
  if (!out) {
    return {ErrorCode::kInternal, "short write to " + path_};
  }
  return Status::ok();
}

Result<RecordLogContents> read_record_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status{ErrorCode::kNotFound, "cannot open " + path};
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 8) != 0) {
    return Status{ErrorCode::kParseError, path + ": bad record-log magic"};
  }

  RecordLogContents contents;
  std::size_t pos = 8;
  while (pos < bytes.size()) {
    if (pos + 4 > bytes.size()) {
      contents.truncated_tail = true;
      contents.tail_error = "torn length prefix";
      break;
    }
    const std::uint32_t length = get_u32(bytes.data() + pos);
    if (pos + 4 + length + 4 > bytes.size()) {
      contents.truncated_tail = true;
      contents.tail_error = "torn record body";
      break;
    }
    const std::span<const std::uint8_t> payload(bytes.data() + pos + 4,
                                                length);
    const std::uint32_t stored_crc = get_u32(bytes.data() + pos + 4 + length);
    if (crc32(payload) != stored_crc) {
      contents.truncated_tail = true;
      contents.tail_error = "crc mismatch";
      break;
    }
    auto record = TrafficRecord::deserialize(payload);
    if (!record) {
      contents.truncated_tail = true;
      contents.tail_error = "undecodable record: " +
                            record.status().to_string();
      break;
    }
    contents.records.push_back(std::move(*record));
    pos += 4 + length + 4;
  }
  return contents;
}

}  // namespace ptm
