#include "nodes/server.hpp"

namespace ptm {

Status CentralServer::ingest(const TrafficRecord& record) {
  if (Status s = record.validate(); !s.is_ok()) return s;
  const auto key = std::make_pair(record.location, record.period);
  if (records_.contains(key)) {
    return {ErrorCode::kFailedPrecondition,
            "duplicate record for this location and period"};
  }
  records_.emplace(key, record);
  // Update the historical average that plans future bitmap sizes (Eq. 2).
  const CardinalityEstimate est = estimate_cardinality(record.bits);
  history_[record.location].add(est.value);
  return Status::ok();
}

Status CentralServer::ingest_frame(const Frame& frame) {
  const auto* upload = std::get_if<RecordUpload>(&frame.body);
  if (upload == nullptr) {
    return {ErrorCode::kInvalidArgument,
            "server ingest expects a RecordUpload frame"};
  }
  return ingest(upload->record);
}

bool CentralServer::has_record(std::uint64_t location,
                               std::uint64_t period) const {
  return records_.contains(std::make_pair(location, period));
}

std::size_t CentralServer::plan_size(std::uint64_t location,
                                     double default_volume) const {
  const auto it = history_.find(location);
  const double expected =
      (it != history_.end() && it->second.count > 0 && it->second.mean >= 1.0)
          ? it->second.mean
          : default_volume;
  return plan_bitmap_size(expected, load_factor_);
}

Result<CardinalityEstimate> CentralServer::query_point_volume(
    std::uint64_t location, std::uint64_t period) const {
  const auto it = records_.find(std::make_pair(location, period));
  if (it == records_.end()) {
    return Status{ErrorCode::kNotFound, "no record for location/period"};
  }
  return estimate_cardinality(it->second.bits);
}

Result<std::vector<Bitmap>> CentralServer::collect_bitmaps(
    std::uint64_t location, std::span<const std::uint64_t> periods) const {
  std::vector<Bitmap> out;
  out.reserve(periods.size());
  for (std::uint64_t period : periods) {
    const auto it = records_.find(std::make_pair(location, period));
    if (it == records_.end()) {
      return Status{ErrorCode::kNotFound,
                    "missing record for a requested period"};
    }
    out.push_back(it->second.bits);
  }
  return out;
}

Result<PointPersistentEstimate> CentralServer::query_point_persistent(
    std::uint64_t location, std::span<const std::uint64_t> periods) const {
  auto bitmaps = collect_bitmaps(location, periods);
  if (!bitmaps) return bitmaps.status();
  return estimate_point_persistent(*bitmaps);
}

Result<PointPersistentEstimate> CentralServer::query_point_persistent_recent(
    std::uint64_t location, std::size_t window) const {
  // records_ is ordered by (location, period), so the location's records
  // form a contiguous, period-sorted range.
  std::vector<Bitmap> bitmaps;
  const auto begin = records_.lower_bound(std::make_pair(location, 0ULL));
  for (auto it = begin; it != records_.end() && it->first.first == location;
       ++it) {
    bitmaps.push_back(it->second.bits);
  }
  if (bitmaps.size() < window) {
    return Status{ErrorCode::kNotFound,
                  "fewer stored periods than the requested window"};
  }
  const std::span<const Bitmap> recent(
      bitmaps.data() + (bitmaps.size() - window), window);
  return estimate_point_persistent(recent);
}

Result<PointToPointPersistentEstimate> CentralServer::query_p2p_persistent(
    std::uint64_t location_a, std::uint64_t location_b,
    std::span<const std::uint64_t> periods) const {
  auto bitmaps_a = collect_bitmaps(location_a, periods);
  if (!bitmaps_a) return bitmaps_a.status();
  auto bitmaps_b = collect_bitmaps(location_b, periods);
  if (!bitmaps_b) return bitmaps_b.status();
  PointToPointOptions options;
  options.s = s_;
  return estimate_p2p_persistent(*bitmaps_a, *bitmaps_b, options);
}

}  // namespace ptm
