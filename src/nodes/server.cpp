#include "nodes/server.hpp"

namespace ptm {

Status CentralServer::attach_durability(std::string path,
                                        ArchiveOptions options) {
  auto archive = RecordArchive::open(std::move(path), options);
  if (!archive) return archive.status();
  archive_.emplace(std::move(*archive));
  archive_options_ = options;
  service_.attach_durability(*archive_);
  return Status::ok();
}

Result<std::size_t> CentralServer::crash_and_restart() {
  if (!archive_.has_value()) {
    return Status{ErrorCode::kFailedPrecondition,
                  "crash_and_restart requires attached durability"};
  }
  const std::string path = archive_->path();
  const ArchiveOptions options = archive_options_;
  // Crash: volatile state dies (wipe also detaches the service from the
  // archive, so no dangling pointer exists while archive_ re-opens).
  service_.wipe_volatile_state();
  archive_.reset();
  // Restart: re-open the log from disk and rebuild the store from it.
  if (Status s = attach_durability(path, options); !s.is_ok()) return s;
  return service_.restore_from_archive();
}

Status CentralServer::ingest_frame(const Frame& frame) {
  const auto* upload = std::get_if<RecordUpload>(&frame.body);
  if (upload == nullptr) {
    return {ErrorCode::kInvalidArgument,
            "server ingest expects a RecordUpload frame"};
  }
  return service_.ingest(upload->record, frame.trace);
}

Result<Frame> CentralServer::ingest_frame_acked(const Frame& frame) {
  const auto* upload = std::get_if<RecordUpload>(&frame.body);
  if (upload == nullptr) {
    return Status{ErrorCode::kInvalidArgument,
                  "server ingest expects a RecordUpload frame"};
  }
  if (Status s = service_.ingest(upload->record, frame.trace); !s.is_ok()) {
    return s;
  }
  Frame ack;
  ack.src = frame.dst;   // reply from the uplink address the RSU used
  ack.dst = frame.src;   // back to the RSU's fixed MAC
  ack.body = UploadAck{upload->record.location, upload->record.period};
  // The ack carries the upload's trace back, so the RSU-side outbox drop
  // is attributable to the same pipeline trace as the ingest.
  ack.trace = frame.trace;
  return ack;
}

}  // namespace ptm
