#include "nodes/server.hpp"

namespace ptm {

// The deprecated wrappers below intentionally call each other's underlying
// machinery; silence the self-referential deprecation warnings for their
// definitions only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

Status CentralServer::ingest_frame(const Frame& frame) {
  const auto* upload = std::get_if<RecordUpload>(&frame.body);
  if (upload == nullptr) {
    return {ErrorCode::kInvalidArgument,
            "server ingest expects a RecordUpload frame"};
  }
  return service_.ingest(upload->record);
}

Result<Frame> CentralServer::ingest_frame_acked(const Frame& frame) {
  const auto* upload = std::get_if<RecordUpload>(&frame.body);
  if (upload == nullptr) {
    return Status{ErrorCode::kInvalidArgument,
                  "server ingest expects a RecordUpload frame"};
  }
  if (Status s = service_.ingest(upload->record); !s.is_ok()) return s;
  Frame ack;
  ack.src = frame.dst;   // reply from the uplink address the RSU used
  ack.dst = frame.src;   // back to the RSU's fixed MAC
  ack.body = UploadAck{upload->record.location, upload->record.period};
  return ack;
}

Result<CardinalityEstimate> CentralServer::query_point_volume(
    std::uint64_t location, std::uint64_t period) const {
  return service_.run(QueryRequest{PointVolumeQuery{location, period}})
      .as<CardinalityEstimate>();
}

Result<PointPersistentEstimate> CentralServer::query_point_persistent(
    std::uint64_t location, std::span<const std::uint64_t> periods) const {
  PointPersistentQuery query;
  query.location = location;
  query.periods.assign(periods.begin(), periods.end());
  return service_.run(QueryRequest{std::move(query)})
      .as<PointPersistentEstimate>();
}

Result<PointPersistentEstimate> CentralServer::query_point_persistent_recent(
    std::uint64_t location, std::size_t window) const {
  return service_.run(QueryRequest{RecentPersistentQuery{location, window}})
      .as<PointPersistentEstimate>();
}

Result<PointToPointPersistentEstimate> CentralServer::query_p2p_persistent(
    std::uint64_t location_a, std::uint64_t location_b,
    std::span<const std::uint64_t> periods) const {
  P2PPersistentQuery query;
  query.location_a = location_a;
  query.location_b = location_b;
  query.periods.assign(periods.begin(), periods.end());
  return service_.run(QueryRequest{std::move(query)})
      .as<PointToPointPersistentEstimate>();
}

#pragma GCC diagnostic pop

}  // namespace ptm
