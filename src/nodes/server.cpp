#include "nodes/server.hpp"

namespace ptm {

// The deprecated wrappers below intentionally call each other's underlying
// machinery; silence the self-referential deprecation warnings for their
// definitions only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

Status CentralServer::attach_durability(std::string path,
                                        ArchiveOptions options) {
  auto archive = RecordArchive::open(std::move(path), options);
  if (!archive) return archive.status();
  archive_.emplace(std::move(*archive));
  archive_options_ = options;
  service_.attach_durability(*archive_);
  return Status::ok();
}

Result<std::size_t> CentralServer::crash_and_restart() {
  if (!archive_.has_value()) {
    return Status{ErrorCode::kFailedPrecondition,
                  "crash_and_restart requires attached durability"};
  }
  const std::string path = archive_->path();
  const ArchiveOptions options = archive_options_;
  // Crash: volatile state dies (wipe also detaches the service from the
  // archive, so no dangling pointer exists while archive_ re-opens).
  service_.wipe_volatile_state();
  archive_.reset();
  // Restart: re-open the log from disk and rebuild the store from it.
  if (Status s = attach_durability(path, options); !s.is_ok()) return s;
  return service_.restore_from_archive();
}

Status CentralServer::ingest_frame(const Frame& frame) {
  const auto* upload = std::get_if<RecordUpload>(&frame.body);
  if (upload == nullptr) {
    return {ErrorCode::kInvalidArgument,
            "server ingest expects a RecordUpload frame"};
  }
  return service_.ingest(upload->record);
}

Result<Frame> CentralServer::ingest_frame_acked(const Frame& frame) {
  const auto* upload = std::get_if<RecordUpload>(&frame.body);
  if (upload == nullptr) {
    return Status{ErrorCode::kInvalidArgument,
                  "server ingest expects a RecordUpload frame"};
  }
  if (Status s = service_.ingest(upload->record); !s.is_ok()) return s;
  Frame ack;
  ack.src = frame.dst;   // reply from the uplink address the RSU used
  ack.dst = frame.src;   // back to the RSU's fixed MAC
  ack.body = UploadAck{upload->record.location, upload->record.period};
  return ack;
}

Result<CardinalityEstimate> CentralServer::query_point_volume(
    std::uint64_t location, std::uint64_t period) const {
  return service_.run(QueryRequest{PointVolumeQuery{location, period}})
      .as<CardinalityEstimate>();
}

Result<PointPersistentEstimate> CentralServer::query_point_persistent(
    std::uint64_t location, std::span<const std::uint64_t> periods) const {
  PointPersistentQuery query;
  query.location = location;
  query.periods.assign(periods.begin(), periods.end());
  return service_.run(QueryRequest{std::move(query)})
      .as<PointPersistentEstimate>();
}

Result<PointPersistentEstimate> CentralServer::query_point_persistent_recent(
    std::uint64_t location, std::size_t window) const {
  return service_.run(QueryRequest{RecentPersistentQuery{location, window}})
      .as<PointPersistentEstimate>();
}

Result<PointToPointPersistentEstimate> CentralServer::query_p2p_persistent(
    std::uint64_t location_a, std::uint64_t location_b,
    std::span<const std::uint64_t> periods) const {
  P2PPersistentQuery query;
  query.location_a = location_a;
  query.location_b = location_b;
  query.periods.assign(periods.begin(), periods.end());
  return service_.run(QueryRequest{std::move(query)})
      .as<PointToPointPersistentEstimate>();
}

#pragma GCC diagnostic pop

}  // namespace ptm
