#include "nodes/deployment.hpp"

namespace ptm {

const char* contact_outcome_name(ContactOutcome o) noexcept {
  switch (o) {
    case ContactOutcome::kEncoded: return "encoded";
    case ContactOutcome::kBeaconLost: return "beacon-lost";
    case ContactOutcome::kAuthLost: return "auth-lost";
    case ContactOutcome::kAuthRejected: return "auth-rejected";
  }
  return "unknown";
}

Deployment::Deployment(Config config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      ca_(std::make_unique<CertificateAuthority>("trusted-third-party",
                                                 config.ca_key_bits, rng_)),
      channel_(config.channel, seed ^ 0xc4a22e1ULL),
      server_(config.load_factor, config.encoding.s) {}

Rsu& Deployment::add_rsu(std::uint64_t location,
                         std::size_t initial_bitmap_size) {
  RsaKeyPair keys = rsa_generate(config_.rsu_key_bits, rng_);
  Certificate cert =
      ca_->issue("rsu:" + std::to_string(location), location, keys.pub, 0,
                 config_.cert_valid_until);
  rsus_.push_back(std::make_unique<Rsu>(location, std::move(keys),
                                        std::move(cert),
                                        initial_bitmap_size));
  return *rsus_.back();
}

Vehicle Deployment::make_vehicle(std::uint64_t vehicle_id) {
  VehicleSecrets secrets =
      VehicleSecrets::create(vehicle_id, config_.encoding.s, rng_);
  return Vehicle(std::move(secrets), config_.encoding, ca_->public_key(),
                 rng_.next());
}

Result<Frame> Deployment::transit(const Frame& frame) {
  const auto wire = encode_frame(frame);
  const auto deliveries = channel_.transmit(wire);
  for (const auto& bytes : deliveries) {
    auto decoded = decode_frame(bytes);
    // A corrupted copy is dropped by the receiver's codec; a duplicate
    // means the first good copy wins.
    if (decoded) return decoded;
  }
  return Status{ErrorCode::kChannelError, "frame lost or corrupted"};
}

ContactOutcome Deployment::run_contact(Vehicle& vehicle, Rsu& rsu) {
  // Leg 1: beacon broadcast.
  auto beacon = transit(rsu.make_beacon());
  if (!beacon) return ContactOutcome::kBeaconLost;
  const auto* beacon_body = std::get_if<Beacon>(&beacon->body);
  if (beacon_body == nullptr) return ContactOutcome::kBeaconLost;

  // Leg 2: vehicle verifies the certificate and requests authentication.
  auto auth_req = vehicle.handle_beacon(*beacon_body);
  if (!auth_req) return ContactOutcome::kAuthRejected;
  auto auth_req_rx = transit(*auth_req);
  if (!auth_req_rx) {
    vehicle.abort_contact();
    return ContactOutcome::kAuthLost;
  }

  // Leg 3: RSU proves key possession.
  auto auth_resp = rsu.handle_frame(*auth_req_rx);
  if (!auth_resp) {
    vehicle.abort_contact();
    return ContactOutcome::kAuthLost;
  }
  auto auth_resp_rx = transit(*auth_resp);
  if (!auth_resp_rx) {
    vehicle.abort_contact();
    return ContactOutcome::kAuthLost;
  }
  const auto* resp_body = std::get_if<AuthResponse>(&auth_resp_rx->body);
  if (resp_body == nullptr) {
    vehicle.abort_contact();
    return ContactOutcome::kAuthLost;
  }

  // Leg 4: vehicle transmits h_v.
  auto encode = vehicle.handle_auth_response(*resp_body);
  if (!encode) return ContactOutcome::kAuthRejected;
  auto encode_rx = transit(*encode);
  if (!encode_rx) return ContactOutcome::kAuthLost;
  auto ack = rsu.handle_frame(*encode_rx);
  if (!ack) return ContactOutcome::kAuthLost;
  return ContactOutcome::kEncoded;
}

Status Deployment::upload_period(Rsu& rsu) {
  return upload_period_reliable(rsu, 1);
}

Status Deployment::upload_period_reliable(Rsu& rsu,
                                          std::size_t max_attempts) {
  // Ship the record first so the just-measured volume enters the server's
  // history, then let the server plan the next period's size (Eq. 2).
  Status ingest_status{ErrorCode::kChannelError, "no attempts made"};
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    auto upload_rx = transit(rsu.make_upload());
    ingest_status =
        upload_rx ? server_.ingest_frame(*upload_rx) : upload_rx.status();
    // Retry only channel losses; a server-side rejection (duplicate,
    // malformed) will not improve with retransmission.
    if (ingest_status.code() != ErrorCode::kChannelError) break;
  }
  const std::size_t next_size = server_.plan_size(
      rsu.location(), static_cast<double>(rsu.bitmap_size()) /
                          config_.load_factor);
  rsu.start_next_period(next_size);
  return ingest_status;
}

}  // namespace ptm
