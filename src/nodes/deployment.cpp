#include "nodes/deployment.hpp"

#include <algorithm>
#include <utility>

namespace ptm {

const char* contact_outcome_name(ContactOutcome o) noexcept {
  switch (o) {
    case ContactOutcome::kEncoded: return "encoded";
    case ContactOutcome::kBeaconLost: return "beacon-lost";
    case ContactOutcome::kAuthLost: return "auth-lost";
    case ContactOutcome::kAuthRejected: return "auth-rejected";
  }
  return "unknown";
}

Deployment::Deployment(Config config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      ca_(std::make_unique<CertificateAuthority>("trusted-third-party",
                                                 config.ca_key_bits, rng_)),
      channel_(config.channel, seed ^ 0xc4a22e1ULL),
      server_(config.load_factor, config.encoding.s) {}

Rsu& Deployment::add_rsu(std::uint64_t location,
                         std::size_t initial_bitmap_size) {
  RsaKeyPair keys = rsa_generate(config_.rsu_key_bits, rng_);
  // Window [0, cert_valid_until] is never inverted: issue() cannot fail.
  auto cert =
      ca_->issue("rsu:" + std::to_string(location), location, keys.pub, 0,
                 config_.cert_valid_until);
  rsus_.push_back(std::make_unique<Rsu>(location, std::move(keys),
                                        std::move(*cert),
                                        initial_bitmap_size));
  return *rsus_.back();
}

Vehicle Deployment::make_vehicle(std::uint64_t vehicle_id) {
  VehicleSecrets secrets =
      VehicleSecrets::create(vehicle_id, config_.encoding.s, rng_);
  return Vehicle(std::move(secrets), config_.encoding, ca_->public_key(),
                 rng_.next());
}

void Deployment::set_fault_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  channel_.set_fault_plan(plan_);
}

void Deployment::advance_time(std::uint64_t dt) {
  const std::uint64_t from = now_;
  now_ += dt;
  channel_.advance_to(now_);
  // Fire any crash trigger scripted strictly after `from` and at or before
  // the new now.  A bare (non-durable) RSU has no files to restart from, so
  // a scripted crash for it is meaningless and skipped.
  for (auto& rsu : rsus_) {
    if (!rsu->durable()) continue;
    if (plan_.rsu_crash_between(rsu->location(), from + 1, now_ + 1)) {
      (void)rsu->crash_and_restart();
    }
  }
  // Same contract for the central server: a scripted crash only fires for
  // a durable server (one with an attached archive to restart from).
  if (server_.durable() &&
      plan_.server_crash_between(from + 1, now_ + 1)) {
    (void)server_.crash_and_restart();
  }
}

Result<Frame> Deployment::transit(const Frame& frame) {
  // Only traced frames earn a channel-leg span; untraced handshake legs
  // stay span-free so contact-heavy runs do not flood the ring.
  ScopedTimer leg_span(frame.trace.active() ? &spans_ : nullptr,
                       "channel-leg", frame.trace, now_);
  const auto wire = encode_frame(frame);
  const auto deliveries = channel_.transmit(wire);
  for (const auto& bytes : deliveries) {
    auto decoded = decode_frame(bytes);
    // A corrupted copy is dropped by the receiver's codec; a duplicate
    // means the first good copy wins.
    if (decoded) return decoded;
  }
  leg_span.set_ok(false);
  return Status{ErrorCode::kChannelError, "frame lost or corrupted"};
}

Result<Frame> Deployment::transit_leg(const Frame& frame) {
  Result<Frame> rx = transit(frame);
  for (std::size_t retry = 0; retry < config_.contact_leg_retries && !rx;
       ++retry) {
    rx = transit(frame);
  }
  return rx;
}

ContactOutcome Deployment::run_contact(Vehicle& vehicle, Rsu& rsu) {
  // An RSU inside a scripted outage window transmits nothing.
  if (plan_.rsu_down_at(rsu.location(), now_)) {
    return ContactOutcome::kBeaconLost;
  }

  // Leg 1: beacon broadcast.
  auto beacon = transit_leg(rsu.make_beacon());
  if (!beacon) return ContactOutcome::kBeaconLost;
  const auto* beacon_body = std::get_if<Beacon>(&beacon->body);
  if (beacon_body == nullptr) return ContactOutcome::kBeaconLost;

  // Leg 2: vehicle verifies the certificate and requests authentication.
  auto auth_req = vehicle.handle_beacon(*beacon_body);
  if (!auth_req) return ContactOutcome::kAuthRejected;
  auto auth_req_rx = transit_leg(*auth_req);
  if (!auth_req_rx) {
    vehicle.abort_contact();
    return ContactOutcome::kAuthLost;
  }

  // Leg 3: RSU proves key possession.
  auto auth_resp = rsu.handle_frame(*auth_req_rx);
  if (!auth_resp) {
    vehicle.abort_contact();
    return ContactOutcome::kAuthLost;
  }
  auto auth_resp_rx = transit_leg(*auth_resp);
  if (!auth_resp_rx) {
    vehicle.abort_contact();
    return ContactOutcome::kAuthLost;
  }
  const auto* resp_body = std::get_if<AuthResponse>(&auth_resp_rx->body);
  if (resp_body == nullptr) {
    vehicle.abort_contact();
    return ContactOutcome::kAuthLost;
  }

  // Leg 4: vehicle transmits h_v.  This leg joins the record's pipeline
  // trace (the index lands in this (location, period) record), so its
  // channel transit shows up in the record's post-mortem timeline.
  auto encode = vehicle.handle_auth_response(*resp_body);
  if (!encode) return ContactOutcome::kAuthRejected;
  encode->trace = rsu.record_trace();
  auto encode_rx = transit_leg(*encode);
  if (!encode_rx) return ContactOutcome::kAuthLost;
  auto ack = rsu.handle_frame(*encode_rx);
  if (!ack) return ContactOutcome::kAuthLost;
  return ContactOutcome::kEncoded;
}

void Deployment::attempt_delivery(Rsu& rsu, std::uint64_t period,
                                  PumpResult& result) {
  // Re-find on every step: acknowledge() mutates the deque, so pointers
  // snapshotted before an earlier entry's delivery may be stale.
  UploadOutbox::Entry* entry = rsu.outbox().find(rsu.location(), period);
  if (entry == nullptr) return;
  ++result.attempted;

  // One span per delivery attempt, parented on the stage-upload span the
  // outbox persisted with the entry; the upload frame carries this span's
  // context so the server's ingest span chains onto it.
  ScopedTimer retry_span(entry->trace.active() ? &spans_ : nullptr,
                         "outbox-retry", entry->trace, now_);

  Frame upload;
  upload.src = MacAddress{rsu.location()};
  upload.dst = broadcast_mac();  // "uplink" to the central server
  upload.body = RecordUpload{entry->record};
  upload.trace = retry_span.context();

  // The backhaul: either leg can be lost; a server outage swallows the
  // upload the same way a lost frame would.
  auto upload_rx =
      plan_.server_unreachable_at(now_)
          ? Result<Frame>{Status{ErrorCode::kChannelError,
                                 "server unreachable"}}
          : transit(upload);
  if (!upload_rx) {
    retry_span.set_ok(false);
    // During a known server outage, re-arm from the outage's end rather
    // than from now: a retry booked inside the window is guaranteed
    // wasted, inflates the attempt count (and with it the next delay),
    // and makes the fleet's first post-outage retries land as one
    // thundering burst of maxed-out backoffs.  From the outage end the
    // normal jittered ladder applies - the first retry lands spread over
    // [end, end + base + jitter].
    std::uint64_t retry_from = now_;
    if (const auto outage_end = plan_.server_outage_end_at(now_)) {
      retry_from = std::max(retry_from, *outage_end);
    }
    UploadOutbox::schedule_retry(*entry, retry_from, config_.backoff_base,
                                 config_.backoff_cap, rng_);
    return;
  }

  auto ack = server_.ingest_frame_acked(*upload_rx);
  if (!ack) {
    retry_span.set_ok(false);
    // The server refused the record (conflicting bytes, malformed).
    // Retransmission can never fix that: drop the entry so the outbox
    // drains instead of grinding on a poisoned head.
    (void)rsu.outbox().acknowledge(rsu.location(), period);
    ++result.rejected;
    result.last_reject = ack.status();
    return;
  }

  auto ack_rx = transit(*ack);
  const auto* ack_body =
      ack_rx ? std::get_if<UploadAck>(&ack_rx->body) : nullptr;
  if (ack_body == nullptr) {
    // The server HAS the record but the RSU does not know: keep the entry
    // and retry later.  The re-delivery is idempotent and re-acks.
    retry_span.set_ok(false);
    entry = rsu.outbox().find(rsu.location(), period);
    if (entry != nullptr) {
      UploadOutbox::schedule_retry(*entry, now_, config_.backoff_base,
                                   config_.backoff_cap, rng_);
    }
    return;
  }
  if (rsu.handle_upload_ack(*ack_body).is_ok()) ++result.acked;
}

PumpResult Deployment::pump_outbox(Rsu& rsu) {
  PumpResult result;
  // An RSU inside an outage window cannot transmit at all.
  if (plan_.rsu_down_at(rsu.location(), now_)) return result;
  // Snapshot the due (location, period) keys, then deliver one at a time;
  // attempt_delivery re-finds each entry because delivery mutates the
  // deque underneath previously returned pointers.
  std::vector<std::uint64_t> due_periods;
  for (const UploadOutbox::Entry* entry : rsu.outbox().due(now_)) {
    due_periods.push_back(entry->record.period);
  }
  for (std::uint64_t period : due_periods) {
    attempt_delivery(rsu, period, result);
  }
  return result;
}

Status Deployment::write_span_dump(const std::string& path) const {
  std::vector<const SpanRecorder*> recorders;
  recorders.push_back(&spans_);
  for (const auto& rsu : rsus_) recorders.push_back(&rsu->spans());
  recorders.push_back(&server_.queries().spans());
  return ptm::write_span_dump(path, recorders);
}

Status Deployment::upload_period(Rsu& rsu) {
  return upload_period_reliable(rsu, 1);
}

Status Deployment::upload_period_reliable(Rsu& rsu,
                                          std::size_t max_attempts) {
  const std::uint64_t loc = rsu.location();
  const std::uint64_t closed_period = rsu.current_period();
  // Stage first: from this point the record can no longer be lost, only
  // delayed (it is in the outbox, durably when the RSU is durable).
  if (Status staged = rsu.stage_upload(); !staged.is_ok()) return staged;
  // When the server already holds a record for this (location, period),
  // has_record cannot tell "our upload landed" from "someone else's record
  // was there all along" - judge by the outbox entry's fate instead.
  const bool preexisting = server_.has_record(loc, closed_period);

  Status reject = Status::ok();
  bool delivered = false;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    const PumpResult pumped = pump_outbox(rsu);
    const bool still_pending = rsu.outbox().contains(loc, closed_period);
    if (!still_pending && pumped.rejected > 0 &&
        (preexisting || !server_.has_record(loc, closed_period))) {
      // Our entry was dropped as unacceptable; retransmission cannot fix a
      // server-side rejection, so stop immediately.
      reject = pumped.last_reject;
      break;
    }
    if (!still_pending || (!preexisting && server_.has_record(loc,
                                                              closed_period))) {
      // Acked (or the server has it and only the ack is outstanding - the
      // next pump's idempotent re-delivery will clear the entry).
      delivered = true;
      break;
    }
    if (attempt + 1 == max_attempts) break;
    // Sleep through the backoff gap so the retry is not back-to-back.
    const UploadOutbox::Entry* entry = rsu.outbox().find(loc, closed_period);
    const std::uint64_t wake =
        entry != nullptr ? std::max(entry->next_attempt_at, now_ + 1)
                         : now_ + 1;
    advance_time(wake - now_);
  }

  // The period advances exactly once, whatever became of the delivery: the
  // served history (when the upload landed) or the current size's implied
  // volume feeds the Eq. 2 planner.  Exception: a scripted crash during a
  // backoff wait already moved a durable RSU past the closed period (its
  // restart logic sees the period in the outbox) - advancing again here
  // would silently skip a measurement period.
  if (rsu.current_period() == closed_period) {
    const std::size_t next_size = server_.plan_size(
        loc, static_cast<double>(rsu.bitmap_size()) / config_.load_factor);
    rsu.start_next_period(next_size);
  }

  if (delivered) return Status::ok();
  if (!reject.is_ok()) return reject;
  return {ErrorCode::kChannelError,
          "upload still pending in the outbox; later pumps will retry"};
}

}  // namespace ptm
