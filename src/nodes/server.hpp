// server.hpp - the central server (paper §II-A, §II-D).
//
// The server collects every RSU's per-period traffic record, maintains the
// historical volume averages that drive bitmap sizing (Eq. 2), and answers
// the three query types the paper defines:
//   * point traffic          - linear counting on one record (Eq. 1/3);
//   * point persistent       - Eq. 12 over records of one location;
//   * point-to-point persistent - Eq. 21 over records of two locations.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "core/linear_counting.hpp"
#include "core/p2p_persistent.hpp"
#include "core/point_persistent.hpp"
#include "core/traffic_record.hpp"
#include "net/message.hpp"

namespace ptm {

class CentralServer {
 public:
  /// `load_factor` is the system-wide f of Eq. 2; `s` must match the
  /// deployment's encoding parameter (needed by the p2p estimator).
  CentralServer(double load_factor, std::size_t s)
      : load_factor_(load_factor), s_(s) {}

  [[nodiscard]] double load_factor() const noexcept { return load_factor_; }
  [[nodiscard]] std::size_t s() const noexcept { return s_; }

  /// Ingests an uploaded record.  Rejects duplicates for the same
  /// (location, period) and structurally invalid records.  On success the
  /// record's estimated point volume updates the location's historical
  /// average used for future planning.
  Status ingest(const TrafficRecord& record);

  /// Convenience: accepts a RecordUpload frame (the RSU uplink).
  Status ingest_frame(const Frame& frame);

  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_.size();
  }
  [[nodiscard]] bool has_record(std::uint64_t location,
                                std::uint64_t period) const;

  /// Eq. 2 with the location's historical average volume.  Falls back to
  /// `default_volume` for locations with no history yet.
  [[nodiscard]] std::size_t plan_size(std::uint64_t location,
                                      double default_volume = 1024.0) const;

  /// Point traffic volume for one (location, period) - Eq. 3 exact form.
  [[nodiscard]] Result<CardinalityEstimate> query_point_volume(
      std::uint64_t location, std::uint64_t period) const;

  /// Point persistent traffic over the given periods at one location
  /// (Eq. 12).  NotFound if any record is missing.
  [[nodiscard]] Result<PointPersistentEstimate> query_point_persistent(
      std::uint64_t location, std::span<const std::uint64_t> periods) const;

  /// Rolling form: point persistent traffic over the `window` most recent
  /// periods stored for the location ("the last 7 days", re-askable after
  /// every upload).  NotFound when fewer than `window` records exist.
  [[nodiscard]] Result<PointPersistentEstimate>
  query_point_persistent_recent(std::uint64_t location,
                                std::size_t window) const;

  /// Point-to-point persistent traffic between two locations over the given
  /// periods (Eq. 21).  NotFound if any record is missing.
  [[nodiscard]] Result<PointToPointPersistentEstimate>
  query_p2p_persistent(std::uint64_t location_a, std::uint64_t location_b,
                       std::span<const std::uint64_t> periods) const;

 private:
  [[nodiscard]] Result<std::vector<Bitmap>> collect_bitmaps(
      std::uint64_t location, std::span<const std::uint64_t> periods) const;

  /// Minimal history accumulator (count + mean), kept local so the header
  /// does not pull in the stats library for one pair of fields.
  struct VolumeHistory {
    std::uint64_t count = 0;
    double mean = 0.0;
    void add(double x) noexcept {
      ++count;
      mean += (x - mean) / static_cast<double>(count);
    }
  };

  double load_factor_;
  std::size_t s_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, TrafficRecord> records_;
  std::map<std::uint64_t, VolumeHistory> history_;
};

}  // namespace ptm
