// server.hpp - the central server (paper §II-A, §II-D).
//
// The server collects every RSU's per-period traffic record, maintains the
// historical volume averages that drive bitmap sizing (Eq. 2), and answers
// the paper's query types.  All storage and query execution lives in the
// sharded, thread-safe QueryService (query/query_service.hpp);
// CentralServer is the V2I-facing shell that adds frame handling.  Build a
// QueryRequest and call `queries().run(...)` (or `run_batch`) to query.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "core/traffic_record.hpp"
#include "net/message.hpp"
#include "obs/trace.hpp"
#include "query/query_service.hpp"
#include "store/archive.hpp"

namespace ptm {

class CentralServer {
 public:
  /// `load_factor` is the system-wide f of Eq. 2; `s` must match the
  /// deployment's encoding parameter (needed by the p2p estimator).
  CentralServer(double load_factor, std::size_t s)
      : service_(QueryServiceOptions{.load_factor = load_factor, .s = s}) {}

  /// Full-options form: also configures sharding and the query admission
  /// gate (QueryServiceOptions::admission).
  explicit CentralServer(QueryServiceOptions options) : service_(options) {}

  [[nodiscard]] double load_factor() const noexcept {
    return service_.options().load_factor;
  }
  [[nodiscard]] std::size_t s() const noexcept {
    return service_.options().s;
  }

  /// The underlying query engine: the unified QueryRequest/QueryResponse
  /// API, batched execution, and the ServiceMetrics snapshot.
  [[nodiscard]] QueryService& queries() noexcept { return service_; }
  [[nodiscard]] const QueryService& queries() const noexcept {
    return service_;
  }

  /// Ingests an uploaded record.  Rejects duplicates for the same
  /// (location, period) and structurally invalid records.  On success the
  /// record's estimated point volume updates the location's historical
  /// average used for future planning.  Thread-safe.  `trace` (when
  /// active) attributes the ingest span to the record's pipeline trace.
  Status ingest(const TrafficRecord& record, const TraceContext& trace = {}) {
    return service_.ingest(record, trace);
  }

  /// Opens (or creates) the record archive at `path` and attaches it as
  /// the service's write-ahead store: from here on, every first-accept
  /// ingest is durable on disk *before* its ack frame exists - the
  /// server-side mirror of the RSU's outbox-before-journal-reset rule, so
  /// an acked record survives a server crash by construction.  Re-attach
  /// after crash_and_restart happens automatically.
  Status attach_durability(std::string path, ArchiveOptions options = {});

  /// True once attach_durability succeeded (and after every restart).
  [[nodiscard]] bool durable() const noexcept { return archive_.has_value(); }

  /// Simulates a server process crash + restart: all volatile state (the
  /// record shards, volume history, metrics) is discarded, the archive is
  /// re-opened from disk, and the store is rebuilt from it.  Returns the
  /// number of records restored.  FailedPrecondition while not durable -
  /// a volatile server that crashes simply loses everything, which is the
  /// pre-durability behavior callers opt out of by never attaching.
  [[nodiscard]] Result<std::size_t> crash_and_restart();

  /// Convenience: accepts a RecordUpload frame (the RSU uplink).  The
  /// frame's trace envelope carries into the service's ingest span.
  Status ingest_frame(const Frame& frame);

  /// Acked ingest: accepts a RecordUpload frame and, on success (including
  /// an idempotent re-delivery), returns the UploadAck frame addressed
  /// back to the uploading RSU.  The RSU drops the record from its
  /// retransmission outbox when the ack arrives; a lost ack simply means
  /// one more (idempotent) re-delivery.
  [[nodiscard]] Result<Frame> ingest_frame_acked(const Frame& frame);

  [[nodiscard]] std::size_t record_count() const noexcept {
    return service_.record_count();
  }
  [[nodiscard]] bool has_record(std::uint64_t location,
                                std::uint64_t period) const {
    return service_.has_record(location, period);
  }

  /// Eq. 2 with the location's historical average volume.  Falls back to
  /// `default_volume` for locations with no history yet.
  [[nodiscard]] std::size_t plan_size(std::uint64_t location,
                                      double default_volume = 1024.0) const {
    return service_.plan_size(location, default_volume);
  }

 private:
  QueryService service_;
  // The write-ahead archive, when durability is attached.  Declared after
  // service_ so it outlives the service's use of it within any member
  // function, and reset/re-opened wholesale by crash_and_restart (a real
  // restart re-reads the log from disk; keeping the old index would hide
  // torn-tail healing).
  std::optional<RecordArchive> archive_;
  ArchiveOptions archive_options_;
};

}  // namespace ptm
