// vehicle.hpp - the vehicle-side protocol endpoint (paper §II-B, §II-D).
//
// A vehicle owns its secrets (ID, K_v, constants C) and the pre-installed
// public key of the trusted third party.  On receiving a beacon it:
//   1. verifies the RSU certificate against the CA key;
//   2. draws a one-time MAC and sends an AuthRequest with a fresh nonce;
//   3. verifies the RSU's signature over the nonce transcript;
//   4. computes h_v for the beacon's (L, m) and sends EncodeIndex.
// Nothing derived from the vehicle ID other than h_v ever leaves the class.
#pragma once

#include <cstdint>
#include <optional>

#include "common/status.hpp"
#include "core/encoding.hpp"
#include "crypto/certificate.hpp"
#include "net/mac.hpp"
#include "net/message.hpp"

namespace ptm {

class Vehicle {
 public:
  /// `secrets` are minted by VehicleSecrets::create; `ca_key` is the trusted
  /// third party's public key pre-installed in every vehicle (§II-B).
  Vehicle(VehicleSecrets secrets, EncodingParams params, RsaPublicKey ca_key,
          std::uint64_t mac_seed)
      : secrets_(std::move(secrets)),
        encoder_(params),
        ca_key_(std::move(ca_key)),
        mac_gen_(mac_seed),
        nonce_rng_(mac_seed ^ 0xbeac04c0ffeeULL) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return secrets_.id; }

  /// Step 1-2: processes a beacon.  On success returns the AuthRequest frame
  /// to transmit and remembers the contact state; AuthFailure if the
  /// certificate does not verify (rogue RSU) - the vehicle keeps silent.
  [[nodiscard]] Result<Frame> handle_beacon(const Beacon& beacon);

  /// Step 3-4: processes the RSU's AuthResponse for the pending contact.
  /// On success returns the EncodeIndex frame carrying h_v.
  /// AuthFailure if the signature or nonce does not match;
  /// FailedPrecondition if there is no pending contact.
  [[nodiscard]] Result<Frame> handle_auth_response(const AuthResponse& resp);

  /// True while a contact awaits the RSU's AuthResponse.
  [[nodiscard]] bool contact_pending() const noexcept {
    return pending_.has_value();
  }

  /// Abandons the pending contact (e.g. response lost; the vehicle will
  /// retry on the next beacon).
  void abort_contact() noexcept { pending_.reset(); }

  /// Direct (non-networked) encoding used by the pure-core simulation path;
  /// integration tests assert both paths set identical bits.
  [[nodiscard]] std::uint64_t bit_index_at(std::uint64_t location,
                                           std::size_t m) const noexcept {
    return encoder_.bit_index(secrets_, location, m);
  }

 private:
  struct PendingContact {
    Beacon beacon;
    std::uint64_t nonce = 0;
    MacAddress mac;  ///< one-time address used for this contact
  };

  VehicleSecrets secrets_;
  VehicleEncoder encoder_;
  RsaPublicKey ca_key_;
  SpoofMacGenerator mac_gen_;
  Xoshiro256 nonce_rng_;
  std::optional<PendingContact> pending_;
};

}  // namespace ptm
