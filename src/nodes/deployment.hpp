// deployment.hpp - wiring helper: CA + RSUs + vehicles + lossy channel.
//
// Bundles the pieces a full-stack simulation needs and drives the
// beacon/auth/encode exchange for one vehicle-RSU contact over a
// SimulatedChannel, including the decode step (so corrupted frames are
// rejected exactly as a real receiver would reject them).  Used by the
// integration tests, the v2i_full_stack example, and the channel ablation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"
#include "crypto/certificate.hpp"
#include "net/channel.hpp"
#include "nodes/rsu.hpp"
#include "nodes/server.hpp"
#include "nodes/vehicle.hpp"

namespace ptm {

/// Outcome of one attempted vehicle-RSU contact.
enum class ContactOutcome {
  kEncoded,        ///< vehicle authenticated and its bit was set
  kBeaconLost,     ///< beacon never reached the vehicle
  kAuthLost,       ///< a handshake frame was lost or corrupted
  kAuthRejected,   ///< certificate/signature verification failed
};

[[nodiscard]] const char* contact_outcome_name(ContactOutcome o) noexcept;

/// A V2I deployment: one trusted third party, any number of RSUs, a shared
/// lossy channel, and a central server.
class Deployment {
 public:
  struct Config {
    std::size_t ca_key_bits = 512;     ///< simulation-grade (DESIGN.md §5)
    std::size_t rsu_key_bits = 512;
    double load_factor = 2.0;          ///< f of Eq. 2
    EncodingParams encoding;           ///< shared s / hash family
    ChannelConfig channel;             ///< default: lossless
    std::uint64_t cert_valid_until = 1ULL << 40;
  };

  Deployment(Config config, std::uint64_t seed);

  /// Installs an RSU at `location` with a fresh certified keypair and an
  /// initial bitmap of `initial_bitmap_size` bits.
  Rsu& add_rsu(std::uint64_t location, std::size_t initial_bitmap_size);

  /// Mints a vehicle with fresh secrets.
  Vehicle make_vehicle(std::uint64_t vehicle_id);

  /// Runs the full beacon->auth->encode exchange between `vehicle` and
  /// `rsu` across the lossy channel (each leg transits independently).
  ContactOutcome run_contact(Vehicle& vehicle, Rsu& rsu);

  /// Ends the period at `rsu`: plans the next size via the server's
  /// history (Eq. 2), transmits the upload over the channel, and ingests it
  /// at the server.  Returns ChannelError if the upload was lost (the
  /// record is then gone, as it would be without an application-level
  /// retry; callers that need reliability use the retrying variant).
  Status upload_period(Rsu& rsu);

  /// Reliable variant: retransmits the upload up to `max_attempts` times
  /// before ending the period, so a record survives any channel whose loss
  /// probability is below 1.  The period advances exactly once either way.
  Status upload_period_reliable(Rsu& rsu, std::size_t max_attempts = 5);

  [[nodiscard]] CentralServer& server() noexcept { return server_; }
  [[nodiscard]] const CentralServer& server() const noexcept {
    return server_;
  }
  [[nodiscard]] SimulatedChannel& channel() noexcept { return channel_; }
  [[nodiscard]] const CertificateAuthority& ca() const noexcept {
    return *ca_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  /// One channel transit: encode, transmit, decode first surviving copy.
  [[nodiscard]] Result<Frame> transit(const Frame& frame);

  Config config_;
  Xoshiro256 rng_;
  std::unique_ptr<CertificateAuthority> ca_;
  std::vector<std::unique_ptr<Rsu>> rsus_;
  SimulatedChannel channel_;
  CentralServer server_;
};

}  // namespace ptm
