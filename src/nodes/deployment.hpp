// deployment.hpp - wiring helper: CA + RSUs + vehicles + lossy channel.
//
// Bundles the pieces a full-stack simulation needs and drives the
// beacon/auth/encode exchange for one vehicle-RSU contact over a
// SimulatedChannel, including the decode step (so corrupted frames are
// rejected exactly as a real receiver would reject them).  Used by the
// integration tests, the v2i_full_stack example, and the channel ablation.
//
// The deployment also owns the fault-tolerance machinery: a logical step
// clock shared with the channel, an optional scripted FaultPlan (outage
// windows, RSU crash triggers), and the at-least-once upload pipeline -
// period records flow through each RSU's outbox and are retransmitted with
// exponential backoff + jitter until the server's UploadAck clears them.
//
// Observability: the deployment keeps its own SpanRecorder ("deployment")
// for the hops it owns - channel legs of traced frames and outbox retry
// attempts - and `write_span_dump` gathers those plus every RSU's and the
// query service's recorders into one post-mortem file (see
// docs/observability.md).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"
#include "crypto/certificate.hpp"
#include "net/channel.hpp"
#include "net/fault_plan.hpp"
#include "nodes/rsu.hpp"
#include "obs/trace.hpp"
#include "nodes/server.hpp"
#include "nodes/vehicle.hpp"

namespace ptm {

/// Outcome of one attempted vehicle-RSU contact.
enum class ContactOutcome {
  kEncoded,        ///< vehicle authenticated and its bit was set
  kBeaconLost,     ///< beacon never reached the vehicle (or RSU radio down)
  kAuthLost,       ///< a handshake frame was lost or corrupted
  kAuthRejected,   ///< certificate/signature verification failed
};

[[nodiscard]] const char* contact_outcome_name(ContactOutcome o) noexcept;

/// What one outbox pump accomplished.
struct PumpResult {
  std::size_t attempted = 0;  ///< due entries a delivery was tried for
  std::size_t acked = 0;      ///< entries delivered, acked, and cleared
  std::size_t rejected = 0;   ///< entries the server rejected (dropped)
  Status last_reject;         ///< why, for the most recent rejection
};

/// A V2I deployment: one trusted third party, any number of RSUs, a shared
/// lossy channel, and a central server.
class Deployment {
 public:
  struct Config {
    std::size_t ca_key_bits = 512;     ///< simulation-grade (DESIGN.md §5)
    std::size_t rsu_key_bits = 512;
    double load_factor = 2.0;          ///< f of Eq. 2
    EncodingParams encoding;           ///< shared s / hash family
    ChannelConfig channel;             ///< default: lossless
    std::uint64_t cert_valid_until = 1ULL << 40;
    /// Extra transmissions of a lost handshake leg (the vehicle re-tries
    /// across beacon intervals).  0 reproduces the paper's single-shot
    /// contact: one loss kills the contact.
    std::size_t contact_leg_retries = 0;
    /// Outbox retransmission backoff, in deployment steps: the n-th retry
    /// waits min(base << n, cap) plus uniform jitter in [0, base].
    std::uint64_t backoff_base = 1;
    std::uint64_t backoff_cap = 64;
  };

  Deployment(Config config, std::uint64_t seed);

  /// Installs an RSU at `location` with a fresh certified keypair and an
  /// initial bitmap of `initial_bitmap_size` bits.
  Rsu& add_rsu(std::uint64_t location, std::size_t initial_bitmap_size);

  /// Mints a vehicle with fresh secrets.
  Vehicle make_vehicle(std::uint64_t vehicle_id);

  /// Runs the full beacon->auth->encode exchange between `vehicle` and
  /// `rsu` across the lossy channel.  Each handshake leg transits up to
  /// 1 + contact_leg_retries times (a lost leg is retransmitted, as it
  /// would be across beacon intervals).  An RSU inside a scripted outage
  /// window never gets its beacon out: kBeaconLost.
  ContactOutcome run_contact(Vehicle& vehicle, Rsu& rsu);

  /// Ends the period at `rsu`: stages the record in the RSU's outbox
  /// (durably, when attached), attempts one delivery, plans the next size
  /// via the server's history (Eq. 2), and starts the next period.
  /// Returns Ok once the server holds the record; kChannelError when the
  /// upload is still pending in the outbox (it is NOT lost - later pumps
  /// retransmit it); a server rejection's code otherwise.
  Status upload_period(Rsu& rsu);

  /// Reliable variant: like upload_period, but keeps retransmitting up to
  /// `max_attempts` times, advancing the step clock through each backoff
  /// gap (exponential + jitter, not back-to-back).  The period advances
  /// exactly once either way; an upload that exhausts its attempts stays
  /// in the outbox for later pumps instead of being dropped.
  Status upload_period_reliable(Rsu& rsu, std::size_t max_attempts = 5);

  /// Attempts delivery of every due entry in `rsu`'s outbox, oldest first:
  /// transmit RecordUpload, ingest (idempotent), transmit UploadAck back.
  /// Entries that fail any leg are rescheduled with backoff; entries the
  /// server rejects as conflicting are dropped (they can never succeed).
  /// No-op while the RSU or the backhaul is inside an outage window.
  PumpResult pump_outbox(Rsu& rsu);

  /// Installs the scripted failure sequence (shared with the channel).
  void set_fault_plan(FaultPlan plan);

  /// Advances the logical step clock by `dt`.  Outage windows open/close
  /// as the clock passes them, outbox backoff timers run on this clock,
  /// and any scripted RSU crash trigger crossed in (now, now+dt] fires
  /// (durable RSUs restart from journal + outbox; bare RSUs have no
  /// replayable state and are left untouched).
  void advance_time(std::uint64_t dt = 1);

  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return plan_; }

  [[nodiscard]] CentralServer& server() noexcept { return server_; }
  [[nodiscard]] const CentralServer& server() const noexcept {
    return server_;
  }
  [[nodiscard]] SimulatedChannel& channel() noexcept { return channel_; }

  /// The deployment's own span buffer ("deployment": channel-leg and
  /// outbox-retry spans for traced frames).
  [[nodiscard]] SpanRecorder& spans() noexcept { return spans_; }
  [[nodiscard]] const SpanRecorder& spans() const noexcept { return spans_; }

  /// Dumps every recorder in the deployment - this one, each RSU's, and
  /// the query service's - to `path` as JSON lines for `ptmctl trace`.
  [[nodiscard]] Status write_span_dump(const std::string& path) const;

  [[nodiscard]] const CertificateAuthority& ca() const noexcept {
    return *ca_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  /// One channel transit: encode, transmit, decode first surviving copy.
  [[nodiscard]] Result<Frame> transit(const Frame& frame);
  /// A transit retried up to 1 + contact_leg_retries times.
  [[nodiscard]] Result<Frame> transit_leg(const Frame& frame);
  /// Tries to deliver one outbox entry end to end.  Updates `result`.
  void attempt_delivery(Rsu& rsu, std::uint64_t period, PumpResult& result);

  Config config_;
  Xoshiro256 rng_;
  std::unique_ptr<CertificateAuthority> ca_;
  std::vector<std::unique_ptr<Rsu>> rsus_;
  SimulatedChannel channel_;
  CentralServer server_;
  FaultPlan plan_;
  std::uint64_t now_ = 0;
  SpanRecorder spans_{"deployment"};
};

}  // namespace ptm
