#include "nodes/rsu.hpp"

#include <cassert>

#include "common/math.hpp"

namespace ptm {

Rsu::Rsu(std::uint64_t location, RsaKeyPair keys, Certificate certificate,
         std::size_t initial_bitmap_size, std::uint64_t first_period)
    : location_(location),
      period_(first_period),
      spans_("rsu:" + std::to_string(location)),
      keys_(std::move(keys)),
      certificate_(std::move(certificate)),
      outbox_(UploadOutbox::kDefaultCapacity) {
  assert(is_power_of_two(initial_bitmap_size) && initial_bitmap_size >= 2);
  record_.location = location_;
  record_.period = period_;
  record_.bits = Bitmap(initial_bitmap_size);
}

Frame Rsu::make_beacon() const {
  Frame frame;
  frame.src = MacAddress{location_};  // RSUs are infrastructure: fixed MAC
  frame.dst = broadcast_mac();
  Beacon beacon;
  beacon.location = location_;
  beacon.period = period_;
  beacon.bitmap_size = record_.bits.size();
  beacon.certificate = certificate_;
  frame.body = std::move(beacon);
  return frame;
}

Result<Frame> Rsu::handle_frame(const Frame& frame) {
  if (const auto* req = std::get_if<AuthRequest>(&frame.body)) {
    Frame resp;
    resp.src = MacAddress{location_};
    resp.dst = frame.src;  // back to the vehicle's one-time MAC
    AuthResponse body;
    body.nonce = req->nonce;
    body.signature =
        rsa_sign(keys_, auth_transcript(req->nonce, location_, period_));
    resp.body = std::move(body);
    return resp;
  }
  if (const auto* enc = std::get_if<EncodeIndex>(&frame.body)) {
    // The encode belongs to the *record's* trace (not the contact's):
    // every hop of this (location, period) record shares one trace id, so
    // a post-mortem can follow it from this bit-set to the archive append.
    ScopedTimer encode_span(&spans_, "encode", record_trace());
    if (enc->index >= record_.bits.size()) {
      encode_span.set_ok(false);
      return Status{ErrorCode::kInvalidArgument,
                    "encode index out of bitmap range"};
    }
    record_.bits.set(static_cast<std::size_t>(enc->index));
    ++encodes_this_period_;
    if (journal_) {
      // Best effort: a failed journal write narrows the replay window but
      // must not refuse the vehicle (the bit is already set in RAM).
      (void)journal_->record_encode(enc->index);
    }
    Frame ack;
    ack.src = MacAddress{location_};
    ack.dst = frame.src;
    ack.body = EncodeAck{};
    return ack;
  }
  return Status{ErrorCode::kFailedPrecondition,
                "RSU received an unexpected frame type"};
}

Frame Rsu::make_upload() const {
  Frame frame;
  frame.src = MacAddress{location_};
  frame.dst = broadcast_mac();  // "uplink" to the central server
  frame.body = RecordUpload{record_};
  return frame;
}

void Rsu::start_next_period(std::size_t next_bitmap_size) {
  assert(is_power_of_two(next_bitmap_size) && next_bitmap_size >= 2);
  ++period_;
  record_.location = location_;
  record_.period = period_;
  record_.bits = Bitmap(next_bitmap_size);
  encodes_this_period_ = 0;
  if (journal_) {
    (void)journal_->begin_period(location_, period_, next_bitmap_size);
  }
}

Frame Rsu::end_period(std::size_t next_bitmap_size) {
  Frame frame = make_upload();
  start_next_period(next_bitmap_size);
  return frame;
}

Status Rsu::attach_durability(const std::string& journal_path,
                              const std::string& outbox_path,
                              std::size_t outbox_capacity) {
  auto outbox = UploadOutbox::open(outbox_path, outbox_capacity);
  if (!outbox) return outbox.status();
  auto journal = RsuJournal::open(journal_path);
  if (!journal) return journal.status();
  outbox_ = std::move(*outbox);
  journal_ = std::move(*journal);
  journal_path_ = journal_path;
  outbox_path_ = outbox_path;
  outbox_capacity_ = outbox_capacity;
  return restore_from_journal();
}

Status Rsu::restore_from_journal() {
  const auto& replayed = journal_->replayed();
  if (!replayed) {
    // Fresh journal: persist the current in-memory period so a crash from
    // here on is replayable.
    return journal_->begin_period(location_, period_, record_.bits.size());
  }
  // A replay is the crash-recovery hop of the replayed record's trace.
  ScopedTimer replay_span(
      &spans_, "journal-replay",
      TraceContext::for_record(location_, replayed->period));
  if (replayed->location != location_) {
    replay_span.set_ok(false);
    return {ErrorCode::kFailedPrecondition,
            "journal belongs to a different RSU location"};
  }
  if (!is_power_of_two(replayed->bitmap_size) || replayed->bitmap_size < 2) {
    replay_span.set_ok(false);
    return {ErrorCode::kParseError,
            "journal period-start carries an invalid bitmap size"};
  }
  if (outbox_.contains(location_, replayed->period)) {
    // The period was closed into the outbox before the crash but the
    // journal reset never committed: the record is safe, so resume one
    // period past it.  The Eq. 2 size planned for that next period died
    // with the planner round-trip; reusing the closed period's size is the
    // conservative substitute.
    period_ = replayed->period + 1;
    record_.location = location_;
    record_.period = period_;
    record_.bits = Bitmap(static_cast<std::size_t>(replayed->bitmap_size));
    encodes_this_period_ = 0;
    return journal_->begin_period(location_, period_, record_.bits.size());
  }
  period_ = replayed->period;
  record_.location = location_;
  record_.period = period_;
  record_.bits = Bitmap(static_cast<std::size_t>(replayed->bitmap_size));
  encodes_this_period_ = 0;
  for (std::uint64_t index : replayed->encode_indices) {
    if (index >= record_.bits.size()) continue;  // tolerate a bad entry
    record_.bits.set(static_cast<std::size_t>(index));
    ++encodes_this_period_;
  }
  return Status::ok();
}

Status Rsu::stage_upload() {
  ScopedTimer span(&spans_, "stage-upload", record_trace());
  // The outbox entry inherits this span's context, so the retry spans of a
  // later pump (and the server's ingest span) chain back to it.
  Status s = outbox_.push(record_, span.context());
  span.set_ok(s.is_ok());
  return s;
}

Status Rsu::handle_upload_ack(const UploadAck& ack) {
  if (ack.location != location_) {
    return {ErrorCode::kInvalidArgument,
            "upload ack addressed to a different RSU"};
  }
  return outbox_.acknowledge(ack.location, ack.period);
}

Status Rsu::crash_and_restart() {
  if (!durable()) {
    return {ErrorCode::kFailedPrecondition,
            "crash_and_restart requires attached durability"};
  }
  // Volatile state dies with the process...
  record_.bits = Bitmap(2);
  encodes_this_period_ = 0;
  journal_.reset();
  // ...and everything observable must come back from disk.
  return attach_durability(journal_path_, outbox_path_, outbox_capacity_);
}

}  // namespace ptm
