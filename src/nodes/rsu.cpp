#include "nodes/rsu.hpp"

#include <cassert>

#include "common/math.hpp"

namespace ptm {

Rsu::Rsu(std::uint64_t location, RsaKeyPair keys, Certificate certificate,
         std::size_t initial_bitmap_size, std::uint64_t first_period)
    : location_(location),
      period_(first_period),
      keys_(std::move(keys)),
      certificate_(std::move(certificate)) {
  assert(is_power_of_two(initial_bitmap_size) && initial_bitmap_size >= 2);
  record_.location = location_;
  record_.period = period_;
  record_.bits = Bitmap(initial_bitmap_size);
}

Frame Rsu::make_beacon() const {
  Frame frame;
  frame.src = MacAddress{location_};  // RSUs are infrastructure: fixed MAC
  frame.dst = broadcast_mac();
  Beacon beacon;
  beacon.location = location_;
  beacon.period = period_;
  beacon.bitmap_size = record_.bits.size();
  beacon.certificate = certificate_;
  frame.body = std::move(beacon);
  return frame;
}

Result<Frame> Rsu::handle_frame(const Frame& frame) {
  if (const auto* req = std::get_if<AuthRequest>(&frame.body)) {
    Frame resp;
    resp.src = MacAddress{location_};
    resp.dst = frame.src;  // back to the vehicle's one-time MAC
    AuthResponse body;
    body.nonce = req->nonce;
    body.signature =
        rsa_sign(keys_, auth_transcript(req->nonce, location_, period_));
    resp.body = std::move(body);
    return resp;
  }
  if (const auto* enc = std::get_if<EncodeIndex>(&frame.body)) {
    if (enc->index >= record_.bits.size()) {
      return Status{ErrorCode::kInvalidArgument,
                    "encode index out of bitmap range"};
    }
    record_.bits.set(static_cast<std::size_t>(enc->index));
    ++encodes_this_period_;
    Frame ack;
    ack.src = MacAddress{location_};
    ack.dst = frame.src;
    ack.body = EncodeAck{};
    return ack;
  }
  return Status{ErrorCode::kFailedPrecondition,
                "RSU received an unexpected frame type"};
}

Frame Rsu::make_upload() const {
  Frame frame;
  frame.src = MacAddress{location_};
  frame.dst = broadcast_mac();  // "uplink" to the central server
  frame.body = RecordUpload{record_};
  return frame;
}

void Rsu::start_next_period(std::size_t next_bitmap_size) {
  assert(is_power_of_two(next_bitmap_size) && next_bitmap_size >= 2);
  ++period_;
  record_.location = location_;
  record_.period = period_;
  record_.bits = Bitmap(next_bitmap_size);
  encodes_this_period_ = 0;
}

Frame Rsu::end_period(std::size_t next_bitmap_size) {
  Frame frame = make_upload();
  start_next_period(next_bitmap_size);
  return frame;
}

}  // namespace ptm
