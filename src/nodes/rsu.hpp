// rsu.hpp - the road-side unit (paper §II-B, §II-D).
//
// An RSU owns an RSA keypair certified by the trusted third party, an m-bit
// traffic record for the current measurement period, and the period
// lifecycle: beacon -> authenticate vehicles -> record their h_v indices ->
// at period end, upload the record to the central server and reset.  The
// bitmap size for each period comes from the server's planner (Eq. 2).
//
// Fault tolerance (beyond the paper's model): an RSU can attach a
// durability pair - a crash-safe journal of the in-progress record
// (store/journal.hpp) and a bounded persistent outbox of closed-but-
// unacknowledged records (store/outbox.hpp).  A crashed RSU restarts from
// those files with the in-progress period's encodes and every pending
// upload intact; the deployment retransmits outbox entries with backoff
// until the server's UploadAck clears them.
#pragma once

#include <cstdint>
#include <optional>

#include "common/status.hpp"
#include "core/traffic_record.hpp"
#include "crypto/certificate.hpp"
#include "net/message.hpp"
#include "obs/trace.hpp"
#include "store/journal.hpp"
#include "store/outbox.hpp"

namespace ptm {

class Rsu {
 public:
  /// `certificate` must certify `keys.pub` with subject_id == location.
  Rsu(std::uint64_t location, RsaKeyPair keys, Certificate certificate,
      std::size_t initial_bitmap_size, std::uint64_t first_period = 0);

  [[nodiscard]] std::uint64_t location() const noexcept { return location_; }
  [[nodiscard]] std::uint64_t current_period() const noexcept {
    return period_;
  }
  [[nodiscard]] std::size_t bitmap_size() const noexcept {
    return record_.bits.size();
  }

  /// The periodic broadcast (§II-D): location, period, m, certificate.
  [[nodiscard]] Frame make_beacon() const;

  /// Handles one inbound frame.  AuthRequest -> AuthResponse;
  /// EncodeIndex -> sets the bit and returns EncodeAck.  Returns
  /// InvalidArgument for out-of-range indices and FailedPrecondition for
  /// frame types an RSU never receives.
  [[nodiscard]] Result<Frame> handle_frame(const Frame& frame);

  /// The RecordUpload frame for the in-progress record.  Does not end the
  /// period, so the server can ingest (and update its planning history)
  /// before start_next_period() asks it for the Eq. 2 size.
  [[nodiscard]] Frame make_upload() const;

  /// Starts the next period with a fresh all-zero bitmap of
  /// `next_bitmap_size` bits (the planner's Eq. 2 output).
  void start_next_period(std::size_t next_bitmap_size);

  /// make_upload() + start_next_period() in one step, for callers that
  /// plan the next size from older history.
  [[nodiscard]] Frame end_period(std::size_t next_bitmap_size);

  // -- Fault-tolerant delivery ---------------------------------------------

  /// Attaches the durability pair.  If the journal already holds a
  /// replayable period for this location, the RSU adopts it: the bitmap,
  /// period number, and encode count are restored; if the outbox already
  /// holds that period's record, the period was closed just before the
  /// crash and the RSU resumes one period past it instead.
  [[nodiscard]] Status attach_durability(
      const std::string& journal_path, const std::string& outbox_path,
      std::size_t outbox_capacity = UploadOutbox::kDefaultCapacity);

  [[nodiscard]] bool durable() const noexcept { return journal_.has_value(); }

  /// Pushes the in-progress record into the outbox (durably, when
  /// attached) without advancing the period.  Callers follow up with
  /// start_next_period once the next size is planned; no contacts may run
  /// in between (the staged bytes would go stale).
  [[nodiscard]] Status stage_upload();

  /// Processes the server's UploadAck: drops the matching outbox entry.
  [[nodiscard]] Status handle_upload_ack(const UploadAck& ack);

  /// Simulated power loss: volatile state is wiped and re-derived from the
  /// journal + outbox files.  FailedPrecondition when no durability is
  /// attached (a bare RSU has nothing to restart from).
  [[nodiscard]] Status crash_and_restart();

  /// The retransmission queue (the deployment pumps it).
  [[nodiscard]] UploadOutbox& outbox() noexcept { return outbox_; }
  [[nodiscard]] const UploadOutbox& outbox() const noexcept {
    return outbox_;
  }

  /// Read-only view of the in-progress record (tests/diagnostics).
  [[nodiscard]] const TrafficRecord& current_record() const noexcept {
    return record_;
  }

  /// Number of EncodeIndex messages accepted this period (>= distinct bits).
  [[nodiscard]] std::uint64_t encodes_this_period() const noexcept {
    return encodes_this_period_;
  }

  /// The pipeline TraceContext of the in-progress record: every encode,
  /// stage-upload, retry, and ingest of this (location, period) shares it.
  [[nodiscard]] TraceContext record_trace() const noexcept {
    return TraceContext::for_record(location_, period_);
  }

  /// This RSU's span buffer ("rsu:<location>": encode, stage-upload,
  /// journal-replay spans).  The recorder models an external monitoring
  /// agent, so it survives crash_and_restart - the post-mortem of a crash
  /// needs exactly the spans recorded before it.
  [[nodiscard]] SpanRecorder& spans() noexcept { return spans_; }
  [[nodiscard]] const SpanRecorder& spans() const noexcept { return spans_; }

 private:
  /// Adopts the journal's replayed period (or journals the current state
  /// when the journal is fresh).  Requires journal_ and outbox_ loaded.
  [[nodiscard]] Status restore_from_journal();

  std::uint64_t location_;
  std::uint64_t period_;
  SpanRecorder spans_;
  RsaKeyPair keys_;
  Certificate certificate_;
  TrafficRecord record_;
  std::uint64_t encodes_this_period_ = 0;
  std::optional<RsuJournal> journal_;
  UploadOutbox outbox_;
  std::string journal_path_;  ///< kept for crash_and_restart
  std::string outbox_path_;
  std::size_t outbox_capacity_ = UploadOutbox::kDefaultCapacity;
};

}  // namespace ptm
