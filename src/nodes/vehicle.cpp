#include "nodes/vehicle.hpp"

#include "common/math.hpp"

namespace ptm {

Result<Frame> Vehicle::handle_beacon(const Beacon& beacon) {
  if (Status s = verify_certificate(beacon.certificate, ca_key_,
                                    beacon.period);
      !s.is_ok()) {
    // Rogue or misconfigured RSU: the vehicle keeps silent (§II-B).
    return s;
  }
  if (beacon.certificate.subject_id != beacon.location) {
    return Status{ErrorCode::kAuthFailure,
                  "beacon location does not match certificate subject"};
  }
  if (beacon.bitmap_size < 2 || !is_power_of_two(beacon.bitmap_size)) {
    return Status{ErrorCode::kInvalidArgument,
                  "beacon advertises invalid bitmap size"};
  }

  PendingContact contact;
  contact.beacon = beacon;
  contact.nonce = nonce_rng_.next();
  contact.mac = mac_gen_.next();
  pending_ = contact;

  Frame frame;
  frame.src = contact.mac;
  frame.dst = broadcast_mac();  // RSU address is implicit in the simulation
  frame.body = AuthRequest{contact.nonce};
  return frame;
}

Result<Frame> Vehicle::handle_auth_response(const AuthResponse& resp) {
  if (!pending_) {
    return Status{ErrorCode::kFailedPrecondition,
                  "no contact awaiting an auth response"};
  }
  const PendingContact contact = *pending_;
  if (resp.nonce != contact.nonce) {
    return Status{ErrorCode::kAuthFailure, "auth response nonce mismatch"};
  }
  const auto transcript = auth_transcript(
      contact.nonce, contact.beacon.location, contact.beacon.period);
  if (!rsa_verify(contact.beacon.certificate.subject_key, transcript,
                  resp.signature)) {
    return Status{ErrorCode::kAuthFailure, "auth response signature invalid"};
  }
  pending_.reset();

  Frame frame;
  frame.src = contact.mac;
  frame.dst = broadcast_mac();
  frame.body = EncodeIndex{encoder_.bit_index(
      secrets_, contact.beacon.location,
      static_cast<std::size_t>(contact.beacon.bitmap_size))};
  return frame;
}

}  // namespace ptm
