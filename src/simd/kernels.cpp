// kernels.cpp - scalar reference variant, derived entry points, and the
// runtime dispatch.  The vector variants live in kernels_x86.cpp /
// kernels_neon.cpp; this file must stay free of ISA-specific code so the
// scalar path is trustworthy on any host.
#include "simd/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/variants.hpp"

namespace ptm::simd {
namespace {

/// Portable SWAR popcount (Hacker's Delight §5-1).  Deliberately NOT
/// __builtin_popcountll: without -mpopcnt that lowers to a libgcc call per
/// word, and the whole point of the scalar variant is a self-contained
/// reference with no ISA assumptions at all.
constexpr std::uint64_t swar_popcount(std::uint64_t x) noexcept {
  x -= (x >> 1) & 0x5555555555555555ULL;
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
  return (x * 0x0101010101010101ULL) >> 56;
}

std::size_t scalar_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) ones += swar_popcount(a[i]);
  return ones;
}

std::size_t scalar_and_count(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) {
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) ones += swar_popcount(a[i] & b[i]);
  return ones;
}

std::size_t scalar_or_count(const std::uint64_t* a, const std::uint64_t* b,
                            std::size_t n) {
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) ones += swar_popcount(a[i] | b[i]);
  return ones;
}

TripleCount scalar_triple_count(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t n) {
  TripleCount out;
  for (std::size_t i = 0; i < n; ++i) {
    out.ones_a += swar_popcount(a[i]);
    out.ones_b += swar_popcount(b[i]);
    out.ones_and += swar_popcount(a[i] & b[i]);
  }
  return out;
}

void scalar_and_inplace(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void scalar_or_inplace(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

constexpr Kernels kScalar{
    "scalar",         scalar_popcount,    scalar_and_count,
    scalar_or_count,  scalar_triple_count, scalar_and_inplace,
    scalar_or_inplace,
};

}  // namespace

// --- derived entry points -------------------------------------------------
// One shared code path per operation: period-sized contiguous runs over the
// variant's leaf primitives.  A phase splits the first run; after that the
// cursor always restarts at the period boundary.

void Kernels::and_tiled(std::uint64_t* dst, std::size_t n,
                        const std::uint64_t* src, std::size_t s_words,
                        std::size_t phase) const {
  std::size_t cursor = phase % s_words;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t run = std::min(n - done, s_words - cursor);
    and_inplace(dst + done, src + cursor, run);
    done += run;
    cursor += run;
    if (cursor == s_words) cursor = 0;
  }
}

void Kernels::or_tiled(std::uint64_t* dst, std::size_t n,
                       const std::uint64_t* src, std::size_t s_words,
                       std::size_t phase) const {
  std::size_t cursor = phase % s_words;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t run = std::min(n - done, s_words - cursor);
    or_inplace(dst + done, src + cursor, run);
    done += run;
    cursor += run;
    if (cursor == s_words) cursor = 0;
  }
}

std::size_t Kernels::and_tiled_count(const std::uint64_t* full, std::size_t n,
                                     const std::uint64_t* src,
                                     std::size_t s_words) const {
  std::size_t ones = 0;
  for (std::size_t offset = 0; offset < n; offset += s_words) {
    const std::size_t run = std::min(s_words, n - offset);
    ones += and_count(full + offset, src, run);
  }
  return ones;
}

std::size_t Kernels::or_tiled_count(const std::uint64_t* full, std::size_t n,
                                    const std::uint64_t* src,
                                    std::size_t s_words) const {
  std::size_t ones = 0;
  for (std::size_t offset = 0; offset < n; offset += s_words) {
    const std::size_t run = std::min(s_words, n - offset);
    ones += or_count(full + offset, src, run);
  }
  return ones;
}

void Kernels::replicate(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t s_words, std::size_t copies) const {
  for (std::size_t c = 0; c < copies; ++c) {
    std::memcpy(dst + c * s_words, src, s_words * sizeof(std::uint64_t));
  }
}

void Kernels::fill(std::uint64_t* dst, std::uint64_t value,
                   std::size_t n) const {
  std::fill_n(dst, n, value);
}

// --- registry and dispatch ------------------------------------------------

const Kernels& scalar() noexcept { return kScalar; }

namespace {

bool always_supported() noexcept { return true; }

const std::vector<VariantEntry>& registry() {
  static const std::vector<VariantEntry> entries = [] {
    std::vector<VariantEntry> v{{&kScalar, &always_supported}};
    for (const VariantEntry* table : {x86_variants(), neon_variants()}) {
      for (; table->kernels != nullptr; ++table) v.push_back(*table);
    }
    return v;
  }();
  return entries;
}

}  // namespace

const std::vector<const Kernels*>& compiled_variants() {
  static const std::vector<const Kernels*> variants = [] {
    std::vector<const Kernels*> v;
    for (const VariantEntry& e : registry()) v.push_back(e.kernels);
    return v;
  }();
  return variants;
}

bool runnable(const Kernels& k) noexcept {
  for (const VariantEntry& e : registry()) {
    if (e.kernels == &k || std::string_view(e.kernels->name) == k.name) {
      return e.supported();
    }
  }
  return false;
}

const Kernels* by_name(std::string_view name) {
  for (const Kernels* k : compiled_variants()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const char* host_isa() noexcept { return host_isa_string(); }

namespace {

/// Dispatch order: most capable first.  PTM_FORCE_SCALAR wins outright;
/// PTM_SIMD pins a variant when it is compiled in and runnable (a bad value
/// falls through to normal dispatch rather than aborting - the override is
/// a debugging aid, not configuration).
const Kernels* dispatch() {
  if (const char* force = std::getenv("PTM_FORCE_SCALAR");
      force != nullptr && force[0] != '\0' && force[0] != '0') {
    return &kScalar;
  }
  if (const char* pinned = std::getenv("PTM_SIMD");
      pinned != nullptr && pinned[0] != '\0') {
    if (const Kernels* k = by_name(pinned); k != nullptr && runnable(*k)) {
      return k;
    }
  }
  const auto& entries = registry();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->supported()) return it->kernels;
  }
  return &kScalar;
}

std::atomic<const Kernels*> g_override{nullptr};

}  // namespace

const Kernels& active() noexcept {
  if (const Kernels* k = g_override.load(std::memory_order_relaxed);
      k != nullptr) {
    return *k;
  }
  static const Kernels* const chosen = dispatch();
  return *chosen;
}

void set_active_for_testing(const Kernels* k) noexcept {
  g_override.store(k, std::memory_order_relaxed);
}

}  // namespace ptm::simd
