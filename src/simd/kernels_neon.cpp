// kernels_neon.cpp - NEON variant of the word kernels, compiled on aarch64
// only (AArch64 makes Advanced SIMD mandatory, so no runtime probe beyond
// the architecture itself is needed).  On every other target this TU
// contributes an empty variant table.
//
// The popcount is vcntq_u8 (per-byte counts) folded by the pairwise-add
// ladder to 64-bit lanes - the standard NEON idiom.  Kept behind the same
// `Kernels` interface and the same differential tests as the x86 variants.
#include "simd/variants.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace ptm::simd {
namespace {

inline uint64x2_t popcnt128(uint8x16_t v) {
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v))));
}

inline std::size_t hsum128(uint64x2_t acc) {
  return static_cast<std::size_t>(vgetq_lane_u64(acc, 0)) +
         static_cast<std::size_t>(vgetq_lane_u64(acc, 1));
}

std::size_t neon_popcount(const std::uint64_t* a, std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v =
        vreinterpretq_u8_u64(vld1q_u64(a + i));
    acc = vaddq_u64(acc, popcnt128(v));
  }
  std::size_t ones = hsum128(acc);
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return ones;
}

std::size_t neon_and_count(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    acc = vaddq_u64(acc, popcnt128(vreinterpretq_u8_u64(vandq_u64(va, vb))));
  }
  std::size_t ones = hsum128(acc);
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return ones;
}

std::size_t neon_or_count(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    acc = vaddq_u64(acc, popcnt128(vreinterpretq_u8_u64(vorrq_u64(va, vb))));
  }
  std::size_t ones = hsum128(acc);
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  return ones;
}

TripleCount neon_triple_count(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  uint64x2_t acc_a = vdupq_n_u64(0);
  uint64x2_t acc_b = vdupq_n_u64(0);
  uint64x2_t acc_and = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    acc_a = vaddq_u64(acc_a, popcnt128(vreinterpretq_u8_u64(va)));
    acc_b = vaddq_u64(acc_b, popcnt128(vreinterpretq_u8_u64(vb)));
    acc_and =
        vaddq_u64(acc_and, popcnt128(vreinterpretq_u8_u64(vandq_u64(va, vb))));
  }
  TripleCount out;
  out.ones_a = hsum128(acc_a);
  out.ones_b = hsum128(acc_b);
  out.ones_and = hsum128(acc_and);
  for (; i < n; ++i) {
    out.ones_a += static_cast<std::size_t>(__builtin_popcountll(a[i]));
    out.ones_b += static_cast<std::size_t>(__builtin_popcountll(b[i]));
    out.ones_and += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return out;
}

void neon_and_inplace(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void neon_or_inplace(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

constexpr Kernels kNeon{
    "neon",         neon_popcount,     neon_and_count,
    neon_or_count,  neon_triple_count, neon_and_inplace,
    neon_or_inplace,
};

bool neon_supported() noexcept { return true; }

constexpr VariantEntry kNeonTable[] = {
    {&kNeon, &neon_supported},
    {nullptr, nullptr},
};

}  // namespace

const VariantEntry* neon_variants() noexcept { return kNeonTable; }

}  // namespace ptm::simd

#else

namespace ptm::simd {

namespace {
constexpr VariantEntry kEmptyNeonTable[] = {{nullptr, nullptr}};
}  // namespace

const VariantEntry* neon_variants() noexcept { return kEmptyNeonTable; }

}  // namespace ptm::simd

#endif
