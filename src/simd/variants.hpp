// variants.hpp - internal registration interface between the dispatch
// (kernels.cpp) and the per-ISA variant translation units.  Not installed;
// include kernels.hpp for the public API.
#pragma once

#include "simd/kernels.hpp"

namespace ptm::simd {

struct VariantEntry {
  const Kernels* kernels;
  /// Whether the host CPU can execute this variant (CPUID probe).
  bool (*supported)() noexcept;
};

/// Null-`kernels`-terminated arrays of the variants each target file
/// compiles in (empty on foreign architectures).  Order: least capable
/// first; the dispatcher scans back-to-front.
const VariantEntry* x86_variants() noexcept;
const VariantEntry* neon_variants() noexcept;

/// Host ISA fingerprint (defined alongside the x86 variants, which cover
/// every architecture via the preprocessor).
const char* host_isa_string() noexcept;

}  // namespace ptm::simd
