// kernels_x86.cpp - POPCNT / AVX2 / AVX-512 variants of the word kernels.
//
// Nothing here relies on global -m flags: every function carries a target
// attribute, so this TU compiles with the baseline x86-64 ABI and the
// vector code is only ever executed after the CPUID probes in the
// `supported` hooks pass.  On non-x86 targets the file collapses to an
// empty variant table.
//
// The AVX2 popcount is Mula's nibble-LUT method (VPSHUFB twice + VPSADBW);
// AVX-512 uses VPOPCNTDQ directly.  Both accumulate into 64-bit lanes, so
// no sweep length can overflow.  All loads are unaligned on purpose - the
// callers hand out 8-byte-aligned subranges of std::vector storage.
#include "simd/variants.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <string>

// GCC 12's avx512fintrin.h trips -Wuninitialized on the _mm512_undefined_*
// helper behind the unaligned-load intrinsics; nothing of ours is involved.
#pragma GCC diagnostic ignored "-Wuninitialized"

namespace ptm::simd {
namespace {

// --- popcnt variant: scalar loops over the hardware instruction -----------

#define PTM_TGT_POPCNT __attribute__((target("popcnt")))

PTM_TGT_POPCNT std::size_t popcnt_popcount(const std::uint64_t* a,
                                           std::size_t n) {
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return ones;
}

PTM_TGT_POPCNT std::size_t popcnt_and_count(const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            std::size_t n) {
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return ones;
}

PTM_TGT_POPCNT std::size_t popcnt_or_count(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::size_t n) {
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  return ones;
}

PTM_TGT_POPCNT TripleCount popcnt_triple_count(const std::uint64_t* a,
                                               const std::uint64_t* b,
                                               std::size_t n) {
  TripleCount out;
  for (std::size_t i = 0; i < n; ++i) {
    out.ones_a += static_cast<std::size_t>(__builtin_popcountll(a[i]));
    out.ones_b += static_cast<std::size_t>(__builtin_popcountll(b[i]));
    out.ones_and += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return out;
}

void base_and_inplace(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void base_or_inplace(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

constexpr Kernels kPopcnt{
    "popcnt",         popcnt_popcount,     popcnt_and_count,
    popcnt_or_count,  popcnt_triple_count, base_and_inplace,
    base_or_inplace,
};

bool popcnt_supported() noexcept { return __builtin_cpu_supports("popcnt"); }

// --- avx2 variant ---------------------------------------------------------

#define PTM_TGT_AVX2 __attribute__((target("avx2,popcnt")))

/// Per-64-bit-lane popcount of a 256-bit vector: nibble lookup via VPSHUFB,
/// byte sums folded by VPSADBW.
PTM_TGT_AVX2 inline __m256i popcnt256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

PTM_TGT_AVX2 inline std::size_t hsum256(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::size_t>(_mm_extract_epi64(sum, 1));
}

PTM_TGT_AVX2 std::size_t avx2_popcount(const std::uint64_t* a,
                                       std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, popcnt256(v));
  }
  std::size_t ones = hsum256(acc);
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return ones;
}

PTM_TGT_AVX2 std::size_t avx2_and_count(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcnt256(_mm256_and_si256(va, vb)));
  }
  std::size_t ones = hsum256(acc);
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return ones;
}

PTM_TGT_AVX2 std::size_t avx2_or_count(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcnt256(_mm256_or_si256(va, vb)));
  }
  std::size_t ones = hsum256(acc);
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  return ones;
}

PTM_TGT_AVX2 TripleCount avx2_triple_count(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::size_t n) {
  __m256i acc_a = _mm256_setzero_si256();
  __m256i acc_b = _mm256_setzero_si256();
  __m256i acc_and = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc_a = _mm256_add_epi64(acc_a, popcnt256(va));
    acc_b = _mm256_add_epi64(acc_b, popcnt256(vb));
    acc_and = _mm256_add_epi64(acc_and, popcnt256(_mm256_and_si256(va, vb)));
  }
  TripleCount out;
  out.ones_a = hsum256(acc_a);
  out.ones_b = hsum256(acc_b);
  out.ones_and = hsum256(acc_and);
  for (; i < n; ++i) {
    out.ones_a += static_cast<std::size_t>(__builtin_popcountll(a[i]));
    out.ones_b += static_cast<std::size_t>(__builtin_popcountll(b[i]));
    out.ones_and += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return out;
}

PTM_TGT_AVX2 void avx2_and_inplace(std::uint64_t* dst,
                                   const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

PTM_TGT_AVX2 void avx2_or_inplace(std::uint64_t* dst,
                                  const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

constexpr Kernels kAvx2{
    "avx2",         avx2_popcount,     avx2_and_count,
    avx2_or_count,  avx2_triple_count, avx2_and_inplace,
    avx2_or_inplace,
};

bool avx2_supported() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
}

// --- avx512 variant (VPOPCNTDQ) -------------------------------------------

#define PTM_TGT_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512vpopcntdq,popcnt")))

PTM_TGT_AVX512 std::size_t avx512_popcount(const std::uint64_t* a,
                                           std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(a + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t ones = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return ones;
}

PTM_TGT_AVX512 std::size_t avx512_and_count(const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  std::size_t ones = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return ones;
}

PTM_TGT_AVX512 std::size_t avx512_or_count(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_or_si512(va, vb)));
  }
  std::size_t ones = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    ones += static_cast<std::size_t>(__builtin_popcountll(a[i] | b[i]));
  }
  return ones;
}

PTM_TGT_AVX512 TripleCount avx512_triple_count(const std::uint64_t* a,
                                               const std::uint64_t* b,
                                               std::size_t n) {
  __m512i acc_a = _mm512_setzero_si512();
  __m512i acc_b = _mm512_setzero_si512();
  __m512i acc_and = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc_a = _mm512_add_epi64(acc_a, _mm512_popcnt_epi64(va));
    acc_b = _mm512_add_epi64(acc_b, _mm512_popcnt_epi64(vb));
    acc_and = _mm512_add_epi64(
        acc_and, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  TripleCount out;
  out.ones_a = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc_a));
  out.ones_b = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc_b));
  out.ones_and = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc_and));
  for (; i < n; ++i) {
    out.ones_a += static_cast<std::size_t>(__builtin_popcountll(a[i]));
    out.ones_b += static_cast<std::size_t>(__builtin_popcountll(b[i]));
    out.ones_and += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return out;
}

PTM_TGT_AVX512 void avx512_and_inplace(std::uint64_t* dst,
                                       const std::uint64_t* src,
                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(d, s));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

PTM_TGT_AVX512 void avx512_or_inplace(std::uint64_t* dst,
                                      const std::uint64_t* src,
                                      std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i s = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

constexpr Kernels kAvx512{
    "avx512",         avx512_popcount,     avx512_and_count,
    avx512_or_count,  avx512_triple_count, avx512_and_inplace,
    avx512_or_inplace,
};

bool avx512_supported() noexcept {
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vpopcntdq") &&
         __builtin_cpu_supports("popcnt");
}

constexpr VariantEntry kX86Table[] = {
    {&kPopcnt, &popcnt_supported},
    {&kAvx2, &avx2_supported},
    {&kAvx512, &avx512_supported},
    {nullptr, nullptr},
};

}  // namespace

const VariantEntry* x86_variants() noexcept { return kX86Table; }

const char* host_isa_string() noexcept {
  static const std::string isa = [] {
    std::string s = "x86-64";
    if (__builtin_cpu_supports("popcnt")) s += " popcnt";
    if (__builtin_cpu_supports("avx2")) s += " avx2";
    if (avx512_supported()) s += " avx512vpopcntdq";
    return s;
  }();
  return isa.c_str();
}

}  // namespace ptm::simd

#else  // non-x86 targets: no variants from this TU.

namespace ptm::simd {

namespace {
constexpr VariantEntry kEmptyTable[] = {{nullptr, nullptr}};
}  // namespace

const VariantEntry* x86_variants() noexcept { return kEmptyTable; }

const char* host_isa_string() noexcept {
#if defined(__aarch64__)
  return "aarch64 neon";
#else
  return "unknown";
#endif
}

}  // namespace ptm::simd

#endif
