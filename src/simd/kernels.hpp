// kernels.hpp - runtime-dispatched word-level bitmap kernels (ptm_simd).
//
// Every estimator in the paper reduces to a handful of loops over packed
// 64-bit words: popcounts (linear counting, Eq. 1/3), fused op-and-count
// sweeps (the Eq. 12 triple and the Eq. 21 OR union), in-place AND/OR folds
// (the join cascades), and replication (§III-A expansion).  This layer owns
// those loops exactly once, as a `Kernels` vtable with one implementation
// per instruction set, selected at process start by CPUID:
//
//   scalar  - portable C++ (SWAR popcount), the reference implementation;
//             every other variant must be bit-identical to it.
//   popcnt  - scalar loops with the hardware POPCNT instruction.
//   avx2    - 256-bit sweeps, nibble-LUT popcount (Mula's method).
//   avx512  - 512-bit sweeps using VPOPCNTDQ.
//   neon    - 128-bit sweeps via vcntq_u8 (compiled on aarch64 only).
//
// Nothing here is compiled with global ISA flags: the vector variants use
// per-function target attributes, so the binary runs on any x86-64 (or
// aarch64) host and simply dispatches lower when a feature is missing -
// this replaces the old compile-time -mpopcnt gate, which could SIGILL a
// binary built on a modern host.  `PTM_FORCE_SCALAR=1` pins the reference
// implementation; `PTM_SIMD=<name>` pins any runnable variant (debugging).
//
// Contracts shared by every entry point:
//   * pointers are to packed 64-bit words, 8-byte aligned only - all vector
//     paths use unaligned loads, so callers may pass offset subranges;
//   * `n` counts words, never bits;
//   * tail-bit masking is the caller's job (kernels see exact word ranges);
//   * `a`/`b` of the counting kernels must not alias partially; in-place
//     kernels allow dst == src (idempotent ops) but not partial overlap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ptm::simd {

/// The Eq. 12 measurement triple over one word range: ones of a, of b, and
/// of a AND b, from a single sweep over the two arrays.
struct TripleCount {
  std::size_t ones_a = 0;
  std::size_t ones_b = 0;
  std::size_t ones_and = 0;
};

struct Kernels {
  /// Variant label ("scalar", "popcnt", "avx2", "avx512", "neon"); also the
  /// string accepted by `by_name` / PTM_SIMD and reported in BENCH JSON.
  const char* name;

  // --- leaf primitives (one implementation per ISA variant) ---

  /// ones(a[0..n))
  std::size_t (*popcount)(const std::uint64_t* a, std::size_t n);
  /// ones(a & b) / ones(a | b) over [0..n) - fused op+count, no temporary.
  std::size_t (*and_count)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n);
  std::size_t (*or_count)(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n);
  /// ones(a), ones(b), ones(a & b) in one sweep (the Eq. 12 triple).
  TripleCount (*triple_count)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);
  /// dst[i] &= src[i] / dst[i] |= src[i] over [0..n).
  void (*and_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n);
  void (*or_inplace)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t n);

  // --- derived entry points (single shared code path over the leaves) ---

  /// Tiled (lazy-expansion) joins: dst[i] op= src[(phase + i) mod s_words]
  /// for i in [0..n) - the virtual replication of a word-aligned smaller
  /// bitmap folded into a larger one without materializing the expansion.
  /// Runs the leaf in contiguous period-sized chunks.
  void and_tiled(std::uint64_t* dst, std::size_t n, const std::uint64_t* src,
                 std::size_t s_words, std::size_t phase = 0) const;
  void or_tiled(std::uint64_t* dst, std::size_t n, const std::uint64_t* src,
                std::size_t s_words, std::size_t phase = 0) const;

  /// Fused tiled op+count: ones of (full[i] op src[i mod s_words]) over
  /// [0..n) with no writes at all (the p2p second-level shape).
  [[nodiscard]] std::size_t and_tiled_count(const std::uint64_t* full,
                                            std::size_t n,
                                            const std::uint64_t* src,
                                            std::size_t s_words) const;
  [[nodiscard]] std::size_t or_tiled_count(const std::uint64_t* full,
                                           std::size_t n,
                                           const std::uint64_t* src,
                                           std::size_t s_words) const;

  /// §III-A expansion: dst[0..s_words*copies) = src repeated `copies` times.
  void replicate(std::uint64_t* dst, const std::uint64_t* src,
                 std::size_t s_words, std::size_t copies) const;

  /// dst[0..n) = value (all-ones seeds for AND cascades, zeroing).
  void fill(std::uint64_t* dst, std::uint64_t value, std::size_t n) const;
};

/// The dispatched vtable: best runnable variant, after the PTM_FORCE_SCALAR
/// / PTM_SIMD overrides and any test override.  The underlying choice is
/// made once per process; the call itself is one relaxed atomic load.
[[nodiscard]] const Kernels& active() noexcept;

/// The portable reference implementation (always runnable).
[[nodiscard]] const Kernels& scalar() noexcept;

/// Every variant compiled into this binary, scalar first.  Entries may not
/// be runnable on this host - pair with `runnable` (the differential tests
/// iterate exactly this list).
[[nodiscard]] const std::vector<const Kernels*>& compiled_variants();

/// Whether this host's CPU can execute the given variant.
[[nodiscard]] bool runnable(const Kernels& k) noexcept;

/// Compiled-in variant by name, or nullptr (may not be runnable here).
[[nodiscard]] const Kernels* by_name(std::string_view name);

/// Short host ISA fingerprint for BENCH JSON, e.g.
/// "x86-64 popcnt avx2 avx512vpopcntdq" - the features that matter to the
/// dispatch, not the full CPUID dump.
[[nodiscard]] const char* host_isa() noexcept;

/// Test hook: pin `active()` to a specific variant (must be runnable);
/// nullptr restores the dispatched choice.  Not for production code paths.
void set_active_for_testing(const Kernels* k) noexcept;

}  // namespace ptm::simd
