// export.hpp - exporters over the TelemetrySnapshot API.
//
// Both exporters are pure functions of one snapshot, so "what the scrape
// saw" is exactly "what the snapshot held" - there is no second read of
// live atomics.  Output is deterministic (snapshots are sorted), which is
// what makes golden-file testing of the formats possible.
//
// Formats are documented in docs/observability.md.
#pragma once

#include <string>

#include "obs/telemetry.hpp"

namespace ptm {

/// Prometheus text exposition (version 0.0.4): `# TYPE` comments per
/// family, `name{label="value"} 123` samples, histograms expanded to
/// cumulative `_bucket{le="..."}` / `_sum` / `_count` series.  Trailing
/// all-zero histogram buckets are elided (the `+Inf` bucket is always
/// present, so cumulative semantics are preserved).
[[nodiscard]] std::string to_prometheus(const TelemetrySnapshot& snapshot);

/// JSON object with `counters` / `gauges` / `histograms` arrays; ids and
/// values are plain JSON numbers, histogram buckets carry their upper
/// edge in nanoseconds.  Same determinism guarantee as to_prometheus.
[[nodiscard]] std::string to_json(const TelemetrySnapshot& snapshot);

}  // namespace ptm
