#include "obs/export.hpp"

#include <sstream>

#include "common/json.hpp"

namespace ptm {
namespace {

/// Prometheus metric/label names: [a-zA-Z_][a-zA-Z0-9_]*.  Registered
/// names already follow the scheme; this is a seatbelt for ad-hoc ones.
std::string sanitize_name(const std::string& name) {
  std::string out = name.empty() ? std::string("_") : name;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) out[i] = '_';
  }
  return out;
}

void append_label_value(const std::string& v, std::ostream& out) {
  out << '"';
  for (const char c : v) {
    switch (c) {
      case '\\':
        out << "\\\\";
        break;
      case '"':
        out << "\\\"";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

/// `{shard="3",node="rsu"}` - empty string when there are no labels and no
/// extra label is requested.
void append_label_set(const TelemetryLabels& labels, std::ostream& out) {
  if (labels.empty()) return;
  out << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ',';
    first = false;
    out << sanitize_name(key) << '=';
    append_label_value(value, out);
  }
  out << '}';
}

/// Same as append_label_set but with one extra label appended (used for
/// the histogram `le` bound).
void append_label_set_with(const TelemetryLabels& labels,
                           const std::string& extra_key,
                           const std::string& extra_value, std::ostream& out) {
  out << '{';
  for (const auto& [key, value] : labels) {
    out << sanitize_name(key) << '=';
    append_label_value(value, out);
    out << ',';
  }
  out << extra_key << '=';
  append_label_value(extra_value, out);
  out << '}';
}

const char* kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::size_t last_nonzero_bucket(const LatencyHistogramSnapshot& hist) {
  std::size_t last = 0;
  for (std::size_t b = 0; b < LatencyHistogramSnapshot::kBuckets; ++b) {
    if (hist.buckets[b] != 0) last = b;
  }
  return last;
}

void append_json_labels(const TelemetryLabels& labels, std::ostream& out) {
  out << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  out << '}';
}

}  // namespace

std::string to_prometheus(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  std::string last_family;  // name + kind of the last TYPE comment emitted
  for (const InstrumentSnapshot& inst : snapshot.instruments) {
    const std::string name = sanitize_name(inst.name);
    const std::string family = name + '\0' + kind_name(inst.kind);
    if (family != last_family) {
      out << "# TYPE " << name << ' ' << kind_name(inst.kind) << '\n';
      last_family = family;
    }
    switch (inst.kind) {
      case InstrumentKind::kCounter:
        out << name;
        append_label_set(inst.labels, out);
        out << ' ' << inst.counter_value << '\n';
        break;
      case InstrumentKind::kGauge:
        out << name;
        append_label_set(inst.labels, out);
        out << ' ' << inst.gauge_value << '\n';
        break;
      case InstrumentKind::kHistogram: {
        const LatencyHistogramSnapshot& hist = inst.histogram;
        const std::size_t last = last_nonzero_bucket(hist);
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= last; ++b) {
          cumulative += hist.buckets[b];
          out << name << "_bucket";
          // Bucket b covers [2^b, 2^(b+1)); its inclusive upper edge is
          // 2^(b+1)-1 ns.
          append_label_set_with(inst.labels, "le",
                                std::to_string((1ULL << (b + 1)) - 1), out);
          out << ' ' << cumulative << '\n';
        }
        std::uint64_t total = cumulative;
        for (std::size_t b = last + 1; b < LatencyHistogramSnapshot::kBuckets;
             ++b) {
          total += hist.buckets[b];
        }
        out << name << "_bucket";
        append_label_set_with(inst.labels, "le", "+Inf", out);
        out << ' ' << total << '\n';
        out << name << "_sum";
        append_label_set(inst.labels, out);
        out << ' ' << hist.sum_ns << '\n';
        out << name << "_count";
        append_label_set(inst.labels, out);
        out << ' ' << total << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::string to_json(const TelemetrySnapshot& snapshot) {
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  for (const InstrumentSnapshot& inst : snapshot.instruments) {
    switch (inst.kind) {
      case InstrumentKind::kCounter:
        if (!first_counter) counters << ",\n    ";
        first_counter = false;
        counters << "{\"name\":\"" << inst.name << "\",\"labels\":";
        append_json_labels(inst.labels, counters);
        counters << ",\"value\":" << inst.counter_value << '}';
        break;
      case InstrumentKind::kGauge:
        if (!first_gauge) gauges << ",\n    ";
        first_gauge = false;
        gauges << "{\"name\":\"" << inst.name << "\",\"labels\":";
        append_json_labels(inst.labels, gauges);
        gauges << ",\"value\":" << inst.gauge_value << '}';
        break;
      case InstrumentKind::kHistogram: {
        if (!first_histogram) histograms << ",\n    ";
        first_histogram = false;
        const LatencyHistogramSnapshot& hist = inst.histogram;
        histograms << "{\"name\":\"" << inst.name << "\",\"labels\":";
        append_json_labels(inst.labels, histograms);
        histograms << ",\"count\":" << hist.count
                   << ",\"sum_ns\":" << hist.sum_ns << ",\"buckets\":[";
        const std::size_t last = last_nonzero_bucket(hist);
        bool first_bucket = true;
        for (std::size_t b = 0; b <= last; ++b) {
          if (hist.buckets[b] == 0) continue;
          if (!first_bucket) histograms << ',';
          first_bucket = false;
          histograms << "{\"upper_ns\":" << ((1ULL << (b + 1)) - 1)
                     << ",\"count\":" << hist.buckets[b] << '}';
        }
        histograms << "]}";
        break;
      }
    }
  }
  std::ostringstream out;
  out << "{\n  \"counters\": [\n    " << counters.str()
      << "\n  ],\n  \"gauges\": [\n    " << gauges.str()
      << "\n  ],\n  \"histograms\": [\n    " << histograms.str()
      << "\n  ]\n}\n";
  return out.str();
}

}  // namespace ptm
