// telemetry.hpp - process-wide registry of named, lock-free instruments.
//
// Every subsystem (QueryService shards, the admission controller, channel
// and node code) registers its counters/gauges/histograms here instead of
// growing a bespoke atomic struct per layer.  Registration is cold (mutex,
// linear lookup); the record path touches exactly one relaxed atomic, so
// instruments can sit on ingest/query hot paths.
//
// Naming scheme (see docs/observability.md): lowercase snake_case metric
// names (`ingest_ok`, `query_latency_ns`), label sets for families
// (`ingest_ok{shard=3}`).  Handles returned by the registry are stable for
// the registry's lifetime; registering the same (kind, name, labels) twice
// returns the same instrument.
//
// Consistency contract: all instruments are *monitoring-grade*.  Reads are
// relaxed and snapshots are not linearizable with respect to concurrent
// writers; totals may lag individual components by in-flight updates.
// Snapshots are internally sane (a histogram's `count` never exceeds the
// sum of its buckets) but two instruments read in one snapshot may reflect
// different moments.  Nothing here is suitable for control-flow decisions
// that need exactness.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ptm {

/// Snapshot of a log2-bucketed latency histogram.  Bucket b counts query
/// latencies in [2^b, 2^(b+1)) nanoseconds (bucket 0 also absorbs 0 ns);
/// the last bucket absorbs everything larger.
struct LatencyHistogramSnapshot {
  static constexpr std::size_t kBuckets = 40;  ///< covers up to ~9 minutes

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;  ///< total recorded nanoseconds (Prometheus _sum)

  /// Upper-bound estimate of the p-th percentile (0 <= p <= 100) in
  /// nanoseconds: the upper edge of the bucket containing that rank.
  /// Returns 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t percentile_ns(double p) const noexcept;
};

/// Concurrent latency recorder backing the snapshot above.  `record` is
/// wait-free (relaxed fetch_adds); snapshots are not linearizable with
/// respect to concurrent record()/reset() calls - this is a monitoring
/// instrument, not an accounting ledger.  The one internal invariant a
/// snapshot does guarantee is that `count` never exceeds the sum of the
/// buckets handed back, so percentile math cannot run off the end of the
/// histogram even when a snapshot races a reset.
class LatencyRecorder {
 public:
  void record(std::uint64_t nanos) noexcept;
  [[nodiscard]] LatencyHistogramSnapshot snapshot() const noexcept;
  /// Zeroes every bucket (crash simulation: volatile state does not
  /// survive a restart).  Not linearizable w.r.t. concurrent record().
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, LatencyHistogramSnapshot::kBuckets>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Monotonic counter.  add() is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Crash simulation only (volatile state loss); counters are otherwise
  /// monotonic by contract.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (queue depths, in-flight counts, high-water
/// marks via update_max).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  /// Returns the post-update value so callers can feed a high-water mark
  /// with the value *they* produced (exact even under races).
  std::int64_t add(std::int64_t delta = 1) noexcept {
    return value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }
  std::int64_t sub(std::int64_t delta = 1) noexcept {
    return value_.fetch_sub(delta, std::memory_order_relaxed) - delta;
  }
  /// Monotone high-water update: value becomes max(value, v).
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Label set attached to one member of an instrument family, e.g.
/// {{"shard", "3"}}.  Order is preserved as registered.
using TelemetryLabels = std::vector<std::pair<std::string, std::string>>;

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One instrument's point-in-time value inside a TelemetrySnapshot.
struct InstrumentSnapshot {
  std::string name;
  TelemetryLabels labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t counter_value = 0;                 ///< kCounter
  std::int64_t gauge_value = 0;                    ///< kGauge
  LatencyHistogramSnapshot histogram;              ///< kHistogram
};

/// Point-in-time view of every registered instrument, deterministically
/// ordered by (name, labels, kind) so exporter output is reproducible.
/// This is the single Snapshot API both exporters consume
/// (obs/export.hpp: to_prometheus / to_json).
struct TelemetrySnapshot {
  std::vector<InstrumentSnapshot> instruments;

  /// First instrument matching (name, labels) exactly; nullptr if absent.
  [[nodiscard]] const InstrumentSnapshot* find(
      const std::string& name, const TelemetryLabels& labels = {}) const;
  /// Sum of every counter named `name` across all label sets.
  [[nodiscard]] std::uint64_t counter_sum(const std::string& name) const;
};

/// Registry of named instruments.  Handles are address-stable for the
/// registry's lifetime (deque storage); the same (kind, name, labels)
/// always yields the same instrument, so independent subsystems can share
/// a family by agreeing on names.
class TelemetryRegistry {
 public:
  TelemetryRegistry() = default;
  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string name, TelemetryLabels labels = {});
  [[nodiscard]] Gauge& gauge(std::string name, TelemetryLabels labels = {});
  [[nodiscard]] LatencyRecorder& histogram(std::string name,
                                           TelemetryLabels labels = {});

  [[nodiscard]] TelemetrySnapshot snapshot() const;

  /// Zeroes every instrument (crash simulation).  Registrations survive;
  /// only values are lost, mirroring process-restart semantics.
  void reset();

 private:
  struct Entry {
    std::string name;
    TelemetryLabels labels;
    InstrumentKind kind;
    std::size_t index;  ///< into the per-kind deque
  };

  [[nodiscard]] const Entry* find_locked(InstrumentKind kind,
                                         const std::string& name,
                                         const TelemetryLabels& labels) const;

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LatencyRecorder> histograms_;
};

}  // namespace ptm
