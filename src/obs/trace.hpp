// trace.hpp - pipeline tracing across the RSU -> channel -> server path.
//
// A TraceContext is two 64-bit ids carried on net frames and outbox
// entries: `trace_id` names one logical journey (typically one traffic
// record's life from encode to archive append), `span_id` names the hop
// that most recently forwarded it.  Record traces are *derived*, not
// drawn: TraceContext::for_record(location, period) is a pure hash, so an
// RSU that crashes and replays its journal re-enters the same trace and
// the post-mortem timeline stays stitched together without persisting any
// tracing state.
//
// Spans are closed intervals measured by ScopedTimer (RAII) and collected
// per node in a bounded SpanRecorder ring; when the ring is full the
// oldest spans are dropped (and counted).  Timestamps are dual: the
// logical step clock driven by Deployment::advance_time (comparable
// across nodes) plus a wall-clock duration in nanoseconds (comparable
// within a process).
//
// Recorders dump to a JSON-lines file (`write_span_dump`) that
// `ptmctl trace` reloads, so a chaos run can be post-mortemed offline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace ptm {

/// Trace identity carried across hops.  trace_id == 0 means "not traced";
/// instrumented code skips span recording entirely for inactive contexts,
/// so untraced hot paths pay nothing.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< the sender's span, parent of the next hop

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }

  /// Deterministic trace id for one record's journey: a pure mix of
  /// (location, period).  Crash replay re-derives the same id.
  [[nodiscard]] static TraceContext for_record(std::uint64_t location,
                                               std::uint64_t period) noexcept;

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One closed interval of work attributed to a trace.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;           ///< operation, e.g. "encode", "outbox-retry"
  std::string node;           ///< recorder's node, e.g. "rsu:7"
  std::uint64_t start_step = 0;   ///< logical clock at start (0 = unknown)
  std::uint64_t duration_ns = 0;  ///< wall-clock duration
  bool ok = true;             ///< did the operation succeed
};

/// Bounded per-node span buffer.  record() is mutex-guarded (spans are
/// orders of magnitude rarer than counter increments); when capacity is
/// reached the oldest span is evicted and `dropped()` advances, so memory
/// stays bounded over arbitrarily long runs.
class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit SpanRecorder(std::string node,
                        std::size_t capacity = kDefaultCapacity);
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Stores the span (stamping `node`); evicts the oldest when full.
  void record(Span span);

  /// All buffered spans, oldest first.
  [[nodiscard]] std::vector<Span> spans() const;
  /// Buffered spans belonging to one trace, oldest first.
  [[nodiscard]] std::vector<Span> for_trace(std::uint64_t trace_id) const;

  /// Fresh process-unique span id (seeded from the node name so ids from
  /// different recorders do not collide in practice).
  [[nodiscard]] std::uint64_t next_span_id() noexcept;

  [[nodiscard]] std::uint64_t dropped() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] const std::string& node() const noexcept { return node_; }

  /// Discards all buffered spans (crash simulation).
  void clear();

 private:
  std::string node_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Span> ring_;     ///< grows to capacity_, then wraps
  std::size_t head_ = 0;       ///< index of the oldest span once wrapped
  std::uint64_t dropped_ = 0;
  std::atomic<std::uint64_t> next_id_;
};

/// RAII span.  Construction with a null recorder (or an inactive context
/// on a call site that gates on it) is a no-op - no clock reads, no
/// allocation - so tracing can be compiled in unconditionally.
///
///   ScopedTimer span(&spans, "ingest", trace, now);
///   ... work ...
///   span.set_ok(false);            // defaults to true
///   // destructor records the span
///
/// `context()` yields {trace_id, this span's id} for handing to children.
class ScopedTimer {
 public:
  ScopedTimer(SpanRecorder* recorder, const char* name,
              TraceContext parent = {}, std::uint64_t logical_step = 0);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  [[nodiscard]] TraceContext context() const noexcept {
    return TraceContext{span_.trace_id, span_.span_id};
  }
  void set_ok(bool ok) noexcept { span_.ok = ok; }

 private:
  SpanRecorder* recorder_;
  Span span_;
  std::chrono::steady_clock::time_point start_{};
};

/// Serializes one span as a single JSON object (no trailing newline); the
/// dump format is one such object per line.
void append_span_json(const Span& span, std::ostream& out);

/// Writes every recorder's spans to `path` as JSON lines (atomic enough
/// for post-mortem use: written to a temp buffer, then one ofstream).
[[nodiscard]] Status write_span_dump(
    const std::string& path, const std::vector<const SpanRecorder*>& recorders);

/// Reloads a span dump written by write_span_dump.  Unknown keys are
/// ignored; a structurally broken line fails the whole load (the file is
/// machine-written, so damage means truncation worth surfacing).
[[nodiscard]] Result<std::vector<Span>> load_span_dump(
    const std::string& path);

}  // namespace ptm
