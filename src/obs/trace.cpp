#include "obs/trace.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace ptm {
namespace {

/// splitmix64 finalizer - the same mixing the record shard hash uses.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void append_json_string(std::string_view s, std::ostream& out) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Control characters never appear in span/node names we write,
          // but the dump must stay parseable if one sneaks in.
          static constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::string hex16(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kHex[v & 0xF];
    v >>= 4;
  }
  return s;
}

/// Locates `"key":` in a machine-written JSON line and returns the offset
/// just past the colon, or npos.
std::size_t value_offset(const std::string& line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

Result<std::uint64_t> parse_hex_field(const std::string& line,
                                      std::string_view key) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return Status{ErrorCode::kParseError,
                  "span dump line missing field " + std::string(key)};
  }
  std::uint64_t v = 0;
  std::size_t i = at + 1;
  for (; i < line.size() && line[i] != '"'; ++i) {
    const char c = line[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return Status{ErrorCode::kParseError,
                    "bad hex digit in field " + std::string(key)};
    }
    v = (v << 4) | digit;
  }
  if (i >= line.size()) {
    return Status{ErrorCode::kParseError,
                  "unterminated hex field " + std::string(key)};
  }
  return v;
}

Result<std::uint64_t> parse_uint_field(const std::string& line,
                                       std::string_view key) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] < '0' ||
      line[at] > '9') {
    return Status{ErrorCode::kParseError,
                  "span dump line missing field " + std::string(key)};
  }
  std::uint64_t v = 0;
  for (std::size_t i = at; i < line.size() && line[i] >= '0' && line[i] <= '9';
       ++i) {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
  }
  return v;
}

Result<std::string> parse_string_field(const std::string& line,
                                       std::string_view key) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') {
    return Status{ErrorCode::kParseError,
                  "span dump line missing field " + std::string(key)};
  }
  std::string out;
  for (std::size_t i = at + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return out;
    if (c == '\\') {
      if (i + 1 >= line.size()) break;
      const char esc = line[++i];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          if (i + 4 >= line.size()) {
            return Status{ErrorCode::kParseError, "truncated \\u escape"};
          }
          // Only \u00XX is ever written; decode just that range.
          out.push_back(static_cast<char>(
              std::stoi(line.substr(i + 1, 4), nullptr, 16)));
          i += 4;
          break;
        default:
          return Status{ErrorCode::kParseError, "unknown escape in span dump"};
      }
      continue;
    }
    out.push_back(c);
  }
  return Status{ErrorCode::kParseError,
                "unterminated string field " + std::string(key)};
}

Result<bool> parse_bool_field(const std::string& line, std::string_view key) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string::npos) {
    return Status{ErrorCode::kParseError,
                  "span dump line missing field " + std::string(key)};
  }
  if (line.compare(at, 4, "true") == 0) return true;
  if (line.compare(at, 5, "false") == 0) return false;
  return Status{ErrorCode::kParseError,
                "bad boolean in field " + std::string(key)};
}

}  // namespace

TraceContext TraceContext::for_record(std::uint64_t location,
                                      std::uint64_t period) noexcept {
  std::uint64_t id = mix64(mix64(location) ^ (period + 0xD6E8FEB86659FD93ULL));
  if (id == 0) id = 1;  // 0 is reserved for "not traced"
  return TraceContext{id, 0};
}

SpanRecorder::SpanRecorder(std::string node, std::size_t capacity)
    : node_(std::move(node)),
      capacity_(capacity == 0 ? 1 : capacity),
      next_id_(mix64(std::hash<std::string>{}(node_)) | 1ULL) {
  ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

void SpanRecorder::record(Span span) {
  span.node = node_;
  std::lock_guard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(span);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Span> SpanRecorder::spans() const {
  std::lock_guard lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Span> SpanRecorder::for_trace(std::uint64_t trace_id) const {
  std::vector<Span> all = spans();
  std::vector<Span> out;
  for (Span& s : all) {
    if (s.trace_id == trace_id) out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t SpanRecorder::next_span_id() noexcept {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SpanRecorder::dropped() const noexcept {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::size_t SpanRecorder::size() const noexcept {
  std::lock_guard lock(mu_);
  return ring_.size();
}

void SpanRecorder::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

ScopedTimer::ScopedTimer(SpanRecorder* recorder, const char* name,
                         TraceContext parent, std::uint64_t logical_step)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  span_.trace_id = parent.trace_id;
  span_.parent_span_id = parent.span_id;
  span_.span_id = recorder_->next_span_id();
  span_.name = name;
  span_.start_step = logical_step;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (recorder_ == nullptr) return;
  span_.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  recorder_->record(std::move(span_));
}

void append_span_json(const Span& span, std::ostream& out) {
  out << "{\"trace_id\":\"" << hex16(span.trace_id) << "\",\"span_id\":\""
      << hex16(span.span_id) << "\",\"parent_span_id\":\""
      << hex16(span.parent_span_id) << "\",\"name\":";
  append_json_string(span.name, out);
  out << ",\"node\":";
  append_json_string(span.node, out);
  out << ",\"start_step\":" << span.start_step
      << ",\"duration_ns\":" << span.duration_ns << ",\"ok\":"
      << (span.ok ? "true" : "false") << "}";
}

Status write_span_dump(const std::string& path,
                       const std::vector<const SpanRecorder*>& recorders) {
  std::ostringstream buf;
  for (const SpanRecorder* recorder : recorders) {
    if (recorder == nullptr) continue;
    for (const Span& span : recorder->spans()) {
      append_span_json(span, buf);
      buf << '\n';
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status{ErrorCode::kNotFound, "cannot open " + path};
  }
  const std::string text = buf.str();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) {
    return Status{ErrorCode::kInternal, "short write to " + path};
  }
  return Status::ok();
}

Result<std::vector<Span>> load_span_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status{ErrorCode::kNotFound, "cannot open " + path};
  }
  std::vector<Span> spans;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Span span;
    auto trace_id = parse_hex_field(line, "trace_id");
    if (!trace_id) return trace_id.status();
    span.trace_id = *trace_id;
    auto span_id = parse_hex_field(line, "span_id");
    if (!span_id) return span_id.status();
    span.span_id = *span_id;
    auto parent = parse_hex_field(line, "parent_span_id");
    if (!parent) return parent.status();
    span.parent_span_id = *parent;
    auto name = parse_string_field(line, "name");
    if (!name) return name.status();
    span.name = std::move(*name);
    auto node = parse_string_field(line, "node");
    if (!node) return node.status();
    span.node = std::move(*node);
    auto step = parse_uint_field(line, "start_step");
    if (!step) return step.status();
    span.start_step = *step;
    auto dur = parse_uint_field(line, "duration_ns");
    if (!dur) return dur.status();
    span.duration_ns = *dur;
    auto ok = parse_bool_field(line, "ok");
    if (!ok) return ok.status();
    span.ok = *ok;
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace ptm
