#include "obs/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ptm {

std::uint64_t LatencyHistogramSnapshot::percentile_ns(double p) const noexcept {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile, 1-based (p = 100 -> rank = count).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= std::max<std::uint64_t>(rank, 1)) {
      // Upper edge of bucket b (the final bucket is effectively open-ended,
      // but its nominal edge still orders correctly).
      return (1ULL << (b + 1)) - 1;
    }
  }
  return ~0ULL;  // unreachable while count <= sum of buckets
}

void LatencyRecorder::record(std::uint64_t nanos) noexcept {
  const std::size_t bucket = std::min<std::size_t>(
      nanos == 0 ? 0 : static_cast<std::size_t>(std::bit_width(nanos)) - 1,
      LatencyHistogramSnapshot::kBuckets - 1);
  // Bucket first, count last: a concurrent snapshot that has seen the new
  // count has a chance of also seeing the bucket, and the snapshot-side
  // clamp repairs the remaining window.
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(nanos, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::reset() noexcept {
  // Count first, buckets last: a racing snapshot may observe stale buckets
  // with a zeroed count (harmless - clamp keeps count <= bucket sum), never
  // a large count over zeroed buckets.
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

LatencyHistogramSnapshot LatencyRecorder::snapshot() const noexcept {
  LatencyHistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < LatencyHistogramSnapshot::kBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    bucket_total += snap.buckets[b];
  }
  // Monitoring-only contract: clamp so `count` never exceeds the buckets
  // handed back, even when this snapshot tears against reset()/record().
  snap.count = std::min(snap.count, bucket_total);
  return snap;
}

const InstrumentSnapshot* TelemetrySnapshot::find(
    const std::string& name, const TelemetryLabels& labels) const {
  for (const InstrumentSnapshot& inst : instruments) {
    if (inst.name == name && inst.labels == labels) return &inst;
  }
  return nullptr;
}

std::uint64_t TelemetrySnapshot::counter_sum(const std::string& name) const {
  std::uint64_t total = 0;
  for (const InstrumentSnapshot& inst : instruments) {
    if (inst.kind == InstrumentKind::kCounter && inst.name == name) {
      total += inst.counter_value;
    }
  }
  return total;
}

const TelemetryRegistry::Entry* TelemetryRegistry::find_locked(
    InstrumentKind kind, const std::string& name,
    const TelemetryLabels& labels) const {
  for (const Entry& e : entries_) {
    if (e.kind == kind && e.name == name && e.labels == labels) return &e;
  }
  return nullptr;
}

Counter& TelemetryRegistry::counter(std::string name, TelemetryLabels labels) {
  std::lock_guard lock(mu_);
  if (const Entry* e = find_locked(InstrumentKind::kCounter, name, labels)) {
    return counters_[e->index];
  }
  counters_.emplace_back();
  entries_.push_back(Entry{std::move(name), std::move(labels),
                           InstrumentKind::kCounter, counters_.size() - 1});
  return counters_.back();
}

Gauge& TelemetryRegistry::gauge(std::string name, TelemetryLabels labels) {
  std::lock_guard lock(mu_);
  if (const Entry* e = find_locked(InstrumentKind::kGauge, name, labels)) {
    return gauges_[e->index];
  }
  gauges_.emplace_back();
  entries_.push_back(Entry{std::move(name), std::move(labels),
                           InstrumentKind::kGauge, gauges_.size() - 1});
  return gauges_.back();
}

LatencyRecorder& TelemetryRegistry::histogram(std::string name,
                                              TelemetryLabels labels) {
  std::lock_guard lock(mu_);
  if (const Entry* e = find_locked(InstrumentKind::kHistogram, name, labels)) {
    return histograms_[e->index];
  }
  histograms_.emplace_back();
  entries_.push_back(Entry{std::move(name), std::move(labels),
                           InstrumentKind::kHistogram,
                           histograms_.size() - 1});
  return histograms_.back();
}

TelemetrySnapshot TelemetryRegistry::snapshot() const {
  TelemetrySnapshot snap;
  {
    std::lock_guard lock(mu_);
    snap.instruments.reserve(entries_.size());
    for (const Entry& e : entries_) {
      InstrumentSnapshot inst;
      inst.name = e.name;
      inst.labels = e.labels;
      inst.kind = e.kind;
      switch (e.kind) {
        case InstrumentKind::kCounter:
          inst.counter_value = counters_[e.index].value();
          break;
        case InstrumentKind::kGauge:
          inst.gauge_value = gauges_[e.index].value();
          break;
        case InstrumentKind::kHistogram:
          inst.histogram = histograms_[e.index].snapshot();
          break;
      }
      snap.instruments.push_back(std::move(inst));
    }
  }
  std::sort(snap.instruments.begin(), snap.instruments.end(),
            [](const InstrumentSnapshot& a, const InstrumentSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.labels != b.labels) return a.labels < b.labels;
              return a.kind < b.kind;
            });
  return snap;
}

void TelemetryRegistry::reset() {
  std::lock_guard lock(mu_);
  for (Counter& c : counters_) c.reset();
  for (Gauge& g : gauges_) g.reset();
  for (LatencyRecorder& h : histograms_) h.reset();
}

}  // namespace ptm
