// Tests for store/journal.hpp: the crash-safe journal of the RSU's
// in-progress traffic record.
#include "store/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ptm {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ptm_journal_" +
            std::to_string(counter_++) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  static int counter_;
};

int JournalTest::counter_ = 0;

TEST_F(JournalTest, FreshJournalReplaysNothing) {
  auto journal = RsuJournal::open(path_);
  ASSERT_TRUE(journal.has_value());
  EXPECT_FALSE(journal->replayed().has_value());
}

TEST_F(JournalTest, ReplaysPeriodStartAndEncodes) {
  {
    auto journal = RsuJournal::open(path_);
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal->begin_period(7, 3, 1024).is_ok());
    ASSERT_TRUE(journal->record_encode(17).is_ok());
    ASSERT_TRUE(journal->record_encode(900).is_ok());
    ASSERT_TRUE(journal->record_encode(17).is_ok());  // repeats are kept
  }
  auto reopened = RsuJournal::open(path_);
  ASSERT_TRUE(reopened.has_value());
  const auto& replayed = reopened->replayed();
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->location, 7u);
  EXPECT_EQ(replayed->period, 3u);
  EXPECT_EQ(replayed->bitmap_size, 1024u);
  const std::vector<std::uint64_t> expected = {17, 900, 17};
  EXPECT_EQ(replayed->encode_indices, expected);
}

TEST_F(JournalTest, BeginPeriodResetsPreviousEntries) {
  {
    auto journal = RsuJournal::open(path_);
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal->begin_period(7, 0, 512).is_ok());
    ASSERT_TRUE(journal->record_encode(1).is_ok());
    ASSERT_TRUE(journal->begin_period(7, 1, 256).is_ok());
    ASSERT_TRUE(journal->record_encode(2).is_ok());
  }
  auto reopened = RsuJournal::open(path_);
  ASSERT_TRUE(reopened.has_value());
  const auto& replayed = reopened->replayed();
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->period, 1u);
  EXPECT_EQ(replayed->bitmap_size, 256u);
  EXPECT_EQ(replayed->encode_indices, std::vector<std::uint64_t>{2});
}

TEST_F(JournalTest, TornTailCostsAtMostTheFinalEncode) {
  {
    auto journal = RsuJournal::open(path_);
    ASSERT_TRUE(journal.has_value());
    ASSERT_TRUE(journal->begin_period(7, 0, 512).is_ok());
    ASSERT_TRUE(journal->record_encode(10).is_ok());
    ASSERT_TRUE(journal->record_encode(20).is_ok());
  }
  // Crash mid-append: chop into the final entry.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.close();
  std::vector<char> bytes(size);
  std::ifstream(path_, std::ios::binary)
      .read(bytes.data(), static_cast<std::streamsize>(size));
  std::ofstream(path_, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(size - 3));

  auto reopened = RsuJournal::open(path_);
  ASSERT_TRUE(reopened.has_value());
  const auto& replayed = reopened->replayed();
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->encode_indices, std::vector<std::uint64_t>{10});
}

TEST_F(JournalTest, RejectsForeignFiles) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a journal";
  }
  EXPECT_EQ(RsuJournal::open(path_).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(JournalCodec, EntryRoundTrip) {
  const JournalEntry start = JournalPeriodStart{5, 9, 2048};
  auto decoded = decode_journal_entry(encode_journal_entry(start));
  ASSERT_TRUE(decoded.has_value());
  const auto* ps = std::get_if<JournalPeriodStart>(&*decoded);
  ASSERT_NE(ps, nullptr);
  EXPECT_EQ(ps->location, 5u);
  EXPECT_EQ(ps->period, 9u);
  EXPECT_EQ(ps->bitmap_size, 2048u);

  const JournalEntry encode = JournalEncode{1234};
  auto decoded_encode = decode_journal_entry(encode_journal_entry(encode));
  ASSERT_TRUE(decoded_encode.has_value());
  const auto* enc = std::get_if<JournalEncode>(&*decoded_encode);
  ASSERT_NE(enc, nullptr);
  EXPECT_EQ(enc->index, 1234u);
}

TEST(JournalCodec, RejectsMalformedPayloads) {
  EXPECT_FALSE(decode_journal_entry({}).has_value());
  const std::vector<std::uint8_t> unknown_kind = {0x7f, 0, 0, 0};
  EXPECT_FALSE(decode_journal_entry(unknown_kind).has_value());
  // Truncated PeriodStart (kind byte + too few payload bytes).
  const std::vector<std::uint8_t> truncated = {0x01, 1, 2, 3};
  EXPECT_FALSE(decode_journal_entry(truncated).has_value());
  // Trailing garbage after a valid Encode entry.
  auto bytes = encode_journal_entry(JournalEncode{1});
  bytes.push_back(0xee);
  EXPECT_FALSE(decode_journal_entry(bytes).has_value());
}

}  // namespace
}  // namespace ptm
