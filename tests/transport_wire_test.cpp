// Tests for transport/wire.hpp and transport/framing.hpp: every transport
// message round-trips through the envelope codec, malformed envelopes are
// rejected, and the stream decoder reassembles frames across arbitrary
// chunking while refusing un-resyncable streams.
#include "transport/framing.hpp"
#include "transport/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/traffic_record.hpp"
#include "net/mac.hpp"
#include "net/message.hpp"

namespace ptm::transport {
namespace {

TrafficRecord make_record(std::uint64_t location, std::uint64_t period) {
  TrafficRecord rec;
  rec.location = location;
  rec.period = period;
  rec.bits = Bitmap(64);
  rec.bits.set(3);
  rec.bits.set(17);
  return rec;
}

TEST(TransportWireTest, HeartbeatRoundTrip) {
  const WireMessage msg = Heartbeat{0xABCDEF0123456789ULL, 42};
  const auto decoded = decode_wire_message(encode_wire_message(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<Heartbeat>(*decoded), std::get<Heartbeat>(msg));
}

TEST(TransportWireTest, HeartbeatAckRoundTrip) {
  const WireMessage msg = HeartbeatAck{7, 1234567890};
  const auto decoded = decode_wire_message(encode_wire_message(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<HeartbeatAck>(*decoded), std::get<HeartbeatAck>(msg));
}

TEST(TransportWireTest, UploadNackRoundTrip) {
  UploadNack nack;
  nack.location = 12;
  nack.period = 9;
  nack.code = ErrorCode::kResourceExhausted;
  nack.retryable = true;
  const auto decoded = decode_wire_message(encode_wire_message(nack));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<UploadNack>(*decoded), nack);

  nack.code = ErrorCode::kInvalidArgument;
  nack.retryable = false;
  const auto fatal = decode_wire_message(encode_wire_message(nack));
  ASSERT_TRUE(fatal.has_value());
  EXPECT_FALSE(std::get<UploadNack>(*fatal).retryable);
}

TEST(TransportWireTest, StatsRoundTrip) {
  const auto req = decode_wire_message(encode_wire_message(StatsRequest{}));
  ASSERT_TRUE(req.has_value());
  EXPECT_TRUE(std::holds_alternative<StatsRequest>(*req));

  StatsResponse resp;
  resp.json = R"({"counters":[{"name":"x","value":1}]})";
  const auto decoded = decode_wire_message(encode_wire_message(resp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<StatsResponse>(*decoded).json, resp.json);
}

TEST(TransportWireTest, V2IFrameRoundTrip) {
  Frame frame{MacAddress{0x11}, MacAddress{0x22},
              RecordUpload{make_record(5, 2)}, {}};
  frame.trace = TraceContext::for_record(5, 2);
  const auto decoded = decode_wire_message(encode_wire_message(frame));
  ASSERT_TRUE(decoded.has_value());
  const auto& inner = std::get<Frame>(*decoded);
  EXPECT_EQ(inner.type(), MessageType::kRecordUpload);
  EXPECT_EQ(inner.trace, frame.trace);
  EXPECT_EQ(std::get<RecordUpload>(inner.body).record, make_record(5, 2));
}

TEST(TransportWireTest, ReplicationMessagesRoundTrip) {
  const auto sub = decode_wire_message(encode_wire_message(
      ReplSubscribe{0xFEEDULL}));
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(std::get<ReplSubscribe>(*sub), (ReplSubscribe{0xFEEDULL}));

  ReplRecord rec;
  rec.seq = 42;
  rec.record = make_record(5, 2).serialize();
  const auto decoded = decode_wire_message(encode_wire_message(rec));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<ReplRecord>(*decoded), rec);
  // The nested blob really is a record.
  auto inner = TrafficRecord::deserialize(std::get<ReplRecord>(*decoded).record);
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->location, 5u);

  const auto ack = decode_wire_message(encode_wire_message(ReplAck{42}));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(std::get<ReplAck>(*ack), (ReplAck{42}));

  const auto begin =
      decode_wire_message(encode_wire_message(ReplSnapshotBegin{100}));
  ASSERT_TRUE(begin.has_value());
  EXPECT_EQ(std::get<ReplSnapshotBegin>(*begin), (ReplSnapshotBegin{100}));

  const auto end =
      decode_wire_message(encode_wire_message(ReplSnapshotEnd{99}));
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(std::get<ReplSnapshotEnd>(*end), (ReplSnapshotEnd{99}));
}

TEST(TransportWireTest, RecordsMessagesRoundTrip) {
  RecordsRequest req;
  req.location = 7;
  req.periods = {1, 2, 3};
  const auto decoded_req = decode_wire_message(encode_wire_message(req));
  ASSERT_TRUE(decoded_req.has_value());
  EXPECT_EQ(std::get<RecordsRequest>(*decoded_req), req);

  // Empty periods = "all stored periods" - must survive the codec.
  req.periods.clear();
  const auto all = decode_wire_message(encode_wire_message(req));
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(std::get<RecordsRequest>(*all).periods.empty());

  RecordsResponse resp;
  resp.location = 7;
  resp.records = {make_record(7, 1).serialize(), make_record(7, 2).serialize()};
  const auto decoded_resp = decode_wire_message(encode_wire_message(resp));
  ASSERT_TRUE(decoded_resp.has_value());
  EXPECT_EQ(std::get<RecordsResponse>(*decoded_resp), resp);
}

TEST(TransportWireTest, ReplRecordRejectsZeroSeqAndEmptyRecord) {
  ReplRecord zero_seq;
  zero_seq.seq = 0;
  zero_seq.record = make_record(1, 1).serialize();
  EXPECT_FALSE(
      decode_wire_message(encode_wire_message(zero_seq)).has_value());

  ReplRecord empty;
  empty.seq = 1;
  EXPECT_FALSE(decode_wire_message(encode_wire_message(empty)).has_value());
}

TEST(TransportWireTest, RecordsRequestRejectsOversizeCount) {
  // A count claiming more periods than the payload could possibly hold
  // must fail cleanly instead of reserving gigabytes.
  RecordsRequest req;
  req.location = 1;
  req.periods = {1};
  auto bytes = encode_wire_message(req);
  // kind(1) + location(8) + count(4): patch count to a huge value.
  bytes[9] = 0xFF;
  bytes[10] = 0xFF;
  bytes[11] = 0xFF;
  bytes[12] = 0x7F;
  EXPECT_FALSE(decode_wire_message(bytes).has_value());
}

TEST(TransportWireTest, RecordsResponseRejectsOversizeCountAndEmptyBlob) {
  RecordsResponse resp;
  resp.location = 1;
  resp.records = {make_record(1, 1).serialize()};
  auto bytes = encode_wire_message(resp);
  bytes[9] = 0xFF;
  bytes[10] = 0xFF;
  bytes[11] = 0xFF;
  bytes[12] = 0x7F;
  EXPECT_FALSE(decode_wire_message(bytes).has_value());

  // A zero-length record blob is structurally meaningless.
  resp.records = {{}};
  EXPECT_FALSE(decode_wire_message(encode_wire_message(resp)).has_value());
}

TEST(TransportWireTest, ReplicationTruncationSweep) {
  ReplRecord rec;
  rec.seq = 3;
  rec.record = make_record(9, 4).serialize();
  for (const auto& msg : std::vector<WireMessage>{
           ReplSubscribe{1}, rec, ReplAck{3}, ReplSnapshotBegin{10},
           ReplSnapshotEnd{10}, RecordsRequest{4, {1, 2}},
           RecordsResponse{4, {make_record(4, 1).serialize()}}}) {
    const auto good = encode_wire_message(msg);
    for (std::size_t len = 1; len < good.size(); ++len) {
      std::vector<std::uint8_t> cut(good.begin(),
                                    good.begin() + static_cast<long>(len));
      EXPECT_FALSE(decode_wire_message(cut).has_value())
          << "kind=" << wire_kind_name(wire_kind(msg)) << " len=" << len;
    }
  }
}

TEST(TransportWireTest, RejectsEmptyUnknownKindAndTruncation) {
  EXPECT_FALSE(decode_wire_message({}).has_value());

  std::vector<std::uint8_t> unknown{0x2A};
  EXPECT_FALSE(decode_wire_message(unknown).has_value());

  const auto good = encode_wire_message(Heartbeat{1, 2});
  for (std::size_t len = 1; len < good.size(); ++len) {
    std::vector<std::uint8_t> cut(good.begin(),
                                  good.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode_wire_message(cut).has_value()) << "len=" << len;
  }
}

TEST(TransportWireTest, RejectsTrailingBytes) {
  auto bytes = encode_wire_message(Heartbeat{1, 2});
  bytes.push_back(0);
  EXPECT_FALSE(decode_wire_message(bytes).has_value());
}

TEST(TransportWireTest, KindNames) {
  EXPECT_EQ(wire_kind(WireMessage{Heartbeat{}}), WireKind::kHeartbeat);
  EXPECT_EQ(wire_kind(WireMessage{StatsRequest{}}), WireKind::kStatsRequest);
  EXPECT_STREQ(wire_kind_name(WireKind::kUploadNack), "upload-nack");
  EXPECT_EQ(wire_kind(WireMessage{ReplSubscribe{}}), WireKind::kReplSubscribe);
  EXPECT_EQ(wire_kind(WireMessage{RecordsRequest{}}),
            WireKind::kRecordsRequest);
  EXPECT_STREQ(wire_kind_name(WireKind::kReplRecord), "repl-record");
  EXPECT_STREQ(wire_kind_name(WireKind::kRecordsResponse),
               "records-response");
}

TEST(TransportFramingTest, FramesRoundTripByteAtATime) {
  const auto p1 = encode_wire_message(Heartbeat{1, 11});
  const auto p2 = encode_wire_message(HeartbeatAck{2, 22});
  std::vector<std::uint8_t> stream = frame_payload(p1);
  const auto f2 = frame_payload(p2);
  stream.insert(stream.end(), f2.begin(), f2.end());

  StreamDecoder decoder;
  std::vector<std::vector<std::uint8_t>> out;
  for (const std::uint8_t byte : stream) {
    decoder.feed({&byte, 1});
    while (true) {
      auto next = decoder.next();
      ASSERT_TRUE(next.has_value());
      if (!next->has_value()) break;
      out.push_back(**next);
    }
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], p1);
  EXPECT_EQ(out[1], p2);
  EXPECT_EQ(decoder.frames_decoded(), 2u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(TransportFramingTest, PartialFrameYieldsNothing) {
  const auto payload = encode_wire_message(Heartbeat{9, 99});
  const auto framed = frame_payload(payload);
  StreamDecoder decoder;
  decoder.feed({framed.data(), framed.size() - 1});
  auto next = decoder.next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->has_value());
  decoder.feed({framed.data() + framed.size() - 1, 1});
  next = decoder.next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->has_value());
  EXPECT_EQ(**next, payload);
}

TEST(TransportFramingTest, OversizeLengthPoisonsStream) {
  StreamDecoder decoder;
  const std::vector<std::uint8_t> evil{0xFF, 0xFF, 0xFF, 0xFF};
  decoder.feed(evil);
  auto next = decoder.next();
  EXPECT_FALSE(next.has_value());
  EXPECT_TRUE(decoder.poisoned());
  // Poisoned is terminal: further feeds are ignored, next() keeps failing.
  const auto good = frame_payload(encode_wire_message(Heartbeat{}));
  decoder.feed(good);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(TransportFramingTest, ZeroLengthPoisonsStream) {
  StreamDecoder decoder;
  const std::vector<std::uint8_t> zero{0, 0, 0, 0};
  decoder.feed(zero);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.poisoned());
}

}  // namespace
}  // namespace ptm::transport
