// Tests for hash/xxhash.hpp against published XXH64 vectors and structural
// properties.
#include "hash/xxhash.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string_view>
#include <vector>

namespace ptm {
namespace {

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(XxHash64, ReferenceVectors) {
  EXPECT_EQ(xxhash64(std::span<const std::uint8_t>{}, 0),
            0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxhash64(bytes_of("xxhash"), 0), 0x32DD38952C4BC720ULL);
}

TEST(XxHash64, SeedChangesOutput) {
  EXPECT_NE(xxhash64(bytes_of("xxhash"), 0), xxhash64(bytes_of("xxhash"), 1));
}

TEST(XxHash64, EveryLengthBranchCovered) {
  // < 4, < 8, < 32, >= 32, and multi-stripe (> 64) inputs all distinct.
  std::vector<std::uint8_t> buf(100);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 13 + 5);
  }
  std::set<std::uint64_t> seen;
  for (std::size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u, 63u,
                          64u, 65u, 100u}) {
    seen.insert(xxhash64(std::span<const std::uint8_t>(buf.data(), len), 7));
  }
  EXPECT_EQ(seen.size(), 14u);
}

TEST(XxHash64, PrefixIsNotHashPrefix) {
  // Extending the input by one byte must rehash, not append.
  std::uint8_t buf[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::uint64_t h8 = xxhash64(std::span<const std::uint8_t>(buf, 8), 0);
  const std::uint64_t h9 = xxhash64(std::span<const std::uint8_t>(buf, 9), 0);
  EXPECT_NE(h8, h9);
  EXPECT_NE(h8 >> 8, h9 >> 8);
}

TEST(XxHash64, U64OverloadMatchesByteSpan) {
  const std::uint64_t value = 0xFEDCBA9876543210ULL;
  std::uint8_t le[8];
  std::memcpy(le, &value, 8);
  EXPECT_EQ(xxhash64(value, 3),
            xxhash64(std::span<const std::uint8_t>(le, 8), 3));
}

TEST(XxHash64, NoTrivialCollisionsOnSequentialInputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t v = 0; v < 100000; ++v) seen.insert(xxhash64(v, 0));
  EXPECT_EQ(seen.size(), 100000u);
}

}  // namespace
}  // namespace ptm
