// Unit tests for the cluster's consistent-hash partition map and the
// membership spec parser (docs/cluster.md).  The map is the cluster's
// only coordination mechanism - every node, follower, and coordinator
// derives it independently from the shared config string - so the tests
// pin the properties that independence rests on: determinism under node
// reordering, owner membership, distinct owner-first replica groups, and
// should_hold being exactly replica membership.
#include "cluster/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "transport/socket.hpp"

namespace ptm::cluster {
namespace {

ClusterNodeSpec make_spec(std::uint64_t node_id) {
  ClusterNodeSpec spec;
  spec.node_id = node_id;
  auto client =
      transport::parse_endpoint("unix:/tmp/n" + std::to_string(node_id));
  spec.client = *client;
  spec.repl = *client;
  return spec;
}

ClusterConfig make_config(std::vector<std::uint64_t> ids,
                          std::size_t replication_factor) {
  ClusterConfig config;
  for (std::uint64_t id : ids) config.nodes.push_back(make_spec(id));
  config.replication_factor = replication_factor;
  return config;
}

TEST(ClusterSpecTest, ParsesEntriesAndDefaultsReplToClient) {
  auto config = parse_cluster_spec(
      "1@unix:/tmp/a.sock@unix:/tmp/a-repl.sock;2@tcp:127.0.0.1:7101");
  ASSERT_TRUE(config.has_value()) << config.status().to_string();
  ASSERT_EQ(config->nodes.size(), 2u);
  EXPECT_EQ(config->nodes[0].node_id, 1u);
  EXPECT_EQ(config->nodes[0].client.to_string(), "unix:/tmp/a.sock");
  EXPECT_EQ(config->nodes[0].repl.to_string(), "unix:/tmp/a-repl.sock");
  EXPECT_EQ(config->nodes[1].node_id, 2u);
  EXPECT_EQ(config->nodes[1].client.to_string(), "tcp:127.0.0.1:7101");
  // No explicit repl endpoint: replication shares the client listener.
  EXPECT_EQ(config->nodes[1].repl.to_string(), "tcp:127.0.0.1:7101");
}

TEST(ClusterSpecTest, RejectsMalformedSpecs) {
  // Missing endpoint entirely.
  EXPECT_FALSE(parse_cluster_spec("1").has_value());
  // Non-numeric id.
  EXPECT_FALSE(parse_cluster_spec("x@unix:/tmp/a.sock").has_value());
  // Id 0 is reserved for standalone daemons.
  EXPECT_FALSE(parse_cluster_spec("0@unix:/tmp/a.sock").has_value());
  // Duplicate id.
  EXPECT_FALSE(
      parse_cluster_spec("1@unix:/tmp/a.sock;1@unix:/tmp/b.sock").has_value());
  // Unparseable endpoint.
  EXPECT_FALSE(parse_cluster_spec("1@tcp:nohost").has_value());
  // Unparseable repl endpoint.
  EXPECT_FALSE(parse_cluster_spec("1@unix:/tmp/a.sock@unix:").has_value());
  // Empty spec has no members.
  EXPECT_FALSE(parse_cluster_spec("").has_value());
}

TEST(PartitionMapTest, OwnerIsDeterministicAndIgnoresNodeOrder) {
  PartitionMap forward(make_config({1, 2, 3}, 2));
  PartitionMap shuffled(make_config({3, 1, 2}, 2));
  const std::set<std::uint64_t> members{1, 2, 3};
  for (std::uint64_t location = 0; location < 512; ++location) {
    const std::uint64_t owner = forward.owner(location);
    EXPECT_TRUE(members.count(owner)) << "owner not a member: " << owner;
    // The map is a pure function of the member ids, not their order.
    EXPECT_EQ(owner, shuffled.owner(location));
    EXPECT_EQ(forward.replicas(location), shuffled.replicas(location));
  }
}

TEST(PartitionMapTest, ReplicasAreDistinctOwnerFirst) {
  PartitionMap map(make_config({1, 2, 3, 4}, 3));
  for (std::uint64_t location = 0; location < 512; ++location) {
    const auto replicas = map.replicas(location);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas.front(), map.owner(location));
    std::set<std::uint64_t> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), replicas.size());
  }
}

TEST(PartitionMapTest, ShouldHoldIsExactlyReplicaMembership) {
  PartitionMap map(make_config({1, 2, 3, 4, 5}, 2));
  for (std::uint64_t location = 0; location < 256; ++location) {
    const auto replicas = map.replicas(location);
    for (std::uint64_t node = 1; node <= 5; ++node) {
      const bool in_group =
          std::find(replicas.begin(), replicas.end(), node) != replicas.end();
      EXPECT_EQ(map.should_hold(node, location), in_group)
          << "node " << node << " location " << location;
    }
  }
}

TEST(PartitionMapTest, ReplicationFactorClampsToNodeCount) {
  PartitionMap oversized(make_config({1, 2, 3}, 9));
  EXPECT_EQ(oversized.replication_factor(), 3u);
  EXPECT_EQ(oversized.replicas(42).size(), 3u);

  PartitionMap undersized(make_config({1, 2, 3}, 0));
  EXPECT_EQ(undersized.replication_factor(), 1u);
  EXPECT_EQ(undersized.replicas(42).size(), 1u);

  // Single node: every location maps to it, whatever the factor says.
  PartitionMap solo(make_config({7}, 2));
  for (std::uint64_t location = 0; location < 64; ++location) {
    EXPECT_EQ(solo.owner(location), 7u);
    EXPECT_TRUE(solo.should_hold(7, location));
  }
}

TEST(PartitionMapTest, OwnershipIsRoughlyBalanced) {
  PartitionMap map(make_config({1, 2, 3}, 1));
  std::map<std::uint64_t, std::size_t> owned;
  constexpr std::size_t kLocations = 9000;
  for (std::uint64_t location = 0; location < kLocations; ++location) {
    ++owned[map.owner(location)];
  }
  // 64 vnodes per node keeps a 3-node split within a few percent of even;
  // the bound below is deliberately loose (hash-dependent, not tuned).
  for (std::uint64_t node : {1u, 2u, 3u}) {
    EXPECT_GT(owned[node], kLocations / 6) << "node " << node << " starved";
    EXPECT_LT(owned[node], kLocations / 2) << "node " << node << " hogging";
  }
}

TEST(PartitionMapTest, VnodeCountsSumToRingSize) {
  ClusterConfig config = make_config({1, 2, 3, 4}, 2);
  PartitionMap map(config);
  std::size_t total = 0;
  for (const ClusterNodeSpec& spec : config.nodes) {
    const std::size_t share = map.vnode_count(spec.node_id);
    EXPECT_GT(share, 0u);
    total += share;
  }
  EXPECT_EQ(total, config.nodes.size() * PartitionMap::kVnodesPerNode);
  EXPECT_EQ(map.vnode_count(99), 0u);  // non-member owns nothing
}

TEST(PartitionMapTest, LosingANodeOnlyMovesItsOwnArcs) {
  // Consistent hashing's point: removing node 3 must not reshuffle
  // locations owned by 1 or 2.
  PartitionMap full(make_config({1, 2, 3}, 1));
  PartitionMap reduced(make_config({1, 2}, 1));
  for (std::uint64_t location = 0; location < 2048; ++location) {
    const std::uint64_t before = full.owner(location);
    if (before != 3) {
      EXPECT_EQ(reduced.owner(location), before)
          << "location " << location << " moved needlessly";
    } else {
      const std::uint64_t after = reduced.owner(location);
      EXPECT_TRUE(after == 1 || after == 2);
    }
  }
}

}  // namespace
}  // namespace ptm::cluster
