// Tests for common/bitmap.hpp: the physical traffic-record representation.
#include "common/bitmap.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace ptm {
namespace {

TEST(Bitmap, StartsAllZero) {
  const Bitmap b(128);
  EXPECT_EQ(b.size(), 128u);
  EXPECT_EQ(b.count_ones(), 0u);
  EXPECT_EQ(b.count_zeros(), 128u);
  EXPECT_DOUBLE_EQ(b.fraction_zeros(), 1.0);
}

TEST(Bitmap, SetTestReset) {
  Bitmap b(70);  // deliberately not a multiple of 64
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count_ones(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count_ones(), 3u);
}

TEST(Bitmap, SetIsIdempotent) {
  Bitmap b(32);
  b.set(7);
  b.set(7);
  EXPECT_EQ(b.count_ones(), 1u);
}

TEST(Bitmap, ClearResetsEverything) {
  Bitmap b(256);
  for (std::size_t i = 0; i < 256; i += 3) b.set(i);
  ASSERT_GT(b.count_ones(), 0u);
  b.clear();
  EXPECT_EQ(b.count_ones(), 0u);
}

TEST(Bitmap, FractionZeros) {
  Bitmap b(8);
  b.set(0);
  b.set(1);
  EXPECT_DOUBLE_EQ(b.fraction_zeros(), 0.75);
  EXPECT_DOUBLE_EQ(b.fraction_ones(), 0.25);
}

TEST(Bitmap, AndWithMatchesManualComputation) {
  Bitmap a(16), b(16);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  b.set(3);
  b.set(4);
  ASSERT_TRUE(a.and_with(b).is_ok());
  EXPECT_FALSE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_TRUE(a.test(3));
  EXPECT_FALSE(a.test(4));
}

TEST(Bitmap, OrWithMatchesManualComputation) {
  Bitmap a(16), b(16);
  a.set(1);
  b.set(4);
  ASSERT_TRUE(a.or_with(b).is_ok());
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(4));
  EXPECT_EQ(a.count_ones(), 2u);
}

TEST(Bitmap, JoinSizeMismatchRejected) {
  Bitmap a(16), b(32);
  EXPECT_EQ(a.and_with(b).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(a.or_with(b).code(), ErrorCode::kInvalidArgument);
  EXPECT_FALSE(bitmap_and(a, b).has_value());
  EXPECT_FALSE(bitmap_or(a, b).has_value());
}

TEST(Bitmap, FreeJoinsDoNotMutateInputs) {
  Bitmap a(8), b(8);
  a.set(0);
  b.set(1);
  auto j = bitmap_or(a, b);
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(a.count_ones(), 1u);
  EXPECT_EQ(b.count_ones(), 1u);
  EXPECT_EQ(j->count_ones(), 2u);
}

TEST(Bitmap, ReplicateDoubles) {
  Bitmap b(4);
  b.set(1);
  b.set(3);
  auto e = b.replicate_to(8);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->size(), 8u);
  // Pattern 0101 repeated: bits 1,3,5,7.
  EXPECT_TRUE(e->test(1));
  EXPECT_TRUE(e->test(3));
  EXPECT_TRUE(e->test(5));
  EXPECT_TRUE(e->test(7));
  EXPECT_EQ(e->count_ones(), 4u);
}

TEST(Bitmap, ReplicatePreservesZeroFraction) {
  Xoshiro256 rng(99);
  Bitmap b(256);
  for (int i = 0; i < 100; ++i) b.set(rng.below(256));
  const double v0 = b.fraction_zeros();
  auto e = b.replicate_to(4096);
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->fraction_zeros(), v0);
}

TEST(Bitmap, ReplicateWordAlignedLargeSizes) {
  Xoshiro256 rng(7);
  Bitmap b(1024);
  for (int i = 0; i < 300; ++i) b.set(rng.below(1024));
  auto e = b.replicate_to(8192);
  ASSERT_TRUE(e.has_value());
  for (std::size_t i = 0; i < 8192; ++i) {
    EXPECT_EQ(e->test(i), b.test(i % 1024)) << "index " << i;
  }
}

TEST(Bitmap, ReplicateRejectsNonMultiple) {
  Bitmap b(8);
  EXPECT_FALSE(b.replicate_to(12).has_value());
  EXPECT_FALSE(b.replicate_to(0).has_value());
  EXPECT_FALSE(b.replicate_to(4).has_value());  // shrink not allowed
}

TEST(Bitmap, ReplicateOfEmptyRejected) {
  const Bitmap b;
  EXPECT_EQ(b.replicate_to(8).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(Bitmap, SerializeRoundTrip) {
  Xoshiro256 rng(5);
  for (std::size_t size : {1u, 63u, 64u, 65u, 128u, 1000u}) {
    Bitmap b(size);
    for (std::size_t i = 0; i < size / 2; ++i) b.set(rng.below(size));
    const auto bytes = b.serialize();
    auto decoded = Bitmap::deserialize(bytes);
    ASSERT_TRUE(decoded.has_value()) << "size " << size;
    EXPECT_EQ(*decoded, b);
  }
}

TEST(Bitmap, DeserializeRejectsTruncation) {
  Bitmap b(128);
  b.set(5);
  auto bytes = b.serialize();
  bytes.pop_back();
  EXPECT_EQ(Bitmap::deserialize(bytes).status().code(),
            ErrorCode::kParseError);
}

TEST(Bitmap, DeserializeRejectsShortHeader) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  EXPECT_EQ(Bitmap::deserialize(bytes).status().code(),
            ErrorCode::kParseError);
}

TEST(Bitmap, DeserializeRejectsStrayTailBits) {
  Bitmap b(60);  // 4 unused bits in the single word
  auto bytes = b.serialize();
  bytes.back() = 0xF0;  // set bits beyond index 59
  EXPECT_EQ(Bitmap::deserialize(bytes).status().code(),
            ErrorCode::kParseError);
}

TEST(Bitmap, EqualityComparesSizeAndContent) {
  Bitmap a(8), b(8), c(16);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  b.set(3);
  EXPECT_FALSE(a == b);
}

/// Property sweep: counting is consistent for random fills across sizes.
class BitmapCountProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitmapCountProperty, OnesPlusZerosEqualsSize) {
  const std::size_t size = GetParam();
  Xoshiro256 rng(size * 2654435761u + 1);
  Bitmap b(size);
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const std::size_t idx = rng.below(size);
    if (!b.test(idx)) ++distinct;
    b.set(idx);
  }
  EXPECT_EQ(b.count_ones(), distinct);
  EXPECT_EQ(b.count_ones() + b.count_zeros(), size);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitmapCountProperty,
                         ::testing::Values(1, 2, 31, 32, 33, 63, 64, 65, 127,
                                           128, 129, 512, 4096, 65536));

}  // namespace
}  // namespace ptm
