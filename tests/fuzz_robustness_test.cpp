// Robustness fuzzing: every decoder that consumes bytes from across a
// trust boundary must reject arbitrary garbage gracefully - no crashes, no
// accepted-but-nonsense values.  Seeded random fuzz keeps the suite
// deterministic.
#include <gtest/gtest.h>

#include "common/bitmap.hpp"
#include "common/crc32.hpp"
#include "common/random.hpp"
#include "core/traffic_record.hpp"
#include "crypto/certificate.hpp"
#include "crypto/rsa.hpp"
#include "net/message.hpp"
#include "query/query_service.hpp"
#include "store/archive.hpp"
#include "store/journal.hpp"
#include "store/outbox.hpp"
#include "store/record_log.hpp"
#include "transport/wire.hpp"

#include <cstdio>
#include <fstream>

namespace ptm {
namespace {

std::vector<std::uint8_t> random_bytes(Xoshiro256& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

TEST(Fuzz, BitmapDeserializeNeverCrashes) {
  Xoshiro256 rng(1);
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = random_bytes(rng, 200);
    const auto result = Bitmap::deserialize(bytes);
    if (result) {
      ++accepted;
      // Anything accepted must be internally consistent.
      EXPECT_EQ(result->count_ones() + result->count_zeros(), result->size());
    }
  }
  // Random bytes occasionally form a valid header+body; that's fine, but
  // it must be rare (the length check rejects nearly everything).
  EXPECT_LT(accepted, 500);
}

TEST(Fuzz, BitmapDeserializeRejectsStrayTailBits) {
  // Crafted adversarial frame: a valid header + body whose last word has
  // one-bits ABOVE bit_count_.  Such a bitmap would silently corrupt every
  // popcount-based estimate (count_zeros / fraction_ones scan whole words),
  // so deserialize must refuse it rather than normalize it.
  for (std::size_t bit_count : {1u, 5u, 37u, 63u, 65u, 100u}) {
    Bitmap good(bit_count);
    if (bit_count >= 3) good.set(2);
    auto bytes = good.serialize();
    const std::size_t rem = bit_count % 64;
    ASSERT_NE(rem, 0u);
    // Flip a bit in the tail slack of the last word.
    const std::size_t last_word_offset = bytes.size() - 8;
    bytes[last_word_offset + rem / 8] |=
        static_cast<std::uint8_t>(1u << (rem % 8));
    const auto result = Bitmap::deserialize(bytes);
    EXPECT_FALSE(result.has_value()) << "bit_count=" << bit_count;
    // The untampered frame must still round-trip.
    const auto clean = Bitmap::deserialize(good.serialize());
    ASSERT_TRUE(clean.has_value());
    EXPECT_TRUE(*clean == good);
  }
}

TEST(Fuzz, TrafficRecordDeserializeNeverCrashes) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = random_bytes(rng, 300);
    const auto result = TrafficRecord::deserialize(bytes);
    if (result) {
      EXPECT_TRUE(result->validate().is_ok());
    }
  }
}

TEST(Fuzz, FrameDecodeNeverCrashes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = random_bytes(rng, 400);
    (void)decode_frame(bytes);  // must not crash or leak; result irrelevant
  }
}

TEST(Fuzz, MutatedValidFramesRejectedOrEquivalent) {
  // Start from a real frame and flip random bytes: the decoder must either
  // reject it or produce a structurally valid frame (never UB).
  Xoshiro256 rng(4);
  Frame frame{MacAddress{1}, MacAddress{2}, EncodeIndex{777}, {}};
  const auto wire = encode_frame(frame);
  for (int i = 0; i < 5000; ++i) {
    auto mutated = wire;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    const auto result = decode_frame(mutated);
    if (result) {
      (void)result->type();  // variant must be in a valid state
    }
  }
}

TEST(Fuzz, CertificateDeserializeNeverCrashes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 3000; ++i) {
    const auto bytes = random_bytes(rng, 500);
    (void)Certificate::deserialize(bytes);
  }
}

TEST(Fuzz, MutatedCertificateNeverVerifies) {
  // Byte-level mutations of a valid certificate must never verify against
  // the CA key (the signature covers every TBS byte).
  Xoshiro256 rng(6);
  CertificateAuthority ca("ca", 512, rng);
  const RsaKeyPair keys = rsa_generate(512, rng);
  const Certificate cert = *ca.issue("rsu:1", 1, keys.pub, 0, 100);
  const auto wire = cert.serialize();
  for (int i = 0; i < 300; ++i) {
    auto mutated = wire;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    const auto decoded = Certificate::deserialize(mutated);
    if (!decoded) continue;  // rejected at parse: good
    if (decoded->tbs_bytes() == cert.tbs_bytes() &&
        decoded->signature == cert.signature) {
      continue;  // mutation hit padding-free equality (possible only if a
                 // flipped byte round-tripped identically - skip)
    }
    EXPECT_FALSE(
        verify_certificate(*decoded, ca.public_key(), 50).is_ok())
        << "mutation " << i << " verified!";
  }
}

TEST(Fuzz, RecordLogReaderSurvivesGarbageFiles) {
  Xoshiro256 rng(7);
  const std::string path = ::testing::TempDir() + "/ptm_fuzz_log.bin";
  for (int i = 0; i < 200; ++i) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      // Half the time start with the valid magic so the body parser runs.
      if (i % 2 == 0) out.write("PTMRLOG1", 8);
      const auto bytes = random_bytes(rng, 600);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    const auto result = read_record_log(path);
    if (result) {
      for (const TrafficRecord& rec : result->records) {
        EXPECT_TRUE(rec.validate().is_ok());
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Fuzz, UploadAckFramesDecodeOrRejectCleanly) {
  // The UploadAck decoder sits on the server->RSU return path; mutated and
  // random frames must never crash it or leave a half-built variant.
  Xoshiro256 rng(9);
  Frame ack{MacAddress{1}, MacAddress{2}, UploadAck{7, 3}, {}};
  const auto wire = encode_frame(ack);
  for (int i = 0; i < 5000; ++i) {
    auto mutated = wire;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    const auto result = decode_frame(mutated);
    if (result && result->type() == MessageType::kUploadAck) {
      (void)std::get<UploadAck>(result->body);  // must hold the right shape
    }
  }
}

TEST(Fuzz, JournalEntryDecoderNeverCrashes) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = random_bytes(rng, 64);
    const auto result = decode_journal_entry(bytes);
    if (result && std::holds_alternative<JournalPeriodStart>(*result)) {
      // An accepted PeriodStart must have decoded all three fields - the
      // payload is fixed-size, so acceptance implies exactly 25 bytes.
      EXPECT_EQ(bytes.size(), 25u);
    }
  }
}

TEST(Fuzz, JournalOpenSurvivesGarbageFiles) {
  Xoshiro256 rng(11);
  const std::string path = ::testing::TempDir() + "/ptm_fuzz_journal.bin";
  for (int i = 0; i < 200; ++i) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (i % 2 == 0) out.write("PTMRJNL1", 8);
      const auto bytes = random_bytes(rng, 400);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    (void)RsuJournal::open(path);  // reject or replay; never crash
  }
  std::remove(path.c_str());
}

TEST(Fuzz, OutboxOpenSurvivesGarbageFiles) {
  Xoshiro256 rng(12);
  const std::string path = ::testing::TempDir() + "/ptm_fuzz_outbox.bin";
  for (int i = 0; i < 200; ++i) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (i % 2 == 0) out.write("PTMOBOX1", 8);
      const auto bytes = random_bytes(rng, 400);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    auto outbox = UploadOutbox::open(path, 8);
    if (outbox) {
      // Whatever replayed must be structurally valid records.
      for (const auto& entry : outbox->entries()) {
        EXPECT_TRUE(entry.record.validate().is_ok());
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Fuzz, ArchiveOpenSurvivesGarbageFiles) {
  Xoshiro256 rng(13);
  const std::string path = ::testing::TempDir() + "/ptm_fuzz_archive.bin";
  for (int i = 0; i < 200; ++i) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (i % 2 == 0) out.write("PTMRLOG1", 8);
      const auto bytes = random_bytes(rng, 400);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    auto archive = RecordArchive::open(path, {});
    if (archive) {
      // Open auto-heals torn tails by compacting, so anything that opened
      // must be re-openable and agree with itself.
      auto reopened = RecordArchive::open(path, {});
      ASSERT_TRUE(reopened.has_value());
      EXPECT_EQ(reopened->live_records(), archive->live_records());
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
}

// ---- Archive restore fuzz: the crash-recovery read path ------------------

namespace {

/// One wire frame of the record log: u32 len | payload | u32 crc32, LE.
void write_frame(std::ofstream& out, const std::vector<std::uint8_t>& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  for (int b = 0; b < 4; ++b) {
    out.put(static_cast<char>((len >> (8 * b)) & 0xFF));
  }
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  for (int b = 0; b < 4; ++b) {
    out.put(static_cast<char>((crc >> (8 * b)) & 0xFF));
  }
}

std::vector<std::uint8_t> record_payload(std::uint64_t location,
                                         std::uint64_t period) {
  TrafficRecord rec;
  rec.location = location;
  rec.period = period;
  rec.bits = Bitmap(128);
  rec.bits.set(static_cast<std::size_t>((location + period) % 128));
  return rec.serialize();
}

}  // namespace

TEST(Fuzz, ArchiveRestoreSurvivesTornTailMidRecord) {
  // A server crash mid-append leaves the log torn at an arbitrary byte
  // inside the final frame.  Restore must keep every intact record and
  // never crash, whatever the cut point.
  const std::string path = ::testing::TempDir() + "/ptm_fuzz_restore_torn.bin";
  std::vector<std::uint8_t> whole;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("PTMRLOG1", 8);
    write_frame(out, record_payload(1, 0));
    write_frame(out, record_payload(1, 1));
    write_frame(out, record_payload(2, 0));
  }
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    whole.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(whole.data()),
            static_cast<std::streamsize>(whole.size()));
  }
  const std::size_t third_frame_start =
      8 + 2 * (whole.size() - 8) / 3;  // frames are equal-sized here
  for (std::size_t cut = third_frame_start; cut < whole.size(); ++cut) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(whole.data()),
                static_cast<std::streamsize>(cut));
    }
    auto archive = RecordArchive::open(path, {});
    ASSERT_TRUE(archive.has_value()) << "cut=" << cut;
    // cut == whole.size() - n, n > 0: the third frame is torn; the two
    // intact frames must survive.  (A cut landing exactly on a frame
    // boundary keeps all three, but this loop never reaches it.)
    EXPECT_EQ(archive->live_records(), 2u) << "cut=" << cut;

    QueryService service;
    service.attach_durability(*archive);
    auto restored = service.restore_from_archive();
    ASSERT_TRUE(restored.has_value()) << "cut=" << cut;
    EXPECT_EQ(*restored, 2u);
    EXPECT_TRUE(service.has_record(1, 0));
    EXPECT_TRUE(service.has_record(1, 1));
    // The torn record re-delivers idempotently after recovery.
    auto rec = TrafficRecord::deserialize(record_payload(2, 0));
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(service.ingest(*rec).is_ok());
  }
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
}

TEST(Fuzz, ArchiveRestoreSkipsValidFrameWrappingInvalidRecord) {
  // Adversarial/bit-rotted case: a frame whose CRC is *valid* but whose
  // payload does not deserialize into a structurally valid TrafficRecord.
  // The log reader treats it as an undecodable tail: records before it
  // load, the bad frame (and anything after) is dropped, and the archive
  // heals by compaction - restore never sees a corrupt record.
  Xoshiro256 rng(14);
  const std::string path = ::testing::TempDir() + "/ptm_fuzz_restore_bad.bin";
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> bad = record_payload(9, 9);
    const std::size_t flips = 1 + rng.below(6);
    for (std::size_t f = 0; f < flips; ++f) {
      bad[rng.below(bad.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write("PTMRLOG1", 8);
      write_frame(out, record_payload(1, 0));
      write_frame(out, bad);  // valid CRC, possibly invalid body
      write_frame(out, record_payload(2, 0));
    }
    auto archive = RecordArchive::open(path, {});
    ASSERT_TRUE(archive.has_value()) << "iteration " << i;
    QueryService service;
    service.attach_durability(*archive);
    auto restored = service.restore_from_archive();
    ASSERT_TRUE(restored.has_value()) << "iteration " << i;
    EXPECT_EQ(*restored, archive->live_records());
    EXPECT_TRUE(service.has_record(1, 0));
    // Every restored record is structurally valid, whatever the mutation
    // did (if the flip happened to keep the record valid, all three load).
    for (const TrafficRecord& rec : archive->live_contents()) {
      EXPECT_TRUE(rec.validate().is_ok());
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
}

TEST(Fuzz, ReplicationWireEnvelopesRejectGarbageGracefully) {
  // The cluster replication kinds (repl-subscribe .. records-response)
  // arrive from peer nodes - a trust boundary like any other socket.
  // Random kind-stamped garbage must come back as clean ParseError or a
  // structurally valid message, and any record blob that survives the
  // envelope must still pass TrafficRecord's own validation gate before
  // it could ever reach an archive.
  Xoshiro256 rng(11);
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    auto bytes = random_bytes(rng, 256);
    // Stamp a replication kind so the fuzz exercises those decoders
    // instead of dying at the kind byte.
    const std::uint8_t kinds[] = {12, 13, 14, 15, 16, 17, 18};
    if (bytes.empty()) bytes.push_back(0);
    bytes[0] = kinds[rng.below(std::size(kinds))];
    const auto decoded = transport::decode_wire_message(bytes);
    if (!decoded.has_value()) {
      EXPECT_EQ(decoded.status().code(), ErrorCode::kParseError);
      continue;
    }
    ++accepted;
    if (const auto* repl = std::get_if<transport::ReplRecord>(&*decoded)) {
      const auto record = TrafficRecord::deserialize(repl->record);
      if (record.has_value()) EXPECT_TRUE(record->validate().is_ok());
    }
  }
  // Fixed-width kinds (acks, snapshot markers) decode from random bytes
  // routinely; the list-carrying kinds nearly never.  Either way the
  // decode is bounded and clean - the assertion above is the test.
  EXPECT_LT(accepted, 5000);
}

TEST(Fuzz, RsaVerifyRejectsRandomSignatures) {
  Xoshiro256 rng(8);
  const RsaKeyPair keys = rsa_generate(512, rng);
  const std::vector<std::uint8_t> message = {1, 2, 3};
  const std::size_t sig_len = (keys.pub.modulus_bits() + 7) / 8;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> fake(sig_len);
    for (auto& b : fake) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_FALSE(rsa_verify(keys.pub, message, fake));
  }
}

}  // namespace
}  // namespace ptm
