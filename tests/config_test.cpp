// Tests for common/config.hpp: the scenario-file / CLI-flag substrate.
#include "common/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ptm {
namespace {

TEST(Config, ParsesBasicPairs) {
  const auto config = Config::parse("a = 1\nb=hello\n  c  =  2.5  \n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->size(), 3u);
  EXPECT_EQ(config->get_string("a").value(), "1");
  EXPECT_EQ(config->get_string("b").value(), "hello");
  EXPECT_EQ(config->get_string("c").value(), "2.5");
}

TEST(Config, CommentsAndBlankLines) {
  const auto config = Config::parse(
      "# full-line comment\n"
      "\n"
      "key = value # trailing comment\n"
      "   \n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->size(), 1u);
  EXPECT_EQ(config->get_string("key").value(), "value");
}

TEST(Config, LaterKeysOverride) {
  const auto config = Config::parse("x = 1\nx = 2\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get_u64("x").value(), 2u);
}

TEST(Config, MalformedLinesNameTheLine) {
  const auto config = Config::parse("good = 1\nno equals sign here\n");
  ASSERT_FALSE(config.has_value());
  EXPECT_EQ(config.status().code(), ErrorCode::kParseError);
  EXPECT_NE(config.status().message().find("line 2"), std::string::npos);

  const auto empty_key = Config::parse("= value\n");
  ASSERT_FALSE(empty_key.has_value());
}

TEST(Config, TypedGetters) {
  const auto config =
      Config::parse("n = 12345\nf = 2.5\nyes = true\nno = off\nbad = 12x\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get_u64("n").value(), 12345u);
  EXPECT_DOUBLE_EQ(config->get_double("f").value(), 2.5);
  EXPECT_DOUBLE_EQ(config->get_double("n").value(), 12345.0);
  EXPECT_TRUE(config->get_bool("yes").value());
  EXPECT_FALSE(config->get_bool("no").value());

  EXPECT_EQ(config->get_u64("bad").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(config->get_u64("missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(config->get_bool("n").status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(Config, GettersWithDefaults) {
  const auto config = Config::parse("present = 7\nbad = zz\n");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get_u64_or("present", 1).value(), 7u);
  EXPECT_EQ(config->get_u64_or("absent", 42).value(), 42u);
  // Present-but-malformed is still an error, never silently defaulted.
  EXPECT_FALSE(config->get_u64_or("bad", 42).has_value());
  EXPECT_DOUBLE_EQ(config->get_double_or("absent", 1.5).value(), 1.5);
  EXPECT_TRUE(config->get_bool_or("absent", true).value());
  EXPECT_EQ(config->get_string_or("absent", "dft").value(), "dft");
}

TEST(Config, ProgrammaticSetOverrides) {
  auto config = Config::parse("a = 1\n").value();
  config.set("a", "9");
  config.set("b", "new");
  EXPECT_EQ(config.get_u64("a").value(), 9u);
  EXPECT_EQ(config.get_string("b").value(), "new");
}

TEST(Config, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/ptm_config_test.cfg";
  {
    std::ofstream out(path);
    out << "seed = 99\nf = 3\n";
  }
  const auto config = Config::load(path);
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get_u64("seed").value(), 99u);
  std::remove(path.c_str());

  EXPECT_EQ(Config::load("/nonexistent/ptm.cfg").status().code(),
            ErrorCode::kNotFound);
}

TEST(Config, NoFinalNewline) {
  const auto config = Config::parse("k = v");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->get_string("k").value(), "v");
}

}  // namespace
}  // namespace ptm
